"""Shared benchmark plumbing: scales, result files, table rendering.

Every bench regenerates one of the paper's tables or figures as a text
artifact under ``benchmarks/results/`` (stdout is captured by pytest,
files are not).  ``REPRO_BENCH_SCALE`` (default 1.0) multiplies the
built-in dataset scales: crank it up on a beefy machine to approach the
paper's sizes, or down for a smoke run.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Global knob: multiplies each bench's built-in dataset scale.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Thread-count environment variables that shape BLAS/OpenMP behavior —
#: recorded so speedup numbers can be interpreted on the machine that
#: produced them.
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def machine_info() -> dict:
    """Core count + BLAS/thread settings, embedded in every BENCH json.

    A 4x parallel speedup means something different on 1 core than on
    16; every JSON artifact carries this block so the recorded curves
    stay interpretable away from the machine that produced them.
    """
    usable = (
        len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else None
    )
    return {
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable,
        "thread_env": {k: os.environ[k] for k in _THREAD_ENV_VARS if k in os.environ},
        "bench_scale": BENCH_SCALE,
    }


def telemetry_snapshot(registry) -> dict:
    """A compact one-level view of a :class:`repro.obs.MetricsRegistry`.

    Scalar families (counters/gauges) collapse to their value — summed
    over label children, with the per-child breakdown kept when there
    are labels — and histograms keep ``count``/``sum``.  This is the
    block benchmarks embed into their ``BENCH_*.json`` artifacts so a
    perf number always travels with the op counts (distance calls,
    batch sizes, walk steps) that produced it.
    """
    out: dict = {}
    for name, family in registry.snapshot().items():
        samples = family["samples"]
        if family["kind"] == "histogram":
            out[name] = {
                "count": sum(s["count"] for s in samples),
                "sum": round(sum(s["sum"] for s in samples), 6),
            }
            continue
        total = round(sum(s["value"] for s in samples), 6)
        if samples and samples[0]["labels"]:
            out[name] = {
                "total": total,
                "by_label": {
                    ",".join(f"{k}={v}" for k, v in sorted(s["labels"].items())):
                        round(s["value"], 6)
                    for s in samples
                },
            }
        else:
            out[name] = total
    return out


def scaled(base: float, lo: float = 0.0, hi: float = 1.0) -> float:
    """A bench's built-in scale, adjusted by REPRO_BENCH_SCALE and clamped."""
    return min(hi, max(lo, base * BENCH_SCALE))


def results_path(name: str) -> Path:
    """The path of one artifact under ``benchmarks/results/``.

    Creates the results directory on demand (``parents=True`` so a
    bench run from a fresh checkout — or a CI job that wiped the tree —
    never trips over a missing directory).  Every bench should route
    its JSON/text writes through here instead of touching
    :data:`RESULTS_DIR` directly.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR / name


def write_result(name: str, text: str) -> Path:
    """Persist a table under benchmarks/results/ and echo it to stdout."""
    path = results_path(f"{name}.txt")
    path.write_text(text + "\n")
    print(text)
    return path


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Monospace table with auto-sized columns."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
