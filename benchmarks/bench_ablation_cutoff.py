"""Ablation: MDL cutoff vs the k-sigma heuristic the paper dismisses.

Sec. IV-D: "the first solution that comes to mind is k standard
deviations with k equals 3. Can we get rid of the k parameter too?"
This bench compares the MDL cut against 2/3/4-sigma cuts on datasets
with planted structure: the MDL rule should match or beat the best
fixed-k choice without having a k at all.
"""

from __future__ import annotations

import numpy as np

from _common import format_table, scaled, write_result
from repro import McCatch
from repro.core.cutoff import CutoffInfo, outlier_mask
from repro.core.gel import spot_microclusters
from repro.core.scoring import score_microclusters
from repro.datasets import load
from repro.eval import auroc
from repro.metric.base import MetricSpace

DATASETS = [
    ("http", scaled(0.1, lo=0.05)),
    ("annthyroid", scaled(0.3, lo=0.1)),
    ("mammography", scaled(0.3, lo=0.1)),
    ("glass", 1.0),
]


def _sigma_cut_scores(X, k: float) -> np.ndarray:
    """Point scores using a k-sigma cutoff instead of the MDL one."""
    det = McCatch()
    space = MetricSpace(X)
    result = det.fit(space)  # reuse the oracle; replace the cutoff below
    oracle = result.oracle
    x_valid = oracle.x[oracle.first_end_index >= 0]
    d = float(x_valid.mean() + k * x_valid.std())
    # Map the sigma threshold onto the radius ladder.
    index = int(np.searchsorted(oracle.radii, d))
    if index >= oracle.radii.size:
        index = oracle.radii.size - 1
    info = CutoffInfo(float(oracle.radii[index]), index, result.cutoff.histogram,
                      result.cutoff.peak_index, float("nan"))
    outliers = np.nonzero(outlier_mask(oracle, info))[0]
    clusters = spot_microclusters(space, oracle, info, outliers)
    _, scores = score_microclusters(
        space, clusters, oracle, transformation_cost=float(X.shape[1])
    )
    return scores


def bench_ablation_cutoff_rule(benchmark):
    rows = []
    wins = 0

    def run():
        nonlocal wins
        for name, scale in DATASETS:
            ds = load(name, scale=scale, random_state=0)
            mdl = auroc(ds.labels, McCatch().fit(ds.data).point_scores)
            sigmas = {k: auroc(ds.labels, _sigma_cut_scores(ds.data, k))
                      for k in (2.0, 3.0, 4.0)}
            best_k = max(sigmas, key=sigmas.get)
            rows.append(
                [name, f"{mdl:.3f}",
                 *(f"{sigmas[k]:.3f}" for k in (2.0, 3.0, 4.0)),
                 f"k={best_k:g}"]
            )
            if mdl >= max(sigmas.values()) - 0.02:
                wins += 1
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_cutoff",
        format_table(
            ["dataset", "MDL (ours)", "2-sigma", "3-sigma", "4-sigma", "best k"],
            rows,
            title="Cutoff ablation - AUROC of MDL cut vs k-sigma cuts",
        ),
    )
    assert wins >= len(DATASETS) - 1, (
        "the parameter-free MDL cut should match the best k-sigma cut "
        "on nearly every dataset"
    )
