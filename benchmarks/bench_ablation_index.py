"""Ablation: index choice and the sparse-focused principle (Sec. IV-G).

Not a paper table — this quantifies two design choices DESIGN.md calls
out: (i) which tree backs the joins (brute force vs pure-Python trees
vs scipy cKDTree), and (ii) the sparse-focused principle that skips
neighbor counts already known to exceed c.  Detection output must be
identical in all configurations; only runtime moves.
"""

from __future__ import annotations

import time

from _common import format_table, scaled, write_result
from repro import McCatch
from repro.datasets import make_http_like

N = int(scaled(1.0, lo=0.1, hi=20.0) * 8_000)
KINDS = ["ckdtree", "kdtree", "vptree", "rtree", "brute"]


def bench_ablation_index_kind(benchmark):
    X, _ = make_http_like(n=N, random_state=0)
    timings: dict[str, float] = {}
    outputs: dict[str, frozenset] = {}

    def run():
        for kind in KINDS:
            t0 = time.perf_counter()
            res = McCatch(index=kind).fit(X)
            timings[kind] = time.perf_counter() - t0
            outputs[kind] = frozenset(map(int, res.outlier_indices))
        return timings

    benchmark.pedantic(run, rounds=1, iterations=1)
    base = timings["ckdtree"]
    rows = [[k, f"{timings[k]:.2f}s", f"{timings[k] / base:.1f}x"] for k in KINDS]
    write_result(
        "ablation_index",
        format_table(["index", "runtime", "vs ckdtree"], rows,
                     title=f"Index ablation on http-like (n={N:,})"),
    )
    # Box-based and ball-based diameter estimates differ, so radii may
    # differ; but box-based kinds must agree exactly with each other.
    assert outputs["kdtree"] == outputs["ckdtree"] == outputs["rtree"]


def bench_ablation_sparse_focused(benchmark):
    X, _ = make_http_like(n=N, random_state=0)
    timings: dict[str, float] = {}
    outputs: dict[str, frozenset] = {}

    def run():
        for label, flag in (("sparse-focused", True), ("exhaustive", False)):
            t0 = time.perf_counter()
            res = McCatch(sparse_focused=flag).fit(X)
            timings[label] = time.perf_counter() - t0
            outputs[label] = frozenset(map(int, res.outlier_indices))
        return timings

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, f"{v:.2f}s"] for k, v in timings.items()]
    write_result(
        "ablation_sparse_focused",
        format_table(["join strategy", "runtime"], rows,
                     title=f"Sparse-focused principle ablation (n={N:,})"),
    )
    assert outputs["sparse-focused"] == outputs["exhaustive"], (
        "the sparse-focused principle must not change the detected outliers"
    )
