"""Ablation: which metric tree backs the joins on nondimensional data.

Extends the index ablation to the metric-tree family (VP-tree, M-tree,
Slim-tree, cover tree, ball tree, LAESA) on a string workload under
Levenshtein distance — the regime footnote 4 of the paper assigns to
metric access methods.  Also reports LAESA's bound-filtering rate,
the reason to pick a pivot table when the metric is expensive.

Detection output must be identical for every index whose diameter
estimate uses the shared two-scan rule (brute, covertree, balltree,
laesa); the others may differ only through the radius ladder.
"""

from __future__ import annotations

import time

import numpy as np

from _common import format_table, scaled, write_result
from repro import McCatch
from repro.index import LAESAIndex
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein

# Pure-Python Levenshtein joins price every distance call; 500 strings
# keeps the 7-way comparison to minutes at scale 1 (REPRO_BENCH_SCALE
# raises it toward the paper's 5k Last Names).
N = int(scaled(1.0, lo=0.1, hi=20.0) * 500)
KINDS = ["vptree", "mtree", "slimtree", "covertree", "balltree", "laesa", "brute"]


def _string_workload(n: int) -> list[str]:
    """US-style surnames plus a planted pair of foreign names."""
    rng = np.random.default_rng(0)
    syllables = ["son", "ton", "ley", "field", "smith", "er", "man", "well", "ford"]
    names = [
        "".join(rng.choice(syllables, size=rng.integers(2, 4)))
        for _ in range(n - 2)
    ]
    return names + ["xochiquetzal", "xochiquetzai"]


def bench_ablation_metric_tree_choice(benchmark):
    words = _string_workload(N)
    timings: dict[str, float] = {}
    outputs: dict[str, frozenset] = {}

    def run():
        for kind in KINDS:
            t0 = time.perf_counter()
            res = McCatch(index=kind).fit(words, metric=levenshtein)
            timings[kind] = time.perf_counter() - t0
            outputs[kind] = frozenset(map(int, res.outlier_indices))
        return timings

    benchmark.pedantic(run, rounds=1, iterations=1)
    base = timings["brute"]
    rows = [[k, f"{timings[k]:.2f}s", f"{base / timings[k]:.1f}x"] for k in KINDS]
    write_result(
        "ablation_metric_trees",
        format_table(
            ["index", "runtime", "speedup vs brute"],
            rows,
            title=f"Metric-tree ablation on {N:,} surnames (Levenshtein)",
        ),
    )
    # Two-scan-diameter kinds share the radius ladder => identical output.
    assert outputs["covertree"] == outputs["balltree"] == outputs["laesa"] == outputs["brute"]
    # Every configuration catches the planted near-duplicate pair.
    for kind in KINDS:
        assert {N - 2, N - 1} <= outputs[kind], kind


def bench_ablation_laesa_filtering(benchmark):
    words = _string_workload(N)
    space = MetricSpace(words, levenshtein)

    def run():
        idx = LAESAIndex(space, n_pivots=16)
        stats = {"excluded": 0, "included": 0, "evaluated": 0}
        for q in range(0, len(words), max(1, len(words) // 200)):
            s = idx.filtering_stats(q, radius=2.0)
            for key in stats:
                stats[key] += s[key]
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sum(stats.values())
    rows = [[k, f"{v:,}", f"{100.0 * v / total:.1f}%"] for k, v in stats.items()]
    write_result(
        "ablation_laesa_filtering",
        format_table(
            ["bound decision", "elements", "share"],
            rows,
            title="LAESA pivot-bound filtering at radius 2 (16 pivots)",
        ),
    )
    # The pivot bounds must resolve the majority without the metric.
    assert stats["evaluated"] < 0.5 * total
