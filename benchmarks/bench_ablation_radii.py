"""Ablation: resolution of the radius ladder (Number of Radii ``a``).

Fig. 9 shows accuracy is flat for a in 13..17; this ablation stretches
the range (5..25) to show *why* the default a=15 sits on a plateau:
too few radii quantize the 1NN distances so coarsely that the MDL
cutoff loses its separation (and plateaus go undetected), while extra
radii only add join work — each additional rung doubles nothing but
the resolution near r1, which the plateau detection does not need.

Reports, per a: AUROC on a planted-microcluster dataset, whether the
planted pair is gelled, the cutoff, and the runtime.
"""

from __future__ import annotations

import time

import numpy as np

from _common import format_table, scaled, write_result
from repro import McCatch
from repro.eval import auroc

N = int(scaled(1.0, lo=0.1, hi=20.0) * 4_000)
A_VALUES = [5, 8, 11, 15, 20, 25]


def _planted(n: int):
    rng = np.random.default_rng(7)
    inliers = np.vstack(
        [rng.normal(0, 1, (n - 14, 2)), rng.normal([5, 2], 0.7, (2, 2))]
    )
    pair = rng.normal([9.0, 9.0], 0.02, (2, 2))
    ring = rng.normal([-8.0, 6.0], 0.05, (10, 2))
    X = np.vstack([inliers, pair, ring])
    y = np.zeros(X.shape[0], dtype=bool)
    y[-12:] = True
    return X, y


def bench_ablation_number_of_radii(benchmark):
    X, y = _planted(N)
    rows = []
    aurocs: dict[int, float] = {}
    gelled: dict[int, bool] = {}

    def run():
        for a in A_VALUES:
            t0 = time.perf_counter()
            res = McCatch(n_radii=a).fit(X)
            dt = time.perf_counter() - t0
            score = auroc(y, res.point_scores)
            aurocs[a] = score
            pair_found = any(
                set(map(int, m.indices)) == {N - 12, N - 11}
                for m in res.microclusters
            )
            ring_found = any(
                m.cardinality == 10 and all(int(i) >= N - 10 for i in m.indices)
                for m in res.microclusters
            )
            gelled[a] = pair_found and ring_found
            rows.append(
                [a, f"{score:.3f}", "yes" if gelled[a] else "no",
                 f"{res.cutoff.value:.3g}", f"{dt:.2f}s"]
            )
        return aurocs

    benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_radii",
        format_table(
            ["a (radii)", "AUROC", "both mcs gelled", "cutoff d", "runtime"],
            rows,
            title=f"Radius-ladder resolution ablation (n={N:,})",
        ),
    )
    # The paper's default neighborhood (13..17, here 11..25) is a plateau:
    # high accuracy and both planted microclusters recovered.
    for a in (11, 15, 20, 25):
        assert aurocs[a] > 0.95, (a, aurocs[a])
        assert gelled[a], a
