"""Engine ablation: batched vs per-point execution of SELFJOINC.

Measures the wall-clock of the Alg. 2 self-join counts — McCatch's
dominant cost — under the two executors of
:class:`repro.engine.BatchQueryEngine` on 2-d vector data with the
default VP-tree and the paper-default ladder (a = 15,
c = ceil(0.1 n)):

- ``per_point``: the historical reference plan, one tree descent per
  (active point, radius) pair;
- ``batched``: one node-major multi-radius walk for all points.

Results land in ``benchmarks/results/BENCH_engine.json`` (plus a text
table) so the perf trajectory is recorded PR over PR.  The per-point
executor is quadratically painful at the largest size, so there it is
measured on a query sample and extrapolated — marked as such in the
JSON.

Run:  python benchmarks/bench_engine_batching.py
"""

from __future__ import annotations

import json
import math
import time

import numpy as np

from _common import format_table, machine_info, results_path, scaled, write_result
from repro.core.radii import define_radii
from repro.engine import BatchQueryEngine
from repro.index import build_index
from repro.metric.base import MetricSpace

BOOST = scaled(1.0, lo=0.05, hi=20.0)

SIZES = [int(2_000 * BOOST), int(10_000 * BOOST), int(50_000 * BOOST)]

#: Above this size the per-point executor is sampled, not run in full.
PER_POINT_EXACT_LIMIT = int(10_000 * BOOST)

N_RADII = 15


def _dataset(n: int) -> MetricSpace:
    rng = np.random.default_rng(0)
    return MetricSpace(rng.uniform(0.0, 1.0, (n, 2)))


def _time_batched(engine: BatchQueryEngine, radii, c: int) -> tuple[float, np.ndarray]:
    t0 = time.perf_counter()
    counts = engine.self_join_counts(radii, max_cardinality=c)
    return time.perf_counter() - t0, counts


def _time_per_point(index, radii, c: int) -> tuple[float, bool]:
    """Seconds for the per-point plan; extrapolated beyond the limit."""
    n = len(index)
    engine = BatchQueryEngine(index, mode="per_point")
    if n <= PER_POINT_EXACT_LIMIT:
        t0 = time.perf_counter()
        engine.self_join_counts(radii, max_cardinality=c)
        return time.perf_counter() - t0, False
    # Sample: time the per-radius count_within loop on a query subset and
    # scale by n / sample (the per-point plan is embarrassingly per-query,
    # so this is a faithful estimate of the full run).
    sample = min(2_000, n)
    rng = np.random.default_rng(1)
    queries = index.ids[rng.choice(n, size=sample, replace=False)]
    t0 = time.perf_counter()
    for radius in radii[:-1]:  # small-radii-only skips the top rung
        index.count_within(queries, float(radius))
    elapsed = time.perf_counter() - t0
    # The sample ignores sparse-focused shrinkage, so correct by the
    # fraction of (point, radius) pairs the real schedule would run.
    full_counts = BatchQueryEngine(index).self_join_counts(radii, max_cardinality=c)
    scheduled = float((full_counts[:, :-1] >= 0).sum()) / (n * (len(radii) - 1))
    return elapsed * (n / sample) * scheduled, True


def run() -> dict:
    results = []
    for n in SIZES:
        space = _dataset(n)
        index = build_index(space, kind="vptree")
        radii = define_radii(index, N_RADII)
        c = math.ceil(0.1 * n)
        batched_s, counts_b = _time_batched(BatchQueryEngine(index), radii, c)
        per_point_s, estimated = _time_per_point(index, radii, c)
        if not estimated:
            counts_p = BatchQueryEngine(index, mode="per_point").self_join_counts(
                radii, max_cardinality=c
            )
            assert np.array_equal(counts_b, counts_p), "executors disagree"
        results.append(
            {
                "n": n,
                "per_point_s": round(per_point_s, 3),
                "per_point_estimated": estimated,
                "batched_s": round(batched_s, 3),
                "speedup": round(per_point_s / batched_s, 1) if batched_s > 0 else None,
            }
        )
    payload = {
        "bench": "engine_batching",
        "index": "vptree",
        "n_radii": N_RADII,
        "dataset": "uniform-2d",
        "machine": machine_info(),
        "results": results,
    }
    results_path("BENCH_engine.json").write_text(json.dumps(payload, indent=2) + "\n")
    rows = [
        [
            r["n"],
            f"{r['per_point_s']:.2f}s" + ("*" if r["per_point_estimated"] else ""),
            f"{r['batched_s']:.2f}s",
            f"{r['speedup']:.1f}x",
        ]
        for r in results
    ]
    write_result(
        "engine_batching",
        format_table(
            ["n", "per-point", "batched", "speedup"],
            rows,
            title="Engine ablation - SELFJOINC wall-clock (* = extrapolated)",
        ),
    )
    return payload


def bench_engine_batching(benchmark):
    """pytest-benchmark entry point (single round; the timing is internal)."""
    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    for r in payload["results"]:
        assert r["speedup"] is None or r["speedup"] >= 3.0, r


if __name__ == "__main__":
    run()
