"""Extension bench: streaming McCatch vs the batch algorithm.

Not a paper table — StreamingMcCatch is this repository's extension
(DESIGN.md, *Extensions*).  Two properties are measured and asserted:

1. **Exactness at refit**: after the final refit the streaming result
   is identical to one batch run over the same data.
2. **Amortized cost**: with geometric refits (factor 1.5) the total
   streaming time stays within a constant factor of one batch fit —
   the amortization argument behind keeping Lemma 1's bound.
"""

from __future__ import annotations

import time

import numpy as np

from _common import format_table, scaled, write_result
from repro import McCatch, StreamingMcCatch
from repro.datasets import make_http_like

N = int(scaled(1.0, lo=0.1, hi=20.0) * 8_000)
BATCH = max(200, N // 16)


def bench_ext_streaming_vs_batch(benchmark):
    X, _ = make_http_like(n=N, random_state=0)

    def run():
        timings = {}
        t0 = time.perf_counter()
        stream = StreamingMcCatch(McCatch(), refit_factor=1.5, min_fit_size=BATCH)
        n_refits = 0
        for start in range(0, N, BATCH):
            if stream.update(X[start : start + BATCH]).refitted:
                n_refits += 1
        final = stream.refit()
        n_refits += 1
        timings["streaming total"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        batch = McCatch().fit(X)
        timings["one batch fit"] = time.perf_counter() - t0
        return timings, n_refits, final, batch

    timings, n_refits, final, batch = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["streaming total", f"{timings['streaming total']:.2f}s",
         f"{n_refits} refits over {N // BATCH} batches"],
        ["one batch fit", f"{timings['one batch fit']:.2f}s", "-"],
        ["overhead factor",
         f"{timings['streaming total'] / timings['one batch fit']:.1f}x", "-"],
    ]
    write_result(
        "ext_streaming",
        format_table(["configuration", "runtime", "notes"], rows,
                     title=f"Streaming vs batch on http-like (n={N:,})"),
    )

    # Exactness at refit: identical scores and identical microclusters.
    assert np.array_equal(final.point_scores, batch.point_scores)
    assert len(final.microclusters) == len(batch.microclusters)
    for a, b in zip(final.microclusters, batch.microclusters):
        assert np.array_equal(np.sort(a.indices), np.sort(b.indices))
    # Amortization: geometric refits cost a bounded multiple of one fit.
    assert timings["streaming total"] < 12 * timings["one batch fit"]
