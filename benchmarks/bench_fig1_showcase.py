"""Fig. 1: the three-panel showcase — Shanghai tiles, Last Names, Skeletons.

Paper: (i) two 2-element roof microclusters + scattered outliers on the
Shanghai image; (ii) non-English names scored high (AUROC 0.75);
(iii) the 3 wild-animal skeletons found perfectly (AUROC 1.0).
"""

from __future__ import annotations

import numpy as np

from _common import format_table, scaled, write_result
from repro import McCatch
from repro.datasets import load, make_shanghai_tiles
from repro.eval import auroc


def bench_fig1_shanghai(benchmark):
    tiles = make_shanghai_tiles(random_state=0)
    result = benchmark.pedantic(lambda: McCatch().fit(tiles.rgb), rounds=1, iterations=1)
    pairs = [m for m in result.nonsingleton() if m.cardinality == 2]
    rows = [
        [f"{m.cardinality}-tile", f"{m.score:.1f}",
         str([tuple(int(v) for v in tiles.positions[i]) for i in m.indices])]
        for m in result.nonsingleton()
    ]
    write_result(
        "fig1_shanghai",
        format_table(["microcluster", "score", "tile positions"], rows,
                     title="Fig. 1(i) - Shanghai-like tiles"),
    )
    red = set(np.nonzero(tiles.labels == 2)[0].tolist())
    blue = set(np.nonzero(tiles.labels == 3)[0].tolist())
    found = [set(map(int, m.indices)) for m in pairs]
    assert red in found and blue in found, "both 2-tile roof mcs must be found"


def bench_fig1_last_names(benchmark):
    ds = load("last_names", scale=scaled(0.3, lo=0.1), random_state=0)
    result = benchmark.pedantic(
        lambda: McCatch().fit(ds.data, ds.metric), rounds=1, iterations=1
    )
    value = auroc(ds.labels, result.point_scores)
    top = np.argsort(result.point_scores)[-10:][::-1]
    rows = [[ds.data[i], f"{result.point_scores[i]:.2f}",
             "non-English" if ds.labels[i] else "US"] for i in top]
    write_result(
        "fig1_last_names",
        format_table(["name", "score", "origin"], rows,
                     title=f"Fig. 1(ii) - Last Names (AUROC {value:.3f}; paper: 0.75)"),
    )
    assert value >= 0.75


def bench_fig1_skeletons(benchmark):
    ds = load("skeletons", scale=scaled(0.25, lo=0.1), random_state=0)
    result = benchmark.pedantic(
        lambda: McCatch().fit(ds.data, ds.metric), rounds=1, iterations=1
    )
    value = auroc(ds.labels, result.point_scores)
    write_result(
        "fig1_skeletons",
        f"Fig. 1(iii) - Skeletons: AUROC {value:.3f} (paper: 1.0); "
        f"top mc: {result.microclusters[0]!r}",
    )
    assert value == 1.0, "paper reports a perfect AUROC on Skeletons"
