"""Fig. 3: the 'Oracle' plot on toy data.

Rebuilds the paper's toy scenario (inlier blob, halo point, a
microcluster with its own halo, an isolate point) and checks that the
Oracle plot separates the point types as drawn: inliers bottom-left,
the isolate far right on X, the mc members at the top on Y.
"""

from __future__ import annotations

import numpy as np

from _common import format_table, write_result
from repro import McCatch


def _toy():
    rng = np.random.default_rng(3)
    inliers = rng.normal([30.0, 30.0], 4.0, size=(800, 2))
    halo_b = np.array([[44.0, 30.0]])
    mc = rng.normal([70.0, 75.0], 0.4, size=(9, 2))
    halo_d = np.array([[72.5, 75.0]])
    isolate_e = np.array([[95.0, 5.0]])
    X = np.vstack([inliers, halo_b, mc, halo_d, isolate_e])
    core = int(np.argmin(np.linalg.norm(inliers - [30.0, 30.0], axis=1)))
    cast = {"A-inlier": core, "B-halo": 800, "C-mc": 801, "D-mc-halo": 810,
            "E-isolate": 811}
    return X, cast


def bench_fig3_oracle_plot(benchmark):
    X, cast = _toy()
    result = benchmark.pedantic(lambda: McCatch().fit(X), rounds=1, iterations=1)
    o = result.oracle
    rows = [
        [name, f"{o.x[i]:.4f}", f"{o.y[i]:.4f}",
         int(o.first_end_index[i]), int(o.middle_end_index[i])]
        for name, i in cast.items()
    ]
    write_result(
        "fig3_oracle",
        format_table(
            ["point", "x (1NN dist)", "y (group 1NN dist)", "x rung", "y rung"],
            rows,
            title="Fig. 3 - 'Oracle' plot coordinates of the cast",
        ),
    )
    a, b, c, d, e = (cast[k] for k in ("A-inlier", "B-halo", "C-mc", "D-mc-halo",
                                       "E-isolate"))
    # Inlier 'A': bottom-left (small x, no y).
    assert o.x[a] < o.x[b] and o.y[a] == 0.0
    # 'E': the largest 1NN distance of the cast, no middle plateau.
    assert o.x[e] == max(o.x[i] for i in cast.values())
    assert o.y[e] == 0.0
    # mc members 'C' and 'D': isolated at the top (large y).
    assert o.y[c] > 0.0 and o.y[d] > 0.0
    assert o.y[c] >= o.y[a] and o.y[c] >= o.y[e]
