"""Fig. 4: the MDL-optimal Cutoff on the Histogram of 1NN Distances.

Shows the histogram, the per-cut compression costs, and the chosen d —
the paper's 'cutoff comes from compression' picture — and checks that
the cut cleanly separates the planted outliers from the inlier mass.
"""

from __future__ import annotations

import numpy as np

from _common import format_table, write_result
from repro import McCatch
from repro.core.mdl import cost_of_compression


def bench_fig4_cutoff(benchmark):
    rng = np.random.default_rng(0)
    inliers = rng.normal(0.0, 1.0, (2000, 2))
    singles = np.array([[14.0, 2.0], [-11.0, -7.0], [3.0, 17.0]])
    X = np.vstack([inliers, singles])

    result = benchmark.pedantic(lambda: McCatch().fit(X), rounds=1, iterations=1)
    info = result.cutoff
    hist = info.histogram

    rows = []
    for e in range(info.peak_index + 1, hist.size):
        cost = cost_of_compression(hist[info.peak_index : e]) + cost_of_compression(hist[e:])
        marker = "<- chosen cut" if e == info.index else ""
        rows.append([e, f"{result.oracle.radii[e]:.4g}", int(hist[e]),
                     f"{cost:.1f}", marker])
    write_result(
        "fig4_cutoff",
        format_table(
            ["cut e", "radius", "h_e", "COST(left)+COST(right)", ""],
            rows,
            title=(
                "Fig. 4 - MDL cutoff search "
                f"(peak bin {info.peak_index}, chosen d = {info.value:.4g})"
            ),
        ),
    )

    # The planted singletons sit at or above the cut; the inlier mass below.
    out_rungs = result.oracle.first_end_index[2000:]
    assert (out_rungs >= info.index).all()
    inlier_rungs = result.oracle.first_end_index[:2000]
    assert (inlier_rungs[inlier_rungs >= 0] < info.index).mean() > 0.99
