"""Fig. 7 (Q3, 'Scalable'): runtime vs data size, measured vs Lemma 1.

Paper: McCatch scales subquadratically on Uniform and Diagonal in 2-50
dimensions; the log-log slope matches 2 - 1/u where u is the intrinsic
(correlation fractal) dimension — slope 1.0 for Diagonal (u = 1),
1.5 / 1.95 / 1.98 for Uniform in 2 / 20 / 50 dims.

Index note: Lemma 1 assumes the *count-only principle* — the tree
counts whole subtrees inside a query ball in O(1).  Our pure-Python
KD-tree implements that shortcut; scipy's cKDTree (the default
wall-clock fast path) enumerates neighbors on its count queries, which
is quadratic when counts are Θ(n) as on the Diagonal.  The low-fractal-
dimension cases therefore run on the count-only KD-tree, while the
high-dimensional Uniform cases (whose expected slope is ~2 − 1/50 ≈
1.98 anyway) use the default index.
"""

from __future__ import annotations

from _common import format_table, machine_info, scaled, write_result
from bench_parallel_walk import merge_into_results
from repro import McCatch
from repro.datasets import diagonal_line, uniform_cube
from repro.engine import default_workers
from repro.eval import runtime_sweep
from repro.metric.fractal import correlation_dimension, expected_runtime_slope


def _sizes(max_n: int) -> list[int]:
    return [max(250, max_n // 8), max(500, max_n // 4), max(1000, max_n // 2), max_n]


BOOST = scaled(1.0, lo=0.05, hi=50.0)

#: (label, generator, index kind, max n)  — paper sweeps up to 1M.
CASES = [
    ("uniform-2d", lambda n: uniform_cube(n, 2, random_state=0), "ckdtree",
     int(16_000 * BOOST)),
    ("uniform-20d", lambda n: uniform_cube(n, 20, random_state=0), "ckdtree",
     int(8_000 * BOOST)),
    ("uniform-50d", lambda n: uniform_cube(n, 50, random_state=0), "ckdtree",
     int(6_000 * BOOST)),
    ("diagonal-2d", lambda n: diagonal_line(n, 2, random_state=0), "kdtree",
     int(8_000 * BOOST)),
    ("diagonal-50d", lambda n: diagonal_line(n, 50, random_state=0), "kdtree",
     int(8_000 * BOOST)),
]


#: Worker count of the sharded sweep (capped by what the machine has).
PARALLEL_WORKERS = min(4, default_workers())


def _parallel_sweep_records() -> dict:
    """Serial vs sharded full-fit runtime on the uniform-2d sweep.

    The same Fig. 7 size ladder, fitted once with the serial batched
    engine and once with ``engine_mode="parallel"`` over a flat-backed
    VP-tree (the auto cKDTree has no arrays to share), recorded into
    ``BENCH_parallel.json`` next to the machine block so the
    serial-vs-sharded curve rides with the scalability artifact.
    """
    gen = CASES[0][1]  # uniform-2d
    sizes = _sizes(CASES[0][3])
    serial = runtime_sweep(
        "uniform-2d-vptree-serial",
        lambda n: McCatch(index="vptree").fit(gen(n)),
        sizes,
    )
    sharded = runtime_sweep(
        f"uniform-2d-vptree-parallel-{PARALLEL_WORKERS}w",
        lambda n: McCatch(
            index="vptree", engine_mode="parallel", workers=PARALLEL_WORKERS
        ).fit(gen(n)),
        sizes,
    )
    return {
        "workers": PARALLEL_WORKERS,
        "machine": machine_info(),
        "serial_slope": round(serial.slope, 3),
        "parallel_slope": round(sharded.slope, 3),
        "points": [
            {
                "n": ps.n,
                "serial_s": round(ps.seconds, 3),
                "parallel_s": round(pp.seconds, 3),
                "speedup": round(ps.seconds / pp.seconds, 2) if pp.seconds else None,
            }
            for ps, pp in zip(serial.points, sharded.points)
        ],
    }


def bench_fig7_scalability(benchmark):
    sweeps = {}
    parallel_record = {}

    def run():
        for label, gen, kind, max_n in CASES:
            u = correlation_dimension(gen(min(2000, max_n)), random_state=0)
            sweeps[label] = runtime_sweep(
                label,
                lambda n, gen=gen, kind=kind: McCatch(index=kind).fit(gen(n)),
                _sizes(max_n),
                expected_slope=expected_runtime_slope(u),
            )
        parallel_record.update(_parallel_sweep_records())
        return sweeps

    benchmark.pedantic(run, rounds=1, iterations=1)
    merge_into_results({"fig7_parallel_sweep": parallel_record})

    rows = []
    for (label, _, kind, _), sweep in zip(CASES, sweeps.values()):
        rows.append(
            [
                label,
                kind,
                " / ".join(f"{p.n}:{p.seconds:.2f}s" for p in sweep.points),
                f"{sweep.slope:.2f}",
                f"{sweep.expected_slope:.2f}",
            ]
        )
    write_result(
        "fig7_scalability",
        format_table(
            ["dataset", "index", "runtime by n", "measured slope", "expected 2-1/u"],
            rows,
            title="Fig. 7 - runtime vs size",
        ),
    )

    for label, sweep in sweeps.items():
        # Subquadratic within measurement noise of the Lemma 1 expectation.
        assert sweep.slope < max(1.9, sweep.expected_slope + 0.15), (
            f"{label}: slope {sweep.slope:.2f} vs expected {sweep.expected_slope:.2f}"
        )
    # The u=1 Diagonal must scale visibly better than quadratic.
    assert sweeps["diagonal-2d"].slope < 1.6
    assert sweeps["diagonal-50d"].slope < 1.7
