"""Fig. 8 (Q4, 'Practical'): the volcano snow mc and the HTTP DoS mc.

Paper: (i) a 3-tile snow microcluster at the volcano summit plus other
outlying tiles; (ii) on HTTP, AUROC 0.96 and a 30-connection 'DoS back'
microcluster, ~3 minutes for 222K points on a stock desktop.
"""

from __future__ import annotations

import time

import numpy as np

from _common import format_table, scaled, write_result
from repro import McCatch
from repro.datasets import make_http_like, make_volcano_tiles
from repro.eval import auroc


def bench_fig8_volcano(benchmark):
    tiles = make_volcano_tiles(random_state=0)
    result = benchmark.pedantic(lambda: McCatch().fit(tiles.rgb), rounds=1, iterations=1)
    rows = [
        [f"{m.cardinality}-tile", f"{m.score:.1f}",
         str([tuple(int(v) for v in tiles.positions[i]) for i in m.indices[:4]])]
        for m in result.microclusters[:8]
    ]
    write_result(
        "fig8_volcano",
        format_table(["microcluster", "score", "tile positions"], rows,
                     title="Fig. 8(i) - Volcano-like tiles"),
    )
    snow = set(np.nonzero(tiles.labels == 2)[0].tolist())
    assert any(
        snow <= set(map(int, m.indices)) and m.cardinality <= 5
        for m in result.nonsingleton()
    ), "the 3-tile snow microcluster must be found as a group"


def bench_fig8_http(benchmark):
    scale = scaled(0.1, lo=0.02)
    X, y = make_http_like(scale=scale, random_state=0)
    t0 = time.perf_counter()
    result = benchmark.pedantic(lambda: McCatch().fit(X), rounds=1, iterations=1)
    elapsed = time.perf_counter() - t0
    value = auroc(y, result.point_scores)
    n_dos = min(30, max(3, X.shape[0] // 20))
    n_in = int((y == 0).sum())
    dos = set(range(n_in, n_in + n_dos))
    dos_mc = [m for m in result.nonsingleton() if dos <= set(map(int, m.indices))]
    write_result(
        "fig8_http",
        "\n".join(
            [
                f"Fig. 8(ii) - HTTP-like: n = {X.shape[0]:,}, {elapsed:.1f}s",
                f"AUROC = {value:.3f} (paper: 0.96)",
                f"DoS microcluster found: {dos_mc[0]!r}" if dos_mc else "DoS mc MISSED",
                f"total microclusters: {len(result.microclusters)}",
            ]
        ),
    )
    assert value > 0.9
    assert dos_mc, "the planted DoS microcluster must gel into one group"
