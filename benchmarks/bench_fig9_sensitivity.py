"""Fig. 9 (Q5, 'Hands-Off'): accuracy vs hyperparameters a, b, c.

Paper: every line is near flat around the defaults (a=15, b=0.1,
c=0.1n) — McCatch needs no tuning.  This bench sweeps the paper's grids
on a spread of datasets (vector, microcluster, nondimensional) and
asserts the flatness (bounded AUROC spread per line).
"""

from __future__ import annotations

from _common import format_table, scaled, write_result
from repro.datasets import load
from repro.eval.sensitivity import A_GRID, B_GRID, C_FRACTION_GRID, sweep_parameter

DATASETS = [
    ("http", scaled(0.03, lo=0.01)),
    ("mammography", scaled(0.2, lo=0.05)),
    ("annthyroid", scaled(0.2, lo=0.05)),
    ("wine", 1.0),
    ("glass", 1.0),
    ("last_names", scaled(0.15, lo=0.05)),
    ("gaussian_isolation", scaled(0.05, lo=0.02)),
]
MAX_SPREAD = 0.15


def bench_fig9_sensitivity(benchmark):
    curves = []

    def run():
        for name, scale in DATASETS:
            ds = load(name, scale=scale, random_state=0)
            for parameter in ("a", "b", "c"):
                curves.append(
                    sweep_parameter(name, ds.data, ds.labels, parameter, metric=ds.metric)
                )
        return curves

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            c.dataset,
            c.parameter,
            " ".join(f"{v:.3f}" for v in c.aurocs),
            f"{c.spread:.3f}",
        ]
        for c in curves
    ]
    grids = {
        "a": " ".join(map(str, A_GRID)),
        "b": " ".join(map(str, B_GRID)),
        "c": " ".join(f"{f}n" for f in C_FRACTION_GRID),
    }
    header = "\n".join(f"grid {p}: {g}" for p, g in grids.items())
    write_result(
        "fig9_sensitivity",
        header
        + "\n\n"
        + format_table(
            ["dataset", "param", "AUROC across grid", "spread"],
            rows,
            title="Fig. 9 - hyperparameter sensitivity",
        ),
    )

    for c in curves:
        assert c.spread <= MAX_SPREAD, (
            f"{c.dataset}/{c.parameter}: AUROC spread {c.spread:.3f} is not flat"
        )
