"""Level-synchronous vs node-major stack walk: single-core SELFJOINC.

Measures the dispatch-overhead claim the level walk rests on: the same
multi-radius range counting (every point counted at every radius of
the ladder — SELFJOINC, Alg. 2) executed by the node-major stack walk
(:func:`repro.index.base.frontier_count_walk`, one set of NumPy
dispatches per visited node) and by the level-synchronous walk
(:func:`repro.index.base.level_count_walk`, one grouped set per tree
depth).  Counts are asserted bit-identical before any time is
recorded, and both walks' dispatch counters ride along in the JSON —
``steps`` is depth for the level walk and visited-node count for the
stack walk, so the per-depth vs per-node contrast is in the artifact,
not just the prose.  Results land in
``benchmarks/results/BENCH_walk.json`` (plus a text table) with the
machine block (:func:`_common.machine_info`); the acceptance target is
>=2x single-core at n=50k on 2-d vptree.

Run:  python benchmarks/bench_frontier_walk.py [--n N ...]
          [--repeats K] [--index KIND]
(the CI smoke step runs one tiny configuration; REPRO_BENCH_SCALE
multiplies the default sizes as usual.)
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from _common import format_table, machine_info, results_path, scaled, write_result
from repro.core.radii import define_radii
from repro.index import build_index
from repro.index.base import frontier_count_walk, level_count_walk
from repro.metric.base import MetricSpace

BOOST = scaled(1.0, lo=0.02, hi=20.0)

DEFAULT_SIZES = [int(10_000 * BOOST), int(50_000 * BOOST)]
N_RADII = 15

#: Dispatch counters both walks accumulate (see ``_WALK_STAT_KEYS``).
OP_KEYS = ("steps", "entries", "distance_calls", "searchsorted_calls", "scatter_calls")


def _dataset(n: int) -> MetricSpace:
    rng = np.random.default_rng(0)
    return MetricSpace(rng.normal(size=(n, 2)))


def _best(f, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        times.append(time.perf_counter() - t0)
    return min(times)


def run(sizes: list[int], repeats: int, kind: str) -> dict:
    records = []
    for n in sizes:
        space = _dataset(n)
        index = build_index(space, kind=kind)
        radii = define_radii(index, N_RADII)
        flat, ids = index.flat, index.ids

        stack_ops: dict = {}
        level_ops: dict = {}
        expected = frontier_count_walk(space, ids, radii, flat, stats=stack_ops)
        counts = level_count_walk(space, ids, radii, flat, stats=level_ops)
        assert np.array_equal(counts, expected), (
            f"level walk diverged from the stack walk at n={n}"
        )

        stack_s = _best(lambda: frontier_count_walk(space, ids, radii, flat), repeats)
        level_s = _best(lambda: level_count_walk(space, ids, radii, flat), repeats)
        records.append(
            {
                "n": n,
                "index": kind,
                "stack_s": round(stack_s, 4),
                "level_s": round(level_s, 4),
                "speedup": round(stack_s / level_s, 2) if level_s > 0 else None,
                # per-node (stack) vs per-depth (level) dispatch counts
                "stack_ops": {k: stack_ops[k] for k in OP_KEYS},
                "level_ops": {k: level_ops[k] for k in OP_KEYS},
            }
        )
    return {
        "bench": "frontier_walk",
        "workload": "SELFJOINC",
        "n_radii": N_RADII,
        "dataset": "gaussian-2d",
        "repeats": repeats,
        "machine": machine_info(),
        "records": records,
    }


def merge_into_results(payload: dict) -> None:
    """Write BENCH_walk.json, preserving sections other runs recorded."""
    path = results_path("BENCH_walk.json")
    merged = {}
    if path.is_file():
        try:
            merged = json.loads(path.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, nargs="*", default=None,
                        help=f"dataset sizes (default {DEFAULT_SIZES})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--index", default="vptree",
                        help="flat-backed index kind (default vptree)")
    args = parser.parse_args()

    payload = run(args.n or DEFAULT_SIZES, args.repeats, args.index)
    merge_into_results({"frontier_walk": payload})
    rows = [
        [
            r["n"],
            f"{r['stack_s'] * 1000:.1f}",
            f"{r['level_s'] * 1000:.1f}",
            f"{r['speedup']:.2f}x" if r["speedup"] is not None else "n/a",
            r["stack_ops"]["steps"],
            r["level_ops"]["steps"],
        ]
        for r in payload["records"]
    ]
    write_result(
        "frontier_walk",
        format_table(
            ["n", "stack ms", "level ms", "speedup", "node visits", "depth steps"],
            rows,
            title="Level-synchronous walk - SELFJOINC single-core wall-clock",
        ),
    )


if __name__ == "__main__":
    main()
