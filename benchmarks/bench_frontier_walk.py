"""Compiled vs level-synchronous vs node-major stack walk: SELFJOINC.

Measures the two perf claims the frontier walk rests on, on the same
multi-radius range-counting workload (every point counted at every
radius of the ladder — SELFJOINC, Alg. 2):

- the dispatch-overhead claim of the level walk
  (:func:`repro.index.base.level_count_walk`, one grouped set of NumPy
  dispatches per tree depth) against the node-major stack walk
  (:func:`repro.index.base.frontier_count_walk`, one set per visited
  node); and
- the interpreter-overhead claim of the compiled C kernel
  (:func:`repro.index.ckernel.compiled_count_walk`, the per-depth
  advance and the rectangular leaf kernel as single C calls that
  release the GIL) against the level walk it mirrors.

Counts are asserted bit-identical across all three walks before any
time is recorded.  The dispatch counters ride along in the JSON —
``steps`` is depth for the level/compiled walks and visited-node count
for the stack walk.  A threads-backend sharding sweep
(:class:`repro.engine.parallel.ShardedWalkExecutor`,
``backend="thread"``) rides along for the compiled walk, whose kernel
drops the GIL for the whole advance — the contrast numpy's
fragmented-release level walk cannot match on Python-loop-heavy trees.

Results land in ``benchmarks/results/BENCH_walk.json`` (the
stack-vs-level section, unchanged schema plus the compiled columns)
and ``benchmarks/results/BENCH_ckernel.json`` (compiled-kernel
acceptance: >=1.5x single-core over level at n=50k on 2-d vptree, with
the machine block and kernel provenance embedded).

Run:  python benchmarks/bench_frontier_walk.py [--n N ...]
          [--repeats K] [--index KIND] [--workers W ...]
(the CI smoke step runs one tiny configuration; REPRO_BENCH_SCALE
multiplies the default sizes as usual.  Without a C compiler the
compiled columns are recorded as null and the acceptance section says
why.)
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from _common import format_table, machine_info, results_path, scaled, write_result
from repro.core.radii import define_radii
from repro.engine.parallel import ShardedWalkExecutor
from repro.index import build_index
from repro.index.base import frontier_count_walk, level_count_walk
from repro.index.ckernel import compiled_count_walk, kernel_available, kernel_info
from repro.metric.base import MetricSpace

BOOST = scaled(1.0, lo=0.02, hi=20.0)

DEFAULT_SIZES = [int(10_000 * BOOST), int(50_000 * BOOST)]
DEFAULT_WORKERS = [1, 2, 4]
N_RADII = 15

#: Dispatch counters the walks accumulate (see ``_WALK_STAT_KEYS``).
OP_KEYS = ("steps", "entries", "distance_calls", "searchsorted_calls", "scatter_calls")


def _dataset(n: int) -> MetricSpace:
    rng = np.random.default_rng(0)
    return MetricSpace(rng.normal(size=(n, 2)))


def _best(f, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        times.append(time.perf_counter() - t0)
    return min(times)


def run(sizes: list[int], repeats: int, kind: str, workers: list[int]) -> dict:
    compiled_ok = kernel_available()
    records = []
    shard_records = []
    for n in sizes:
        space = _dataset(n)
        index = build_index(space, kind=kind, walk="level")
        radii = define_radii(index, N_RADII)
        flat, ids = index.flat, index.ids

        stack_ops: dict = {}
        level_ops: dict = {}
        expected = frontier_count_walk(space, ids, radii, flat, stats=stack_ops)
        counts = level_count_walk(space, ids, radii, flat, stats=level_ops)
        assert np.array_equal(counts, expected), (
            f"level walk diverged from the stack walk at n={n}"
        )
        compiled_s = None
        compiled_ops: dict = {}
        if compiled_ok:
            compiled = compiled_count_walk(space, ids, radii, flat, stats=compiled_ops)
            assert np.array_equal(compiled, expected), (
                f"compiled walk diverged from the stack walk at n={n}"
            )
            compiled_s = _best(
                lambda: compiled_count_walk(space, ids, radii, flat), repeats
            )

        stack_s = _best(lambda: frontier_count_walk(space, ids, radii, flat), repeats)
        level_s = _best(lambda: level_count_walk(space, ids, radii, flat), repeats)
        records.append(
            {
                "n": n,
                "index": kind,
                "stack_s": round(stack_s, 4),
                "level_s": round(level_s, 4),
                "compiled_s": None if compiled_s is None else round(compiled_s, 4),
                "speedup": round(stack_s / level_s, 2) if level_s > 0 else None,
                "compiled_speedup": (
                    round(level_s / compiled_s, 2)
                    if compiled_s and compiled_s > 0 else None
                ),
                # per-node (stack) vs per-depth (level/compiled) dispatches
                "stack_ops": {k: stack_ops[k] for k in OP_KEYS},
                "level_ops": {k: level_ops[k] for k in OP_KEYS},
                "compiled_ops": (
                    {k: compiled_ops[k] for k in OP_KEYS if k in compiled_ops}
                    if compiled_ok else None
                ),
            }
        )

        if compiled_ok and n == max(sizes):
            # Sharding sweep on the largest size only: the thread pool's
            # win is throughput at scale, not tiny-n dispatch.
            for w in workers:
                executor = ShardedWalkExecutor(
                    index, workers=w, backend="thread", shard_by="query",
                    walk="compiled",
                )
                sharded = executor.count_within_many(ids, radii)
                assert np.array_equal(sharded, expected), (
                    f"sharded compiled walk diverged at n={n}, workers={w}"
                )
                shard_s = _best(
                    lambda: executor.count_within_many(ids, radii), repeats
                )
                shard_records.append(
                    {
                        "n": n,
                        "workers": w,
                        "backend": "thread",
                        "shard_by": "query",
                        "walk": "compiled",
                        "wall_s": round(shard_s, 4),
                    }
                )

    return {
        "bench": "frontier_walk",
        "workload": "SELFJOINC",
        "n_radii": N_RADII,
        "dataset": "gaussian-2d",
        "repeats": repeats,
        "machine": machine_info(),
        "kernel": kernel_info(),
        "records": records,
        "sharding": shard_records,
    }


def merge_into_results(payload: dict, name: str = "BENCH_walk.json") -> None:
    """Write a results JSON, preserving sections other runs recorded."""
    path = results_path(name)
    merged = {}
    if path.is_file():
        try:
            merged = json.loads(path.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2) + "\n")


def ckernel_payload(payload: dict) -> dict:
    """The compiled-kernel acceptance record for BENCH_ckernel.json."""
    best = None
    for r in payload["records"]:
        if r["compiled_speedup"] is not None and (
            best is None or r["n"] > best["n"]
        ):
            best = r
    return {
        "bench": "ckernel",
        "workload": payload["workload"],
        "n_radii": payload["n_radii"],
        "dataset": payload["dataset"],
        "repeats": payload["repeats"],
        "machine": payload["machine"],
        "kernel": payload["kernel"],
        "acceptance": {
            "target": "compiled >= 1.5x single-core over level at the largest n",
            "n": None if best is None else best["n"],
            "level_s": None if best is None else best["level_s"],
            "compiled_s": None if best is None else best["compiled_s"],
            "compiled_speedup": None if best is None else best["compiled_speedup"],
            "met": bool(best and best["compiled_speedup"] >= 1.5),
        },
        "records": payload["records"],
        "sharding": payload["sharding"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, nargs="*", default=None,
                        help=f"dataset sizes (default {DEFAULT_SIZES})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--index", default="vptree",
                        help="flat-backed index kind (default vptree)")
    parser.add_argument("--workers", type=int, nargs="*", default=None,
                        help=f"threads-backend sharding sweep "
                             f"(default {DEFAULT_WORKERS})")
    args = parser.parse_args()

    payload = run(
        args.n or DEFAULT_SIZES, args.repeats, args.index,
        args.workers or DEFAULT_WORKERS,
    )
    merge_into_results({"frontier_walk": payload})
    merge_into_results({"ckernel": ckernel_payload(payload)}, "BENCH_ckernel.json")
    rows = [
        [
            r["n"],
            f"{r['stack_s'] * 1000:.1f}",
            f"{r['level_s'] * 1000:.1f}",
            "n/a" if r["compiled_s"] is None else f"{r['compiled_s'] * 1000:.1f}",
            f"{r['speedup']:.2f}x" if r["speedup"] is not None else "n/a",
            (
                f"{r['compiled_speedup']:.2f}x"
                if r["compiled_speedup"] is not None else "n/a"
            ),
        ]
        for r in payload["records"]
    ]
    write_result(
        "frontier_walk",
        format_table(
            ["n", "stack ms", "level ms", "compiled ms",
             "level/stack", "compiled/level"],
            rows,
            title="Frontier walks - SELFJOINC single-core wall-clock",
        ),
    )
    if payload["sharding"]:
        write_result(
            "ckernel_sharding",
            format_table(
                ["n", "workers", "wall ms"],
                [
                    [s["n"], s["workers"], f"{s['wall_s'] * 1000:.1f}"]
                    for s in payload["sharding"]
                ],
                title="Compiled walk - threads-backend query sharding",
            ),
        )


if __name__ == "__main__":
    main()
