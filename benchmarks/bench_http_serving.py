"""HTTP serving bench: micro-batching latency/throughput over the wire.

The scoring tier's claim (``src/repro/serve``) is that coalescing
concurrent single-row requests into shared engine batches buys
throughput without giving up correctness.  This bench measures both
halves end to end — real sockets, real HTTP parsing, real asyncio
clients — against an in-process :class:`repro.serve.ScoringServer`:

- **latency vs batch window** — a fixed fleet of concurrent single-row
  clients, swept across ``window_s`` (0 = strict per-request serving,
  the no-coalescing baseline).  The JSON records the throughput win of
  the best window over the window-0 baseline as ``batching_speedup``.
- **throughput vs concurrency** — a fixed window, swept across fleet
  sizes: adaptive batching should turn added concurrency into larger
  engine batches, not proportionally more engine calls.

Before any timing, every probe row is scored over HTTP and compared
bit-for-bit against direct ``score_batch`` — a run that is not
bit-identical refuses to produce numbers.

Results land in ``benchmarks/results/BENCH_http.json`` (plus text
tables).

Run:  python benchmarks/bench_http_serving.py [--n N] [--requests R]
(``--smoke`` runs one tiny configuration for CI; REPRO_BENCH_SCALE
multiplies the default sizes as usual).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time

import numpy as np

from _common import (
    format_table,
    machine_info,
    results_path,
    scaled,
    telemetry_snapshot,
    write_result,
)
from repro.api import make_estimator
from repro.serve import ScoreClient, ScoringServer

BOOST = scaled(1.0, lo=0.02, hi=20.0)

SPEC = "mccatch?index=vptree"
DIM = 4

DEFAULT_N = int(4_000 * BOOST)
DEFAULT_REQUESTS = max(4, int(25 * BOOST))
WINDOWS_MS = [0.0, 1.0, 2.0, 5.0, 10.0]
FLEETS = [1, 4, 8, 16, 32]
FIXED_FLEET = 32
FIXED_WINDOW_MS = 2.0


def _dataset(n: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    return np.vstack([rng.normal(size=(n, DIM)), [[9.0] * DIM, [9.1] + [9.0] * (DIM - 1)]])


async def _verify_bit_identity(model, rows: np.ndarray) -> dict:
    """Score every probe row over HTTP; must equal score_batch bit-for-bit."""
    direct = np.asarray(model.score_batch(rows), dtype=np.float64)
    server = await ScoringServer(model, port=0, window_s=0.002).start()
    try:
        async def one(i):
            client = await ScoreClient.connect("127.0.0.1", server.port)
            try:
                return await client.score_row(rows[i])
            finally:
                await client.close()

        # concurrent single-row clients: the coalescing path, not a loop
        scores = await asyncio.gather(*(one(i) for i in range(len(rows))))
    finally:
        await server.stop()
    identical = bool(np.array_equal(np.asarray(scores, dtype=np.float64), direct))
    if not identical:
        raise AssertionError(
            "HTTP scores are not bit-identical to direct score_batch; "
            "refusing to benchmark a broken serving path"
        )
    return {"rows": int(len(rows)), "identical": identical}


async def _run_load(
    model, rows: np.ndarray, *, window_s: float, fleet: int, requests: int,
    metrics: bool = True,
) -> dict:
    """One configuration: `fleet` concurrent clients, `requests` rows each.

    ``metrics=False`` serves with the telemetry tier disabled — the
    baseline the observability-overhead bench compares against.
    """
    server = await ScoringServer(
        model, port=0, window_s=window_s, metrics=metrics
    ).start()
    try:
        async def client_task(ci: int) -> list[float]:
            client = await ScoreClient.connect("127.0.0.1", server.port)
            latencies = []
            try:
                for j in range(requests):
                    row = rows[(ci * requests + j) % len(rows)]
                    t0 = time.perf_counter()
                    await client.score_row(row)
                    latencies.append(time.perf_counter() - t0)
            finally:
                await client.close()
            return latencies

        t0 = time.perf_counter()
        per_client = await asyncio.gather(*(client_task(i) for i in range(fleet)))
        wall_s = time.perf_counter() - t0
        batcher = server.batcher
        counters = {
            "batches": batcher.batches_dispatched,
            "mean_batch_rows": round(batcher.mean_batch_rows, 3),
            "largest_batch": batcher.largest_batch,
        }
        if server.metrics is not None:
            # perf numbers travel with the op counts that produced them
            counters["telemetry"] = telemetry_snapshot(server.metrics)
    finally:
        await server.stop()
    latencies = np.array([lat for client in per_client for lat in client])
    total = int(latencies.size)
    return {
        "window_ms": round(window_s * 1e3, 3),
        "concurrency": fleet,
        "requests": total,
        "wall_s": round(wall_s, 6),
        "throughput_rps": round(total / wall_s, 2),
        "latency_mean_ms": round(float(latencies.mean()) * 1e3, 3),
        "latency_p50_ms": round(float(np.percentile(latencies, 50)) * 1e3, 3),
        "latency_p95_ms": round(float(np.percentile(latencies, 95)) * 1e3, 3),
        **counters,
    }


async def _bench(model, rows, *, windows_ms, fleets, fixed_fleet,
                 fixed_window_ms, requests) -> dict:
    payload = {
        "spec": SPEC,
        "n": int(np.asarray(model.training_data).shape[0]),
        "dim": DIM,
        "requests_per_client": requests,
        "bit_identity": await _verify_bit_identity(model, rows),
    }
    payload["latency_vs_window"] = [
        await _run_load(model, rows, window_s=w / 1e3, fleet=fixed_fleet,
                        requests=requests)
        for w in windows_ms
    ]
    payload["throughput_vs_concurrency"] = [
        await _run_load(model, rows, window_s=fixed_window_ms / 1e3, fleet=c,
                        requests=requests)
        for c in fleets
    ]
    # the acceptance number: best coalescing window vs strict per-request
    by_window = {r["window_ms"]: r["throughput_rps"] for r in payload["latency_vs_window"]}
    baseline = by_window.get(0.0)
    batched = max(v for k, v in by_window.items() if k > 0.0)
    payload["batching_speedup"] = round(batched / baseline, 3) if baseline else None
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=DEFAULT_N,
                        help=f"fitted dataset size (default {DEFAULT_N})")
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS,
                        help="single-row requests per client per configuration")
    parser.add_argument("--smoke", action="store_true",
                        help="one tiny configuration (CI)")
    args = parser.parse_args()

    if args.smoke:
        n, requests = 400, 4
        windows_ms, fleets = [0.0, 2.0], [8]
        fixed_fleet, fixed_window_ms = 8, 2.0
    else:
        n, requests = args.n, args.requests
        windows_ms, fleets = WINDOWS_MS, FLEETS
        fixed_fleet, fixed_window_ms = FIXED_FLEET, FIXED_WINDOW_MS

    X = _dataset(n)
    rng = np.random.default_rng(1)
    rows = rng.normal(size=(64, DIM))
    model = make_estimator(SPEC).fit(X)

    payload = asyncio.run(_bench(
        model, rows, windows_ms=windows_ms, fleets=fleets,
        fixed_fleet=fixed_fleet, fixed_window_ms=fixed_window_ms,
        requests=requests,
    ))
    payload["machine"] = machine_info()
    results_path("BENCH_http.json").write_text(json.dumps(payload, indent=2) + "\n")

    def _rows(records):
        return [
            [r["window_ms"], r["concurrency"], r["requests"],
             f"{r['throughput_rps']:.0f}", f"{r['latency_p50_ms']:.2f}",
             f"{r['latency_p95_ms']:.2f}", f"{r['mean_batch_rows']:.1f}",
             r["largest_batch"]]
            for r in records
        ]

    headers = ["window (ms)", "clients", "requests", "req/s", "p50 (ms)",
               "p95 (ms)", "mean batch", "max batch"]
    table1 = format_table(
        headers, _rows(payload["latency_vs_window"]),
        title=(f"HTTP serving: latency vs batch window — {SPEC}, n={payload['n']}, "
               f"{fixed_fleet} concurrent single-row clients "
               f"(batching speedup {payload['batching_speedup']}x)"),
    )
    table2 = format_table(
        headers, _rows(payload["throughput_vs_concurrency"]),
        title=(f"HTTP serving: throughput vs concurrency — window "
               f"{fixed_window_ms} ms"),
    )
    write_result("http_serving", table1 + "\n\n" + table2)


if __name__ == "__main__":
    main()
