"""Index construction bench: bulk level-synchronous vs per-insert builds.

PR 1 moved the VP- and ball-tree builds from per-node recursion over
Python ``__slots__`` objects to level-synchronous vectorized builds
into :class:`~repro.index.base.FlatTree` arrays; this PR does the same
for the three insertion-built trees.  The bench records both fronts:

- ``mtree`` / ``slimtree`` / ``covertree``: the array bulk-load
  (``build="bulk"``, the default) against the frozen per-insert
  builder (``build="insert"``), counts asserted bit-identical on a
  boundary-radii ladder *before* any timing.
- ``vptree`` / ``balltree``: the flat build against the preserved
  pre-refactor object implementations (:mod:`repro.index.reference`).

Results land in ``benchmarks/results/BENCH_index_build.json`` (plus a
text table).  That JSON is tracked in git as the perf record of the
bulk-load PR.

Run:  python benchmarks/bench_index_build.py [--n N ...] [--repeats K]
(the CI smoke step runs one tiny configuration; REPRO_BENCH_SCALE
multiplies the default sizes as usual).
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from _common import format_table, machine_info, results_path, scaled, write_result
from repro.index import BallTree, BruteForceIndex, CoverTree, MTree, SlimTree, VPTree
from repro.index.reference import ReferenceBallTree, ReferenceVPTree
from repro.metric.base import MetricSpace

BOOST = scaled(1.0, lo=0.02, hi=20.0)

DEFAULT_SIZES = [int(1_000 * BOOST), int(10_000 * BOOST), int(50_000 * BOOST)]

#: Insertion-tree pairs: bulk (default) vs the frozen insert builder.
BULK_PAIRS = [
    ("mtree", MTree),
    ("slimtree", SlimTree),
    ("covertree", CoverTree),
]

#: Flat-vs-reference pairs kept from the PR 1 refactor record.
FLAT_PAIRS = [
    ("vptree", VPTree, ReferenceVPTree),
    ("balltree", BallTree, ReferenceBallTree),
]


def _dataset(n: int) -> MetricSpace:
    rng = np.random.default_rng(0)
    return MetricSpace(rng.normal(size=(n, 2)))


def _best(f, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        times.append(time.perf_counter() - t0)
    return min(times)


def _object_node_count(tree) -> int:
    """Nodes of a pre-refactor object tree (children/left-right/bucket)."""
    count = 0
    stack = [tree.root]
    while stack:
        node = stack.pop()
        count += 1
        for child in (getattr(node, "inside", None), getattr(node, "outside", None),
                      getattr(node, "left", None), getattr(node, "right", None)):
            if child is not None:
                stack.append(child)
    return count


def _assert_counts_identical(space: MetricSpace, bulk, insert) -> None:
    """Bulk and insert trees must agree with brute force bit for bit."""
    n = len(space)
    rng = np.random.default_rng(1)
    q = np.sort(rng.choice(n, size=min(n, 256), replace=False))
    d = space.distances(0, np.arange(min(n, 16)))
    ties = sorted(float(v) for v in d if v > 0)[:3]
    radii = np.sort(np.array([0.0] + ties + [1.0, 4.0], dtype=np.float64))
    expected = BruteForceIndex(space).count_within_many(q, radii)
    for tree, label in ((bulk, "bulk"), (insert, "insert")):
        got = tree.count_within_many(q, radii)
        if not np.array_equal(got, expected):
            raise AssertionError(f"{label} counts diverge from brute force")


def run(sizes: list[int], repeats: int) -> dict:
    records = []
    for n in sizes:
        space = _dataset(n)
        for name, cls in BULK_PAIRS:
            bulk_tree = cls(space, build="bulk")
            insert_tree = cls(space, build="insert")
            _assert_counts_identical(space, bulk_tree, insert_tree)
            bulk_s = _best(lambda: cls(space, build="bulk"), repeats)
            insert_s = _best(lambda: cls(space, build="insert"), repeats)
            records.append({
                "index": name,
                "n": n,
                "bulk_build_s": bulk_s,
                "insert_build_s": insert_s,
                "speedup": insert_s / bulk_s if bulk_s > 0 else float("inf"),
                "bulk_nodes": int(bulk_tree.flat.n_nodes),
                "insert_nodes": int(insert_tree.flat.n_nodes),
            })
        for name, flat_cls, ref_cls in FLAT_PAIRS:
            flat_s = _best(lambda: flat_cls(space), repeats)
            index = flat_cls(space)
            object_s = _best(lambda: ref_cls(space), repeats)
            records.append({
                "index": name,
                "n": n,
                "flat_build_s": flat_s,
                "flat_nodes": int(index.flat.n_nodes),
                "object_build_s": object_s,
                "object_nodes": _object_node_count(ref_cls(space)),
                "speedup": object_s / flat_s if flat_s > 0 else float("inf"),
            })
    return {
        "bench": "index_build",
        "repeats": repeats,
        "machine": machine_info(),
        "records": records,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, nargs="*", default=None,
                        help=f"dataset sizes (default {DEFAULT_SIZES})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    args = parser.parse_args()
    sizes = args.n if args.n else DEFAULT_SIZES

    payload = run(sizes, args.repeats)
    results_path("BENCH_index_build.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    rows = []
    for r in payload["records"]:
        fast = r.get("bulk_build_s", r.get("flat_build_s"))
        slow = r.get("insert_build_s", r.get("object_build_s"))
        nodes = r.get("bulk_nodes", r.get("flat_nodes"))
        rows.append([
            r["index"], r["n"], f"{fast * 1000:.1f}",
            f"{slow * 1000:.1f}" if slow is not None else "-",
            f"{r['speedup']:.2f}x" if "speedup" in r else "-",
            nodes,
        ])
    write_result(
        "index_build",
        format_table(
            ["index", "n", "bulk/flat ms", "insert/object ms", "speedup", "nodes"],
            rows,
            title="Index construction: level-synchronous bulk vs per-insert builds",
        ),
    )


if __name__ == "__main__":
    main()
