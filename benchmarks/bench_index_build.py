"""Index construction bench: object-node builds vs flat level-synchronous.

The flat refactor moved tree construction from per-node recursion over
Python ``__slots__`` objects to level-synchronous vectorized builds
into :class:`~repro.index.base.FlatTree` arrays.  This bench records
what that buys — build wall-clock and node counts for the VP- and ball
trees against the preserved pre-refactor implementations
(:mod:`repro.index.reference`), plus the build+freeze cost of the
insertion-built trees — so the perf trajectory captures construction,
not just queries.

Results land in ``benchmarks/results/BENCH_index_build.json`` (plus a
text table).

Run:  python benchmarks/bench_index_build.py [--n N ...] [--repeats K]
(the CI smoke step runs one tiny configuration; REPRO_BENCH_SCALE
multiplies the default sizes as usual).
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from _common import format_table, machine_info, results_path, scaled, write_result
from repro.index import BallTree, CoverTree, MTree, SlimTree, VPTree
from repro.index.reference import ReferenceBallTree, ReferenceVPTree
from repro.metric.base import MetricSpace

BOOST = scaled(1.0, lo=0.02, hi=20.0)

DEFAULT_SIZES = [int(2_000 * BOOST), int(10_000 * BOOST)]

#: (name, flat builder, object builder or None when the object build IS
#: the construction and only the freeze is new).
PAIRS = [
    ("vptree", VPTree, ReferenceVPTree),
    ("balltree", BallTree, ReferenceBallTree),
    ("covertree", CoverTree, None),
    ("mtree", MTree, None),
    ("slimtree", SlimTree, None),
]


def _dataset(n: int) -> MetricSpace:
    rng = np.random.default_rng(0)
    return MetricSpace(rng.normal(size=(n, 2)))


def _best(f, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        times.append(time.perf_counter() - t0)
    return min(times)


def _object_node_count(tree) -> int:
    """Nodes of a pre-refactor object tree (children/left-right/bucket)."""
    count = 0
    stack = [tree.root]
    while stack:
        node = stack.pop()
        count += 1
        for child in (getattr(node, "inside", None), getattr(node, "outside", None),
                      getattr(node, "left", None), getattr(node, "right", None)):
            if child is not None:
                stack.append(child)
    return count


def run(sizes: list[int], repeats: int) -> dict:
    records = []
    for n in sizes:
        space = _dataset(n)
        for name, flat_cls, ref_cls in PAIRS:
            flat_s = _best(lambda: flat_cls(space), repeats)
            index = flat_cls(space)
            rec = {
                "index": name,
                "n": n,
                "flat_build_s": flat_s,
                "flat_nodes": index.flat.n_nodes,
            }
            if ref_cls is not None:
                object_s = _best(lambda: ref_cls(space), repeats)
                rec["object_build_s"] = object_s
                rec["object_nodes"] = _object_node_count(ref_cls(space))
                rec["speedup"] = object_s / flat_s if flat_s > 0 else float("inf")
            records.append(rec)
    return {
        "bench": "index_build",
        "repeats": repeats,
        "machine": machine_info(),
        "records": records,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, nargs="*", default=None,
                        help=f"dataset sizes (default {DEFAULT_SIZES})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    args = parser.parse_args()
    sizes = args.n if args.n else DEFAULT_SIZES

    payload = run(sizes, args.repeats)
    results_path("BENCH_index_build.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    rows = []
    for r in payload["records"]:
        rows.append([
            r["index"], r["n"], f"{r['flat_build_s'] * 1000:.1f}",
            f"{r['object_build_s'] * 1000:.1f}" if "object_build_s" in r else "-",
            f"{r['speedup']:.2f}x" if "speedup" in r else "-",
            r["flat_nodes"],
        ])
    write_result(
        "index_build",
        format_table(
            ["index", "n", "flat ms", "object ms", "speedup", "nodes"],
            rows,
            title="Index construction: flat level-synchronous vs object-node builds",
        ),
    )


if __name__ == "__main__":
    main()
