"""Model-serving bench: cold-load (mmap vs materialized) + score latency.

The serving story is fit once, publish to a :class:`repro.api.ModelRegistry`,
and have many scorer processes resolve the artifact.  Two costs decide
whether that scales:

- **cold load** — how long a fresh scorer takes to stand the model up.
  Materialized loads copy every array out of the archive; mmap loads
  only parse headers and map pages, so they should be near-constant in
  n and share physical memory across processes.
- **score_batch latency** — the per-request cost once the model is up
  (measured both ways to confirm mmap costs nothing at query time).

Results land in ``benchmarks/results/BENCH_serving.json`` (plus a text
table).

Run:  python benchmarks/bench_model_serving.py [--n N ...] [--repeats K]
(the CI smoke step runs one tiny configuration; REPRO_BENCH_SCALE
multiplies the default sizes as usual).
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from _common import format_table, machine_info, results_path, scaled, write_result
from repro.api import ModelRegistry, make_estimator

BOOST = scaled(1.0, lo=0.02, hi=20.0)

DEFAULT_SIZES = [int(2_000 * BOOST), int(10_000 * BOOST)]
SPEC = "mccatch?index=vptree"
BATCH_ROWS = 256


def _dataset(n: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    return np.vstack([rng.normal(size=(n, 4)), [[9.0] * 4, [9.1] + [9.0] * 3]])


def _best(f, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        times.append(time.perf_counter() - t0)
    return min(times)


def run(sizes: list[int], repeats: int, registry_root) -> dict:
    registry = ModelRegistry(registry_root)
    rng = np.random.default_rng(1)
    records = []
    for n in sizes:
        X = _dataset(n)
        batch = rng.normal(size=(BATCH_ROWS, 4))
        t0 = time.perf_counter()
        model = make_estimator(SPEC).fit(X)
        fit_s = time.perf_counter() - t0
        record = registry.publish(model)

        def load(mmap: bool):
            return registry.resolve(SPEC, fingerprint=record.fingerprint, mmap=mmap)

        # cold load: stand the model up (mmap parses headers only)
        load_cold_s = _best(lambda: load(False), repeats)
        load_mmap_s = _best(lambda: load(True), repeats)
        # score latency once warm, both ways
        warm, warm_mmap = load(False), load(True)
        score_s = _best(lambda: warm.score_batch(batch), repeats)
        score_mmap_s = _best(lambda: warm_mmap.score_batch(batch), repeats)
        assert np.array_equal(warm.score_batch(batch), warm_mmap.score_batch(batch))
        records.append({
            "n": int(X.shape[0]),
            "spec": SPEC,
            "fit_s": round(fit_s, 6),
            "artifact_bytes": record.path.stat().st_size,
            "load_materialized_s": round(load_cold_s, 6),
            "load_mmap_s": round(load_mmap_s, 6),
            "load_speedup": round(load_cold_s / load_mmap_s, 2),
            "batch_rows": BATCH_ROWS,
            "score_batch_materialized_s": round(score_s, 6),
            "score_batch_mmap_s": round(score_mmap_s, 6),
        })
    return {"spec": SPEC, "repeats": repeats, "records": records}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, nargs="*", default=None,
                        help=f"dataset sizes (default {DEFAULT_SIZES})")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()
    sizes = args.n if args.n else DEFAULT_SIZES

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-registry-") as root:
        payload = run(sizes, args.repeats, root)
    payload["machine"] = machine_info()

    results_path("BENCH_serving.json").write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [r["n"], f"{r['artifact_bytes'] / 1024:.0f} KiB",
         f"{r['load_materialized_s'] * 1e3:.2f}", f"{r['load_mmap_s'] * 1e3:.2f}",
         f"{r['load_speedup']:.1f}x",
         f"{r['score_batch_materialized_s'] * 1e3:.2f}",
         f"{r['score_batch_mmap_s'] * 1e3:.2f}"]
        for r in payload["records"]
    ]
    write_result(
        "model_serving",
        format_table(
            ["n", "artifact", "load (ms)", "load mmap (ms)", "speedup",
             "score 256 (ms)", "score 256 mmap (ms)"],
            rows,
            title=f"Model serving: {SPEC} — cold load and batch-score latency",
        ),
    )


if __name__ == "__main__":
    main()
