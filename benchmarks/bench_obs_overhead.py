"""Observability overhead bench: telemetry on vs off, end to end.

The telemetry layer (``src/repro/obs``) claims near-zero cost: hot
paths pay one ``None`` check when nothing observes, and when the full
tier is on — metrics registry, ``/metrics`` route, request traces,
per-batch histograms, the timed distance-counting proxy — the serving
numbers should move by at most a few percent.  This bench pins that
claim with the same socket-level load harness as
``bench_http_serving``: a fleet of concurrent single-row HTTP clients
against two otherwise identical :class:`repro.serve.ScoringServer`
instances, one with ``metrics=True`` (the default) and one with
``metrics=False``.

Runs alternate off/on per repeat so drift (thermal, page cache,
co-tenants) hits both modes evenly; the recorded number per mode is
the best throughput / best p50 across repeats, which is the standard
way to compare two implementations of the same work under noise.

Scores are verified bit-identical between the two modes before any
timing — telemetry that changed a score would be a bug, not overhead.

Results land in ``benchmarks/results/BENCH_obs.json`` (git-tracked:
the acceptance artifact records overhead <= a few percent at the
bench fleet size) plus a text table.  The telemetry-on run embeds its
own registry snapshot, so the artifact shows exactly which op counters
were live while the overhead was measured.

Run:  python benchmarks/bench_obs_overhead.py [--n N] [--requests R]
(``--smoke`` runs one tiny configuration for CI; REPRO_BENCH_SCALE
multiplies the default sizes as usual).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time

import numpy as np

from _common import format_table, machine_info, results_path, write_result
from bench_http_serving import DIM, SPEC, _dataset, _run_load
from repro.api import make_estimator
from repro.serve import ScoringServer

DEFAULT_N = 4_000
DEFAULT_REQUESTS = 25
FLEET = 32
WINDOW_MS = 2.0
REPEATS = 3


async def _verify_modes_identical(model, rows: np.ndarray) -> dict:
    """Every probe row scores bit-identically with telemetry on and off."""
    outputs = {}
    for metrics in (False, True):
        server = await ScoringServer(
            model, port=0, window_s=0.0, metrics=metrics
        ).start()
        try:
            from repro.serve import ScoreClient

            client = await ScoreClient.connect("127.0.0.1", server.port)
            try:
                outputs[metrics] = await client.score_rows(rows)
            finally:
                await client.close()
        finally:
            await server.stop()
    identical = bool(np.array_equal(outputs[False], outputs[True]))
    if not identical:
        raise AssertionError(
            "scores differ between metrics=True and metrics=False; "
            "telemetry must not touch the numeric path"
        )
    return {"rows": int(rows.shape[0]), "identical": identical}


async def _bench(model, rows, *, fleet: int, requests: int, repeats: int) -> dict:
    payload = {
        "spec": SPEC,
        "n": int(np.asarray(model.training_data).shape[0]),
        "dim": DIM,
        "concurrency": fleet,
        "window_ms": WINDOW_MS,
        "requests_per_client": requests,
        "repeats": repeats,
        "bit_identity": await _verify_modes_identical(model, rows[:16]),
    }
    runs = {False: [], True: []}
    for _ in range(repeats):
        # alternate so ambient drift lands on both modes evenly
        for metrics in (False, True):
            runs[metrics].append(await _run_load(
                model, rows, window_s=WINDOW_MS / 1e3, fleet=fleet,
                requests=requests, metrics=metrics,
            ))

    def best(records):
        top = max(records, key=lambda r: r["throughput_rps"])
        return {
            "throughput_rps": top["throughput_rps"],
            "latency_p50_ms": min(r["latency_p50_ms"] for r in records),
            "latency_p95_ms": min(r["latency_p95_ms"] for r in records),
            "mean_batch_rows": top["mean_batch_rows"],
        }

    payload["telemetry_off"] = best(runs[False])
    payload["telemetry_on"] = best(runs[True])
    # the telemetry-on artifact carries the op counters of its last run
    payload["telemetry_on"]["snapshot"] = runs[True][-1].get("telemetry")
    off = payload["telemetry_off"]["throughput_rps"]
    on = payload["telemetry_on"]["throughput_rps"]
    payload["throughput_overhead_pct"] = round((1.0 - on / off) * 100.0, 2)
    payload["p50_overhead_pct"] = round(
        (payload["telemetry_on"]["latency_p50_ms"]
         / payload["telemetry_off"]["latency_p50_ms"] - 1.0) * 100.0, 2,
    )
    payload["all_runs"] = {
        "off": [{k: r[k] for k in ("throughput_rps", "latency_p50_ms")}
                for r in runs[False]],
        "on": [{k: r[k] for k in ("throughput_rps", "latency_p50_ms")}
               for r in runs[True]],
    }
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=DEFAULT_N,
                        help=f"fitted dataset size (default {DEFAULT_N})")
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS,
                        help="single-row requests per client per run")
    parser.add_argument("--smoke", action="store_true",
                        help="one tiny configuration (CI)")
    args = parser.parse_args()

    if args.smoke:
        n, requests, fleet, repeats = 400, 4, 8, 1
    else:
        n, requests, fleet, repeats = args.n, args.requests, FLEET, REPEATS

    X = _dataset(n)
    rng = np.random.default_rng(1)
    rows = rng.normal(size=(64, DIM))
    t0 = time.perf_counter()
    model = make_estimator(SPEC).fit(X)
    fit_s = time.perf_counter() - t0

    payload = asyncio.run(_bench(
        model, rows, fleet=fleet, requests=requests, repeats=repeats,
    ))
    payload["fit_s"] = round(fit_s, 3)
    payload["machine"] = machine_info()
    results_path("BENCH_obs.json").write_text(json.dumps(payload, indent=2) + "\n")

    table = format_table(
        ["mode", "req/s", "p50 (ms)", "p95 (ms)", "mean batch"],
        [
            ["telemetry off", f"{payload['telemetry_off']['throughput_rps']:.0f}",
             f"{payload['telemetry_off']['latency_p50_ms']:.2f}",
             f"{payload['telemetry_off']['latency_p95_ms']:.2f}",
             f"{payload['telemetry_off']['mean_batch_rows']:.1f}"],
            ["telemetry on", f"{payload['telemetry_on']['throughput_rps']:.0f}",
             f"{payload['telemetry_on']['latency_p50_ms']:.2f}",
             f"{payload['telemetry_on']['latency_p95_ms']:.2f}",
             f"{payload['telemetry_on']['mean_batch_rows']:.1f}"],
        ],
        title=(f"Observability overhead — {SPEC}, n={payload['n']}, "
               f"{fleet} concurrent single-row clients, window {WINDOW_MS} ms: "
               f"throughput {payload['throughput_overhead_pct']:+.2f}%, "
               f"p50 {payload['p50_overhead_pct']:+.2f}%"),
    )
    write_result("obs_overhead", table)


if __name__ == "__main__":
    main()
