"""Parallel sharded walks: serial vs multi-worker SELFJOINC wall-clock.

Measures the workload the paper's scalability claim rests on — every
point range-counted at every radius of the ladder (SELFJOINC, Alg. 2)
— executed serially (``BatchQueryEngine(mode="batched")``) and sharded
across worker pools of increasing size
(:class:`repro.engine.ShardedWalkExecutor` via ``mode="parallel"``).
Counts are asserted bit-identical at every configuration before any
time is recorded; the speedup curves land in
``benchmarks/results/BENCH_parallel.json`` (plus a text table)
together with the machine block (:func:`_common.machine_info`), since
a speedup is only interpretable next to the core count that produced
it.  The acceptance target — >=3x at n=10k on SELFJOINC — needs 4+
usable cores; on fewer cores the recorded curve documents exactly
that.

Run:  python benchmarks/bench_parallel_walk.py [--n N ...]
          [--workers W ...] [--repeats K] [--index KIND]
(the CI smoke step runs one tiny 2-worker configuration;
REPRO_BENCH_SCALE multiplies the default sizes as usual.)
"""

from __future__ import annotations

import argparse
import json
import math
import time

import numpy as np

from _common import format_table, machine_info, results_path, scaled, write_result
from repro.core.radii import define_radii
from repro.engine import BatchQueryEngine, default_workers
from repro.index import build_index
from repro.metric.base import MetricSpace

BOOST = scaled(1.0, lo=0.02, hi=20.0)

DEFAULT_SIZES = [int(2_000 * BOOST), int(10_000 * BOOST)]
DEFAULT_WORKERS = [1, 2, 4, 8]
N_RADII = 15


def _dataset(n: int) -> MetricSpace:
    rng = np.random.default_rng(0)
    return MetricSpace(rng.normal(size=(n, 2)))


def _best(f, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        times.append(time.perf_counter() - t0)
    return min(times)


def run(
    sizes: list[int],
    worker_counts: list[int],
    repeats: int,
    kind: str,
    backend: str = "auto",
) -> dict:
    records = []
    for n in sizes:
        space = _dataset(n)
        index = build_index(space, kind=kind)
        radii = define_radii(index, N_RADII)
        c = math.ceil(0.1 * n)
        serial_engine = BatchQueryEngine(index)
        expected = serial_engine.self_join_counts(radii, max_cardinality=c)
        serial_s = _best(
            lambda: serial_engine.self_join_counts(radii, max_cardinality=c), repeats
        )
        for workers in worker_counts:
            engine = BatchQueryEngine(
                index, mode="parallel", workers=workers, backend=backend
            )
            counts = engine.self_join_counts(radii, max_cardinality=c)
            assert np.array_equal(counts, expected), (
                f"parallel counts diverged at n={n}, workers={workers}"
            )
            parallel_s = _best(
                lambda e=engine: e.self_join_counts(radii, max_cardinality=c), repeats
            )
            records.append(
                {
                    "n": n,
                    "index": kind,
                    "workers": workers,
                    "serial_s": round(serial_s, 4),
                    "parallel_s": round(parallel_s, 4),
                    "speedup": round(serial_s / parallel_s, 2)
                    if parallel_s > 0
                    else None,
                }
            )
    return {
        "bench": "parallel_walk",
        "workload": "SELFJOINC",
        "n_radii": N_RADII,
        "dataset": "uniform-2d",
        "backend": backend,
        "repeats": repeats,
        "machine": machine_info(),
        "records": records,
    }


def merge_into_results(payload: dict) -> None:
    """Write BENCH_parallel.json, preserving any sections other benches
    (fig. 7's parallel sweep) already recorded there."""
    path = results_path("BENCH_parallel.json")
    merged = {}
    if path.is_file():
        try:
            merged = json.loads(path.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, nargs="*", default=None,
                        help=f"dataset sizes (default {DEFAULT_SIZES})")
    parser.add_argument("--workers", type=int, nargs="*", default=None,
                        help=f"worker counts to sweep (default {DEFAULT_WORKERS})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--index", default="vptree",
                        help="flat-backed index kind (default vptree)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "thread", "process"],
                        help="worker-pool backend (default auto: threads for "
                             "vector metrics, mmap-attached processes otherwise)")
    args = parser.parse_args()

    payload = run(
        args.n or DEFAULT_SIZES,
        args.workers or DEFAULT_WORKERS,
        args.repeats,
        args.index,
        args.backend,
    )
    # one JSON section per backend, so auto/thread/process curves can
    # coexist in the artifact
    section = (
        "parallel_walk" if args.backend == "auto"
        else f"parallel_walk_{args.backend}"
    )
    merge_into_results({section: payload})
    rows = [
        [
            r["n"],
            r["workers"],
            f"{r['serial_s'] * 1000:.1f}",
            f"{r['parallel_s'] * 1000:.1f}",
            f"{r['speedup']:.2f}x" if r["speedup"] is not None else "n/a",
        ]
        for r in payload["records"]
    ]
    cores = payload["machine"]["usable_cpus"] or payload["machine"]["cpu_count"]
    write_result(
        "parallel_walk",
        format_table(
            ["n", "workers", "serial ms", "sharded ms", "speedup"],
            rows,
            title=(
                "Parallel sharded walks - SELFJOINC wall-clock "
                f"({cores} usable core(s), workers={default_workers()} default)"
            ),
        ),
    )


if __name__ == "__main__":
    main()
