"""Table I: the qualitative feature matrix, with behavioural spot checks.

The matrix itself is declarative (it restates the paper's claims for
the methods implemented here); the bench validates the rows that can be
checked mechanically: McCatch satisfies all eight properties, methods
marked deterministic produce identical unseeded runs, and the G1 column
matches which methods accept nondimensional input.
"""

from __future__ import annotations

import numpy as np

from _common import write_result
from repro import McCatch
from repro.baselines import all_detectors
from repro.baselines.features import TABLE1, format_feature_matrix
from repro.metric.strings import levenshtein


def bench_table1_feature_matrix(benchmark):
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 1, (150, 2)), [[8.0, 8.0], [8.05, 8.0]]])

    def run():
        checks = []
        # McCatch's full row is backed by the other benches; here check
        # determinism + ranking + metric input directly.
        a = McCatch().fit(X)
        b = McCatch().fit(X)
        checks.append(("McCatch deterministic", np.array_equal(a.point_scores, b.point_scores)))
        scores = [m.score for m in a.microclusters]
        checks.append(("McCatch ranks", scores == sorted(scores, reverse=True)))
        names = ["AAA", "AAB", "ABA"] * 30 + ["XYZQW"]
        checks.append(("McCatch metric input", McCatch().fit(names, levenshtein).n == 91))

        for det in all_detectors(random_state=0):
            feature = TABLE1[det.name]
            if feature.deterministic and det.deterministic:
                s1 = det.fit_scores(X)
                s2 = det.fit_scores(X)
                checks.append((f"{det.name} deterministic", np.array_equal(s1, s2)))
        return checks

    checks = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [format_feature_matrix(), ""]
    lines += [f"check: {name:<28} {'ok' if ok else 'FAIL'}" for name, ok in checks]
    write_result("table1_features", "\n".join(lines))

    mccatch = TABLE1["McCatch"]
    assert all(
        getattr(mccatch, attr)
        for attr in ("general_input", "general_output", "principled", "scalable",
                     "hands_off", "deterministic", "explainable", "ranks_results")
    )
    assert all(ok for _, ok in checks)
    # No competitor matches all specs (the paper's headline claim).
    for name, feature in TABLE1.items():
        if name == "McCatch":
            continue
        assert not all(
            getattr(feature, attr)
            for attr, _ in (
                ("general_input", 0), ("general_output", 0), ("principled", 0),
                ("scalable", 0), ("hands_off", 0),
            )
        ), f"{name} should miss at least one goal"
