"""Table II: the hyperparameter configurations used for every method.

Regenerates the paper's hyperparameter table from the live registry —
the bench asserts that :func:`repro.baselines.hyperparameter_grid`
expands to exactly the settings Table II lists (per method, for a
representative dataset size), and that McCatch's row is the fixed
default (a=15, b=0.1, c=ceil(0.1 n)): its 'hands-off' claim.
"""

from __future__ import annotations

from _common import format_table, write_result
from repro import McCatch
from repro.baselines import hyperparameter_grid

N = 10_000  # representative dataset size for the psi-style grids

#: method -> (Table II text, properties asserted on the expanded grid)
EXPECTED = {
    "ABOD": "parameter-free",
    "ALOCI": "g in {10, 15, 20}, nmin=20, alpha=4",
    "DB-Out": "r in {0.05l, 0.1l, 0.25l, 0.5l}",
    "D.MCA": "psi in {2..min(1024, 0.3n)}, t in {2..128}, p=0.1n",
    "FastABOD": "k in {1, 5, 10}",
    "Gen2Out": "lb=1, ub=11, md in {2,3}, t in {2..128}",
    "iForest": "t in {2..128}, psi in {2..min(1024, 0.3n)}",
    "LOCI": "r in {0.05l..0.5l}, nmin=20, alpha=0.5",
    "LOF": "k in {1, 5, 10}",
    "ODIN": "k in {1, 5, 10}",
    "RDA": "layers in {2,3,4}, lambda in {1e-5..1e-4}",
    "kNN-Out": "k in {1, 5, 10}",
}


def bench_table2_hyperparameter_grids(benchmark):
    rows = []
    sizes: dict[str, int] = {}

    def run():
        for name in EXPECTED:
            grid = hyperparameter_grid(name, N, random_state=0)
            sizes[name] = len(grid)
            rows.append([name, len(grid), EXPECTED[name]])
        rows.append(["McCatch", 1, "a=15, b=0.1, c=ceil(0.1 n)  (fixed defaults)"])
        return sizes

    benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table2_grids",
        format_table(
            ["method", "# configurations", "Table II values"],
            rows,
            title=f"Table II hyperparameter grids (n={N:,})",
        ),
    )

    # Grid shapes follow Table II.
    assert sizes["ABOD"] == 1  # parameter-free
    assert sizes["ALOCI"] == 3  # three grid counts
    assert sizes["DB-Out"] == 4  # four radius fractions
    assert sizes["FastABOD"] == sizes["LOF"] == sizes["ODIN"] == sizes["kNN-Out"] == 3
    assert sizes["Gen2Out"] == 4  # md x trees
    assert sizes["D.MCA"] >= 6 and sizes["iForest"] >= 4 and sizes["RDA"] >= 4

    # McCatch itself is never tuned: one fixed configuration.
    detector = McCatch()
    assert (detector.n_radii, detector.max_slope, detector.max_cardinality_fraction) == (
        15, 0.1, 0.1,
    )
