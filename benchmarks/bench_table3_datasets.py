"""Table III: the dataset summary (n, features, fractal dim, % outliers).

Regenerates the paper's dataset-inventory table for our stand-ins,
including the correlation fractal dimension estimated from distances
only (works for the nondimensional datasets too, as footnote 7 notes).
"""

from __future__ import annotations

from _common import format_table, scaled, write_result
from repro.datasets import load
from repro.metric.fractal import correlation_dimension

ROWS = [
    ("last_names", scaled(0.2, lo=0.05)),
    ("fingerprints", scaled(0.3, lo=0.1)),
    ("skeletons", scaled(0.3, lo=0.1)),
    ("http", scaled(0.02, lo=0.01)),
    ("shuttle", scaled(0.05, lo=0.02)),
    ("mammography", scaled(0.2, lo=0.05)),
    ("annthyroid", scaled(0.2, lo=0.05)),
    ("satimage2", scaled(0.2, lo=0.05)),
    ("thyroid", scaled(0.3, lo=0.05)),
    ("vowels", scaled(0.5, lo=0.1)),
    ("pima", 1.0),
    ("ionosphere", 1.0),
    ("ecoli", 1.0),
    ("glass", 1.0),
    ("wine", 1.0),
    ("shanghai", 1.0),
    ("volcanoes", 1.0),
]


def bench_table3_dataset_summary(benchmark):
    rows = []

    def run():
        for name, scale in ROWS:
            ds = load(name, scale=scale, random_state=0)
            u = correlation_dimension(
                ds.data, ds.metric, sample_size=600, random_state=0
            )
            dim = ds.data.shape[1] if ds.is_vector else "-"
            pct = 100.0 * ds.labels.sum() / ds.n if ds.labels is not None else float("nan")
            rows.append([name, f"{ds.n:,}", dim, f"{u:.1f}", f"{pct:.2f}"])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table3_datasets",
        format_table(
            ["dataset", "# points", "# features", "fractal dim", "% outliers"],
            rows,
            title="Table III - dataset summary (stand-ins at bench scale)",
        ),
    )
    assert len(rows) == len(ROWS)
    # Sanity: every fractal dimension is positive and below the embedding dim + slack.
    for row in rows:
        assert float(row[3]) > 0
