"""Fig. 6 + Table IV (Q1, 'Accurate'): the full accuracy grid.

Per dataset x method: AUROC / AP / Max-F1 of the per-point scores; each
competitor runs its Table II hyperparameter grid and keeps its best
AUROC configuration (favouring the competitors).  Summary: harmonic
mean of ranking positions per metric, the paper's Table IV.

Paper's qualitative claims checked here:
- McCatch wins on the vector datasets with nonsingleton microclusters
  (HTTP-like, Annthyroid-like) and on the axiom datasets;
- McCatch is the only method applicable to the nondimensional datasets;
- McCatch has the best (lowest) harmonic-mean rank on every metric.

Quadratic methods are skipped on large datasets, mirroring the paper's
timeout/memory marks.
"""

from __future__ import annotations

import numpy as np

from _common import format_table, scaled, write_result
from repro import McCatch
from repro.baselines import hyperparameter_grid
from repro.datasets import load
from repro.eval import ALL_METRICS, auroc, format_rank_table, harmonic_mean_rank

#: Fig. 6's dataset blocks (names as in the registry), with per-dataset
#: loader scales chosen so the whole grid runs in minutes.
VECTOR_DATASETS = {
    "http": scaled(0.05, lo=0.03),
    "shuttle": scaled(0.05, lo=0.02),
    "kddcup08": scaled(0.08, lo=0.02),
    "mammography": scaled(0.25, lo=0.05),
    "annthyroid": scaled(0.25, lo=0.05),
    "satimage2": scaled(0.25, lo=0.05),
    "thyroid": scaled(0.3, lo=0.05),
    "vowels": scaled(0.5, lo=0.1),
    "pima": 1.0,
    "ionosphere": 1.0,
    "ecoli": 1.0,
    "vertebral": 1.0,
    "glass": 1.0,
    "wine": 1.0,
    "hepatitis": 1.0,
    "parkinson": 1.0,
}
AXIOM_DATASETS = ["gaussian_isolation", "cross_cardinality", "arc_isolation"]
METRIC_DATASETS = ["last_names", "fingerprints", "skeletons"]
MC_DATASETS = {"http", "annthyroid", "gaussian_isolation", "cross_cardinality",
               "arc_isolation"}

METHODS = ["ABOD", "ALOCI", "DB-Out", "D.MCA", "FastABOD", "Gen2Out", "iForest",
           "LOCI", "LOF", "ODIN", "RDA"]
#: Quadratic methods skipped above this size (paper's timeout marks).
QUADRATIC = {"ABOD", "LOCI", "DB-Out", "FastABOD", "LOF", "ODIN", "D.MCA"}
QUADRATIC_CAP = 4000
#: Expensive trainable/ensemble methods: only part of the grid runs on
#: large datasets (time-boxing; the paper applied 10-hour timeouts).
EXPENSIVE = {"RDA", "Gen2Out", "ALOCI", "iForest"}
EXPENSIVE_CAP = 5000
EXPENSIVE_MAX_CONFIGS = 2


def _best_scores(method: str, X: np.ndarray, y: np.ndarray) -> np.ndarray | None:
    """Best-AUROC configuration of the Table II grid, or None if skipped."""
    if method in QUADRATIC and X.shape[0] > QUADRATIC_CAP:
        return None
    configs = hyperparameter_grid(method, n=X.shape[0])
    if method in EXPENSIVE and X.shape[0] > EXPENSIVE_CAP:
        configs = configs[:EXPENSIVE_MAX_CONFIGS]
    best, best_auroc = None, -1.0
    for det in configs:
        try:
            scores = det.fit_scores(X)
        except (ValueError, MemoryError):
            continue
        value = auroc(y, scores)
        if value > best_auroc:
            best_auroc, best = value, scores
    return best


def bench_table4_accuracy_grid(benchmark):
    per_metric: dict[str, list[dict[str, float]]] = {m: [] for m in ALL_METRICS}
    grid_rows: list[list[str]] = []

    def run():
        datasets: list[tuple[str, object]] = []
        for name, scale in VECTOR_DATASETS.items():
            datasets.append((name, load(name, scale=scale, random_state=0)))
        for name in AXIOM_DATASETS:
            # Floor of 0.1: the cardinality axiom plants a 100-point red
            # mc, which must stay well under c = 0.1 n (n_inliers >= 2000)
            # or it stops being a *micro*cluster at all.
            datasets.append((name, load(name, scale=scaled(0.1, lo=0.1), random_state=0)))
        for name in METRIC_DATASETS:
            datasets.append((name, load(name, scale=scaled(0.2, lo=0.05), random_state=0)))

        for name, ds in datasets:
            y = ds.labels
            values: dict[str, dict[str, float]] = {}
            mccatch_scores = McCatch().fit(ds.data, ds.metric).point_scores
            values["McCatch"] = {
                m: fn(y, mccatch_scores) for m, fn in ALL_METRICS.items()
            }
            if ds.is_vector:
                for method in METHODS:
                    scores = _best_scores(method, ds.data, y)
                    if scores is None:
                        continue
                    values[method] = {m: fn(y, scores) for m, fn in ALL_METRICS.items()}
            for m in ALL_METRICS:
                per_metric[m].append({k: v[m] for k, v in values.items()})
            row = [name, str(ds.n)]
            for method in ["McCatch", *METHODS]:
                if method in values:
                    row.append(f"{values[method]['auroc']:.3f}")
                else:
                    row.append("skip" if ds.is_vector else "N/A")
            grid_rows.append(row)
        return per_metric

    benchmark.pedantic(run, rounds=1, iterations=1)

    grid = format_table(
        ["dataset", "n", "McCatch", *METHODS],
        grid_rows,
        title="Fig. 6 - AUROC grid (stand-in datasets; 'N/A' = nondimensional, "
        "'skip' = quadratic method over size cap)",
    )
    hmeans = {m: harmonic_mean_rank(rows) for m, rows in per_metric.items()}
    table4 = format_rank_table(hmeans, metric_order=["auroc", "ap", "max_f1"])
    write_result("table4_accuracy", grid + "\n\n" + table4)

    # Paper: McCatch has the best harmonic-mean rank on all three
    # metrics.  Our setup is deliberately *harsher* on McCatch than the
    # paper's: every competitor keeps its per-dataset best grid
    # configuration (the paper tuned once by heuristics), and the
    # synthetic stand-ins are easy enough that many methods saturate at
    # AUROC ~1.0.  So the assertion is: McCatch stays in the leading
    # group on every metric (within 1.5 harmonic-rank of the best),
    # and the decisive claims — wins on microcluster datasets, only
    # method on nondimensional data — hold exactly.
    for metric, hm in hmeans.items():
        assert hm["McCatch"] <= min(hm.values()) + 1.5, (
            f"McCatch should be in the leading group under {metric}: {hm}"
        )
    # Wins (or ties within noise) on the microcluster datasets.
    auroc_rows = dict(zip([r[0] for r in grid_rows], grid_rows))
    for name in MC_DATASETS & set(auroc_rows):
        row = auroc_rows[name]
        mccatch_auroc = float(row[2])
        rivals = [float(v) for v in row[3:] if v not in ("skip", "N/A")]
        assert mccatch_auroc >= max(rivals) - 0.05, (
            f"McCatch should be on top for microcluster dataset {name}"
        )
