"""Table V (Q2, 'Principled'): axiom-compliance t-tests.

Paper: McCatch obeys both axioms on all three inlier shapes (t from
2.6 to 1153.8, all significant); Gen2Out passes only the Gaussian
scenarios and fails to find the mcs on cross/arc.  This bench runs the
same battery (reduced trials/sizes by default; see REPRO_BENCH_SCALE)
for McCatch and for the Gen2Out baseline.
"""

from __future__ import annotations

import numpy as np

from _common import format_table, scaled, write_result
from repro.baselines import Gen2Out
from repro.datasets import make_axiom_dataset
from repro.eval import run_axiom_suite
from repro.eval.axioms import AxiomTrial, aggregate_trials

N_TRIALS = max(5, int(round(scaled(0.2) * 50)))  # paper: 50
N_INLIERS = max(1000, int(round(scaled(0.2) * 20_000)))  # paper: ~1M


def _gen2out_trial(ds) -> AxiomTrial:
    """Score the planted mcs with Gen2Out's group output."""
    res = Gen2Out(random_state=0).fit(ds.X)

    def planted_score(planted: np.ndarray) -> float:
        target = set(map(int, planted))
        best, cover = float("nan"), 0.0
        for group, score in zip(res.groups, res.group_scores):
            overlap = len(target & set(map(int, group))) / len(target)
            if overlap > cover:
                cover, best = overlap, float(score)
        return best if cover >= 0.5 else float("nan")

    return AxiomTrial(
        red_score=planted_score(ds.red_indices),
        green_score=planted_score(ds.green_indices),
    )


def bench_table5_mccatch(benchmark):
    """McCatch: every Table V cell must pass."""
    results = benchmark.pedantic(
        lambda: run_axiom_suite(n_trials=N_TRIALS, n_inliers=N_INLIERS),
        rounds=1,
        iterations=1,
    )
    rows = [
        [r.axiom, r.shape, f"{r.n_found}/{r.n_trials}", r.cell(),
         "obeys" if r.obeys else "FAIL"]
        for r in results
    ]
    write_result(
        "table5_axioms_mccatch",
        format_table(
            ["axiom", "shape", "mcs found", "t (p-value)", "verdict"],
            rows,
            title=f"Table V - McCatch ({N_TRIALS} trials x {N_INLIERS} inliers)",
        ),
    )
    assert all(r.obeys for r in results), "McCatch must obey every axiom cell"


def bench_table5_gen2out(benchmark):
    """Gen2Out: passes Gaussian, fails to find mcs on cross/arc (paper)."""

    def run():
        out = []
        for axiom in ("isolation", "cardinality"):
            for shape in ("gaussian", "cross", "arc"):
                trials = [
                    _gen2out_trial(
                        make_axiom_dataset(
                            shape, axiom, n_inliers=N_INLIERS, random_state=t
                        )
                    )
                    for t in range(N_TRIALS)
                ]
                out.append(aggregate_trials(shape, axiom, trials))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [r.axiom, r.shape, f"{r.n_found}/{r.n_trials}", r.cell(),
         "obeys" if r.obeys else "FAIL"]
        for r in results
    ]
    write_result(
        "table5_axioms_gen2out",
        format_table(
            ["axiom", "shape", "mcs found", "t (p-value)", "verdict"],
            rows,
            title=f"Table V - Gen2Out ({N_TRIALS} trials x {N_INLIERS} inliers)",
        ),
    )
    # Paper's qualitative claim: Gen2Out misses at least one nongaussian cell.
    nongaussian = [r for r in results if r.shape != "gaussian"]
    assert any(not r.obeys for r in nongaussian), (
        "expected Gen2Out to fail some cross/arc cell, as in Table V"
    )
