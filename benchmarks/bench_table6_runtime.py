"""Table VI (Q3): runtime of the microcluster detectors on larger data.

Paper (1M-point axiom data, 222K HTTP, ...): McCatch 12 min, Gen2Out
2 h, D.MCA > 10 h — McCatch fastest in nearly all cases.  This bench
times the three microcluster-capable methods on scaled-down versions of
the same workloads and checks the ordering where the paper is
unambiguous (the big axiom datasets).
"""

from __future__ import annotations

import time

from _common import format_table, scaled, write_result
from repro import McCatch
from repro.baselines import DMCA, Gen2Out
from repro.datasets import load, make_axiom_dataset

WORKLOADS = [
    ("gauss-isolation", lambda: make_axiom_dataset(
        "gaussian", "isolation",
        n_inliers=int(scaled(1.0, lo=0.05, hi=50.0) * 20_000), random_state=0).X),
    ("http-like", lambda: load("http", scale=scaled(0.1, lo=0.02), random_state=0).data),
    ("satellite-like", lambda: load("satellite", scale=scaled(0.5, lo=0.1),
                                    random_state=0).data),
    ("speech-like", lambda: load("speech", scale=scaled(0.5, lo=0.1),
                                 random_state=0).data),
]

DETECTORS = [
    ("McCatch", lambda X: McCatch().fit(X)),
    ("Gen2Out", lambda X: Gen2Out(random_state=0).fit(X)),
    ("D.MCA", lambda X: DMCA(random_state=0).fit_scores(X)),
]


def bench_table6_runtime(benchmark):
    timings: dict[str, dict[str, float]] = {}

    def run():
        for wname, loader in WORKLOADS:
            X = loader()
            timings[wname] = {"n": X.shape[0]}
            for dname, fit in DETECTORS:
                t0 = time.perf_counter()
                fit(X)
                timings[wname][dname] = time.perf_counter() - t0
        return timings

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            wname,
            f"{int(vals['n']):,}",
            *(f"{vals[d]:.2f}s" for d, _ in DETECTORS),
        ]
        for wname, vals in timings.items()
    ]
    write_result(
        "table6_runtime",
        format_table(
            ["workload", "n", *(d for d, _ in DETECTORS)],
            rows,
            title="Table VI - runtime of the microcluster detectors",
        ),
    )

    # The paper's headline ordering on the big axiom data has McCatch
    # fastest (12 min vs 2 h for Gen2Out and > 10 h for D.MCA at 1M
    # points).  Our Gen2Out surrogate reproduces its multi-forest cost
    # and the ordering; our D.MCA surrogate is an O(n * psi * t) iNNE
    # ensemble without the original's quadratic internals, so it is
    # *faster* than the real D.MCA and only a same-ballpark check is
    # meaningful for it (see EXPERIMENTS.md).
    big = timings["gauss-isolation"]
    assert big["McCatch"] < big["Gen2Out"], "McCatch should beat Gen2Out on axiom-scale data"
    assert big["McCatch"] < 10.0 * big["D.MCA"], "McCatch should stay in D.MCA's ballpark"
