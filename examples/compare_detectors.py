"""Head-to-head: McCatch vs the Table I inventory on a microcluster task.

Reproduces the paper's motivating observation (Sec. I): outliers with
close neighbors — microclusters — defeat most classic detectors, while
McCatch is built for them.

Run:  python examples/compare_detectors.py
"""

import time
import warnings

import numpy as np

from repro import McCatch
from repro.baselines import all_detectors
from repro.eval import auroc

warnings.filterwarnings("ignore")
rng = np.random.default_rng(0)

# 600 inliers + one 25-point microcluster + 5 one-off outliers.  (Small
# enough that even the cubic exact-ABOD baseline finishes in seconds.)
N_INLIERS = 600
inliers = rng.normal(0.0, 1.0, (N_INLIERS, 2))
microcluster = rng.normal(0.0, 0.02, (25, 2)) + [9.0, 9.0]
singles = rng.uniform(-12, 12, (5, 2))
singles = singles / np.linalg.norm(singles, axis=1, keepdims=True) * 11.0
X = np.vstack([inliers, microcluster, singles])
y = np.zeros(X.shape[0], dtype=int)
y[N_INLIERS:] = 1

print(f"{X.shape[0]} points, 25-point microcluster + 5 one-off outliers\n")
print(f"{'method':<12} {'AUROC':>7} {'time':>8}   microcluster members caught in top-30")

rows = []
t0 = time.perf_counter()
scores = McCatch().fit(X).point_scores
rows.append(("McCatch", auroc(y, scores), time.perf_counter() - t0, scores))
for det in all_detectors(random_state=0):
    t0 = time.perf_counter()
    try:
        scores = det.fit_scores(X)
    except MemoryError:  # pragma: no cover - depends on machine
        continue
    rows.append((det.name, auroc(y, scores), time.perf_counter() - t0, scores))

mc_members = set(range(N_INLIERS, N_INLIERS + 25))
for name, value, seconds, scores in sorted(rows, key=lambda r: -r[1]):
    top30 = set(map(int, np.argsort(scores)[-30:]))
    caught = len(top30 & mc_members)
    print(f"{name:<12} {value:7.3f} {seconds:7.2f}s   {caught}/25")

print("\nNeighbor-based scores (LOF, kNN-Out, ODIN with k <= 10) rate the")
print("25-point clump as ordinary — each member has plenty of close")
print("neighbors.  McCatch's Group 1NN Distance sees the clump as one")
print("entity that is far from everything else.")
