"""McCatch on DNA reads with two custom metrics (goal G1 in action).

Nondimensional data needs only a distance function.  We screen a batch
of sequencing reads for contamination: most reads come from the host
genome (mutated copies of a reference), a handful from a contaminant
organism.  The contaminant reads are near-identical to *each other* —
a textbook nonsingleton microcluster — so point detectors that only
look at 1NN distance would miss them.

Two metrics are compared:

- token-level edit distance (exact, quadratic per pair);
- Jaccard distance between 3-mer profiles (linear per pair — the
  index-friendly approximation for long reads).

Run:  python examples/custom_metric_dna.py
"""

import numpy as np

from repro import McCatch
from repro.metric.sequences import sequence_edit_distance
from repro.metric.sets import jaccard_distance, ngram_profile

rng = np.random.default_rng(11)
BASES = np.array(list("ACGT"))


def mutate(read: str, n_edits: int) -> str:
    chars = list(read)
    for _ in range(n_edits):
        pos = rng.integers(len(chars))
        chars[pos] = str(rng.choice(BASES))
    return "".join(chars)


# Host reads: reference ± up to 3 point mutations.
reference = "".join(rng.choice(BASES, size=40))
host_reads = [mutate(reference, int(rng.integers(0, 4))) for _ in range(200)]

# Contaminant: an unrelated organism, 4 near-identical reads.
contaminant = "".join(rng.choice(BASES, size=40))
contaminant_reads = [mutate(contaminant, 1) for _ in range(4)]

reads = host_reads + contaminant_reads
planted = set(range(200, 204))

print(f"{len(reads)} reads, contaminant at indices {sorted(planted)}\n")

for label, metric in (
    ("edit distance", sequence_edit_distance),
    ("3-mer Jaccard", lambda a, b: jaccard_distance(ngram_profile(a, 3), ngram_profile(b, 3))),
):
    result = McCatch(index="vptree").fit(reads, metric=metric)
    print(f"=== {label} ===")
    contaminant_mc = None
    for rank, mc in enumerate(result.microclusters):
        if planted <= set(map(int, mc.indices)):
            contaminant_mc = (rank, mc)
            break
    assert contaminant_mc is not None, "contaminant reads were not gelled together"
    rank, mc = contaminant_mc
    print(
        f"  contaminant cluster found: rank #{rank} of {len(result.microclusters)}, "
        f"|M|={mc.cardinality}, score={mc.score:.1f} bits/read, "
        f"bridge to nearest host read = {mc.bridge_length:.1f}"
    )
    top = result.microclusters[0]
    print(
        f"  (rank #0 is a one-off host read with score {top.score:.1f} — the "
        f"Cardinality Axiom ranks a lone outlier above a 4-read cluster)"
    )
    print()

print("Both metrics gel the 4 contaminant reads into ONE ranked microcluster —")
print("grouping is what reveals the coalition; point detectors return 4 unrelated")
print("alerts at best.  The 3-mer profile metric does it without quadratic-length")
print("alignments.")
