"""Produce a self-contained HTML report and an archived JSON result.

Fits McCatch on satellite-like tile data (the Fig. 1/8 'attention
routing' use case), then writes:

- ``mccatch_report.html`` — ranked microclusters, 'Oracle' plot, cutoff
  histogram, colored scatter, and prose explanations (open in any
  browser; no external assets);
- ``mccatch_result.json`` — the full result for later reloading with
  :func:`repro.io.load_result_json`;
- ``mccatch_result.md`` — the ranking as a Markdown table.

Run:  python examples/html_report.py [output_dir]
"""

import sys
from pathlib import Path

from repro import McCatch
from repro.datasets import make_shanghai_tiles
from repro.io import result_to_markdown, save_result_json
from repro.viz import write_report

out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
out_dir.mkdir(parents=True, exist_ok=True)

tiles = make_shanghai_tiles(random_state=0)
result = McCatch().fit(tiles.rgb)

print(result.summary())
print()

report = write_report(
    result,
    out_dir / "mccatch_report.html",
    tiles.rgb,
    title="Satellite tiles — unusual roofs",
)
archive = save_result_json(result, out_dir / "mccatch_result.json")
md_path = out_dir / "mccatch_result.md"
md_path.write_text(result_to_markdown(result), encoding="utf-8")

print(f"HTML report : {report}")
print(f"JSON archive: {archive}")
print(f"Markdown    : {md_path}")

# Round-trip sanity: the archive reloads to the same ranking.
from repro.io import load_result_json  # noqa: E402

reloaded = load_result_json(archive)
assert [m.score for m in reloaded.microclusters] == [m.score for m in result.microclusters]
print("JSON archive verified: reloads to the identical ranking.")
