"""Quantifying the paper's join speed-up principles (Sec. IV-G).

McCatch's cost is dominated by counting neighbors; the paper lists four
principles that keep this subquadratic.  Using
:class:`repro.metric.CountingMetricSpace` we can measure the thing that
actually matters — *distance evaluations* — instead of noisy
wall-clock numbers:

1. using-index principle:  VP-tree pruning vs brute-force scans;
2. sparse-focused principle:  skip counts already known to exceed c;
3. (for expensive metrics) LAESA pivot bounds vs any tree.

Run:  python examples/join_principles.py
"""

import numpy as np

from repro import McCatch
from repro.core.oracle import build_oracle_plot
from repro.core.radii import define_radii
from repro.index import BruteForceIndex, LAESAIndex, VPTree
from repro.metric import CountingMetricSpace, MetricSpace

rng = np.random.default_rng(0)
X = np.vstack([
    rng.normal((0, 0), 0.5, (400, 2)),
    rng.normal((20, 0), 0.5, (400, 2)),
    rng.normal((0, 20), 0.5, (400, 2)),
    [[40.0, 40.0], [40.1, 40.0]],
])
n = X.shape[0]
print(f"dataset: {n} points in 3 well-separated clusters + a planted pair\n")


def oracle_plot_cost(sparse_focused: bool) -> int:
    space = CountingMetricSpace(MetricSpace(X))
    tree = VPTree(space)
    radii = define_radii(tree, 15)
    build_oracle_plot(tree, radii, max_slope=0.1,
                      max_cardinality=int(0.1 * n), sparse_focused=sparse_focused)
    return space.counter.total


# -- principle 1: using-index ------------------------------------------------
radius = 2.0
brute_space = CountingMetricSpace(MetricSpace(X))
BruteForceIndex(brute_space).count_within(np.arange(n), radius)
brute_calls = brute_space.counter.total

vp_space = CountingMetricSpace(MetricSpace(X))
VPTree(vp_space).count_within(np.arange(n), radius)
vp_calls = vp_space.counter.total

laesa_space = CountingMetricSpace(MetricSpace(X))
LAESAIndex(laesa_space, n_pivots=8).count_within(np.arange(n), radius)
laesa_calls = laesa_space.counter.total

print("1. using-index principle — one range-count join, distance evaluations:")
print(f"   brute force : {brute_calls:>12,}   (n^2 = {n * n:,})")
print(f"   VP-tree     : {vp_calls:>12,}   ({brute_calls / vp_calls:.1f}x fewer)")
print(f"   LAESA       : {laesa_calls:>12,}   ({brute_calls / laesa_calls:.1f}x fewer; "
      "includes pivot-table build)")

# -- principle 2: sparse-focused ----------------------------------------------
dense = oracle_plot_cost(sparse_focused=False)
sparse = oracle_plot_cost(sparse_focused=True)
print("\n2. sparse-focused principle — full 'Oracle' plot build:")
print(f"   exhaustive     : {dense:>12,} distance evaluations")
print(f"   sparse-focused : {sparse:>12,}   ({dense / sparse:.1f}x fewer)")

# -- and the output is identical either way ----------------------------------
a = McCatch(sparse_focused=True).fit(X)
b = McCatch(sparse_focused=False).fit(X)
assert set(map(int, a.outlier_indices)) == set(map(int, b.outlier_indices))
print("\n3. identical detections with and without the speed-ups (asserted) —")
print("   the principles buy time, not accuracy; the planted pair is found:")
pair = [m for m in a.microclusters if set(map(int, m.indices)) == {n - 2, n - 1}]
print(f"   {pair[0] if pair else a.microclusters[0]}")
