"""Compare McCatch against bundled baselines in three lines.

`evaluate_detectors` is the programmatic Table IV: every detector runs
on every dataset, AUROC / AP / Max-F1 are collected, and methods are
summarized by the paper's harmonic-mean-of-ranks.  Detectors that
cannot run on a dataset (here: the vector-only baselines on the
nondimensional Last Names) are recorded as failures and don't compete
— the paper's "NON APPL." cells.

Run:  python examples/leaderboard_quick.py
"""

from repro import McCatch
from repro.baselines import LOF, IForest, KNNOut
from repro.eval import evaluate_detectors

board = evaluate_detectors(
    [McCatch(), LOF(), KNNOut(), IForest(random_state=0)],
    ["wine", "glass", "vertebral", "last_names"],
    scale=1.0,
)

print(board.render(metric="auroc"))
print()
for cell in board.failures():
    print(f"NON APPL.: {cell.detector} on {cell.dataset} — {cell.error}")
print()
print("harmonic mean ranks (lower = better):")
for method, rank in sorted(board.harmonic_mean_ranks("auroc").items(), key=lambda kv: kv[1]):
    print(f"  {method:<10} {rank:.2f}")
