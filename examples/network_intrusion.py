"""Network-intrusion scenario (paper Fig. 8(ii), HTTP stand-in).

222K connection records (scaled down here) described by log bytes
sent / received and duration.  McCatch flags a tight microcluster of
'DoS' connections — a coalition exploiting one vulnerability — plus
scattered one-off rarities, without labels or tuning.

Run:  python examples/network_intrusion.py [scale]
"""

import sys
import time

import numpy as np

from repro import McCatch
from repro.datasets import make_http_like
from repro.eval import auroc, average_precision

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
X, y = make_http_like(scale=scale, random_state=0)
print(f"HTTP-like traffic: {X.shape[0]:,} connections, {int(y.sum())} true anomalies")

t0 = time.perf_counter()
result = McCatch().fit(X)
elapsed = time.perf_counter() - t0
print(f"McCatch finished in {elapsed:.1f}s "
      f"({len(result.microclusters)} microclusters, {result.n_outliers} outlying points)")

print(f"\nAUROC vs ground truth: {auroc(y, result.point_scores):.3f}")
print(f"Average precision:     {average_precision(y, result.point_scores):.3f}")

print("\nNonsingleton microclusters (coalitions):")
for mc in result.nonsingleton():
    members = X[mc.indices]
    attacks = int(y[mc.indices].sum())
    print(
        f"  {mc.cardinality} connections, score {mc.score:.1f}: "
        f"mean log-bytes-sent {members[:, 0].mean():.1f} "
        f"({attacks}/{mc.cardinality} confirmed anomalies)"
    )
    if members[:, 0].mean() > 10:
        print("    -> DoS signature: oversized payloads to one server")

print("\nTop one-off rarities:")
for mc in [m for m in result.microclusters if m.is_singleton][:5]:
    i = int(mc.indices[0])
    print(f"  conn #{i}: features {np.round(X[i], 2)}, score {mc.score:.1f}")
