"""A tour of McCatch's internals: the 'Oracle' plot and the MDL cutoff.

Rebuilds the paper's Figs. 3 and 4 as text: the toy dataset with an
inlier blob, a halo point, a microcluster and an isolate point; their
neighbor-count curves; the Oracle plot positions; the Histogram of 1NN
Distances and the data-driven Cutoff.

Run:  python examples/oracle_plot_tour.py
"""

import numpy as np

from repro import McCatch

rng = np.random.default_rng(3)

# The Fig. 3 cast: inliers 'A', a halo point 'B', a microcluster with
# core 'C' and halo 'D', and an isolate point 'E'.
inliers = rng.normal([30.0, 30.0], 4.0, size=(800, 2))
halo_b = np.array([[44.0, 30.0]])
mc = rng.normal([70.0, 75.0], 0.4, size=(9, 2))
halo_d = np.array([[72.5, 75.0]])
isolate_e = np.array([[95.0, 5.0]])
X = np.vstack([inliers, halo_b, mc, halo_d, isolate_e])
core_inlier = int(np.argmin(np.linalg.norm(inliers - [30.0, 30.0], axis=1)))
cast = {"A (inlier)": core_inlier, "B (halo)": 800, "C (mc core)": 801,
        "D (mc halo)": 810, "E (isolate)": 811}

result = McCatch().fit(X)
o = result.oracle

print("Radius ladder (Alg. 1):")
print("  " + "  ".join(f"r{k}={r:.3g}" for k, r in enumerate(o.radii)))

print("\nNeighbor-count curves (Alg. 2 / Fig. 3(iii)):")
for name, i in cast.items():
    row = ["    ." if c < 0 else f"{c:5d}" for c in o.counts[i]]
    print(f"  {name:12s} {' '.join(row)}")

print("\n'Oracle' plot coordinates (x = 1NN Distance, y = Group 1NN Distance):")
for name, i in cast.items():
    print(f"  {name:12s} x={o.x[i]:8.4f}  y={o.y[i]:8.4f}")

print("\nHistogram of 1NN Distances + MDL cutoff (Def. 4-6 / Fig. 4):")
hist = result.cutoff.histogram
peak, cut = result.cutoff.peak_index, result.cutoff.index
for e, h in enumerate(hist):
    bar = "#" * min(60, h)
    marks = "".join(
        m for cond, m in [(e == peak, " <- peak"), (e == cut, " <- CUTOFF d")] if cond
    )
    print(f"  bin {e:2d} (r={o.radii[e]:8.3g}) |{bar}{' ' if bar else ''}{h}{marks}")
print(f"\nCutoff d = {result.cutoff.value:.4g}")

print("\nVerdicts:")
for name, i in cast.items():
    rank = result.labels[i]
    verdict = "inlier" if rank < 0 else repr(result.microclusters[rank])
    print(f"  {name:12s} -> {verdict}")

# The explain module renders the same story as ASCII art and prose.
from repro.core.explain import ascii_oracle_plot, explain_point  # noqa: E402

print("\n" + ascii_oracle_plot(result))
print("\nWhy is 'C' flagged?")
print(explain_point(result, cast["C (mc core)"]))
