"""Quickstart: detect microclusters in vector data with default settings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import McCatch

rng = np.random.default_rng(0)

# Inliers: two Gaussian blobs.  Planted structure: a 12-point
# microcluster (e.g. a coordinated fraud ring) and two one-off outliers.
inliers = np.vstack(
    [
        rng.normal([0.0, 0.0], 1.0, size=(700, 2)),
        rng.normal([6.0, 1.0], 0.8, size=(300, 2)),
    ]
)
fraud_ring = rng.normal([3.0, 9.0], 0.05, size=(12, 2))
one_offs = np.array([[12.0, -4.0], [-8.0, 8.0]])
X = np.vstack([inliers, fraud_ring, one_offs])

# McCatch is hands-off: a=15, b=0.1, c=ceil(0.1 n) are the paper's
# defaults and need no tuning.
result = McCatch().fit(X)

print(result.summary())
print()
print("Ranked microclusters (most strange first):")
for rank, mc in enumerate(result.microclusters):
    kind = "one-off outlier" if mc.is_singleton else f"{mc.cardinality}-point microcluster"
    print(
        f"  #{rank}: {kind:24s} score={mc.score:7.2f} bits/point, "
        f"bridge to nearest inlier ~ {mc.bridge_length:.2f}"
    )

# The per-point scores (W in the paper) support classic point-ranking
# workflows; here the planted points occupy the top of the ranking.
top = np.argsort(result.point_scores)[-14:]
print()
print(f"Top-14 points by anomaly score: {sorted(map(int, top))}")
print(f"(planted structure lives at indices {1000}..{1013})")
