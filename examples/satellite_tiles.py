"""Attention routing on satellite imagery (paper Figs. 1(i), 8(i)).

Images are split into tiles; each tile's mean RGB is one 3-d point.
McCatch finds *groups* of alike-but-unusual tiles (roof pairs, summit
snow) and distinguishes them from scattered, mutually distinct odd
tiles — the paper's 'attention routing' use case.

Run:  python examples/satellite_tiles.py
"""

from repro import McCatch
from repro.datasets import make_shanghai_tiles, make_volcano_tiles


def report(city: str, tiles) -> None:
    print(f"=== {city}: {len(tiles)} tiles ===")
    result = McCatch().fit(tiles.rgb)
    print(f"{len(result.microclusters)} microclusters "
          f"({len(result.nonsingleton())} nonsingleton)")
    for mc in result.nonsingleton():
        rgb = tuple(int(v) for v in tiles.rgb[mc.indices].mean(axis=0))
        cells = [f"({int(r)},{int(c)})" for r, c in tiles.positions[mc.indices]]
        print(
            f"  {mc.cardinality}-tile group, score {mc.score:.1f}, "
            f"mean RGB {rgb}, at tiles {' '.join(cells)}"
        )
    singles = [m for m in result.microclusters if m.is_singleton][:4]
    print("  scattered odd tiles:")
    for mc in singles:
        i = int(mc.indices[0])
        r, c = (int(v) for v in tiles.positions[i])
        rgb = tuple(int(v) for v in tiles.rgb[i])
        print(f"    tile ({r},{c}) RGB {rgb}, score {mc.score:.1f}")
    print()


report("Shanghai-like urban grid", make_shanghai_tiles(random_state=0))
report("Volcano-like cone", make_volcano_tiles(random_state=0))

print("Reading the result: grouped tiles are 'alike and unusual'")
print("(two red roofs, two blue roofs, a snow cap) while singletons are")
print("'unusual and unlike anything else' — exactly Fig. 1(i)'s story.")
