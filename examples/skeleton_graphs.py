"""Graph data: wild-animal skeletons among human ones (paper Fig. 1(iii)).

Skeleton graphs are trees; the distance is the exact Zhang-Shasha tree
edit distance.  McCatch runs on the trees directly — no feature
extraction, no embedding.

Run:  python examples/skeleton_graphs.py
"""

from repro import McCatch
from repro.datasets import make_skeletons
from repro.eval import auroc
from repro.metric.trees import tree_edit_distance

trees, labels = make_skeletons(n_humans=60, n_animals=3, random_state=0)
print(f"{len(trees)} skeleton graphs ({int(labels.sum())} wild animals planted)")
print(f"example human skeleton:    {trees[0]}")
print(f"example quadruped outlier: {trees[-1]}")

result = McCatch().fit(trees, tree_edit_distance)
print(f"\nAUROC: {auroc(labels, result.point_scores):.3f} "
      f"(paper reports a perfect 1.0 on Skeletons)")

print("\nRanked microclusters:")
for rank, mc in enumerate(result.microclusters[:6]):
    kinds = ["human" if labels[i] == 0 else "WILD ANIMAL" for i in mc.indices]
    print(f"  #{rank}: {mc.cardinality} skeleton(s) score={mc.score:.1f} -> {kinds}")
