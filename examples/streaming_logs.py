"""Streaming detection on a simulated connection-log feed.

The paper's flagship practical result (Fig. 8ii) finds a 30-connection
'DoS back' microcluster in HTTP logs.  Production logs arrive
continuously; this example replays an http-like feed through
:class:`repro.StreamingMcCatch`: full McCatch refits run on a geometric
schedule, and in between, each new connection is scored immediately
against the current model.

Run:  python examples/streaming_logs.py
"""

import numpy as np

from repro import McCatch, StreamingMcCatch
from repro.datasets import make_http_like

rng = np.random.default_rng(0)

# An http-like day of traffic (bytes in/out, duration — log-scaled),
# replayed in batches of 500 connections.
X, labels = make_http_like(n=6_000, random_state=0)
order = rng.permutation(X.shape[0])
X, labels = X[order], labels[order]

stream = StreamingMcCatch(McCatch(), refit_factor=1.5, min_fit_size=500)

alerts: list[int] = []
seen = 0
for start in range(0, X.shape[0], 500):
    batch = X[start : start + 500]
    update = stream.update(batch)
    mode = "REFIT " if update.refitted else "score "
    n_flagged = update.provisional_outliers.size
    if n_flagged:
        alerts.extend(start + (i - (len(stream) - len(batch))) for i in
                      (int(p) for p in update.provisional_outliers))
    print(
        f"[{mode}] batch at {start:5d}: {len(batch):4d} connections, "
        f"{n_flagged:3d} flagged, window={len(stream)}"
    )
    seen += len(batch)

# Final consolidation: one full McCatch over the current window.
result = stream.refit()
print()
print(result.summary())

flagged = set(map(int, result.outlier_indices))
truth = set(map(int, np.nonzero(labels)[0]))
caught = len(flagged & truth)
print()
print(f"Ground truth attacks in window: {len(truth)}; caught at refit: {caught}")
nonsingleton = result.nonsingleton()
if nonsingleton:
    mc = max(nonsingleton, key=lambda m: m.cardinality)
    hits = sum(1 for i in mc.indices if labels[int(i)])
    print(
        f"Largest microcluster: {mc.cardinality} connections, "
        f"{hits} of them labeled attacks (the coordinated burst)."
    )
