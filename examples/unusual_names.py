"""Nondimensional data: unusual last names (paper Fig. 1(ii)).

McCatch needs only a distance function — no coordinates.  Here the
dataset is a list of surnames under the Levenshtein edit distance;
non-English names of varied origins surface as outliers.

Run:  python examples/unusual_names.py
"""

from repro import McCatch
from repro.datasets import make_last_names
from repro.eval import auroc
from repro.metric.strings import levenshtein

names, labels = make_last_names(n_inliers=800, n_outliers=20, random_state=0)
print(f"{len(names)} surnames ({int(labels.sum())} non-English planted)")

result = McCatch().fit(names, levenshtein)
print(f"AUROC: {auroc(labels, result.point_scores):.3f} "
      f"(paper reports 0.75 on the real Last Names data)")

order = result.point_scores.argsort()[::-1]
print("\nMost anomalous names:")
seen = set()
shown = 0
for i in order:
    if names[i] in seen:
        continue
    seen.add(names[i])
    flag = "<- non-English" if labels[i] else ""
    print(f"  {names[i]:<22s} score={result.point_scores[i]:6.2f} {flag}")
    shown += 1
    if shown == 12:
        break

print("\nLeast anomalous names (the inlier core):")
seen = set()
shown = 0
for i in order[::-1]:
    if names[i] in seen:
        continue
    seen.add(names[i])
    print(f"  {names[i]:<22s} score={result.point_scores[i]:6.2f}")
    shown += 1
    if shown == 5:
        break
