"""McCatch reproduction: scalable microcluster detection.

Reproduction of *McCatch: Scalable Microcluster Detection in
Dimensional and Nondimensional Datasets* (Sánchez Vinces, Cordeiro,
Faloutsos — ICDE 2024), including the detector, the metric-tree and
similarity-join substrates, the 11 competitor baselines, the datasets,
and the evaluation harness.

Quickstart
----------
>>> import numpy as np
>>> from repro import McCatch
>>> X = np.vstack([np.random.default_rng(0).normal(size=(500, 2)),
...                [[9.0, 9.0], [9.05, 9.0]]])
>>> result = McCatch().fit(X)
>>> for mc in result.microclusters:
...     print(mc)            # ranked most-strange-first
"""

from repro.core.mccatch import BatchScores, McCatch, McCatchModel, detect_microclusters
from repro.core.result import CutoffInfo, McCatchResult, Microcluster, OraclePlot
from repro.core.streaming import StreamingMcCatch, StreamingUpdate
from repro.engine import BatchQueryEngine
from repro.metric.base import MetricSpace

__version__ = "1.2.0"

__all__ = [
    "McCatch",
    "McCatchModel",
    "BatchScores",
    "BatchQueryEngine",
    "detect_microclusters",
    "McCatchResult",
    "Microcluster",
    "OraclePlot",
    "CutoffInfo",
    "StreamingMcCatch",
    "StreamingUpdate",
    "MetricSpace",
    "__version__",
]
