"""McCatch reproduction: scalable microcluster detection.

Reproduction of *McCatch: Scalable Microcluster Detection in
Dimensional and Nondimensional Datasets* (Sánchez Vinces, Cordeiro,
Faloutsos — ICDE 2024), including the detector, the metric-tree and
similarity-join substrates, the 11 competitor baselines, the datasets,
and the evaluation harness.

Quickstart
----------
>>> import numpy as np
>>> from repro import McCatch
>>> X = np.vstack([np.random.default_rng(0).normal(size=(500, 2)),
...                [[9.0, 9.0], [9.05, 9.0]]])
>>> result = McCatch().fit(X)
>>> for mc in result.microclusters:
...     print(mc)            # ranked most-strange-first
"""

from repro.core.mccatch import BatchScores, McCatch, McCatchModel, detect_microclusters
from repro.core.result import CutoffInfo, McCatchResult, Microcluster, OraclePlot
from repro.core.streaming import StreamingMcCatch, StreamingUpdate
from repro.engine import BatchQueryEngine
from repro.metric.base import MetricSpace

# The serving API sits above core/baselines; import it after the core
# chain so the metric -> core -> engine import cycle is entered the
# same way it always was.  (`load_model` is served lazily below — it
# lives in repro.api.estimators, which imports every baseline module.)
from repro.api import (  # noqa: E402  (deliberate ordering, see above)
    Estimator,
    FittedModel,
    ModelRegistry,
    make_estimator,
    spec_of,
)


def __getattr__(name):
    if name == "load_model":
        from repro.api import load_model

        return load_model
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.3.0"

__all__ = [
    "McCatch",
    "McCatchModel",
    "BatchScores",
    "BatchQueryEngine",
    "detect_microclusters",
    "McCatchResult",
    "Microcluster",
    "OraclePlot",
    "CutoffInfo",
    "StreamingMcCatch",
    "StreamingUpdate",
    "MetricSpace",
    "Estimator",
    "FittedModel",
    "ModelRegistry",
    "load_model",
    "make_estimator",
    "spec_of",
    "__version__",
]
