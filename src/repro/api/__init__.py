"""The unified serving API: fit once with any detector, score anything.

Three pieces close the loop the paper's pitch implies:

- **Spec strings** (:func:`make_estimator`, :func:`spec_of`) — one
  URL-style string names a detector and its configuration
  (``"mccatch?a=15&engine=batched"``, ``"lof?k=20"``,
  ``"iforest?seed=3"``); the registry covers McCatch and every
  baseline in :func:`repro.baselines.all_detectors`.
- **The Estimator → FittedModel contract** (:class:`Estimator`,
  :class:`FittedModel`) — ``fit(data, metric=None)`` returns a model
  that scores held-out batches, exposes its training scores, and
  persists to one ``.npz`` (loaded back by :func:`load_model`,
  memory-mapped on request).
- **The model registry** (:class:`ModelRegistry`) — a versioned
  on-disk directory of artifacts keyed by ``(spec, dataset
  fingerprint)``, with ``publish`` / ``resolve`` / ``list`` and
  mmap-shared loads for many-process serving.

>>> from repro.api import ModelRegistry, make_estimator  # doctest: +SKIP
>>> model = make_estimator("mccatch?index=vptree").fit(X)  # doctest: +SKIP
>>> registry = ModelRegistry("models/")                    # doctest: +SKIP
>>> registry.publish(model)                                # doctest: +SKIP
>>> served = registry.resolve("mccatch?index=vptree", mmap=True)  # doctest: +SKIP
>>> served.score_batch(batch)                              # doctest: +SKIP
"""

from repro.api.base import Estimator, FittedModel
from repro.api.model_registry import (
    REGISTRY_FORMAT,
    ModelRecord,
    ModelRegistry,
    dataset_fingerprint,
)
from repro.api.registry import (
    Param,
    format_spec,
    make_estimator,
    parse_spec,
    registered_names,
    spec_of,
)

#: Names served lazily from :mod:`repro.api.estimators`, which imports
#: every baseline module.  Deferring it keeps ``import repro`` (and any
#: non-serving use) from paying for the whole detector inventory; the
#: registry populates itself on the first ``make_estimator`` call.
_ESTIMATOR_EXPORTS = frozenset({
    "API_MODEL_FORMAT",
    "BaselineEstimator",
    "DBOutModel",
    "KNNOutModel",
    "LOFModel",
    "McCatchEstimator",
    "McCatchServingModel",
    "TransductiveModel",
    "load_model",
})


def __getattr__(name):
    if name in _ESTIMATOR_EXPORTS:
        from repro.api import estimators

        return getattr(estimators, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "API_MODEL_FORMAT",
    "REGISTRY_FORMAT",
    "BaselineEstimator",
    "DBOutModel",
    "Estimator",
    "FittedModel",
    "KNNOutModel",
    "LOFModel",
    "McCatchEstimator",
    "McCatchServingModel",
    "ModelRecord",
    "ModelRegistry",
    "Param",
    "TransductiveModel",
    "dataset_fingerprint",
    "format_spec",
    "load_model",
    "make_estimator",
    "parse_spec",
    "registered_names",
    "spec_of",
]
