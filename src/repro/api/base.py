"""The unified serving contract: ``Estimator`` → ``FittedModel``.

Every detector in the library — McCatch and all the Table I baselines —
is servable through two small interfaces:

- :class:`Estimator` is the *fit-once* half: configuration only, no
  state.  ``fit(data, metric=None)`` runs the algorithm and hands back
  a :class:`FittedModel`.  Estimators are constructed from URL-style
  spec strings (``"mccatch?a=15&engine=batched"``, ``"lof?k=20"``) via
  :func:`repro.api.make_estimator`, and :attr:`Estimator.spec` renders
  the canonical spec back, so a spec string is a complete, portable
  description of a configuration.
- :class:`FittedModel` is the *score-anything* half: it holds the
  fitted state, scores held-out batches (``score_batch``), exposes the
  training scores the fit produced (``training_scores``), and persists
  to a single ``.npz`` (``save`` / :func:`repro.api.load_model`) so a
  :class:`~repro.api.model_registry.ModelRegistry` can version and
  serve it.

Detectors whose algorithm permits a real fit/score split (kNN-Out,
LOF, DB-Out score held-out points against the fitted index; McCatch
against its fitted inliers) get inductive models; the rest are wrapped
in :class:`~repro.api.estimators.TransductiveModel`, which documents —
rather than hides — that scoring a batch re-runs the detector on
fitted data plus batch.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np


class Estimator(ABC):
    """Configured, unfitted detector: the fit-once half of the contract."""

    @property
    @abstractmethod
    def spec(self) -> str:
        """Canonical spec string reconstructing this configuration.

        Round-trips through the registry:
        ``make_estimator(est.spec).spec == est.spec``.
        """

    @abstractmethod
    def fit(self, data, metric=None) -> "FittedModel":
        """Run the detector on ``data`` and return the fitted model.

        ``data`` is a 2-d float array (vector data) or, for detectors
        that support nondimensional data (McCatch), any sequence of
        objects together with ``metric``.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.spec!r})"


class FittedModel(ABC):
    """Fitted state ready to serve: the score-anything half."""

    @property
    @abstractmethod
    def spec(self) -> str | None:
        """Spec of the estimator that produced this model.

        ``None`` only for artifacts saved outside the unified API
        (their configuration is not recoverable); such models score
        fine but cannot be published to a registry.
        """

    @property
    @abstractmethod
    def training_scores(self) -> np.ndarray:
        """Per-point anomaly scores of the fitted data (higher = more
        anomalous) — what ``fit_scores`` historically returned."""

    @property
    def n_fitted(self) -> int:
        """Number of elements the model was fitted on."""
        return int(len(self.training_scores))

    @abstractmethod
    def score_batch(self, batch) -> np.ndarray:
        """Anomaly score per element of a held-out ``batch``.

        Deterministic — the same batch scores bit-identically before
        and after a ``save``/``load`` round trip (mmap-loaded included)
        — except for a :class:`~repro.api.estimators.TransductiveModel`
        of a *randomized* detector without a fixed ``seed=``, whose
        re-run draws fresh entropy each call; pin the seed in the spec
        for reproducible transductive serving.
        """

    @abstractmethod
    def save(self, path) -> Path:
        """Persist the model to a single ``.npz`` archive."""

    @property
    def training_data(self):
        """The fitted data, when the model retains it (else ``None``).

        The registry derives the dataset fingerprint from this, so
        ``ModelRegistry.publish(model)`` needs no extra arguments.
        """
        return None

    @staticmethod
    def load(path, *, mmap: bool = False) -> "FittedModel":
        """Load any model saved by a :class:`FittedModel` (format-dispatching)."""
        from repro.api.estimators import load_model

        return load_model(path, mmap=mmap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.spec!r}, n_fitted={self.n_fitted})"
