"""Estimator/FittedModel implementations and the standard registrations.

McCatch and every baseline in :func:`repro.baselines.all_detectors`
are registered here, so ``make_estimator("<name>?<params>")`` covers
the whole inventory.  Three baselines whose algorithms permit a real
fit/score split get **inductive** models that score held-out batches
against the fitted state:

- ``knnout`` — distance to the k-th nearest *fitted* point;
- ``lof`` — classic inductive LOF: the held-out point's reachability
  against the fitted k-distances and lrds;
- ``dbout`` — negated count of fitted points within the radius frozen
  at fit time.

Everything else is wrapped in :class:`TransductiveModel`, which
documents the honest semantics: those algorithms (in-degree graphs,
clusterings, forests over the sample, autoencoders trained
transductively) define scores only relative to the full dataset, so
``score_batch`` re-runs the detector on fitted data + batch and
returns the batch rows' scores.

All models persist to a single ``.npz``; :func:`load_model` dispatches
on the embedded format tag and serves uncompressed archives via
memory-mapping on request (``mmap=True``), sharing one on-disk model
across scoring processes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.api.base import Estimator, FittedModel
from repro.api.registry import (
    DetectorEntry,
    IntTuple,
    Param,
    make_estimator,
    register_detector,
)
from repro.baselines import (
    ABOD,
    ALOCI,
    DBOut,
    DBSCAN,
    DIAD,
    DMCA,
    DOIForest,
    DeepSVDD,
    FastABOD,
    GLOSH,
    Gen2Out,
    IForest,
    KMeansMinusMinus,
    KNNOut,
    LDOF,
    LOCI,
    LOF,
    ODIN,
    OPTICS,
    PLDOF,
    RDA,
    SCiForest,
    Sparx,
    XTreK,
)
from repro.baselines.base import BaseDetector, check_finite_scores, knn_distances
from repro.baselines.dbout import resolve_radius
from repro.baselines.lof import lof_fit_arrays, lof_score_against
from repro.core.mccatch import BatchScores, McCatch, McCatchModel
from repro.engine import count_within_to, knn_to
from repro.io.models import MODEL_FORMAT as MCCATCH_MODEL_FORMAT
from repro.io.models import model_from_payload
from repro.metric.base import MetricSpace
from repro.metric.vector import vector_metric
from repro.utils.validation import as_batch_rows, as_float_array

#: Schema tag of the generic (non-McCatch) fitted-model archive.
API_MODEL_FORMAT = "repro.api-model.v1"


# ---------------------------------------------------------------------------
# McCatch
# ---------------------------------------------------------------------------


class McCatchEstimator(Estimator):
    """The unified-API face of :class:`~repro.core.mccatch.McCatch`.

    ``metric`` is the spec's ``metric=`` parameter (an L_p name such as
    ``"manhattan"``), kept on the estimator because it is a property of
    the *fit*, not of the McCatch hyperparameters.  Putting it in the
    spec keeps registry keys honest: models fitted on the same data
    under different metrics are different artifacts.
    """

    def __init__(self, spec: str, detector: McCatch, *, metric: str | None = None):
        self._spec = spec
        self.detector = detector
        self.metric = metric

    @property
    def spec(self) -> str:
        return self._spec

    def fit(self, data, metric=None) -> "McCatchServingModel":
        if metric is not None and self.metric is not None:
            raise TypeError(
                f"{self._spec} already pins metric={self.metric!r}; "
                "don't pass metric= to fit as well"
            )
        effective = metric if metric is not None else self.metric
        if effective is not None and isinstance(data, MetricSpace):
            # a prepared space carries its own metric, which fit_model
            # would use while the spec claims another — the registry
            # would then serve a model its spec does not describe
            if not (
                isinstance(effective, str)
                and data.is_vector
                and getattr(data.metric, "p", None)
                == getattr(vector_metric(effective), "p", object())
            ):
                raise TypeError(
                    f"{self._spec} pins metric={effective!r}, but the data is "
                    "a prepared MetricSpace carrying a different metric; pass "
                    "the raw array instead"
                )
            effective = None  # the space already carries the right metric
        return McCatchServingModel(self._spec, self.detector.fit_model(data, effective))


class McCatchServingModel(FittedModel):
    """A fitted McCatch behind the unified contract.

    Wraps the core :class:`~repro.core.mccatch.McCatchModel` (exposed
    as :attr:`model` for the full result/microcluster view);
    ``score_batch`` returns the plain score array, ``score_details``
    the full :class:`~repro.core.mccatch.BatchScores` with the flagged
    positions.
    """

    def __init__(self, spec: str | None, model: McCatchModel):
        model.spec = spec
        self._spec = spec
        self.model = model

    @property
    def spec(self) -> str | None:
        """The producing spec — ``None`` for archives saved outside the
        unified API (the core hyperparameters are not recoverable from
        the artifact, and inventing a default spec would misattribute
        the model; a spec-less model cannot be published)."""
        return self._spec

    @property
    def training_scores(self) -> np.ndarray:
        return self.model.result.point_scores

    @property
    def training_data(self):
        return self.model.space.data

    @property
    def n_fitted(self) -> int:
        return self.model.n

    def score_batch(self, batch) -> np.ndarray:
        return self.model.score_batch(batch).scores

    def score_details(self, batch) -> BatchScores:
        """Scores plus flagged batch positions (``g >= d``)."""
        return self.model.score_batch(batch)

    def save(self, path) -> Path:
        return self.model.save(path)


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


class BaselineEstimator(Estimator):
    """Spec-built estimator around one :class:`BaseDetector` instance."""

    def __init__(self, spec: str, detector: BaseDetector, model_factory):
        self._spec = spec
        self.detector = detector
        self._model_factory = model_factory

    @property
    def spec(self) -> str:
        return self._spec

    def fit(self, data, metric=None) -> FittedModel:
        if isinstance(data, MetricSpace):
            if not data.is_vector:
                raise TypeError(
                    f"{self._spec}: baselines require vector data "
                    "(only McCatch handles nondimensional spaces)"
                )
            if getattr(data.metric, "p", None) != 2.0:
                raise TypeError(
                    f"{self._spec}: baselines score Euclidean vectors only; "
                    "this space carries a non-Euclidean metric "
                    "(a McCatch capability)"
                )
            data = data.data
        if metric is not None:
            raise TypeError(
                f"{self._spec}: baselines score Euclidean vectors only; "
                "a custom metric is a McCatch capability"
            )
        model = self._model_factory(self._spec, self.detector, as_float_array(data))
        # the inductive fits compute from shared kernels directly, so
        # apply the same guard fit_scores enforces on every other path
        check_finite_scores(self.detector.name, np.asarray(model.training_scores))
        return model


class _ArrayModel(FittedModel):
    """Shared ``.npz`` plumbing for the baseline fitted models."""

    kind: str = ""

    def __init__(self, spec: str, X: np.ndarray, training_scores: np.ndarray):
        self._spec = spec
        self._X = np.asarray(X, dtype=np.float64)
        self._training_scores = np.asarray(training_scores, dtype=np.float64)
        self._space: MetricSpace | None = None

    @property
    def spec(self) -> str:
        return self._spec

    @property
    def training_scores(self) -> np.ndarray:
        return self._training_scores

    @property
    def training_data(self) -> np.ndarray:
        return self._X

    def _fitted_space(self) -> MetricSpace:
        if self._space is None:
            self._space = MetricSpace(self._X)
        return self._space

    def _as_batch(self, batch) -> np.ndarray:
        """Batch rows as (b, d) float64, d pinned to the fitted width
        (see :func:`repro.utils.validation.as_batch_rows`)."""
        return as_batch_rows(batch, self._X.shape[1])

    def _extra_payload(self) -> dict:
        return {}

    def save(self, path) -> Path:
        payload = {
            "format": np.str_(API_MODEL_FORMAT),
            "model_kind": np.str_(self.kind),
            "spec": np.str_(self._spec),
            "X": self._X,
            "training_scores": self._training_scores,
        }
        payload.update(self._extra_payload())
        path = Path(path)
        with open(path, "wb") as f:
            np.savez(f, **payload)
        return path


class KNNOutModel(_ArrayModel):
    """Inductive kNN-Out: held-out score = distance to the k-th nearest
    fitted point (self-exclusion is moot — the point is not in the fit)."""

    kind = "knnout"

    def __init__(self, spec, X, k: int, training_scores):
        super().__init__(spec, X, training_scores)
        self.k = int(k)

    @classmethod
    def fit(cls, spec: str, detector: KNNOut, X: np.ndarray) -> "KNNOutModel":
        # store the *effective* (clamped) k: held-out scoring must use
        # the same neighborhood size the fitted scores were built with
        k = min(detector.k, X.shape[0] - 1)
        dists, _ = knn_distances(X, k)
        return cls(spec, X, k, dists[:, -1])

    def score_batch(self, batch) -> np.ndarray:
        rows = self._as_batch(batch)
        n = self._X.shape[0]
        # self.k was clamped to n-1 at fit time: held-out scoring uses
        # the exact neighborhood size the training scores were built with
        dists, _ = knn_to(self._fitted_space(), rows, np.arange(n), self.k)
        return dists[:, -1]

    def _extra_payload(self) -> dict:
        return {"k": np.int64(self.k)}

    @classmethod
    def _from_payload(cls, payload) -> "KNNOutModel":
        return cls(
            str(payload["spec"][()]), payload["X"], int(payload["k"][()]),
            payload["training_scores"],
        )


class LOFModel(_ArrayModel):
    """Inductive LOF: held-out reachability against the fitted
    k-distances and local reachability densities."""

    kind = "lof"

    def __init__(self, spec, X, k: int, k_distance, lrd, training_scores):
        super().__init__(spec, X, training_scores)
        self.k = int(k)
        self.k_distance = np.asarray(k_distance, dtype=np.float64)
        self.lrd = np.asarray(lrd, dtype=np.float64)

    @classmethod
    def fit(cls, spec: str, detector: LOF, X: np.ndarray) -> "LOFModel":
        # effective (clamped) k, for the same reason as KNNOutModel.fit
        k = min(detector.k, X.shape[0] - 1)
        k_distance, lrd, scores = lof_fit_arrays(X, k)
        return cls(spec, X, k, k_distance, lrd, scores)

    def score_batch(self, batch) -> np.ndarray:
        rows = self._as_batch(batch)
        n = self._X.shape[0]
        # self.k was clamped at fit time (see KNNOutModel.score_batch)
        dists, pos = knn_to(self._fitted_space(), rows, np.arange(n), self.k)
        return lof_score_against(self.k_distance, self.lrd, dists, pos)

    def _extra_payload(self) -> dict:
        return {"k": np.int64(self.k), "k_distance": self.k_distance, "lrd": self.lrd}

    @classmethod
    def _from_payload(cls, payload) -> "LOFModel":
        return cls(
            str(payload["spec"][()]), payload["X"], int(payload["k"][()]),
            payload["k_distance"], payload["lrd"], payload["training_scores"],
        )


class DBOutModel(_ArrayModel):
    """Inductive DB-Out: the query radius is frozen at fit time, so a
    held-out point's score is comparable to the training scores."""

    kind = "dbout"

    def __init__(self, spec, X, radius: float, training_scores):
        super().__init__(spec, X, training_scores)
        self.radius = float(radius)

    @classmethod
    def fit(cls, spec: str, detector: DBOut, X: np.ndarray) -> "DBOutModel":
        # training scores come from the detector itself (one source of
        # truth, non-finite guard included); only the radius is kept
        # separately so held-out batches query the same ball
        radius = resolve_radius(X, detector.radius_fraction)
        return cls(spec, X, radius, detector.fit_scores(X))

    def score_batch(self, batch) -> np.ndarray:
        rows = self._as_batch(batch)
        n = self._X.shape[0]
        counts = count_within_to(self._fitted_space(), rows, np.arange(n), self.radius)
        return -counts.astype(np.float64)

    def _extra_payload(self) -> dict:
        return {"radius": np.float64(self.radius)}

    @classmethod
    def _from_payload(cls, payload) -> "DBOutModel":
        return cls(
            str(payload["spec"][()]), payload["X"], float(payload["radius"][()]),
            payload["training_scores"],
        )


class TransductiveModel(_ArrayModel):
    """Fit/score wrapper for detectors with no inductive split.

    Most baselines define a point's score only relative to the whole
    dataset (kNN-graph in-degree, cluster assignments, forests built
    over the sample, transductively trained autoencoders).  This
    wrapper keeps the honest semantics explicit instead of papering
    over them: :meth:`score_batch` re-runs the detector on the fitted
    data with the batch appended and returns the batch rows' scores —
    O(fit) work per call, the real price of a transductive algorithm.
    Randomized detectors replay their ``random_state``, so a fixed
    seed makes ``score_batch`` deterministic and save/load round-trips
    bit-identical.
    """

    kind = "transductive"

    def __init__(self, spec, X, detector: BaseDetector, training_scores):
        super().__init__(spec, X, training_scores)
        self.detector = detector

    @classmethod
    def fit(cls, spec: str, detector: BaseDetector, X: np.ndarray) -> "TransductiveModel":
        return cls(spec, X, detector, detector.fit_scores(X))

    def score_batch(self, batch) -> np.ndarray:
        rows = self._as_batch(batch)
        combined = np.vstack([self._X, rows])
        return self.detector.fit_scores(combined)[self._X.shape[0] :]

    @classmethod
    def _from_payload(cls, payload) -> "TransductiveModel":
        spec = str(payload["spec"][()])
        estimator = make_estimator(spec)
        return cls(spec, payload["X"], estimator.detector, payload["training_scores"])


#: model_kind tag -> class, for the load dispatch.
_MODEL_KINDS: dict[str, type[_ArrayModel]] = {
    cls.kind: cls for cls in (KNNOutModel, LOFModel, DBOutModel, TransductiveModel)
}


def load_model(path, *, mmap: bool = False) -> FittedModel:
    """Load any model saved through the unified API (format-dispatching).

    Handles both the McCatch archive
    (:data:`repro.io.models.MODEL_FORMAT`) and the generic baseline
    archive (:data:`API_MODEL_FORMAT`).  ``mmap=True`` serves the
    arrays as read-only maps of the (uncompressed) archive, so many
    scoring processes share one on-disk copy.
    """
    if mmap:
        from repro.io.mmap import open_npz_mmap

        payload = open_npz_mmap(path)
    else:
        from repro.io.mmap import MappedArchive

        with np.load(Path(path), allow_pickle=False) as npz:
            payload = MappedArchive({key: np.asarray(npz[key]) for key in npz.files})
    fmt = str(payload["format"][()]) if "format" in payload else None
    if fmt == MCCATCH_MODEL_FORMAT:
        core = model_from_payload(payload)
        return McCatchServingModel(core.spec, core)
    if fmt == API_MODEL_FORMAT:
        kind = str(payload["model_kind"][()])
        if kind not in _MODEL_KINDS:
            raise ValueError(f"unknown model kind {kind!r} in {path}")
        return _MODEL_KINDS[kind]._from_payload(payload)
    raise ValueError(f"unsupported model format: {fmt!r}")


# ---------------------------------------------------------------------------
# Registrations
# ---------------------------------------------------------------------------

#: ``seed`` is the uniform spec key for every ``random_state`` knob.
_SEED = Param(int, None, attr="random_state")

_MCCATCH_PARAMS = {
    "a": Param(int, 15, attr="n_radii"),
    "b": Param(float, 0.1, attr="max_slope"),
    "c": Param(float, 0.1, attr="max_cardinality_fraction"),
    "cmax": Param(int, None, attr="max_cardinality"),
    "index": Param(str, "auto", attr="index"),
    # construction strategy for the insertion-tree index families
    # (mtree/slimtree/covertree): "bulk" (the level-synchronous array
    # bulk-load, their default) or "insert" (the per-insert baseline),
    # e.g. "mccatch?index=slimtree&build=insert".  None = the family
    # default, so leaving it out canonicalizes away; index families
    # with no selectable build reject a pinned value loudly.
    "build": Param(str, None, attr="index_build"),
    # frontier-walk implementation for the flat-tree index families:
    # "auto" (family default — the compiled C kernel when it builds,
    # the numpy level walk otherwise), "compiled", "level", or "stack",
    # e.g. "mccatch?index=vptree&walk=compiled".  None = the family
    # default, so leaving it out canonicalizes away; index kinds with
    # no selectable walk reject a pinned value loudly.
    "walk": Param(str, None, attr="index_walk"),
    "engine": Param(str, "batched", attr="engine_mode"),
    # parallel-engine pool size; None = the usable core count.  Only
    # valid with engine=parallel (McCatch rejects the combination
    # loudly otherwise), e.g. "mccatch?engine=parallel&workers=8".
    "workers": Param(int, None),
    # parallel-engine sharding axis: split the query set ("query",
    # default — canonicalizes away) or disjoint subtree node ranges
    # ("tree"), e.g. "mccatch?engine=parallel&shard_by=tree".
    "shard_by": Param(str, "query"),
    "t": Param(float, None, attr="transformation_cost"),
    "sparse": Param(bool, True, attr="sparse_focused"),
    # fit-time L_p metric name; lives on the estimator, not the McCatch
    # constructor.  The default is "euclidean" so spelling it out
    # canonicalizes away: "mccatch?metric=euclidean" keys a registry
    # identically to "mccatch".
    "metric": Param(str, "euclidean"),
}


def _build_mccatch(spec: str, params: dict) -> McCatchEstimator:
    kwargs = {
        _MCCATCH_PARAMS[k].resolve_kw(k): v
        for k, v in params.items()
        if k != "metric"
    }
    return McCatchEstimator(spec, McCatch(**kwargs), metric=params.get("metric"))


register_detector(
    DetectorEntry(
        name="mccatch",
        build=_build_mccatch,
        params=_MCCATCH_PARAMS,
        detector_cls=McCatch,
        description="McCatch microcluster detector (the paper's method)",
    )
)


def _register_baseline(
    name: str,
    cls: type[BaseDetector],
    params: dict[str, Param],
    *,
    model_factory=TransductiveModel.fit,
    aliases: tuple[str, ...] = (),
    grid_name: str | None = None,
) -> None:
    def build(spec: str, coerced: dict) -> BaselineEstimator:
        kwargs = {params[k].resolve_kw(k): v for k, v in coerced.items()}
        return BaselineEstimator(spec, cls(**kwargs), model_factory)

    register_detector(
        DetectorEntry(
            name=name,
            build=build,
            params=params,
            detector_cls=cls,
            aliases=aliases + (cls.name,),
            description=(cls.__doc__ or "").strip().splitlines()[0],
            grid_name=grid_name,
        )
    )


_register_baseline("abod", ABOD, {}, grid_name="ABOD")
_register_baseline("fastabod", FastABOD, {"k": Param(int, 10)}, grid_name="FastABOD")
_register_baseline(
    "knnout", KNNOut, {"k": Param(int, 5)},
    model_factory=KNNOutModel.fit, aliases=("knn",), grid_name="kNN-Out",
)
_register_baseline("odin", ODIN, {"k": Param(int, 5)}, grid_name="ODIN")
_register_baseline(
    "lof", LOF, {"k": Param(int, 5)}, model_factory=LOFModel.fit, grid_name="LOF"
)
_register_baseline(
    "dbout", DBOut, {"radius_fraction": Param(float, 0.1)},
    model_factory=DBOutModel.fit, grid_name="DB-Out",
)
_register_baseline(
    "loci", LOCI,
    {"alpha": Param(float, 0.5), "n_min": Param(int, 20), "n_radii": Param(int, 20)},
    grid_name="LOCI",
)
_register_baseline(
    "aloci", ALOCI,
    {
        "n_grids": Param(int, 15),
        "n_levels": Param(int, 10),
        "n_min": Param(int, 20),
        "seed": _SEED,
    },
    grid_name="ALOCI",
)
_register_baseline(
    "iforest", IForest,
    {"n_trees": Param(int, 100), "subsample": Param(int, 256), "seed": _SEED},
    grid_name="iForest",
)
_register_baseline(
    "gen2out", Gen2Out,
    {
        "n_trees": Param(int, 64),
        "lower_bound": Param(int, 1),
        "upper_bound": Param(int, 11),
        "max_depth_factor": Param(int, 3),
        "contamination": Param(float, 0.02),
        "seed": _SEED,
    },
    grid_name="Gen2Out",
)
_register_baseline(
    "dmca", DMCA,
    {
        "psi": Param(int, 64),
        "n_estimators": Param(int, 64),
        "contamination": Param(float, 0.1),
        "seed": _SEED,
    },
    grid_name="D.MCA",
)
_register_baseline(
    "rda", RDA,
    {
        "n_layers": Param(int, 3),
        "dim_decay": Param(int, 2),
        "n_iter": Param(int, 20),
        "lam": Param(float, 7.5e-5),
        "epochs_per_iter": Param(int, 5),
        "learning_rate": Param(float, 1e-2),
        "seed": _SEED,
    },
    grid_name="RDA",
)
_register_baseline(
    "dbscan", DBSCAN, {"eps": Param(float, None), "min_pts": Param(int, 5)}
)
_register_baseline(
    "optics", OPTICS, {"min_pts": Param(int, 5), "max_eps": Param(float, None)}
)
_register_baseline(
    "kmeansmm", KMeansMinusMinus,
    {
        "n_clusters": Param(int, 3),
        "n_outliers": Param(float, 0.05),
        "n_iter": Param(int, 30),
        "seed": _SEED,
    },
)
_register_baseline("ldof", LDOF, {"k": Param(int, 10)})
_register_baseline(
    "pldof", PLDOF,
    {
        "k": Param(int, 10),
        "n_clusters": Param(int, 5),
        "keep_fraction": Param(float, 0.2),
        "seed": _SEED,
    },
)
_register_baseline(
    "sciforest", SCiForest,
    {
        "n_trees": Param(int, 50),
        "subsample": Param(int, 256),
        "n_hyperplanes": Param(int, 5),
        "n_thresholds": Param(int, 8),
        "seed": _SEED,
    },
)
_register_baseline(
    "glosh", GLOSH, {"min_pts": Param(int, 5), "min_cluster_size": Param(int, 5)}
)
_register_baseline(
    "deepsvdd", DeepSVDD,
    {
        "hidden": Param(IntTuple, None),
        "n_epochs": Param(int, 60),
        "learning_rate": Param(float, 1e-3),
        "weight_decay": Param(float, 1e-4),
        "seed": _SEED,
    },
)
_register_baseline(
    "sparx", Sparx,
    {"n_chains": Param(int, 32), "depth": Param(int, 10), "seed": _SEED},
)
_register_baseline(
    "xtrek", XTreK,
    {
        "max_depth": Param(int, 6),
        "min_leaf": Param(int, 8),
        "psi": Param(int, 64),
        "n_candidate_splits": Param(int, 16),
        "seed": _SEED,
    },
)
_register_baseline(
    "diad", DIAD, {"n_bins": Param(int, 16), "n_pairs": Param(int, 4)}
)
_register_baseline(
    "doiforest", DOIForest,
    {
        "n_trees": Param(int, 64),
        "subsample": Param(int, 256),
        "n_generations": Param(int, 3),
        "mutation_rate": Param(float, 0.25),
        "seed": _SEED,
    },
)
