"""ModelRegistry: a versioned on-disk directory of fitted-model artifacts.

The fit-once-serve-many deployment story needs a place where fitters
*publish* models and scorers *resolve* them.  A registry is one
directory tree, keyed by ``(spec, dataset fingerprint)`` — the spec
says *how* the model was fitted, the fingerprint says *on what* — with
a monotonically growing version per key:

    <root>/
      <detector>/                        e.g. mccatch/
        <spec_digest>-<fingerprint>/     one key
          v0001/
            model.npz                    the FittedModel archive
            meta.json                    spec, fingerprint, version, created
          v0002/
            ...

``meta.json`` carries the full spec string (directories only carry
digests, so specs of any length work), which makes the layout
self-describing: ``list()`` is a filesystem walk, no central manifest
to corrupt.  Model archives are uncompressed ``.npz``, so
``resolve(..., mmap=True)`` serves the index arrays straight off the
page cache — many scoring processes, one physical copy of the index.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.api.base import FittedModel
from repro.api.registry import make_estimator, parse_spec

#: Schema tag written into every meta.json.
REGISTRY_FORMAT = "repro.model-registry.v1"

_VERSION_DIR = re.compile(r"^v(\d{4,})$")


def dataset_fingerprint(data) -> str:
    """Content hash identifying a dataset (16 hex chars of SHA-256).

    Vector data hashes shape + raw float64 bytes; object data (strings,
    trees) hashes each element's ``str()`` form.  Two datasets share a
    fingerprint iff they are element-for-element identical, which is
    exactly the key a registry of fitted models needs.
    """
    from repro.metric.base import MetricSpace

    if isinstance(data, MetricSpace):
        data = data.data
    digest = hashlib.sha256()
    if isinstance(data, np.ndarray) and np.issubdtype(data.dtype, np.number):
        arr = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    else:
        items = list(data)
        digest.update(f"objects:{len(items)}".encode())
        for item in items:
            encoded = str(item).encode()
            digest.update(str(len(encoded)).encode())
            digest.update(encoded)
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class ModelRecord:
    """One published artifact: where it lives and what it is."""

    spec: str
    fingerprint: str
    version: int
    path: Path  # the model.npz

    @property
    def meta_path(self) -> Path:
        return self.path.parent / "meta.json"


class ModelRegistry:
    """Publish, resolve, and list fitted models under one root directory.

    Parameters
    ----------
    root:
        Registry directory; created on first :meth:`publish`.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- key layout ---------------------------------------------------------

    @staticmethod
    def _canonical(spec: str) -> str:
        """Specs are compared in canonical registry form."""
        return make_estimator(spec).spec

    def _key_dir(self, spec: str, fingerprint: str) -> Path:
        if not re.fullmatch(r"[0-9a-f]{8,64}", fingerprint or ""):
            # fingerprints are path components: anything but lowercase
            # hex could escape the key layout ("../x")
            raise ValueError(
                f"invalid dataset fingerprint {fingerprint!r}: expected "
                "8-64 lowercase hex characters (see dataset_fingerprint)"
            )
        name, _ = parse_spec(spec)
        digest = hashlib.sha256(spec.encode()).hexdigest()[:12]
        return self.root / name / f"{digest}-{fingerprint}"

    # -- write side ---------------------------------------------------------

    def publish(
        self, model: FittedModel, data=None, *, fingerprint: str | None = None
    ) -> ModelRecord:
        """Save ``model`` as the next version of its ``(spec, fingerprint)`` key.

        The fingerprint comes from ``fingerprint``, from ``data``, or —
        the common case — from the model's own retained training data,
        so ``publish(model)`` needs no extra arguments.
        """
        if model.spec is None:
            raise ValueError(
                "cannot publish a model without a spec (it was fitted and "
                "saved outside the unified API, so its configuration is not "
                "recoverable); refit via make_estimator(...)"
            )
        if fingerprint is None:
            source = data if data is not None else model.training_data
            if source is None:
                raise ValueError(
                    "cannot fingerprint this model: it retains no training "
                    "data; pass data=... or fingerprint=..."
                )
            fingerprint = dataset_fingerprint(source)
        spec = self._canonical(model.spec)
        key_dir = self._key_dir(spec, fingerprint)
        version, version_dir = self._claim_next_version(key_dir)
        # Write-then-rename: the version directory is visible the moment
        # it is claimed, and `_versions` treats a present model.npz as
        # resolvable — a half-streamed archive must never carry that name.
        tmp_path = version_dir / "model.npz.tmp"
        path = version_dir / "model.npz"
        try:
            model.save(tmp_path)
            os.replace(tmp_path, path)
        except BaseException:
            # release the claimed version: a failed save must not leave
            # a stray directory burning a version number per attempt
            tmp_path.unlink(missing_ok=True)
            try:
                version_dir.rmdir()
            except OSError:  # pragma: no cover - racing publisher moved in
                pass
            raise
        meta = {
            "format": REGISTRY_FORMAT,
            "spec": spec,
            "fingerprint": fingerprint,
            "version": version,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
        # meta.json last and atomically: it is the completeness marker
        # every read path keys on
        meta_tmp = version_dir / "meta.json.tmp"
        meta_tmp.write_text(json.dumps(meta, indent=2) + "\n")
        os.replace(meta_tmp, version_dir / "meta.json")
        return ModelRecord(spec, fingerprint, version, path)

    # -- read side ----------------------------------------------------------

    def record(
        self,
        spec: str,
        *,
        fingerprint: str | None = None,
        data=None,
        version: int | None = None,
    ) -> ModelRecord:
        """Locate one artifact without loading it.

        ``fingerprint`` (or ``data`` to fingerprint) selects the key;
        when omitted and exactly one fingerprint exists for the spec,
        that one is used.  ``version`` defaults to the latest.
        """
        spec = self._canonical(spec)
        if fingerprint is None and data is not None:
            fingerprint = dataset_fingerprint(data)
        if fingerprint is None:
            candidates = sorted(
                {r.fingerprint for r in self.list() if r.spec == spec}
            )
            if not candidates:
                raise LookupError(f"no published models for spec {spec!r} in {self.root}")
            if len(candidates) > 1:
                raise LookupError(
                    f"spec {spec!r} has models for {len(candidates)} datasets "
                    f"({candidates}); pass fingerprint=... or data=..."
                )
            fingerprint = candidates[0]
        key_dir = self._key_dir(spec, fingerprint)
        versions = self._versions(key_dir)
        if not versions:
            raise LookupError(
                f"no published model for spec {spec!r} and fingerprint "
                f"{fingerprint!r} in {self.root}"
            )
        if version is None:
            version = max(versions)
        elif version not in versions:
            raise LookupError(
                f"version {version} not published for spec {spec!r} "
                f"(available: {sorted(versions)})"
            )
        return ModelRecord(
            spec, fingerprint, version, key_dir / f"v{version:04d}" / "model.npz"
        )

    def resolve(
        self,
        spec: str,
        *,
        fingerprint: str | None = None,
        data=None,
        version: int | None = None,
        mmap: bool = False,
    ) -> FittedModel:
        """Load the artifact :meth:`record` locates.

        ``mmap=True`` maps the archive read-only so concurrent scorers
        share one on-disk copy (uncompressed archives only).
        """
        return FittedModel.load(
            self.record(spec, fingerprint=fingerprint, data=data, version=version).path,
            mmap=mmap,
        )

    def latest_version(
        self,
        spec: str,
        *,
        fingerprint: str | None = None,
        data=None,
    ) -> int | None:
        """The newest *completed* version of one key, or ``None``.

        The cheap freshness probe a serving watcher polls: with the
        fingerprint pinned this is one directory scan of the key's own
        directory — no registry-wide walk, no ``meta.json`` parsing —
        so it can run every couple of seconds against a large registry.
        Versions are monotone, so the returned integer doubles as a
        change token: it grows iff something new was published.

        Concurrent-publish safe: a version directory that has been
        *claimed* (``mkdir`` won) but whose artifact or ``meta.json``
        is still being written is not completed and is not reported —
        the same completeness marker every other read path keys on.

        Without a pinned ``fingerprint`` (or ``data`` to derive one)
        the key is resolved the expensive way, via :meth:`record`; a
        polling loop should resolve the fingerprint once up front and
        pin it.
        """
        spec = self._canonical(spec)
        if fingerprint is None and data is not None:
            fingerprint = dataset_fingerprint(data)
        if fingerprint is None:
            try:
                return self.record(spec).version
            except LookupError:
                return None
        versions = self._versions(self._key_dir(spec, fingerprint))
        return max(versions) if versions else None

    def list(self, *, spec: str | None = None) -> list[ModelRecord]:
        """All published artifacts, optionally filtered to one spec."""
        wanted = self._canonical(spec) if spec is not None else None
        records = []
        for meta_path in sorted(self.root.glob("*/*/v*/meta.json")):
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # half-written artifact: skip, never crash a listing
            if meta.get("format") != REGISTRY_FORMAT:
                continue
            record = ModelRecord(
                meta["spec"],
                meta["fingerprint"],
                int(meta["version"]),
                meta_path.parent / "model.npz",
            )
            if wanted is None or record.spec == wanted:
                records.append(record)
        return sorted(records, key=lambda r: (r.spec, r.fingerprint, r.version))

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _claim_next_version(key_dir: Path) -> tuple[int, Path]:
        """Atomically claim the next free version directory.

        ``mkdir`` is the lock: concurrent publishers both compute the
        same next version, one wins the directory, the loser retries
        one higher.  The scan counts every ``vNNNN`` directory — not
        just completed ones — so a crashed publisher's empty directory
        is skipped over instead of being fought over forever.
        """
        while True:
            taken = []
            if key_dir.is_dir():
                for child in key_dir.iterdir():
                    match = _VERSION_DIR.match(child.name)
                    if match:
                        taken.append(int(match.group(1)))
            version = (max(taken) if taken else 0) + 1
            version_dir = key_dir / f"v{version:04d}"
            try:
                version_dir.mkdir(parents=True)
            except FileExistsError:
                continue  # another publisher claimed it first
            return version, version_dir

    @staticmethod
    def _versions(key_dir: Path) -> list[int]:
        """Completed versions only: meta.json (written last, atomically)
        is the completeness marker, so every read path — versioned
        resolution here, discovery via :meth:`list` — agrees on what
        exists."""
        if not key_dir.is_dir():
            return []
        found = []
        for child in key_dir.iterdir():
            match = _VERSION_DIR.match(child.name)
            if (
                match
                and (child / "meta.json").is_file()
                and (child / "model.npz").is_file()
            ):
                found.append(int(match.group(1)))
        return found

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry({str(self.root)!r})"
