"""Spec-string detector registry: ``"name?key=value&..."`` → Estimator.

The spec grammar is URL-ish and tiny:

    spec   := name [ "?" param ( "&" param )* ]
    param  := key "=" value

``name`` identifies a registered detector (case/punctuation
insensitive: ``"kNN-Out"``, ``"knn-out"`` and ``"knnout"`` all resolve
the same entry); keys are the detector's declared parameters, values
are parsed by the declared type (int / float / bool / str).  Unknown
names and unknown keys raise with the full list of valid options, so a
typo in a config file fails loudly at construction, not at fit time.

:func:`make_estimator` is the one front door; :func:`spec_of` goes the
other way, rendering a canonical spec from a live detector instance
(used by the Table II grids to emit specs).  Canonical form sorts the
keys, so any spec round-trips: ``make_estimator(s).spec`` is stable
under another ``make_estimator``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

__all__ = [
    "Param",
    "make_estimator",
    "parse_spec",
    "format_spec",
    "registered_names",
    "register_detector",
    "spec_of",
]


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("true", "1", "yes", "on"):
        return True
    if lowered in ("false", "0", "no", "off"):
        return False
    raise ValueError(f"expected a boolean (true/false), got {text!r}")


class IntTuple:
    """Param-type marker: a comma-separated int list (``"64,32,16"``)."""


def _parse_int_tuple(text: str) -> tuple[int, ...]:
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not parts:
        raise ValueError("expected a comma-separated int list, got nothing")
    return tuple(int(p) for p in parts)


_COERCERS: dict[type, Callable[[str], object]] = {
    int: int,
    float: float,
    bool: _parse_bool,
    str: str,
    IntTuple: _parse_int_tuple,
}


@dataclass(frozen=True)
class Param:
    """One declared spec parameter of a registered detector.

    Attributes
    ----------
    type:
        Value type; the matching parser turns the spec's string into it.
    default:
        Default value (what the constructor uses when the key is
        absent); ``spec_of`` omits parameters still at their default.
    attr:
        Attribute name on the detector instance holding the current
        value (for :func:`spec_of`); defaults to the spec key.
    kw:
        Constructor keyword name; defaults to ``attr``.
    """

    type: type
    default: object = None
    attr: str | None = None
    kw: str | None = None

    def resolve_attr(self, key: str) -> str:
        return self.attr if self.attr is not None else key

    def resolve_kw(self, key: str) -> str:
        return self.kw if self.kw is not None else self.resolve_attr(key)

    def coerce(self, key: str, raw: str):
        try:
            return _COERCERS[self.type](raw)
        except ValueError as exc:
            kind = "int list" if self.type is IntTuple else self.type.__name__
            raise ValueError(
                f"bad value for parameter {key!r}: {raw!r} is not a valid {kind}"
            ) from exc


@dataclass(frozen=True)
class DetectorEntry:
    """One registered detector: its factory and declared parameters."""

    name: str
    build: Callable[[str, dict], object]  # (canonical_spec, params) -> Estimator
    params: Mapping[str, Param]
    detector_cls: type | None = None
    aliases: tuple[str, ...] = ()
    description: str = ""
    grid_name: str | None = field(default=None)  # Table II grid key, if any


_REGISTRY: dict[str, DetectorEntry] = {}
_ALIAS: dict[str, str] = {}  # canonicalized alias -> registry name
_BY_CLASS: dict[type, str] = {}
_populated = False


def _canon(name: str) -> str:
    """Case/punctuation-insensitive detector-name key."""
    return re.sub(r"[^a-z0-9]", "", name.lower())


def register_detector(entry: DetectorEntry) -> None:
    """Add (or replace) a detector entry in the registry."""
    _REGISTRY[entry.name] = entry
    _ALIAS[_canon(entry.name)] = entry.name
    for alias in entry.aliases:
        _ALIAS[_canon(alias)] = entry.name
    if entry.detector_cls is not None:
        _BY_CLASS[entry.detector_cls] = entry.name


def _ensure_populated() -> None:
    """Import the standard registrations (lazy, avoids cycles).

    The flag flips only after the import succeeds: if registration
    raises (say a baseline module cannot import in a stripped-down
    environment), later calls retry and surface the real ImportError
    instead of reporting an empty registry forever.
    """
    global _populated
    if not _populated:
        import repro.api.estimators  # noqa: F401  (registers on import)

        _populated = True


def registered_names() -> list[str]:
    """Names accepted by :func:`make_estimator`, sorted."""
    _ensure_populated()
    return sorted(_REGISTRY)


def parse_spec(spec: str) -> tuple[str, dict[str, str]]:
    """Split a spec string into ``(name, raw-params)`` without validation."""
    if not isinstance(spec, str):
        raise TypeError(f"spec must be a string, got {type(spec).__name__}")
    text = spec.strip()
    name, _, query = text.partition("?")
    name = name.strip()
    if not name:
        raise ValueError(f"spec {spec!r} has no detector name")
    raw: dict[str, str] = {}
    if query:
        for part in query.split("&"):
            if not part:
                continue
            key, eq, value = part.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ValueError(
                    f"malformed spec parameter {part!r} in {spec!r}: expected key=value"
                )
            if key in raw:
                raise ValueError(f"duplicate spec parameter {key!r} in {spec!r}")
            raw[key] = value.strip()
    return name, raw


def _format_value(value) -> str:
    # Normalize through the builtin types: numpy scalars are common here
    # (sweeps via np.linspace, values read back from .npz) and their
    # reprs ("np.float64(0.25)") would poison specs and registry keys.
    if isinstance(value, (bool, np.bool_)):
        return "true" if bool(value) else "false"
    if isinstance(value, (float, np.floating)):
        return repr(float(value))  # repr round-trips float64 exactly
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (tuple, list)):
        return ",".join(str(int(v)) for v in value)
    return str(value)


def format_spec(name: str, params: Mapping[str, object]) -> str:
    """Render the canonical spec string: sorted keys, typed values."""
    if not params:
        return name
    query = "&".join(f"{k}={_format_value(v)}" for k, v in sorted(params.items()))
    return f"{name}?{query}"


def _lookup(name: str) -> DetectorEntry:
    _ensure_populated()
    key = _ALIAS.get(_canon(name))
    if key is None:
        raise ValueError(
            f"unknown detector {name!r}; registered detectors: {registered_names()}"
        )
    return _REGISTRY[key]


def make_estimator(spec):
    """Construct the :class:`~repro.api.base.Estimator` a spec describes.

    ``spec`` may also already be an Estimator (returned unchanged), so
    call sites can accept either form.

    >>> from repro.api import make_estimator
    >>> make_estimator("lof?k=20").spec
    'lof?k=20'
    """
    from repro.api.base import Estimator

    if isinstance(spec, Estimator):
        return spec
    name, raw = parse_spec(spec)
    entry = _lookup(name)
    params: dict[str, object] = {}
    for key, value in raw.items():
        if key not in entry.params:
            raise ValueError(
                f"unknown parameter {key!r} for detector {entry.name!r}; "
                f"valid parameters: {sorted(entry.params)}"
            )
        params[key] = entry.params[key].coerce(key, value)
    # Canonical form drops explicitly-spelled defaults, so equivalent
    # configurations ("lof?k=5" and "lof") render — and therefore key a
    # ModelRegistry — identically, matching what spec_of() emits.  The
    # estimator is built from the same canonical params: two estimators
    # with equal .spec must behave identically.
    canonical = {
        k: v for k, v in params.items() if v != entry.params[k].default
    }
    return entry.build(format_spec(entry.name, canonical), canonical)


def spec_of(detector) -> str:
    """The canonical spec describing a live detector instance.

    Reads each declared parameter off the instance and keeps only the
    ones that differ from their default, so
    ``make_estimator(spec_of(d))`` reconstructs an equivalent detector
    and the emitted specs stay short.
    """
    _ensure_populated()
    name = _BY_CLASS.get(type(detector))
    if name is None:
        raise TypeError(
            f"{type(detector).__name__} is not a registered detector class; "
            f"registered detectors: {registered_names()}"
        )
    entry = _REGISTRY[name]
    params: dict[str, object] = {}
    for key, param in entry.params.items():
        # fit-time params (e.g. mccatch's metric) live on the estimator,
        # not the detector instance: fall back to the default
        value = getattr(detector, param.resolve_attr(key), param.default)
        if value is None or value == param.default:
            continue
        params[key] = value
    return format_spec(entry.name, params)
