"""The paper's 11 competitor baselines, implemented from scratch.

All are point-scoring detectors on vector data (higher score = more
anomalous).  :func:`default_detectors` returns one instance of each
with sensible defaults; :func:`hyperparameter_grid` reproduces the
per-method tuning grids of Table II for the accuracy benches.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.abod import ABOD, FastABOD
from repro.baselines.base import BaseDetector
from repro.baselines.clustering import DBSCAN, OPTICS, KMeansMinusMinus
from repro.baselines.dbout import DBOut
from repro.baselines.deepsvdd import DeepSVDD
from repro.baselines.diad import DIAD
from repro.baselines.dmca import DMCA
from repro.baselines.doiforest import DOIForest
from repro.baselines.gen2out import Gen2Out, Gen2OutResult
from repro.baselines.glosh import GLOSH
from repro.baselines.iforest import IForest
from repro.baselines.knn import KNNOut, ODIN
from repro.baselines.ldof import LDOF, PLDOF
from repro.baselines.lof import LOF
from repro.baselines.loci import ALOCI, LOCI
from repro.baselines.rda import RDA
from repro.baselines.sciforest import SCiForest
from repro.baselines.sparx import Sparx
from repro.baselines.xtrek import XTreK

__all__ = [
    "BaseDetector",
    "ABOD",
    "FastABOD",
    "LOF",
    "KNNOut",
    "ODIN",
    "DBOut",
    "LOCI",
    "ALOCI",
    "IForest",
    "Gen2Out",
    "Gen2OutResult",
    "DMCA",
    "RDA",
    "DBSCAN",
    "OPTICS",
    "KMeansMinusMinus",
    "LDOF",
    "PLDOF",
    "SCiForest",
    "GLOSH",
    "DeepSVDD",
    "Sparx",
    "XTreK",
    "DIAD",
    "DOIForest",
    "default_detectors",
    "all_detectors",
    "hyperparameter_grid",
    "scalable_detectors",
    "detector_spec",
    "default_detector_specs",
    "all_detector_specs",
    "hyperparameter_grid_specs",
]

#: Methods the paper marks as scalable (G4); the others are quadratic
#: or worse and are skipped above the size caps in the benches.
SCALABLE = {"ALOCI", "iForest", "Gen2Out", "RDA"}


def default_detectors(random_state: int = 0) -> list[BaseDetector]:
    """One instance of each of the 11 competitors with default settings."""
    return [
        ABOD(),
        ALOCI(random_state=random_state),
        DBOut(),
        DMCA(random_state=random_state),
        FastABOD(),
        Gen2Out(random_state=random_state),
        IForest(random_state=random_state),
        LOCI(),
        LOF(),
        ODIN(),
        RDA(random_state=random_state),
    ]


def scalable_detectors(random_state: int = 0) -> list[BaseDetector]:
    """Only the G4-scalable competitors (for larger datasets)."""
    return [d for d in default_detectors(random_state) if d.name in SCALABLE]


def all_detectors(random_state: int = 0) -> list[BaseDetector]:
    """The wider Table I inventory: the 11 compared methods plus the
    other classics the feature matrix covers."""
    return default_detectors(random_state) + [
        KNNOut(),
        DBSCAN(),
        OPTICS(),
        KMeansMinusMinus(random_state=random_state),
        LDOF(),
        PLDOF(random_state=random_state),
        SCiForest(random_state=random_state),
        GLOSH(),
        DeepSVDD(random_state=random_state),
        Sparx(random_state=random_state),
        XTreK(random_state=random_state),
        DIAD(),
        DOIForest(random_state=random_state),
    ]


def hyperparameter_grid(name: str, n: int, random_state: int = 0) -> list[BaseDetector]:
    """Table II's tuning grid for method ``name`` on a dataset of size ``n``.

    The paper tunes competitors "following hyperparameter-setting
    heuristics widely adopted in prior works"; the accuracy bench runs
    every grid configuration and keeps each method's best result per
    dataset (favouring the competitors).
    """
    psi_grid = [p for p in (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024) if p <= max(2, int(0.3 * n))]
    grids: dict[str, Callable[[], list[BaseDetector]]] = {
        "ABOD": lambda: [ABOD()],
        "ALOCI": lambda: [ALOCI(n_grids=g, random_state=random_state) for g in (10, 15, 20)],
        "DB-Out": lambda: [DBOut(radius_fraction=f) for f in (0.05, 0.1, 0.25, 0.5)],
        "D.MCA": lambda: [
            DMCA(psi=p, n_estimators=t, random_state=random_state)
            for p in psi_grid[:: max(1, len(psi_grid) // 4)]
            for t in (8, 32, 128)
        ],
        "FastABOD": lambda: [FastABOD(k=k) for k in (2, 5, 10)],
        "Gen2Out": lambda: [
            Gen2Out(max_depth_factor=md, n_trees=t, random_state=random_state)
            for md in (2, 3)
            for t in (16, 64)
        ],
        "iForest": lambda: [
            IForest(n_trees=t, subsample=p, random_state=random_state)
            for t in (32, 128)
            for p in psi_grid[-3:]
        ],
        "LOCI": lambda: [LOCI(alpha=0.5, n_min=20)],
        "LOF": lambda: [LOF(k=k) for k in (1, 5, 10)],
        "ODIN": lambda: [ODIN(k=k) for k in (1, 5, 10)],
        "RDA": lambda: [
            RDA(n_layers=nl, lam=lam, random_state=random_state)
            for nl in (2, 3)
            for lam in (1e-5, 1e-4)
        ],
        "kNN-Out": lambda: [KNNOut(k=k) for k in (1, 5, 10)],
    }
    if name not in grids:
        raise KeyError(f"no Table II grid for {name!r}; known: {sorted(grids)}")
    return grids[name]()


# -- spec emission (the serving API's currency) -----------------------------


def detector_spec(detector: BaseDetector) -> str:
    """The canonical :mod:`repro.api` spec string describing ``detector``.

    ``make_estimator(detector_spec(d))`` reconstructs an equivalent
    detector, so a grid of instances becomes a grid of portable,
    loggable strings.
    """
    from repro.api import spec_of

    return spec_of(detector)


def default_detector_specs(random_state: int = 0) -> list[str]:
    """:func:`default_detectors` as spec strings."""
    return [detector_spec(d) for d in default_detectors(random_state)]


def all_detector_specs(random_state: int = 0) -> list[str]:
    """:func:`all_detectors` as spec strings."""
    return [detector_spec(d) for d in all_detectors(random_state)]


def hyperparameter_grid_specs(name: str, n: int, random_state: int = 0) -> list[str]:
    """Table II's grid for ``name`` as spec strings (see
    :func:`hyperparameter_grid`); feed them to
    :func:`repro.api.make_estimator` or the leaderboard directly."""
    return [detector_spec(d) for d in hyperparameter_grid(name, n, random_state)]
