"""ABOD and FastABOD: Angle-Based Outlier Detection (Kriegel et al. [13]).

The Angle-Based Outlier Factor of a point is the variance, over all
pairs of other points, of the distance-weighted angles they subtend at
the point.  Inliers — surrounded on all sides — see a wide spread of
angles (high variance); outliers see everything in roughly one
direction (low variance).  Scores are negated so higher = more
anomalous.

ABOD is exact and cubic; FastABOD restricts the pairs to the k nearest
neighbors, the approximation the paper tunes with k ∈ {1, 5, 10}
(Table II; note k >= 2 is required to form at least one pair).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector, knn_distances


def _abof_from_neighbors(X: np.ndarray, i: int, neighbor_idx: np.ndarray) -> float:
    """Variance of weighted angles at point ``i`` over neighbor pairs."""
    diffs = X[neighbor_idx] - X[i]
    norms_sq = np.einsum("ij,ij->i", diffs, diffs)
    keep = norms_sq > 0
    diffs = diffs[keep]
    norms_sq = norms_sq[keep]
    m = diffs.shape[0]
    if m < 2:
        return 0.0  # duplicates only: zero variance, i.e. maximal outlierness
    dots = diffs @ diffs.T
    # ABOF weights each angle term <AB,AC>/(||AB||^2 ||AC||^2) by
    # 1/(||AB|| ||AC||), then takes the weighted variance over pairs.
    weights = 1.0 / np.sqrt(np.outer(norms_sq, norms_sq))
    values = dots / np.outer(norms_sq, norms_sq)
    iu = np.triu_indices(m, k=1)
    v = values[iu]
    w = weights[iu]
    wsum = w.sum()
    if wsum == 0:
        return 0.0
    mean = float((w * v).sum() / wsum)
    var = float((w * (v - mean) ** 2).sum() / wsum)
    return var


class ABOD(BaseDetector):
    """Exact angle-based outlier detection (quadratic pairs per point)."""

    name = "ABOD"

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        everyone = np.arange(n)
        scores = np.empty(n, dtype=np.float64)
        for i in range(n):
            others = everyone[everyone != i]
            scores[i] = -_abof_from_neighbors(X, i, others)
        return scores


class FastABOD(BaseDetector):
    """ABOD restricted to each point's k nearest neighbors."""

    name = "FastABOD"

    def __init__(self, k: int = 10):
        if k < 2:
            raise ValueError(f"FastABOD needs k >= 2 to form angle pairs, got {k}")
        self.k = k

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        k = min(self.k, n - 1)
        _, idx = knn_distances(X, k)
        scores = np.empty(n, dtype=np.float64)
        for i in range(n):
            scores[i] = -_abof_from_neighbors(X, i, idx[i])
        return scores
