"""Common interface for the competitor baselines (Table I / Fig. 6).

Every baseline is a point-scoring outlier detector: ``fit_scores(X)``
returns one anomaly score per row, **higher = more anomalous** (scores
are flipped internally where the original method's convention differs).
The accuracy benches evaluate these scores with AUROC / AP / Max-F1,
exactly as the paper evaluates "the anomaly scores they reported per
point" (Sec. V-A).

Baselines require vector data (the paper's Fig. 6 marks them
non-applicable on nondimensional datasets); McCatch itself lives in
:mod:`repro.core` and accepts both.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import as_float_array


def check_finite_scores(name: str, scores: np.ndarray) -> np.ndarray:
    """Reject NaN/inf anomaly scores with a detector-named error.

    The one guard every scoring entry point shares: ``fit_scores`` and
    the serving API's inductive fits (which compute from the kernels
    directly) both route through it, so a non-finite score fails the
    same way everywhere.
    """
    finite = np.isfinite(scores)
    if not finite.all():
        bad = np.nonzero(~finite)[0]
        raise RuntimeError(
            f"{name}: {bad.size} non-finite score(s) (NaN/inf), "
            f"first at row {int(bad[0])} — a score must rank every point"
        )
    return scores


class BaseDetector(ABC):
    """Abstract point-scoring outlier detector."""

    #: short name used in result tables
    name: str = "base"
    #: True if scores vary run-to-run without a fixed seed (Table I row)
    deterministic: bool = True

    def fit_scores(self, X) -> np.ndarray:
        """Anomaly score per row of ``X`` (higher = more anomalous)."""
        X = as_float_array(X)
        scores = self._score(X)
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (X.shape[0],):
            raise RuntimeError(
                f"{self.name}: expected {X.shape[0]} scores, got shape {scores.shape}"
            )
        check_finite_scores(self.name, scores)
        return scores

    @abstractmethod
    def _score(self, X: np.ndarray) -> np.ndarray:
        """Implementation hook; ``X`` is validated (n, d) float64."""

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items()) if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"


def knn_distances(X: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Distances and indices of each row's ``k`` nearest neighbors (self excluded).

    Runs through the batch query engine
    (:func:`repro.engine.knn_distances`) over the ``"auto"`` index —
    scipy's compiled kd-tree for Euclidean vector data, chunked bulk
    distance blocks otherwise.
    """
    from repro.engine import knn_distances as engine_knn
    from repro.index.factory import build_index
    from repro.metric.base import MetricSpace

    n = X.shape[0]
    if k >= n:
        raise ValueError(f"k={k} must be < n={n}")
    index = build_index(MetricSpace(X), kind="auto")
    return engine_knn(index, k)
