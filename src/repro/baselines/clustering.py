"""Clustering methods that expose outliers as a byproduct (Table I).

- **DBSCAN** (Ester et al. [29]): density-based clustering; noise
  points are the outliers.  Scored by distance to the nearest core
  point so the ranking convention matches the rest of the library.
- **OPTICS** (Ankerst et al. [31]): density-ordering of the data; a
  point's reachability distance is a natural outlier score.
- **KMeans--** (Chawla & Gionis [30]): k-means that trims the ``o``
  farthest points each iteration, jointly clustering and detecting
  outliers; scored by distance to the final centroids.

All three "fail to group [microcluster] points into an entity with a
score" (Sec. II-B): they label points, which is exactly the behaviour
reproduced here — scores are per point, clusters carry no score.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.baselines.base import BaseDetector
from repro.utils.rng import check_random_state


class DBSCAN(BaseDetector):
    """Density-based clustering; noise distance as the outlier score.

    Parameters
    ----------
    eps:
        Neighborhood radius; ``None`` uses the classic heuristic of the
        95th percentile of kNN distances at ``k = min_pts``.
    min_pts:
        Core-point threshold (neighbors within eps, self included).
    """

    name = "DBSCAN"

    def __init__(self, eps: float | None = None, min_pts: int = 5):
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        self.eps = eps
        self.min_pts = min_pts
        self.labels_: np.ndarray | None = None

    def fit_labels(self, X) -> np.ndarray:
        """Cluster labels (-1 = noise), computed as a side effect of scoring."""
        self.fit_scores(np.asarray(X, dtype=np.float64))
        assert self.labels_ is not None
        return self.labels_

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        tree = cKDTree(X)
        if self.eps is None:
            k = min(self.min_pts + 1, n)
            dists, _ = tree.query(X, k=k)
            eps = float(np.percentile(dists[:, -1], 95))
        else:
            eps = self.eps
        eps = max(eps, np.finfo(np.float64).tiny)

        neighbors = tree.query_ball_point(X, r=eps)
        counts = np.array([len(nb) for nb in neighbors])
        core = counts >= self.min_pts

        labels = np.full(n, -1, dtype=np.intp)
        cluster = 0
        for seed in range(n):
            if labels[seed] != -1 or not core[seed]:
                continue
            # Expand the cluster from this unvisited core point.
            labels[seed] = cluster
            frontier = [seed]
            while frontier:
                p = frontier.pop()
                if not core[p]:
                    continue
                for q in neighbors[p]:
                    if labels[q] == -1:
                        labels[q] = cluster
                        frontier.append(q)
            cluster += 1
        self.labels_ = labels

        # Score: 0 for clustered points; noise scored by the distance to
        # the nearest core point (farther from any cluster = weirder).
        scores = np.zeros(n, dtype=np.float64)
        noise = np.nonzero(labels == -1)[0]
        core_idx = np.nonzero(core)[0]
        if noise.size and core_idx.size:
            core_tree = cKDTree(X[core_idx])
            d, _ = core_tree.query(X[noise], k=1)
            scores[noise] = d
        elif noise.size:
            scores[noise] = 1.0  # no clusters at all: everything equally odd
        return scores


class OPTICS(BaseDetector):
    """Ordering points to identify the clustering structure.

    Computes the classic reachability plot with ``min_pts`` and an
    infinite generating distance (bounded by ``max_eps`` for speed);
    the reachability distance of each point is its outlier score —
    valley points are clustered, peaks are outliers.
    """

    name = "OPTICS"

    def __init__(self, min_pts: int = 5, max_eps: float | None = None):
        if min_pts < 2:
            raise ValueError(f"min_pts must be >= 2, got {min_pts}")
        self.min_pts = min_pts
        self.max_eps = max_eps
        self.ordering_: np.ndarray | None = None

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        k = min(self.min_pts, n - 1)
        tree = cKDTree(X)
        core_d, _ = tree.query(X, k=k + 1)
        core_dist = core_d[:, -1]
        max_eps = self.max_eps
        if max_eps is None:
            # Large enough to connect everything that plausibly connects.
            max_eps = float(np.percentile(core_dist, 99) * 8.0)

        reach = np.full(n, np.inf)
        processed = np.zeros(n, dtype=bool)
        order: list[int] = []
        for start in range(n):
            if processed[start]:
                continue
            processed[start] = True
            order.append(start)
            seeds: dict[int, float] = {}
            self._update(tree, X, start, core_dist, processed, seeds, max_eps)
            while seeds:
                q = min(seeds, key=seeds.get)
                reach[q] = seeds.pop(q)
                processed[q] = True
                order.append(q)
                self._update(tree, X, q, core_dist, processed, seeds, max_eps)
        self.ordering_ = np.array(order, dtype=np.intp)
        # Unreached points (first of each component) take the max finite
        # reachability + their core distance: clearly outlying.
        finite = reach[np.isfinite(reach)]
        ceiling = float(finite.max()) if finite.size else 1.0
        reach = np.where(np.isfinite(reach), reach, ceiling + core_dist)
        return reach

    def _update(self, tree, X, p, core_dist, processed, seeds, max_eps) -> None:
        for q in tree.query_ball_point(X[p], r=max_eps):
            if processed[q]:
                continue
            new_reach = max(core_dist[p], float(np.linalg.norm(X[p] - X[q])))
            if new_reach < seeds.get(q, np.inf):
                seeds[q] = new_reach


class KMeansMinusMinus(BaseDetector):
    """k-means-- : unified clustering and outlier detection [30].

    Each Lloyd iteration assigns points to the nearest centroid, puts
    the ``o`` farthest points aside as outliers, and recomputes
    centroids from the rest.  Scores are the final distances to the
    nearest centroid.
    """

    name = "KMeans--"
    deterministic = False

    def __init__(self, n_clusters: int = 3, n_outliers: float = 0.05,
                 n_iter: int = 30, random_state=None):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.n_outliers = n_outliers
        self.n_iter = n_iter
        self.random_state = random_state

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        k = min(self.n_clusters, n)
        o = int(np.ceil(self.n_outliers * n)) if self.n_outliers < 1 else int(self.n_outliers)
        o = min(o, n - k)
        centroids = X[rng.choice(n, size=k, replace=False)].copy()
        for _ in range(self.n_iter):
            d = np.linalg.norm(X[:, None, :] - centroids[None, :, :], axis=2)
            nearest = d.min(axis=1)
            assign = d.argmin(axis=1)
            keep = np.argsort(nearest)[: n - o] if o > 0 else np.arange(n)
            new_centroids = centroids.copy()
            for c in range(k):
                members = keep[assign[keep] == c]
                if members.size:
                    new_centroids[c] = X[members].mean(axis=0)
            if np.allclose(new_centroids, centroids):
                break
            centroids = new_centroids
        d = np.linalg.norm(X[:, None, :] - centroids[None, :, :], axis=2)
        return d.min(axis=1)
