"""DB-Out: distance-based outliers DB(p, D) (Knorr & Ng [15]).

A point is a DB(p, D)-outlier if at most a ``1 - p`` fraction of the
dataset lies within distance ``D`` of it.  For ranking (the paper
evaluates per-point scores), we return the negated neighbor count at
radius ``D``: the fewer neighbors, the more anomalous — the natural
continuous relaxation of the binary definition.  Table II tunes
``D ∈ {l*0.05, l*0.1, l*0.25, l*0.5}`` with ``l`` the dataset diameter.

The whole-dataset range sweep runs through the batch query engine
(:meth:`repro.engine.BatchQueryEngine.count_all_within`) over the
``"auto"`` index — one compiled kd-tree pass for Euclidean vectors.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector
from repro.engine import BatchQueryEngine
from repro.index.factory import build_index
from repro.metric.base import MetricSpace


def resolve_radius(X: np.ndarray, radius_fraction: float) -> float:
    """The absolute query radius: ``radius_fraction`` of the bounding
    diagonal, floored away from zero.

    Factored out so the inductive serving model (:mod:`repro.api`) can
    freeze the radius at fit time and reuse it for held-out batches.
    """
    diameter = float(np.linalg.norm(X.max(axis=0) - X.min(axis=0)))
    return max(radius_fraction * diameter, np.finfo(np.float64).tiny)


class DBOut(BaseDetector):
    """Negated count of neighbors within ``radius_fraction * diameter``."""

    name = "DB-Out"

    def __init__(self, radius_fraction: float = 0.1):
        if not 0 < radius_fraction <= 1:
            raise ValueError(f"radius_fraction must be in (0, 1], got {radius_fraction}")
        self.radius_fraction = radius_fraction

    def _score(self, X: np.ndarray) -> np.ndarray:
        radius = resolve_radius(X, self.radius_fraction)
        engine = BatchQueryEngine(build_index(MetricSpace(X), kind="auto"))
        return -engine.count_all_within(radius).astype(np.float64)
