"""Deep SVDD: deep one-class classification (Ruff et al. [26]), in NumPy.

One-class Deep SVDD trains a neural network phi so that the embeddings
of the (mostly normal) training data collapse around a center ``c``;
the anomaly score of a point is its embedded distance to ``c``.  As in
the original, ``c`` is fixed to the initial mean embedding, the network
has no bias terms and no bounded activations (to prevent the trivial
collapse phi = const), and weight decay regularizes.

Table I: Deep SVDD needs explicit features (fails G1), misses
microclusters (fails G2), and needs tuning (fails G5) — behaviours this
implementation shares by construction.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector
from repro.utils.rng import check_random_state


def _leaky_relu(z: np.ndarray, alpha: float = 0.1) -> np.ndarray:
    return np.where(z > 0, z, alpha * z)


class DeepSVDD(BaseDetector):
    """One-class Deep SVDD with a small bias-free MLP encoder."""

    name = "Deep SVDD"
    deterministic = False

    def __init__(
        self,
        hidden: tuple[int, ...] | None = None,
        n_epochs: int = 60,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-4,
        random_state=None,
    ):
        self.hidden = hidden
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.random_state = random_state

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        mu, sd = X.mean(axis=0), X.std(axis=0)
        sd[sd == 0] = 1.0
        Z = (X - mu) / sd
        n, d = Z.shape
        dims = [d, *(self.hidden or (max(2, d // 2), max(2, d // 4)))]
        weights = [
            rng.normal(0.0, np.sqrt(2.0 / (din + dout)), size=(din, dout))
            for din, dout in zip(dims[:-1], dims[1:])
        ]
        alpha = 0.1

        def forward(batch: np.ndarray):
            activations = [batch]
            h = batch
            last = len(weights) - 1
            for i, w in enumerate(weights):
                z = h @ w
                h = z if i == last else _leaky_relu(z, alpha)
                activations.append(h)
            return h, activations

        center = forward(Z)[0].mean(axis=0)
        batch_size = min(128, n)
        lr = self.learning_rate
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                rows = order[start : start + batch_size]
                out, acts = forward(Z[rows])
                m = rows.size
                delta = 2.0 * (out - center) / m
                last = len(weights) - 1
                for i in range(last, -1, -1):
                    if i != last:
                        pre_activation_positive = acts[i + 1] > 0
                        delta = delta * np.where(pre_activation_positive, 1.0, alpha)
                    grad = acts[i].T @ delta + self.weight_decay * weights[i]
                    if i > 0:
                        delta = delta @ weights[i].T
                    weights[i] -= lr * grad
        out, _ = forward(Z)
        return np.linalg.norm(out - center, axis=1)
