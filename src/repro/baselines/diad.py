"""DIAD: data-efficient and interpretable tabular AD (Chang et al. [16]).

DIAD scores anomalies with an *interpretable additive* model: each
feature (and feature pair) contributes a sparsity term — how unusually
empty the data region around the point's value is — and the total
score is their sum, so every detection decomposes into per-feature
contributions a person can read.

Reproduction notes (documented simplification): the original fits the
additive terms with PID-forest-style trees and semi-supervised
fine-tuning; here each term is the negative log density of the point's
bin in an equal-frequency histogram (1-d terms) or grid (2-d terms).
This preserves the additive, interpretable structure and the ranking
behaviour on tabular data.  Per Table I DIAD needs features (fails
G1), needs tuning (fails G5), and its pairwise terms make it
superlinear in practice (fails G4); it does explain its scores.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector


def _equal_frequency_edges(column: np.ndarray, n_bins: int) -> np.ndarray:
    """Quantile bin edges with deduplication (ties collapse bins)."""
    qs = np.linspace(0.0, 1.0, n_bins + 1)
    edges = np.unique(np.quantile(column, qs))
    if edges.size < 2:
        edges = np.array([edges[0] - 0.5, edges[0] + 0.5])
    return edges


def _bin_indices(column: np.ndarray, edges: np.ndarray) -> np.ndarray:
    idx = np.searchsorted(edges, column, side="right") - 1
    return np.clip(idx, 0, edges.size - 2)


class DIAD(BaseDetector):
    """Additive histogram-sparsity detector with per-feature explanations.

    Parameters
    ----------
    n_bins:
        Bins per 1-d term (equal-frequency).
    n_pairs:
        Number of highest-variance feature pairs to add as 2-d terms
        (0 disables interactions and makes the model purely univariate).
    """

    name = "DIAD"
    deterministic = True

    def __init__(self, n_bins: int = 16, n_pairs: int = 4):
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {n_bins}")
        if n_pairs < 0:
            raise ValueError(f"n_pairs must be >= 0, got {n_pairs}")
        self.n_bins = n_bins
        self.n_pairs = n_pairs
        self._contributions: np.ndarray | None = None
        self._term_names: list[str] = []

    def _score(self, X: np.ndarray) -> np.ndarray:
        n, d = X.shape
        terms: list[np.ndarray] = []
        self._term_names = []

        # 1-d sparsity terms.  With equal-frequency edges the *count*
        # per bin is constant by construction; the anomaly signal lives
        # in the bin *width* — the PID-style sparsity is the volume a
        # fixed mass of data spreads over, so density = count/(n·width).
        bin_cache = []
        width_cache = []
        for f in range(d):
            edges = _equal_frequency_edges(X[:, f], self.n_bins)
            idx = _bin_indices(X[:, f], edges)
            widths = np.maximum(np.diff(edges), 1e-12)
            bin_cache.append(idx)
            width_cache.append(widths)
            counts = np.bincount(idx, minlength=edges.size - 1).astype(np.float64)
            density = counts[idx] / (n * widths[idx])
            terms.append(-np.log(np.maximum(density, 1e-12)))
            self._term_names.append(f"feature[{f}]")

        # 2-d interaction terms on the most spread feature pairs; cell
        # density = count / (n · area).
        if d >= 2 and self.n_pairs > 0:
            spreads = X.std(axis=0)
            order = np.argsort(spreads)[::-1]
            pairs = [
                (int(order[i]), int(order[j]))
                for i in range(min(d, 4))
                for j in range(i + 1, min(d, 4))
            ][: self.n_pairs]
            for f, g in pairs:
                key = bin_cache[f].astype(np.int64) * self.n_bins + bin_cache[g]
                _, inverse, counts = np.unique(key, return_inverse=True, return_counts=True)
                area = width_cache[f][bin_cache[f]] * width_cache[g][bin_cache[g]]
                density = counts[inverse] / (n * area)
                terms.append(-np.log(np.maximum(density, 1e-12)))
                self._term_names.append(f"feature[{f}] x feature[{g}]")

        self._contributions = np.stack(terms, axis=1)
        return self._contributions.sum(axis=1)

    def explain(self, i: int, top: int = 3) -> list[tuple[str, float]]:
        """The ``top`` additive terms driving point ``i``'s score."""
        if self._contributions is None:
            raise RuntimeError("call fit_scores before explain")
        row = self._contributions[int(i)]
        order = np.argsort(row)[::-1][:top]
        return [(self._term_names[int(k)], float(row[int(k)])) for k in order]
