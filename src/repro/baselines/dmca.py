"""D.MCA (Jiang, Cordeiro, Akoglu [5]): outliers with micro-cluster assignment.

D.MCA couples an isolation-style sampling ensemble with an explicit
assignment of the detected outliers to micro-clusters.  Its ensemble
member is the hypersphere construction of iNNE [44] (which D.MCA
extends): sample ``psi`` points, give each a ball reaching its nearest
sampled neighbor, and score a point by the relative radius of the
smallest ball that captures it — points captured only by large balls
(or by none) are anomalous.

Reproduction note (DESIGN.md): we implement the iNNE-style ensemble
with Table II's ``psi``/``t`` grid and the explicit micro-cluster
assignment by single-linkage over the detected outliers.  Per the
paper's Table I, D.MCA yields point scores and point-to-mc assignments
but *no score per micro-cluster* (it fails G2/G3), which is exactly the
interface reproduced here.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector, knn_distances
from repro.baselines.gen2out import _components_by_distance
from repro.utils.rng import check_random_state


class DMCA(BaseDetector):
    """iNNE-style ensemble scores + explicit micro-cluster assignment.

    Parameters
    ----------
    psi:
        Subsample size per ensemble member (Table II: 2..min(1024, 0.3n)).
    n_estimators:
        Ensemble size ``t`` (Table II: 2..128).
    contamination:
        Fraction of points assigned to micro-clusters (Table II: p = 0.1n).
    """

    name = "D.MCA"
    deterministic = False

    def __init__(
        self,
        psi: int = 64,
        n_estimators: int = 64,
        contamination: float = 0.1,
        random_state=None,
    ):
        if psi < 2:
            raise ValueError(f"psi must be >= 2, got {psi}")
        self.psi = psi
        self.n_estimators = n_estimators
        self.contamination = contamination
        self.random_state = random_state
        self.assignments_: list[np.ndarray] | None = None

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        psi = min(self.psi, max(2, n - 1))
        scores = np.zeros(n, dtype=np.float64)
        for _ in range(self.n_estimators):
            sample_idx = rng.choice(n, size=psi, replace=False)
            S = X[sample_idx]
            # Ball radius of each sampled point: distance to its nearest
            # sampled neighbor.
            diff = S[:, None, :] - S[None, :, :]
            sd = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
            np.fill_diagonal(sd, np.inf)
            nn_of_sample = sd.argmin(axis=1)
            radius = sd[np.arange(psi), nn_of_sample]
            # Each point is captured by the nearest sampled ball (if inside).
            dq = np.sqrt(
                np.maximum(
                    np.einsum("ij,ij->i", X, X)[:, None]
                    + np.einsum("ij,ij->i", S, S)[None, :]
                    - 2.0 * X @ S.T,
                    0.0,
                )
            )
            nearest = dq.argmin(axis=1)
            captured = dq[np.arange(n), nearest] <= radius[nearest]
            # iNNE isolation score: 1 - radius(nn of capturing ball)/radius.
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = radius[nn_of_sample[nearest]] / radius[nearest]
            member_score = np.where(captured, 1.0 - np.nan_to_num(ratio, posinf=0.0), 1.0)
            scores += member_score
        scores /= self.n_estimators
        self._assign(X, scores)
        return scores

    def _assign(self, X: np.ndarray, scores: np.ndarray) -> None:
        """Explicit micro-cluster assignment of the top-scoring points."""
        n = X.shape[0]
        k = max(1, int(np.ceil(self.contamination * n)))
        flagged = np.argsort(scores)[-k:]
        if flagged.size < 2:
            self.assignments_ = [np.array([int(i)]) for i in flagged]
            return
        nn_d, _ = knn_distances(X, 1)
        link = 2.0 * float(np.median(nn_d))
        self.assignments_ = _components_by_distance(X, np.sort(flagged), link)
