"""DOIForest: isolation forest refined by a genetic algorithm [27].

DOIForest (Xiang et al., ICDM 2023) searches for an *optimal* isolation
forest: instead of accepting whatever random trees iForest draws, a
genetic algorithm evolves the ensemble — selection keeps the trees
that isolate best, crossover/mutation re-draws subsamples and splits —
optimizing a dispersion-of-isolation objective.

Reproduction notes (documented simplification): the original couples
the GA with deep-feature embeddings; here the GA operates directly on
the tabular input, evolving (subsample seed, feature subset) genomes.
A tree's fitness is its agreement (Spearman-style rank correlation)
with the current ensemble consensus — trees that isolate the same
points the ensemble flags earn survival, following the paper's
consensus-driven objective.  The final score is the usual iForest
aggregation over the evolved population, so DOIForest keeps its
Table I profile: scalable (G4) but feature-bound (fails G1), tuned
(fails G5), randomized, and blind to microcluster grouping (G2/G3).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector
from repro.baselines.iforest import IForest
from repro.utils.rng import check_random_state


def _rank(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(values.size, dtype=np.float64)
    return ranks


def _rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    ra, rb = _rank(a), _rank(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra * ra).sum() * (rb * rb).sum())
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)


class DOIForest(BaseDetector):
    """Genetically optimized isolation forest.

    Parameters
    ----------
    n_trees:
        Population size (trees in the evolved forest).
    subsample:
        Isolation subsample size psi per tree.
    n_generations:
        GA generations; 0 reduces to a plain iForest.
    mutation_rate:
        Fraction of the surviving population re-drawn each generation.
    random_state:
        Seed for subsampling and the GA.
    """

    name = "DOIForest"
    deterministic = False

    def __init__(
        self,
        n_trees: int = 64,
        subsample: int = 256,
        n_generations: int = 3,
        mutation_rate: float = 0.25,
        random_state=None,
    ):
        if n_trees < 2:
            raise ValueError(f"n_trees must be >= 2, got {n_trees}")
        if n_generations < 0:
            raise ValueError(f"n_generations must be >= 0, got {n_generations}")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        self.n_trees = n_trees
        self.subsample = subsample
        self.n_generations = n_generations
        self.mutation_rate = mutation_rate
        self.random_state = random_state

    # -- GA machinery --------------------------------------------------------

    def _tree_scores(self, X: np.ndarray, seed: int, features: np.ndarray) -> np.ndarray:
        """Per-point anomaly score of a single genome's tree."""
        forest = IForest(
            n_trees=1,
            subsample=min(self.subsample, X.shape[0]),
            random_state=int(seed),
        )
        return forest.fit_scores(X[:, features])

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        n, d = X.shape
        n_feat = max(1, int(np.ceil(d * 0.75)))

        def random_genome():
            return (
                int(rng.integers(0, 2**31 - 1)),
                np.sort(rng.choice(d, size=n_feat, replace=False)),
            )

        population = [random_genome() for _ in range(self.n_trees)]
        scores = np.stack([self._tree_scores(X, s, f) for s, f in population])

        for _ in range(self.n_generations):
            consensus = scores.mean(axis=0)
            fitness = np.array([_rank_correlation(row, consensus) for row in scores])
            order = np.argsort(fitness)[::-1]
            survivors = list(order[: max(2, self.n_trees // 2)])
            next_population, next_scores = [], []
            for idx in survivors:
                next_population.append(population[idx])
                next_scores.append(scores[idx])
            while len(next_population) < self.n_trees:
                if rng.random() < self.mutation_rate:
                    genome = random_genome()  # mutation: fresh genome
                else:
                    # Crossover: seed from one parent, features from another.
                    pa, pb = rng.choice(len(survivors), size=2, replace=True)
                    genome = (population[survivors[pa]][0] ^ int(rng.integers(1, 1 << 16)),
                              population[survivors[pb]][1])
                next_population.append(genome)
                next_scores.append(self._tree_scores(X, genome[0], genome[1]))
            population = next_population
            scores = np.stack(next_scores)

        return scores.mean(axis=0)
