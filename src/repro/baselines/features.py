"""Table I: the qualitative feature matrix.

For every method in the repository (McCatch + the Table I inventory),
the paper's eight property rows: the five goals G1-G5 plus
deterministic / explainable / ranking.  Values follow the paper's
Table I; the bench regenerating the table asserts McCatch's full row
and spot-checks the behavioural ones (determinism, ranking) against
the implementations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MethodFeatures:
    """One Table I column."""

    name: str
    general_input: bool  # G1: works with any metric dataset
    general_output: bool  # G2: ranks singleton + nonsingleton mcs together
    principled: bool  # G3: obeys the group axioms
    scalable: bool  # G4: subquadratic
    hands_off: bool  # G5: no manual tuning
    deterministic: bool
    explainable: bool
    ranks_results: bool


#: The paper's Table I, row by row (only methods implemented here).
TABLE1: dict[str, MethodFeatures] = {
    f.name: f
    for f in (
        MethodFeatures("McCatch", True, True, True, True, True, True, True, True),
        MethodFeatures("ABOD", False, False, False, False, True, True, False, True),
        MethodFeatures("ALOCI", False, False, False, True, False, False, False, True),
        MethodFeatures("DB-Out", True, False, False, False, False, True, False, True),
        MethodFeatures("D.MCA", True, False, False, False, True, False, False, True),
        MethodFeatures("FastABOD", False, False, False, False, True, True, False, True),
        MethodFeatures("Gen2Out", False, True, False, True, True, False, True, True),
        MethodFeatures("GLOSH", True, False, False, False, True, True, False, True),
        MethodFeatures("iForest", False, False, False, True, True, False, False, True),
        MethodFeatures("kNN-Out", True, False, False, False, False, True, False, True),
        MethodFeatures("LDOF", True, False, False, False, False, True, False, True),
        MethodFeatures("LOCI", True, False, False, False, True, True, True, True),
        MethodFeatures("LOF", True, False, False, False, False, True, False, True),
        MethodFeatures("ODIN", True, False, False, False, False, True, False, True),
        MethodFeatures("PLDOF", False, False, False, True, False, False, False, True),
        MethodFeatures("SCiForest", False, False, False, True, True, False, False, True),
        MethodFeatures("Deep SVDD", False, False, False, True, False, False, False, True),
        MethodFeatures("RDA", False, False, False, True, False, False, False, True),
        MethodFeatures("DBSCAN", True, False, False, False, False, True, False, False),
        MethodFeatures("KMeans--", False, False, False, True, False, False, False, True),
        MethodFeatures("OPTICS", True, False, False, False, False, True, False, False),
        MethodFeatures("Sparx", False, False, False, True, False, False, False, True),
        MethodFeatures("XTreK", False, False, False, True, True, False, True, True),
        MethodFeatures("DIAD", False, False, False, False, False, True, True, True),
        MethodFeatures("DOIForest", False, False, False, True, False, False, False, True),
    )
}

PROPERTY_LABELS = [
    ("general_input", "G1 General Input"),
    ("general_output", "G2 General Output"),
    ("principled", "G3 Principled"),
    ("scalable", "G4 Scalable"),
    ("hands_off", "G5 Hands-Off"),
    ("deterministic", "Deterministic"),
    ("explainable", "Explainable"),
    ("ranks_results", "Rank Results"),
]


def format_feature_matrix() -> str:
    """Table I as monospace text (methods as columns, like the paper)."""
    methods = sorted(TABLE1, key=lambda m: (m != "McCatch", m))
    width = max(len(m) for m in methods) + 2
    lines = [" " * 20 + "".join(m.rjust(width) for m in methods)]
    for attr, label in PROPERTY_LABELS:
        cells = "".join(
            ("yes" if getattr(TABLE1[m], attr) else "-").rjust(width) for m in methods
        )
        lines.append(label.ljust(20) + cells)
    return "\n".join(lines)
