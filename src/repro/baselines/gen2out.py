"""Gen2Out (Lee et al. [4]): point *and* group anomaly detection.

Gen2Out is the one competitor that, like McCatch, reports microclusters
with scores (Table I).  It builds on isolation forests: point anomalies
are scored by extrapolated isolation depth; group anomalies are found
by watching which points de-isolate as the subsampling rate coarsens
("X-ray plot" / apex extraction in the original), then scored by how
far their isolation curve sits from the expected one.

Reproduction note (documented in DESIGN.md): we keep the published
skeleton — iForest depth scoring, multi-scale subsampling ladder
``psi = n/2^r``, grouping of co-flagged points, group scores from mean
member depth deviation — but simplify the apex-extraction bookkeeping
to connected components at the flagged points' neighbor distances.
The qualitative behaviour the paper relies on (finds mcs on blob-like
inliers, misses them on cross/arc shapes; axis-parallel splits) is
preserved because the underlying isolation machinery is identical.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector, knn_distances
from repro.baselines.iforest import IForest, average_path_length
from repro.utils.rng import check_random_state


class Gen2OutResult:
    """Groups and their scores, mirroring :class:`repro.core.result`."""

    def __init__(self, groups: list[np.ndarray], group_scores: np.ndarray, point_scores):
        self.groups = groups
        self.group_scores = np.asarray(group_scores, dtype=np.float64)
        self.point_scores = np.asarray(point_scores, dtype=np.float64)


class Gen2Out(BaseDetector):
    """Gen2Out: iForest-based point scores + multi-scale group anomalies.

    Parameters
    ----------
    n_trees:
        Trees per forest (Table II: t in {2..128}).
    lower_bound, upper_bound:
        Range of the subsampling ladder exponent (Table II: lb=1,
        ub=11, i.e. psi from n/2 down to n/2^11, clipped at 2).
    max_depth_factor:
        Tree height limit factor (Table II: md in {2, 3}).
    contamination:
        Fraction of top-scoring points considered when forming groups.
    """

    name = "Gen2Out"
    deterministic = False

    def __init__(
        self,
        n_trees: int = 64,
        lower_bound: int = 1,
        upper_bound: int = 11,
        max_depth_factor: int = 3,
        contamination: float = 0.02,
        random_state=None,
    ):
        self.n_trees = n_trees
        self.lower_bound = lower_bound
        self.upper_bound = upper_bound
        self.max_depth_factor = max_depth_factor
        self.contamination = contamination
        self.random_state = random_state

    # -- point scores --------------------------------------------------------

    def _score(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).point_scores

    def fit(self, X: np.ndarray) -> Gen2OutResult:
        """Full Gen2Out output: point scores plus scored groups."""
        X = np.asarray(X, dtype=np.float64)
        rng = check_random_state(self.random_state)
        n = X.shape[0]

        forest = IForest(
            n_trees=self.n_trees, subsample=min(256, max(2, n // 2)), random_state=rng
        )
        point_scores = forest.fit_scores(X)

        flagged_sets = self._multi_scale_flags(X, rng)
        groups, group_scores = self._extract_groups(X, point_scores, flagged_sets)
        return Gen2OutResult(groups, group_scores, point_scores)

    # -- group anomalies ------------------------------------------------------

    def _multi_scale_flags(self, X: np.ndarray, rng: np.random.Generator) -> list[np.ndarray]:
        """Flag top scorers at each subsampling scale of the ladder."""
        n = X.shape[0]
        flags: list[np.ndarray] = []
        k = max(1, int(np.ceil(self.contamination * n)))
        for r in range(self.lower_bound, self.upper_bound + 1):
            psi = max(2, n // (2**r))
            if psi < 2:
                break
            forest = IForest(
                n_trees=max(8, self.n_trees // 4), subsample=psi, random_state=rng
            )
            scores = forest.fit_scores(X)
            flags.append(np.argsort(scores)[-k:])
        return flags

    def _extract_groups(
        self, X: np.ndarray, point_scores: np.ndarray, flagged_sets: list[np.ndarray]
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Group persistently flagged points; score groups by depth deviation."""
        n = X.shape[0]
        votes = np.zeros(n)
        for f in flagged_sets:
            votes[f] += 1
        if not flagged_sets:
            return [], np.array([])
        persistent = np.nonzero(votes >= max(1, len(flagged_sets) // 2))[0]
        if persistent.size == 0:
            return [], np.array([])
        if persistent.size == 1:
            groups = [persistent]
        else:
            # Link flagged points closer than the dataset's typical
            # neighbor gap (median 1NN distance of all points, doubled).
            nn_d, _ = knn_distances(X, 1)
            link = 2.0 * float(np.median(nn_d))
            groups = _components_by_distance(X, persistent, link)
        c = float(average_path_length(np.array([max(2, n)]))[0])
        group_scores = np.array(
            [float(point_scores[g].mean()) * (1.0 + 1.0 / np.sqrt(g.size)) * c for g in groups]
        )
        order = np.argsort(-group_scores)
        return [groups[i] for i in order], group_scores[order]


def _components_by_distance(X: np.ndarray, members: np.ndarray, radius: float) -> list[np.ndarray]:
    """Single-linkage components of ``members`` at ``radius`` (union-find)."""
    m = members.size
    parent = np.arange(m)

    def find(u: int) -> int:
        while parent[u] != u:
            parent[u] = parent[parent[u]]
            u = int(parent[u])
        return u

    pts = X[members]
    for i in range(m):
        d = np.linalg.norm(pts[i + 1 :] - pts[i], axis=1)
        for off in np.nonzero(d <= radius)[0]:
            ri, rj = find(i), find(i + 1 + off)
            if ri != rj:
                parent[ri] = rj
    buckets: dict[int, list[int]] = {}
    for i in range(m):
        buckets.setdefault(find(i), []).append(int(members[i]))
    return [np.array(sorted(b), dtype=np.intp) for b in buckets.values()]
