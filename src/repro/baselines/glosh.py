"""GLOSH: Global-Local Outlier Score from Hierarchies (Campello et al. [17]).

GLOSH reads outlier scores off the HDBSCAN* density hierarchy: a point
p attached to cluster C scores

    GLOSH(p) = 1 - eps_max(C) / eps(p)

where ``eps(p)`` is the mutual-reachability level at which p leaves the
hierarchy and ``eps_max(C)`` the level at which the densest part of its
cluster disappears.  Points deep inside a dense cluster score near 0;
points hanging on by a long mutual-reachability edge score near 1.

Built from scratch: core distances -> mutual reachability graph ->
Prim MST -> per-point exit level -> per-component density peak.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector, knn_distances


class GLOSH(BaseDetector):
    """Hierarchical density outlier scores with MinPts = ``min_pts``."""

    name = "GLOSH"

    def __init__(self, min_pts: int = 5, min_cluster_size: int = 5):
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        self.min_pts = min_pts
        self.min_cluster_size = max(2, min_cluster_size)

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        k = min(self.min_pts, n - 1)
        core_d, _ = knn_distances(X, k)
        core = core_d[:, -1]

        # Mutual reachability MST via dense Prim (O(n^2), like the
        # reference implementation's exact mode).
        diff = X[:, None, :] - X[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        mreach = np.maximum(dist, np.maximum(core[:, None], core[None, :]))
        np.fill_diagonal(mreach, np.inf)

        in_tree = np.zeros(n, dtype=bool)
        in_tree[0] = True
        best = mreach[0].copy()
        edges = np.empty(n - 1, dtype=np.float64)  # weight of each added edge
        attach: list[tuple[float, int, int]] = []
        best_from = np.zeros(n, dtype=np.intp)
        for step in range(n - 1):
            cand = np.where(~in_tree, best, np.inf)
            nxt = int(np.argmin(cand))
            edges[step] = best[nxt]
            attach.append((float(best[nxt]), int(best_from[nxt]), nxt))
            in_tree[nxt] = True
            improved = mreach[nxt] < best
            best = np.where(improved, mreach[nxt], best)
            best_from = np.where(improved, nxt, best_from)

        # Single-linkage sweep from light to heavy edges.  A component
        # becomes a *cluster* when it first reaches min_cluster_size; that
        # weight is the cluster's birth level, approximating eps_max(C)
        # (the densest level at which C exists).  A point's exit level
        # eps(p) is the weight of the merge that attached it to a cluster:
        # founders get eps(p) = birth (score 0), stragglers attached by a
        # heavy mutual-reachability edge get eps(p) >> birth (score -> 1).
        order = np.argsort([w for w, _, _ in attach])
        parent = np.arange(n)
        size = np.ones(n, dtype=np.intp)
        birth = np.full(n, np.nan)  # per component root: cluster birth level
        eps_point = np.zeros(n, dtype=np.float64)
        cluster_birth = np.zeros(n, dtype=np.float64)  # per point, once settled
        settled = np.zeros(n, dtype=bool)

        def find(u: int) -> int:
            while parent[u] != u:
                parent[u] = parent[parent[u]]
                u = int(parent[u])
            return u

        members: dict[int, list[int]] = {i: [i] for i in range(n)}
        mcs = self.min_cluster_size
        for idx in order:
            w, a, b = attach[idx]
            ra, rb = find(a), find(b)
            if ra == rb:
                continue
            substantial_a = size[ra] >= mcs
            substantial_b = size[rb] >= mcs
            if substantial_a and substantial_b:
                new_birth = min(birth[ra], birth[rb])
            elif substantial_a or substantial_b:
                new_birth = birth[ra] if substantial_a else birth[rb]
            elif size[ra] + size[rb] >= mcs:
                new_birth = w  # a cluster is born at this level
            else:
                new_birth = np.nan
            merged = members[ra] + members[rb]
            if not np.isnan(new_birth):
                for p in merged:
                    if not settled[p]:
                        eps_point[p] = w
                        cluster_birth[p] = new_birth
                        settled[p] = True
            parent[ra] = rb
            size[rb] = size[ra] + size[rb]
            birth[rb] = new_birth
            members[rb] = merged
            del members[ra]

        ceiling = edges.max(initial=1.0)
        eps_point[~settled] = ceiling
        cluster_birth[~settled] = edges.min(initial=1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            score = 1.0 - cluster_birth / np.maximum(eps_point, np.finfo(np.float64).tiny)
        return np.clip(np.nan_to_num(score), 0.0, 1.0)
