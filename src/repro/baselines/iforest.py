"""Isolation Forest (Liu, Ting, Zhou [18]), from scratch.

Random axis-parallel splits isolate anomalies in few steps; the score
is ``2^(-E[h(x)] / c(psi))`` where ``h`` is the path length (external
nodes adjusted by the average unsuccessful-BST-search length) and
``c(psi)`` normalizes by the subsample size.  Table II tunes
``t ∈ {2..128}`` trees and ``psi ∈ {2..min(1024, 0.3 n)}``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import BaseDetector
from repro.utils.rng import check_random_state


def average_path_length(n: int | np.ndarray) -> np.ndarray:
    """c(n): average unsuccessful-search path length in a BST of n nodes."""
    n = np.asarray(n, dtype=np.float64)
    out = np.zeros_like(n)
    big = n > 2
    harmonic = np.log(np.maximum(n - 1, 1.0)) + np.euler_gamma
    out[big] = 2.0 * harmonic[big] - 2.0 * (n[big] - 1.0) / n[big]
    out[n == 2] = 1.0
    return out


class _ITree:
    """One isolation tree, stored as flat arrays for fast evaluation."""

    __slots__ = ("feature", "threshold", "left", "right", "size", "n_nodes")

    def __init__(self, X: np.ndarray, height_limit: int, rng: np.random.Generator):
        cap = 2 * X.shape[0]
        self.feature = np.full(cap, -1, dtype=np.intp)
        self.threshold = np.zeros(cap, dtype=np.float64)
        self.left = np.full(cap, -1, dtype=np.intp)
        self.right = np.full(cap, -1, dtype=np.intp)
        self.size = np.zeros(cap, dtype=np.intp)
        self.n_nodes = 0
        self._grow(X, np.arange(X.shape[0]), 0, height_limit, rng)

    def _new_node(self) -> int:
        node = self.n_nodes
        self.n_nodes += 1
        if node >= self.feature.size:  # pragma: no cover - capacity is generous
            for name in ("feature", "threshold", "left", "right", "size"):
                setattr(self, name, np.resize(getattr(self, name), 2 * node))
        return node

    def _grow(
        self,
        X: np.ndarray,
        members: np.ndarray,
        depth: int,
        limit: int,
        rng: np.random.Generator,
    ) -> int:
        node = self._new_node()
        self.size[node] = members.size
        if depth >= limit or members.size <= 1:
            return node
        values = X[members]
        lo, hi = values.min(axis=0), values.max(axis=0)
        splittable = np.nonzero(hi > lo)[0]
        if splittable.size == 0:
            return node  # all duplicates
        f = int(rng.choice(splittable))
        s = float(rng.uniform(lo[f], hi[f]))
        mask = values[:, f] < s
        self.feature[node] = f
        self.threshold[node] = s
        self.left[node] = self._grow(X, members[mask], depth + 1, limit, rng)
        self.right[node] = self._grow(X, members[~mask], depth + 1, limit, rng)
        return node

    def path_length(self, X: np.ndarray) -> np.ndarray:
        """h(x) per row, with the c(size) adjustment at external nodes."""
        n = X.shape[0]
        node = np.zeros(n, dtype=np.intp)
        depth = np.zeros(n, dtype=np.float64)
        active = np.arange(n)
        while active.size:
            cur = node[active]
            internal = self.feature[cur] >= 0
            done = active[~internal]
            if done.size:
                leaf = node[done]
                depth[done] += average_path_length(self.size[leaf])
            active = active[internal]
            if active.size == 0:
                break
            cur = node[active]
            f = self.feature[cur]
            go_left = X[active, f] < self.threshold[cur]
            node[active] = np.where(go_left, self.left[cur], self.right[cur])
            depth[active] += 1.0
        return depth


class IForest(BaseDetector):
    """Isolation forest with ``n_trees`` trees of ``subsample`` points each."""

    name = "iForest"
    deterministic = False

    def __init__(self, n_trees: int = 100, subsample: int = 256, random_state=None):
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        if subsample < 2:
            raise ValueError(f"subsample must be >= 2, got {subsample}")
        self.n_trees = n_trees
        self.subsample = subsample
        self.random_state = random_state

    def _fit_trees(self, X: np.ndarray, rng: np.random.Generator) -> tuple[list[_ITree], int]:
        n = X.shape[0]
        psi = min(self.subsample, n)
        limit = math.ceil(math.log2(max(psi, 2)))
        trees = []
        for _ in range(self.n_trees):
            sample = rng.choice(n, size=psi, replace=False)
            trees.append(_ITree(X[sample], limit, rng))
        return trees, psi

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        trees, psi = self._fit_trees(X, rng)
        depths = np.mean([t.path_length(X) for t in trees], axis=0)
        c = float(average_path_length(np.array([psi]))[0]) or 1.0
        return np.power(2.0, -depths / c)
