"""kNN-distance baselines: kNN-Out [19] and ODIN [22].

- **kNN-Out** (Ramaswamy et al.): the anomaly score of a point is its
  distance to its k-th nearest neighbor.
- **ODIN** (Hautamäki et al.): build the directed kNN graph; a point's
  outlyingness is its (low) in-degree — few other points consider it a
  neighbor.

Both resolve their kNN workload through the batch query engine
(:func:`repro.engine.knn_distances` via the shared
:func:`~repro.baselines.base.knn_distances` helper), which serves
Euclidean vectors from scipy's compiled kd-tree in one batched query.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector, knn_distances


class KNNOut(BaseDetector):
    """Distance to the k-th nearest neighbor (larger = more anomalous)."""

    name = "kNN-Out"

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def _score(self, X: np.ndarray) -> np.ndarray:
        dists, _ = knn_distances(X, min(self.k, X.shape[0] - 1))
        return dists[:, -1]


class ODIN(BaseDetector):
    """kNN-graph in-degree, negated so higher = more anomalous."""

    name = "ODIN"

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        _, idx = knn_distances(X, min(self.k, n - 1))
        indegree = np.zeros(n, dtype=np.float64)
        np.add.at(indegree, idx.ravel(), 1.0)
        return -indegree
