"""LDOF and PLDOF (Table I).

- **LDOF** (Zhang, Hutter, Jin [20]): the Local Distance-based Outlier
  Factor of a point is the ratio of its average distance to its k
  nearest neighbors over the average pairwise distance *among* those
  neighbors — scattered points sit far outside their neighbor clique.
- **PLDOF** (Pamula, Deka, Nandi [23]): prunes the candidate set with
  k-means before computing LDOF — points close to a populous cluster
  centroid cannot be top outliers, so only the remainder pays the
  quadratic LDOF cost.  Pruned points score 0.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector, knn_distances
from repro.utils.rng import check_random_state


def _ldof_values(X: np.ndarray, k: int, subset: np.ndarray | None = None) -> np.ndarray:
    """LDOF for each point of ``subset`` (default: everyone)."""
    n = X.shape[0]
    k = min(k, n - 1)
    dists, idx = knn_distances(X, k)
    targets = np.arange(n) if subset is None else subset
    out = np.zeros(targets.size, dtype=np.float64)
    for row, i in enumerate(targets):
        nbrs = idx[i]
        d_knn = float(dists[i].mean())
        pts = X[nbrs]
        if k == 1:
            inner = 0.0
        else:
            diff = pts[:, None, :] - pts[None, :, :]
            pair = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
            inner = float(pair.sum() / (k * (k - 1)))
        out[row] = d_knn / inner if inner > 0 else np.inf
    return np.nan_to_num(out, posinf=1e9)


class LDOF(BaseDetector):
    """Local distance-based outlier factor (quadratic in practice)."""

    name = "LDOF"

    def __init__(self, k: int = 10):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def _score(self, X: np.ndarray) -> np.ndarray:
        return _ldof_values(X, self.k)


class PLDOF(BaseDetector):
    """Cluster-pruned LDOF: k-means first, LDOF only on the suspects."""

    name = "PLDOF"
    deterministic = False

    def __init__(self, k: int = 10, n_clusters: int = 5, keep_fraction: float = 0.2,
                 random_state=None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 0 < keep_fraction <= 1:
            raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
        self.k = k
        self.n_clusters = n_clusters
        self.keep_fraction = keep_fraction
        self.random_state = random_state

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        k_clusters = min(self.n_clusters, n)
        centroids = X[rng.choice(n, size=k_clusters, replace=False)].copy()
        for _ in range(20):
            d = np.linalg.norm(X[:, None, :] - centroids[None, :, :], axis=2)
            assign = d.argmin(axis=1)
            new = centroids.copy()
            for c in range(k_clusters):
                members = np.nonzero(assign == c)[0]
                if members.size:
                    new[c] = X[members].mean(axis=0)
            if np.allclose(new, centroids):
                break
            centroids = new
        d = np.linalg.norm(X[:, None, :] - centroids[None, :, :], axis=2).min(axis=1)
        n_keep = max(self.k + 1, int(np.ceil(self.keep_fraction * n)))
        suspects = np.argsort(d)[-n_keep:]
        scores = np.zeros(n, dtype=np.float64)
        scores[suspects] = _ldof_values(X, self.k, subset=suspects)
        return scores
