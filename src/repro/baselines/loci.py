"""LOCI and ALOCI: (Approximate) Local Correlation Integral [14].

**LOCI** compares each point's r-neighborhood count to the average
count over its alpha*r-sampling neighborhood via the Multi-Granularity
Deviation Factor (MDEF); the score is the maximum, over radii, of
MDEF / sigma_MDEF.  Quadratic — the paper marks it infeasible on large
data, which our runtime bench reproduces.

**ALOCI** approximates the counts with shifted quadtrees (box counts at
multiple levels over ``g`` randomly shifted grids), turning the
neighborhood counts into O(1) lookups at the price of feature-space
access (this is why ALOCI "needs modification" for nondimensional
data in Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector
from repro.utils.rng import check_random_state


class LOCI(BaseDetector):
    """Exact LOCI with alpha-sampling neighborhoods.

    Parameters
    ----------
    alpha:
        Counting-radius ratio (paper default 0.5).
    n_min:
        Minimum sampling-neighborhood size for a radius to be scored
        (20 in Table II), guarding the MDEF variance against tiny
        samples.
    n_radii:
        Number of radii swept between the smallest and largest pairwise
        distance (geometric ladder).
    """

    name = "LOCI"

    def __init__(self, alpha: float = 0.5, n_min: int = 20, n_radii: int = 20):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.n_min = n_min
        self.n_radii = n_radii

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        diff = X[:, None, :] - X[None, :, :]
        dm = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        positive = dm[dm > 0]
        if positive.size == 0:
            return np.zeros(n)
        radii = np.geomspace(positive.min(), dm.max(), num=self.n_radii)
        scores = np.zeros(n, dtype=np.float64)
        for r in radii:
            sampling = dm <= r  # rows: points, cols: sampling neighbors
            counting = dm <= self.alpha * r
            n_counting = counting.sum(axis=1).astype(np.float64)  # n(p, alpha*r)
            sizes = sampling.sum(axis=1)
            valid = sizes >= self.n_min
            if not valid.any():
                continue
            # Average and deviation of n(q, alpha*r) over q in sampling nbhd.
            sums = sampling @ n_counting
            means = sums / sizes
            sq_sums = sampling @ (n_counting**2)
            var = sq_sums / sizes - means**2
            sigma = np.sqrt(np.maximum(var, 0.0))
            with np.errstate(divide="ignore", invalid="ignore"):
                mdef = 1.0 - n_counting / means
                norm = np.where(sigma > 0, sigma / means, np.inf)
                ratio = np.where(sigma > 0, mdef / norm, 0.0)
            scores[valid] = np.maximum(scores[valid], ratio[valid])
        return scores


class ALOCI(BaseDetector):
    """Approximate LOCI with ``g`` shifted grids of box counts.

    Parameters
    ----------
    n_grids:
        Number of randomly shifted grids (Table II: g in {10, 15, 20}).
    n_levels:
        Quadtree depth (count boxes at cell sizes diameter / 2^level).
    n_min:
        Minimum box count for a level to contribute.
    random_state:
        Grid-shift seed; ALOCI is non-deterministic in Table I.
    """

    name = "ALOCI"
    deterministic = False

    def __init__(self, n_grids: int = 15, n_levels: int = 10, n_min: int = 20, random_state=None):
        self.n_grids = n_grids
        self.n_levels = n_levels
        self.n_min = n_min
        self.random_state = random_state

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        n, d = X.shape
        lo, hi = X.min(axis=0), X.max(axis=0)
        span = np.maximum(hi - lo, np.finfo(np.float64).tiny)
        shifts = rng.uniform(0.0, 1.0, size=(self.n_grids, d))
        scores = np.zeros(n, dtype=np.float64)
        for level in range(1, self.n_levels + 1):
            cell_width = 2.0 / (2**level)  # coarse cell width, normalized
            # Per grid: the MDEF z-score and how well-centered each point
            # sits in its counting cell; keep the best-centered grid per
            # point (the original aLOCI's cell-selection rule).
            level_best_center = np.full(n, np.inf)
            level_score = np.zeros(n)
            any_valid = np.zeros(n, dtype=bool)
            for g in range(self.n_grids):
                U = (X - lo) / span + shifts[g]
                coarse = np.floor(U / cell_width).astype(np.int64)
                fine = np.floor(2.0 * U / cell_width).astype(np.int64)
                coarse_key = self._keys(coarse)
                fine_count = self._count_per_point(self._keys(fine))
                coarse_count = self._count_per_point(coarse_key)
                valid = coarse_count >= self.n_min
                if not valid.any():
                    continue
                avg, sigma = self._fine_stats(coarse_key, fine_count)
                with np.errstate(divide="ignore", invalid="ignore"):
                    mdef = 1.0 - fine_count / avg
                    z = np.where(sigma > 0, mdef * avg / sigma, np.where(mdef > 0, np.inf, 0.0))
                z = np.nan_to_num(z, posinf=1e6)
                # Distance from each point to its fine-cell center.
                center = (fine + 0.5) * (cell_width / 2.0)
                offset = np.linalg.norm(U - center, axis=1)
                better = valid & (offset < level_best_center)
                level_best_center = np.where(better, offset, level_best_center)
                level_score = np.where(better, z, level_score)
                any_valid |= valid
            scores = np.where(any_valid, np.maximum(scores, level_score), scores)
        return scores

    @staticmethod
    def _keys(cells: np.ndarray) -> np.ndarray:
        """Hash integer cell coordinates to one key per point."""
        key = cells[:, 0].astype(np.int64).copy()
        for axis in range(1, cells.shape[1]):
            key *= 1_000_003
            key += cells[:, axis]
        return key

    @staticmethod
    def _count_per_point(keys: np.ndarray) -> np.ndarray:
        _, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
        return counts[inverse].astype(np.float64)

    @staticmethod
    def _fine_stats(coarse_keys: np.ndarray, fine_count: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Mean and std of fine-box occupancy within each coarse box."""
        _, inverse = np.unique(coarse_keys, return_inverse=True)
        sizes = np.bincount(inverse).astype(np.float64)
        sums = np.bincount(inverse, weights=fine_count)
        means = sums / sizes
        sq = np.bincount(inverse, weights=fine_count**2) / sizes
        sigma = np.sqrt(np.maximum(sq - means**2, 0.0))
        return means[inverse], sigma[inverse]
