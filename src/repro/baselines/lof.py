"""LOF: Local Outlier Factor (Breunig et al. [21]).

Classic density-based score: the ratio of a point's neighbors' local
reachability densities to its own.  Values near 1 are inliers; larger
values are outliers, so LOF's native orientation already matches the
library convention.

The kNN workload (the only query-heavy part) runs through the batch
query engine via :func:`~repro.baselines.base.knn_distances`; the
density arithmetic on top is pure NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector, knn_distances


def _reach_floor(k_distance: np.ndarray) -> float:
    """Floor for the reachability mean in the lrd division.

    A raw ``np.finfo.tiny`` floor saturates degenerate lrds at ~4.5e307,
    where the final ratio against a normal lrd overflows to inf and
    trips the library's finite-score guard; an *absolute* epsilon would
    instead destroy LOF's scale invariance (a dataset measured in
    picounits would score 1.0 everywhere).  Scaling the floor by the
    largest fitted k-distance caps every lrd at ~1e12 relative to the
    data's own scale: ratios stay finite and LOF(c·X) == LOF(X) for any
    c > 0.  All-coincident data (scale 0) falls back to the tiny floor,
    where every lrd saturates equally and all ratios are exactly 1.
    """
    scale = float(k_distance.max()) if k_distance.size else 0.0
    return max(scale * 1e-12, np.finfo(np.float64).tiny)


def lof_fit_arrays(X: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The fitted state of LOF: per-point k-distance, lrd, and LOF score.

    Factored out of :meth:`LOF._score` so the inductive serving model
    (:mod:`repro.api`) can keep ``k_distance`` and ``lrd`` around and
    score held-out batches against them with :func:`lof_score_against`.
    """
    dists, idx = knn_distances(X, k)
    k_distance = dists[:, -1]
    # reach-dist_k(p, o) = max(k-distance(o), d(p, o))
    reach = np.maximum(k_distance[idx], dists)
    lrd = 1.0 / np.maximum(reach.mean(axis=1), _reach_floor(k_distance))
    # LOF(p) = mean(lrd(o) for o in kNN(p)) / lrd(p)
    return k_distance, lrd, _lrd_mean(lrd, idx) / lrd


def _lrd_mean(lrd: np.ndarray, nbr_pos: np.ndarray) -> np.ndarray:
    """Row-wise mean of ``lrd[nbr_pos]``, computed divide-first.

    Belt to the :func:`_reach_floor` braces: lrds are capped near 1e12
    relative to the data scale — and saturate at ~4.5e307 on the tiny
    fallback for all-coincident data — so dividing before summing keeps
    the partial sums below the float64 max in every case.
    """
    return (lrd[nbr_pos] / nbr_pos.shape[1]).sum(axis=1)


def lof_score_against(
    k_distance: np.ndarray,
    lrd: np.ndarray,
    nbr_dists: np.ndarray,
    nbr_pos: np.ndarray,
) -> np.ndarray:
    """LOF of held-out points against a fit described by its arrays.

    ``nbr_dists`` / ``nbr_pos`` are each held-out point's distances to
    and positions of its k nearest *fitted* points; the classic
    inductive evaluation plugs them into the same reachability
    arithmetic the fit used.
    """
    reach = np.maximum(k_distance[nbr_pos], nbr_dists)
    # the FITTED k-distances set the floor, so a held-out point's lrd
    # lives on the same scale the fitted lrds were computed on
    lrd_q = 1.0 / np.maximum(reach.mean(axis=1), _reach_floor(k_distance))
    return _lrd_mean(lrd, nbr_pos) / lrd_q


class LOF(BaseDetector):
    """Local Outlier Factor with MinPts = ``k``."""

    name = "LOF"

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def _score(self, X: np.ndarray) -> np.ndarray:
        k = min(self.k, X.shape[0] - 1)
        return lof_fit_arrays(X, k)[2]
