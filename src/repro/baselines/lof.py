"""LOF: Local Outlier Factor (Breunig et al. [21]).

Classic density-based score: the ratio of a point's neighbors' local
reachability densities to its own.  Values near 1 are inliers; larger
values are outliers, so LOF's native orientation already matches the
library convention.

The kNN workload (the only query-heavy part) runs through the batch
query engine via :func:`~repro.baselines.base.knn_distances`; the
density arithmetic on top is pure NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector, knn_distances


class LOF(BaseDetector):
    """Local Outlier Factor with MinPts = ``k``."""

    name = "LOF"

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        k = min(self.k, n - 1)
        dists, idx = knn_distances(X, k)
        k_distance = dists[:, -1]
        # reach-dist_k(p, o) = max(k-distance(o), d(p, o))
        reach = np.maximum(k_distance[idx], dists)
        with np.errstate(divide="ignore"):
            lrd = 1.0 / np.maximum(reach.mean(axis=1), np.finfo(np.float64).tiny)
        # LOF(p) = mean(lrd(o) for o in kNN(p)) / lrd(p)
        return lrd[idx].mean(axis=1) / lrd
