"""RDA: Robust Deep Autoencoder (Zhou & Paffenroth [28]), in pure NumPy.

RDA splits the data ``X = L + S``: a deep autoencoder reconstructs the
clean part ``L`` while an L1 (soft-thresholded) sparse matrix ``S``
absorbs the outliers, alternating between training the AE on ``X - S``
and shrinking ``S = X - AE(X - S)``.  The anomaly score of a row is the
magnitude it needed in ``S`` plus its residual reconstruction error.

The autoencoder is a fully connected MLP with sigmoid activations
trained by Adam — implemented directly on NumPy so the library stays
dependency-free.  Table II's grid covers ``n_layers``, ``dim_decay``,
``n_iter`` and ``lam``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector
from repro.utils.rng import check_random_state


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class _MLPAutoencoder:
    """Symmetric sigmoid MLP autoencoder with Adam."""

    def __init__(self, layer_dims: list[int], rng: np.random.Generator):
        self.dims = layer_dims + layer_dims[-2::-1]  # encoder + mirrored decoder
        self.W: list[np.ndarray] = []
        self.b: list[np.ndarray] = []
        for d_in, d_out in zip(self.dims[:-1], self.dims[1:]):
            scale = np.sqrt(2.0 / (d_in + d_out))
            self.W.append(rng.normal(0.0, scale, size=(d_in, d_out)))
            self.b.append(np.zeros(d_out))
        self._adam_m = [np.zeros_like(w) for w in self.W] + [np.zeros_like(b) for b in self.b]
        self._adam_v = [np.zeros_like(w) for w in self.W] + [np.zeros_like(b) for b in self.b]
        self._adam_t = 0

    def forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [X]
        h = X
        last = len(self.W) - 1
        for i, (w, b) in enumerate(zip(self.W, self.b)):
            z = h @ w + b
            h = z if i == last else _sigmoid(z)  # linear output layer
            activations.append(h)
        return h, activations

    def train_epoch(self, X: np.ndarray, lr: float, batch: int, rng: np.random.Generator):
        order = rng.permutation(X.shape[0])
        for start in range(0, X.shape[0], batch):
            rows = order[start : start + batch]
            self._step(X[rows], lr)

    def _step(self, Xb: np.ndarray, lr: float) -> None:
        out, acts = self.forward(Xb)
        m = Xb.shape[0]
        delta = 2.0 * (out - Xb) / m  # d MSE / d out
        grads_w: list[np.ndarray] = [np.empty(0)] * len(self.W)
        grads_b: list[np.ndarray] = [np.empty(0)] * len(self.b)
        last = len(self.W) - 1
        for i in range(last, -1, -1):
            a_prev = acts[i]
            if i != last:
                delta = delta * acts[i + 1] * (1.0 - acts[i + 1])  # sigmoid'
            grads_w[i] = a_prev.T @ delta
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = delta @ self.W[i].T
        self._adam([*grads_w, *grads_b], lr)

    def _adam(self, grads: list[np.ndarray], lr: float, b1=0.9, b2=0.999, eps=1e-8) -> None:
        self._adam_t += 1
        params = [*self.W, *self.b]
        for p, g, m, v in zip(params, grads, self._adam_m, self._adam_v):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / (1 - b1**self._adam_t)
            v_hat = v / (1 - b2**self._adam_t)
            p -= lr * m_hat / (np.sqrt(v_hat) + eps)


class RDA(BaseDetector):
    """Robust deep autoencoder scores: ||S_i|| + residual error.

    Parameters
    ----------
    n_layers:
        Encoder depth (Table II: 2-4).
    dim_decay:
        Successive layer-width divisor (Table II: 1, 2, 4).
    n_iter:
        Outer L/S alternations (Table II: 20, 50).
    lam:
        L1 shrinkage weight on S (Table II: 1e-5 .. 1e-4, relative to
        the data scale).
    """

    name = "RDA"
    deterministic = False

    def __init__(
        self,
        n_layers: int = 3,
        dim_decay: int = 2,
        n_iter: int = 20,
        lam: float = 7.5e-5,
        epochs_per_iter: int = 5,
        learning_rate: float = 1e-2,
        random_state=None,
    ):
        if n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {n_layers}")
        self.n_layers = n_layers
        self.dim_decay = dim_decay
        self.n_iter = n_iter
        self.lam = lam
        self.epochs_per_iter = epochs_per_iter
        self.learning_rate = learning_rate
        self.random_state = random_state

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        # Standardize so lam and lr are scale-free.
        mu, sd = X.mean(axis=0), X.std(axis=0)
        sd[sd == 0] = 1.0
        Z = (X - mu) / sd
        n, d = Z.shape

        dims = [d]
        width = d
        for _ in range(self.n_layers):
            width = max(1, width // max(1, self.dim_decay))
            dims.append(width)
        ae = _MLPAutoencoder(dims, rng)

        S = np.zeros_like(Z)
        thresh = self.lam * n  # L1 prox step scaled to the objective
        batch = min(128, n)
        for _ in range(self.n_iter):
            L = Z - S
            for _ in range(self.epochs_per_iter):
                ae.train_epoch(L, self.learning_rate, batch, rng)
            recon, _ = ae.forward(L)
            residual = Z - recon
            S = np.sign(residual) * np.maximum(np.abs(residual) - thresh, 0.0)
        recon, _ = ae.forward(Z - S)
        err = np.linalg.norm(Z - S - recon, axis=1)
        return np.linalg.norm(S, axis=1) + err
