"""SCiForest: isolation forest with split selection for clustered anomalies [6].

SCiForest grows isolation trees on random *hyperplane* attributes
(random linear combinations of features) and, instead of picking the
split point uniformly at random, chooses the candidate with the best
SDgain — the reduction in the children's standard deviation relative to
the parent's.  This lets it carve off small dense clumps ("clustered
anomalies"), the same phenomenon McCatch calls microclusters; per
Table I it still fails to *group* them into scored entities.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import BaseDetector
from repro.baselines.iforest import average_path_length
from repro.utils.rng import check_random_state


class _SCiNode:
    __slots__ = ("direction", "threshold", "left", "right", "size")

    def __init__(self, size: int):
        self.direction: np.ndarray | None = None
        self.threshold = 0.0
        self.left: "_SCiNode | None" = None
        self.right: "_SCiNode | None" = None
        self.size = size


def _sd_gain(parent: np.ndarray, left: np.ndarray, right: np.ndarray) -> float:
    """SDgain of a candidate split of the projected values."""
    sd_p = parent.std()
    if sd_p == 0:
        return 0.0
    avg_child = (left.std() if left.size else 0.0) + (right.std() if right.size else 0.0)
    return (sd_p - avg_child / 2.0) / sd_p


class SCiForest(BaseDetector):
    """Split-selection criterion isolation forest.

    Parameters
    ----------
    n_trees, subsample:
        Ensemble shape, as iForest.
    n_hyperplanes:
        Candidate oblique directions tried per node (tau in the paper).
    n_thresholds:
        Candidate split points tried per direction.
    """

    name = "SCiForest"
    deterministic = False

    def __init__(
        self,
        n_trees: int = 50,
        subsample: int = 256,
        n_hyperplanes: int = 5,
        n_thresholds: int = 8,
        random_state=None,
    ):
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.subsample = subsample
        self.n_hyperplanes = n_hyperplanes
        self.n_thresholds = n_thresholds
        self.random_state = random_state

    def _grow(self, X: np.ndarray, depth: int, limit: int, rng) -> _SCiNode:
        node = _SCiNode(X.shape[0])
        if depth >= limit or X.shape[0] <= 2:
            return node
        d = X.shape[1]
        best = None  # (gain, direction, threshold, mask)
        for _ in range(self.n_hyperplanes):
            direction = rng.normal(size=d)
            norm = np.linalg.norm(direction)
            if norm == 0:
                continue
            direction /= norm
            projected = X @ direction
            lo, hi = projected.min(), projected.max()
            if hi <= lo:
                continue
            for threshold in rng.uniform(lo, hi, size=self.n_thresholds):
                mask = projected < threshold
                if not mask.any() or mask.all():
                    continue
                gain = _sd_gain(projected, projected[mask], projected[~mask])
                if best is None or gain > best[0]:
                    best = (gain, direction, float(threshold), mask)
        if best is None:
            return node
        _, node.direction, node.threshold, mask = best
        node.left = self._grow(X[mask], depth + 1, limit, rng)
        node.right = self._grow(X[~mask], depth + 1, limit, rng)
        return node

    def _path_length(self, node: _SCiNode, x: np.ndarray, depth: int) -> float:
        while node.direction is not None:
            depth += 1
            node = node.left if float(x @ node.direction) < node.threshold else node.right
        return depth + float(average_path_length(np.array([max(node.size, 1)]))[0])

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        psi = min(self.subsample, n)
        limit = math.ceil(math.log2(max(psi, 2)))
        depths = np.zeros(n, dtype=np.float64)
        for _ in range(self.n_trees):
            sample = rng.choice(n, size=psi, replace=False)
            root = self._grow(X[sample], 0, limit, rng)
            depths += np.array([self._path_length(root, x, 0) for x in X])
        depths /= self.n_trees
        c = float(average_path_length(np.array([psi]))[0]) or 1.0
        return np.power(2.0, -depths / c)
