"""Sparx: hash-partitioned density ensemble (Zhang, Ursekar & Akoglu [24]).

Sparx scales outlier detection by *hashing* points into coarse-to-fine
partitions of random projections and scoring each point by the size of
the partitions it lands in — rare cells at many granularities mean
anomalous.  The original runs distributed on Spark; this from-scratch
reproduction keeps the algorithmic core on one machine: an ensemble of
*half-space chains* (the xStream scoring model Sparx distributes).

Each chain draws ``depth`` random feature/projection splits; level
``k`` bins the data at cell width ``Δ / 2^k``.  A point's score from
one chain is the minimum over levels of ``count(cell) · 2^level`` —
the smallest scaled density observed — and the final score is the
negated average across chains (so higher = more anomalous).

Per Table I, Sparx is scalable (G4) but needs explicit feature values
(fails G1) and user-chosen hyperparameters (fails G5), misses
microclusters in dense groups (fails G2/G3), and is randomized.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector
from repro.utils.rng import check_random_state


class _HalfSpaceChain:
    """One chain of progressively finer random-projection bins."""

    def __init__(self, n_features: int, depth: int, rng: np.random.Generator):
        self.features = rng.integers(0, n_features, size=depth)
        # Random shift per level avoids boundary artifacts (as in xStream).
        self.shifts = rng.uniform(0.0, 1.0, size=depth)
        self.tables: list[dict[tuple, int]] = []

    def fit(self, X01: np.ndarray) -> None:
        """Bin the unit-scaled data at every level of the chain."""
        n = X01.shape[0]
        keys = np.zeros((n, 0), dtype=np.int64)
        self.tables = []
        for level, (f, shift) in enumerate(zip(self.features, self.shifts)):
            width = 1.0 / (2.0 ** (level + 1))
            column = np.floor((X01[:, f] + shift * width) / width).astype(np.int64)
            keys = np.column_stack([keys, column])
            table: dict[tuple, int] = {}
            for row in map(tuple, keys):
                table[row] = table.get(row, 0) + 1
            self.tables.append(table)

    def score(self, X01: np.ndarray) -> np.ndarray:
        """Min scaled bin count across levels (lower = more anomalous)."""
        n = X01.shape[0]
        best = np.full(n, np.inf)
        keys = np.zeros((n, 0), dtype=np.int64)
        for level, (f, shift) in enumerate(zip(self.features, self.shifts)):
            width = 1.0 / (2.0 ** (level + 1))
            column = np.floor((X01[:, f] + shift * width) / width).astype(np.int64)
            keys = np.column_stack([keys, column])
            table = self.tables[level]
            counts = np.array([table.get(tuple(row), 0) for row in keys], dtype=np.float64)
            np.minimum(best, counts * (2.0 ** (level + 1)), out=best)
        return best


class Sparx(BaseDetector):
    """Half-space-chain density ensemble (single-machine Sparx core).

    Parameters
    ----------
    n_chains:
        Ensemble size (more chains smooth the density estimate).
    depth:
        Levels per chain; level ``k`` halves the cell width again.
    random_state:
        Seed for the random projections and shifts.
    """

    name = "Sparx"
    deterministic = False

    def __init__(self, n_chains: int = 32, depth: int = 10, random_state=None):
        if n_chains < 1:
            raise ValueError(f"n_chains must be >= 1, got {n_chains}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.n_chains = n_chains
        self.depth = depth
        self.random_state = random_state

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        lo = X.min(axis=0)
        span = X.max(axis=0) - lo
        span[span == 0] = 1.0
        X01 = (X - lo) / span
        total = np.zeros(X.shape[0])
        for _ in range(self.n_chains):
            chain = _HalfSpaceChain(X.shape[1], self.depth, rng)
            chain.fit(X01)
            total += chain.score(X01)
        # Rare cells -> small counts -> high anomaly score.
        return -total / self.n_chains
