"""XTreK: tree-based Kendall's tau maximization (Kong et al. [25]).

XTreK distills an unsupervised anomaly signal into a single shallow
decision tree whose leaf scores are *explainable* — each anomalous
point is described by the conjunction of axis splits on its root-leaf
path — choosing splits that maximize Kendall's tau between the tree's
piecewise-constant output and a reference ranking.

Reproduction notes (documented simplification): the original pairs the
tree induction with a kernel-based reference score; here the reference
is the average distance to ``psi`` random anchor points (a standard
distance-based anomaly proxy with the same ordering behaviour), and
split search maximizes the *within-node separation* of reference
scores — equivalent to greedily maximizing the tau contribution of the
split under a piecewise-constant model.  The result keeps XTreK's
Table I profile: scalable (G4), default hyperparameters (G5),
explainable paths, but feature-bound (fails G1) and blind to
microcluster grouping (fails G2/G3).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseDetector
from repro.utils.rng import check_random_state


class _XNode:
    __slots__ = ("feature", "threshold", "left", "right", "value", "size")

    def __init__(self):
        self.feature: int = -1
        self.threshold: float = 0.0
        self.left: "_XNode | None" = None
        self.right: "_XNode | None" = None
        self.value: float = 0.0
        self.size: int = 0


class XTreK(BaseDetector):
    """Explainable tree scorer with rank-agreement split selection.

    Parameters
    ----------
    max_depth:
        Depth cap of the explanation tree (small by design — the tree
        *is* the explanation).
    min_leaf:
        Minimum points per leaf.
    psi:
        Number of random anchors behind the reference ranking.
    n_candidate_splits:
        Candidate thresholds evaluated per feature at each node.
    random_state:
        Seed for the anchors.
    """

    name = "XTreK"
    deterministic = False

    def __init__(
        self,
        max_depth: int = 6,
        min_leaf: int = 8,
        psi: int = 64,
        n_candidate_splits: int = 16,
        random_state=None,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_leaf < 1:
            raise ValueError(f"min_leaf must be >= 1, got {min_leaf}")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.psi = psi
        self.n_candidate_splits = n_candidate_splits
        self.random_state = random_state
        self._root: _XNode | None = None

    # -- fitting -----------------------------------------------------------

    def _reference_scores(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Distance-based proxy ranking: mean distance to random anchors."""
        psi = min(self.psi, X.shape[0])
        anchors = X[rng.choice(X.shape[0], size=psi, replace=False)]
        # (n, psi) distances without building an (n, psi, d) intermediate.
        sq = (
            np.einsum("ij,ij->i", X, X)[:, None]
            + np.einsum("ij,ij->i", anchors, anchors)[None, :]
            - 2.0 * (X @ anchors.T)
        )
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq).mean(axis=1)

    def _grow(self, X: np.ndarray, ref: np.ndarray, depth: int) -> _XNode:
        node = _XNode()
        node.size = X.shape[0]
        node.value = float(ref.mean())
        if depth >= self.max_depth or X.shape[0] < 2 * self.min_leaf or np.ptp(ref) == 0:
            return node
        best_gain, best = 0.0, None
        for f in range(X.shape[1]):
            column = X[:, f]
            qs = np.linspace(0.05, 0.95, self.n_candidate_splits)
            for threshold in np.unique(np.quantile(column, qs)):
                mask = column <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_leaf or X.shape[0] - n_left < self.min_leaf:
                    continue
                mu_l, mu_r = ref[mask].mean(), ref[~mask].mean()
                # Between-group separation — the concordant-pair mass a
                # piecewise-constant model can claim from this split.
                gain = n_left * (X.shape[0] - n_left) * abs(mu_l - mu_r)
                if gain > best_gain:
                    best_gain, best = gain, (f, float(threshold), mask)
        if best is None:
            return node
        node.feature, node.threshold, mask = best
        node.left = self._grow(X[mask], ref[mask], depth + 1)
        node.right = self._grow(X[~mask], ref[~mask], depth + 1)
        return node

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = check_random_state(self.random_state)
        ref = self._reference_scores(X, rng)
        self._root = self._grow(X, ref, depth=0)
        return self._evaluate(X)

    # -- evaluation / explanation -------------------------------------------

    def _evaluate(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while node.left is not None:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def explain(self, x) -> list[str]:
        """Root-leaf split path for one point — XTreK's explanation."""
        if self._root is None:
            raise RuntimeError("call fit_scores before explain")
        x = np.asarray(x, dtype=np.float64).ravel()
        node, path = self._root, []
        while node.left is not None:
            if x[node.feature] <= node.threshold:
                path.append(f"feature[{node.feature}] <= {node.threshold:.4g}")
                node = node.left
            else:
                path.append(f"feature[{node.feature}] > {node.threshold:.4g}")
                node = node.right
        path.append(f"leaf score = {node.value:.4g} (n={node.size})")
        return path
