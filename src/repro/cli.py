"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``detect``
    Run McCatch on a CSV/TSV of vectors (or a text file of strings with
    ``--metric levenshtein``) and print the ranked microclusters.
``report``
    Run McCatch and write a self-contained HTML report (plus optional
    JSON archive and Markdown table).
``stream``
    Replay a CSV through StreamingMcCatch in batches and print a
    per-batch alert log.
``fit``
    Fit McCatch on a CSV of vectors and persist the whole model —
    flat index arrays, data, result — to one ``.npz`` (fit once,
    serve many).
``score``
    Load a saved model and score a held-out CSV batch against it
    without refitting.
``datasets``
    List the built-in dataset generators and their Table III metadata.
``demo``
    Run McCatch on a built-in dataset by name and report quality.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import McCatch, StreamingMcCatch, __version__
from repro.datasets import BENCHMARK_SPECS, dataset_names, load
from repro.eval import auroc
from repro.metric.strings import levenshtein


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="McCatch: scalable microcluster detection (ICDE 2024 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="run McCatch on a data file")
    detect.add_argument("path", help="CSV/TSV of numbers, or text file of strings")
    detect.add_argument("--metric", default="euclidean",
                        choices=["euclidean", "manhattan", "chebyshev", "levenshtein"],
                        help="distance function (levenshtein implies string data)")
    detect.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    detect.add_argument("--n-radii", type=int, default=15, help="hyperparameter a")
    detect.add_argument("--max-slope", type=float, default=0.1, help="hyperparameter b")
    detect.add_argument("--max-cardinality-fraction", type=float, default=0.1,
                        help="hyperparameter c as a fraction of n")
    detect.add_argument("--index", default="auto",
                        help="index kind backing the joins (default auto)")
    detect.add_argument("--top", type=int, default=20, help="rows of ranking to print")
    detect.add_argument("--save-json", metavar="PATH",
                        help="archive the full result as JSON")

    report = sub.add_parser("report", help="run McCatch and write an HTML report")
    report.add_argument("path", help="CSV/TSV of numbers, or text file of strings")
    report.add_argument("--metric", default="euclidean",
                        choices=["euclidean", "manhattan", "chebyshev", "levenshtein"])
    report.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    report.add_argument("-o", "--output", default="mccatch_report.html",
                        help="HTML output path (default mccatch_report.html)")
    report.add_argument("--title", default="McCatch report")
    report.add_argument("--save-json", metavar="PATH",
                        help="also archive the result as JSON")
    report.add_argument("--save-markdown", metavar="PATH",
                        help="also write the ranking as a Markdown table")

    stream = sub.add_parser("stream", help="replay a CSV through StreamingMcCatch")
    stream.add_argument("path", help="CSV/TSV of numbers (rows replayed in order)")
    stream.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    stream.add_argument("--batch", type=int, default=500, help="batch size (default 500)")
    stream.add_argument("--refit-factor", type=float, default=1.5,
                        help="refit when the window grew by this factor")
    stream.add_argument("--max-window", type=int, default=None,
                        help="sliding-window size (default: keep everything)")

    fit = sub.add_parser("fit", help="fit McCatch and persist the model to .npz")
    fit.add_argument("path", help="CSV/TSV of numbers (model persistence is vector-only)")
    fit.add_argument("-o", "--output", default="mccatch_model.npz",
                     help="model output path (default mccatch_model.npz)")
    fit.add_argument("--metric", default="euclidean",
                     choices=["euclidean", "manhattan", "chebyshev"])
    fit.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    fit.add_argument("--n-radii", type=int, default=15, help="hyperparameter a")
    fit.add_argument("--max-slope", type=float, default=0.1, help="hyperparameter b")
    fit.add_argument("--max-cardinality-fraction", type=float, default=0.1,
                     help="hyperparameter c as a fraction of n")
    fit.add_argument("--index", default="vptree",
                     help="metric tree backing the model (default vptree; must "
                          "be flat-backed: vptree, balltree, covertree, mtree, slimtree)")

    score = sub.add_parser("score", help="score a held-out CSV against a saved model")
    score.add_argument("model", help="model .npz written by `repro fit`")
    score.add_argument("path", help="CSV/TSV of rows to score")
    score.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    score.add_argument("--top", type=int, default=20, help="rows of ranking to print")

    sub.add_parser("datasets", help="list the built-in dataset generators")

    demo = sub.add_parser("demo", help="run McCatch on a built-in dataset")
    demo.add_argument("name", help="dataset name (see `repro datasets`)")
    demo.add_argument("--scale", type=float, default=0.1,
                      help="fraction of the paper's dataset size (default 0.1)")
    demo.add_argument("--seed", type=int, default=0)
    return parser


def _load_input(path: str, metric: str, delimiter: str):
    if metric == "levenshtein":
        with open(path) as f:
            items = [line.strip() for line in f if line.strip()]
        if not items:
            raise SystemExit(f"error: {path} contains no strings")
        return items, levenshtein
    try:
        X = np.loadtxt(path, delimiter=delimiter, ndmin=2)
    except ValueError as exc:
        raise SystemExit(
            f"error: could not parse {path} as numeric {delimiter!r}-separated data "
            f"({exc}); for string data pass --metric levenshtein"
        ) from exc
    return X, metric


def _fit(data, metric, detector: McCatch):
    if callable(metric):
        return detector.fit(data, metric)
    return detector.fit(np.asarray(data), metric if metric != "euclidean" else None)


def _cmd_detect(args) -> int:
    data, metric = _load_input(args.path, args.metric, args.delimiter)
    detector = McCatch(
        n_radii=args.n_radii,
        max_slope=args.max_slope,
        max_cardinality_fraction=args.max_cardinality_fraction,
        index=args.index,
    )
    t0 = time.perf_counter()
    result = _fit(data, metric, detector)
    elapsed = time.perf_counter() - t0
    print(f"n={result.n}  microclusters={len(result.microclusters)}  "
          f"outlying points={result.n_outliers}  ({elapsed:.2f}s)")
    print()
    print(f"{'rank':>4}  {'size':>5}  {'score':>9}  {'bridge':>10}  members")
    for rank, mc in enumerate(result.microclusters[: args.top]):
        members = ", ".join(map(str, mc.indices[:8]))
        if mc.cardinality > 8:
            members += ", ..."
        print(f"{rank:>4}  {mc.cardinality:>5}  {mc.score:>9.2f}  "
              f"{mc.bridge_length:>10.4g}  [{members}]")
    if args.save_json:
        from repro.io import save_result_json

        print(f"\nresult archived to {save_result_json(result, args.save_json)}")
    return 0


def _cmd_report(args) -> int:
    from repro.io import result_to_markdown, save_result_json
    from repro.viz import write_report

    data, metric = _load_input(args.path, args.metric, args.delimiter)
    result = _fit(data, metric, McCatch())
    points = None if callable(metric) else np.asarray(data)
    out = write_report(result, args.output, points, title=args.title)
    print(f"n={result.n}  microclusters={len(result.microclusters)}")
    print(f"HTML report: {out}")
    if args.save_json:
        print(f"JSON archive: {save_result_json(result, args.save_json)}")
    if args.save_markdown:
        from pathlib import Path

        Path(args.save_markdown).write_text(result_to_markdown(result), encoding="utf-8")
        print(f"Markdown: {args.save_markdown}")
    return 0


def _cmd_stream(args) -> int:
    if args.batch < 1:
        raise SystemExit("error: --batch must be >= 1")
    data, _ = _load_input(args.path, "euclidean", args.delimiter)
    X = np.asarray(data)
    stream = StreamingMcCatch(
        McCatch(),
        refit_factor=args.refit_factor,
        min_fit_size=max(32, args.batch),
        max_window=args.max_window,
    )
    total_flagged = 0
    for start in range(0, X.shape[0], args.batch):
        update = stream.update(X[start : start + args.batch])
        total_flagged += update.provisional_outliers.size
        mode = "refit" if update.refitted else "score"
        print(f"[{mode}] rows {start:>7}..{start + update.n_new - 1:<7} "
              f"flagged={update.provisional_outliers.size:<4} window={len(stream)}")
    result = stream.refit()
    print()
    print(result.summary())
    print(f"\nflagged during replay: {total_flagged}; "
          f"outlying at final refit: {result.n_outliers}")
    return 0


def _cmd_fit(args) -> int:
    data, metric = _load_input(args.path, args.metric, args.delimiter)
    detector = McCatch(
        n_radii=args.n_radii,
        max_slope=args.max_slope,
        max_cardinality_fraction=args.max_cardinality_fraction,
        index=args.index,
    )
    t0 = time.perf_counter()
    model = detector.fit_model(
        np.asarray(data), metric if metric != "euclidean" else None
    )
    elapsed = time.perf_counter() - t0
    try:
        out = model.save(args.output)
    except TypeError as exc:  # e.g. a non-flat index kind
        raise SystemExit(f"error: {exc}") from exc
    result = model.result
    print(f"n={result.n}  microclusters={len(result.microclusters)}  "
          f"outlying points={result.n_outliers}  ({elapsed:.2f}s)")
    print(f"model saved to {out}")
    return 0


def _cmd_score(args) -> int:
    from repro import McCatchModel

    model = McCatchModel.load(args.model)
    data, _ = _load_input(args.path, "euclidean", args.delimiter)
    X = np.asarray(data)
    t0 = time.perf_counter()
    batch = model.score_batch(X)
    elapsed = time.perf_counter() - t0
    flagged = set(batch.flagged.tolist())
    print(f"model n={model.n}  scored rows={X.shape[0]}  "
          f"flagged={len(flagged)}  ({elapsed:.2f}s)")
    print()
    print(f"{'row':>6}  {'score':>9}  flagged")
    order = np.argsort(-batch.scores, kind="stable")[: args.top]
    for r in order:
        mark = "yes" if int(r) in flagged else ""
        print(f"{int(r):>6}  {batch.scores[r]:>9.2f}  {mark}")
    return 0


def _cmd_datasets(_args) -> int:
    print(f"{'name':<22}{'kind':<10}{'paper n':>10}  notes")
    for name in dataset_names():
        if name in BENCHMARK_SPECS:
            spec = BENCHMARK_SPECS[name]
            note = f"{spec.dim}-d, {spec.outlier_pct}% outliers"
            if spec.microclusters:
                note += f", planted mcs {spec.microclusters}"
            print(f"{name:<22}{'vector':<10}{spec.n:>10,}  {note}")
        else:
            kind = "metric" if name in ("last_names", "fingerprints", "skeletons") else "vector"
            print(f"{name:<22}{kind:<10}{'-':>10}")
    return 0


def _cmd_demo(args) -> int:
    ds = load(args.name, scale=args.scale, random_state=args.seed)
    t0 = time.perf_counter()
    result = McCatch().fit(ds.data, ds.metric)
    elapsed = time.perf_counter() - t0
    print(f"{args.name}: n={ds.n}  ({elapsed:.2f}s)")
    if ds.labels is not None:
        print(f"AUROC vs ground truth: {auroc(ds.labels, result.point_scores):.3f}")
    print(result.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "detect": _cmd_detect,
        "report": _cmd_report,
        "stream": _cmd_stream,
        "fit": _cmd_fit,
        "score": _cmd_score,
        "datasets": _cmd_datasets,
        "demo": _cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
