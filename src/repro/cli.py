"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``detect``
    Run McCatch on a CSV/TSV of vectors (or a text file of strings with
    ``--metric levenshtein``) and print the ranked microclusters.
``report``
    Run McCatch and write a self-contained HTML report (plus optional
    JSON archive and Markdown table).
``stream``
    Replay a CSV through StreamingMcCatch in batches and print a
    per-batch alert log.
``fit``
    Fit any registered detector (``--spec "mccatch?index=vptree"``,
    ``--spec "lof?k=20"``, ...) on a CSV of vectors and persist the
    fitted model to one ``.npz`` — or publish it straight into a
    model registry (``--registry DIR``).  The historical McCatch
    hyperparameter flags still work and are folded into a spec.
``score``
    Load a saved model (by path, or resolved from a registry by spec)
    and score a held-out CSV batch against it without refitting;
    ``--mmap`` serves the model off the page cache so concurrent
    scorers share one on-disk copy.
``models``
    Inspect a model registry: ``models list`` shows the published
    artifacts, ``models resolve`` prints the artifact one spec/version
    resolves to, ``models publish`` fits and publishes in one step.
``serve``
    Long-lived HTTP scoring tier (``POST /score``, ``GET /healthz``,
    ``GET /metrics``, ``GET /model``) over a registry-resolved or
    saved model, with adaptive micro-batching, optional mmap-attached
    worker processes (``--workers N``), hot model swap when a new
    version is published (``--poll``), Prometheus metrics
    (``--no-metrics`` disables), and JSON access logs with per-request
    trace spans (``--log-level info``).
``stats``
    Scrape ``/healthz`` and ``/metrics`` of a running scoring server
    and print a telemetry summary (``--raw`` dumps the exposition).
``datasets``
    List the built-in dataset generators and their Table III metadata.
``demo``
    Run McCatch on a built-in dataset by name and report quality.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import McCatch, StreamingMcCatch, __version__
from repro.datasets import BENCHMARK_SPECS, dataset_names, load
from repro.eval import auroc
from repro.metric.strings import levenshtein


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="McCatch: scalable microcluster detection (ICDE 2024 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="run McCatch on a data file")
    detect.add_argument("path", help="CSV/TSV of numbers, or text file of strings")
    detect.add_argument("--metric", default="euclidean",
                        choices=["euclidean", "manhattan", "chebyshev", "levenshtein"],
                        help="distance function (levenshtein implies string data)")
    detect.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    detect.add_argument("--n-radii", type=int, default=15, help="hyperparameter a")
    detect.add_argument("--max-slope", type=float, default=0.1, help="hyperparameter b")
    detect.add_argument("--max-cardinality-fraction", type=float, default=0.1,
                        help="hyperparameter c as a fraction of n")
    detect.add_argument("--index", default="auto",
                        help="index kind backing the joins (default auto)")
    detect.add_argument("--build", default=None, choices=["bulk", "insert"],
                        help="construction strategy for the insertion-tree "
                             "index families (mtree/slimtree/covertree): the "
                             "level-synchronous array bulk-load (their "
                             "default) or the per-insert baseline")
    detect.add_argument("--walk", default=None,
                        choices=["auto", "compiled", "level", "stack"],
                        help="frontier-walk implementation for the flat-tree "
                             "index families: auto (compiled C kernel when it "
                             "builds, numpy level walk otherwise), or pin "
                             "compiled/level/stack; --index auto is promoted "
                             "to vptree when a walk is requested")
    detect.add_argument("--workers", type=int, default=None, metavar="N",
                        help="shard the range-count walks across N workers "
                             "(engine_mode=parallel; needs a flat-backed "
                             "index, so --index auto is promoted to vptree)")
    detect.add_argument("--shard-by", default="query", choices=["query", "tree"],
                        help="parallel sharding axis: split the query set "
                             "(default) or disjoint subtree node ranges "
                             "(requires --workers)")
    detect.add_argument("--top", type=int, default=20, help="rows of ranking to print")
    detect.add_argument("--save-json", metavar="PATH",
                        help="archive the full result as JSON")

    report = sub.add_parser("report", help="run McCatch and write an HTML report")
    report.add_argument("path", help="CSV/TSV of numbers, or text file of strings")
    report.add_argument("--metric", default="euclidean",
                        choices=["euclidean", "manhattan", "chebyshev", "levenshtein"])
    report.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    report.add_argument("-o", "--output", default="mccatch_report.html",
                        help="HTML output path (default mccatch_report.html)")
    report.add_argument("--title", default="McCatch report")
    report.add_argument("--save-json", metavar="PATH",
                        help="also archive the result as JSON")
    report.add_argument("--save-markdown", metavar="PATH",
                        help="also write the ranking as a Markdown table")

    stream = sub.add_parser("stream", help="replay a CSV through StreamingMcCatch")
    stream.add_argument("path", help="CSV/TSV of numbers (rows replayed in order)")
    stream.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    stream.add_argument("--batch", type=int, default=500, help="batch size (default 500)")
    stream.add_argument("--refit-factor", type=float, default=1.5,
                        help="refit when the window grew by this factor")
    stream.add_argument("--max-window", type=int, default=None,
                        help="sliding-window size (default: keep everything)")

    fit = sub.add_parser("fit", help="fit a detector spec and persist the model to .npz")
    fit.add_argument("path", help="CSV/TSV of numbers (model persistence is vector-only)")
    fit.add_argument("--spec", default=None,
                     help="detector spec, e.g. 'mccatch?index=vptree' or 'lof?k=20' "
                          "(default: McCatch built from the flags below)")
    fit.add_argument("-o", "--output", default=None,
                     help="model output path (default <detector>_model.npz, "
                          "e.g. mccatch_model.npz or lof_model.npz)")
    fit.add_argument("--registry", metavar="DIR", default=None,
                     help="publish into this model registry instead of -o")
    fit.add_argument("--metric", default=None,
                     choices=["euclidean", "manhattan", "chebyshev"],
                     help="fit metric (default euclidean)")
    fit.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    fit.add_argument("--n-radii", type=int, default=None,
                     help="hyperparameter a (default 15; deprecated: use "
                          "--spec 'mccatch?a=...')")
    fit.add_argument("--max-slope", type=float, default=None,
                     help="hyperparameter b (default 0.1; deprecated: use --spec)")
    fit.add_argument("--max-cardinality-fraction", type=float, default=None,
                     help="hyperparameter c as a fraction of n "
                          "(default 0.1; deprecated: use --spec)")
    fit.add_argument("--index", default=None,
                     help="metric tree backing the model (default vptree; must "
                          "be flat-backed: vptree, balltree, covertree, mtree, slimtree)")
    fit.add_argument("--build", default=None, choices=["bulk", "insert"],
                     help="construction strategy for the insertion-tree index "
                          "families (folds build=... into the McCatch spec)")
    fit.add_argument("--walk", default=None,
                     choices=["auto", "compiled", "level", "stack"],
                     help="frontier-walk implementation for the flat-tree "
                          "index families (folds walk=... into the McCatch "
                          "spec)")
    fit.add_argument("--workers", type=int, default=None, metavar="N",
                     help="fit with the parallel engine on N workers (folds "
                          "engine=parallel&workers=N into the McCatch spec)")
    fit.add_argument("--shard-by", default=None, choices=["query", "tree"],
                     help="parallel sharding axis (requires --workers; folds "
                          "shard_by=... into the McCatch spec)")

    score = sub.add_parser("score", help="score a held-out CSV against a saved model")
    score.add_argument("model",
                       help="model .npz written by `repro fit` — or, with "
                            "--registry, the spec string to resolve")
    score.add_argument("path", help="CSV/TSV of rows to score")
    score.add_argument("--registry", metavar="DIR", default=None,
                       help="resolve the model from this registry by spec")
    score.add_argument("--fingerprint", default=None,
                       help="dataset fingerprint selecting the registry key "
                            "(default: the spec's only published fingerprint)")
    score.add_argument("--model-version", type=int, default=None,
                       help="registry version to resolve (default latest)")
    score.add_argument("--mmap", action="store_true",
                       help="memory-map the model so concurrent scorers share "
                            "one on-disk copy (uncompressed archives only)")
    score.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    score.add_argument("--top", type=int, default=20, help="rows of ranking to print")

    models = sub.add_parser("models", help="inspect or fill a model registry")
    models_sub = models.add_subparsers(dest="models_command", required=True)
    m_list = models_sub.add_parser("list", help="list the published artifacts")
    m_list.add_argument("registry", help="registry directory")
    m_list.add_argument("--spec", default=None, help="only artifacts of this spec")
    m_resolve = models_sub.add_parser("resolve", help="print the artifact a spec resolves to")
    m_resolve.add_argument("registry", help="registry directory")
    m_resolve.add_argument("spec", help="detector spec to resolve")
    m_resolve.add_argument("--fingerprint", default=None,
                           help="dataset fingerprint (default: the only one)")
    m_resolve.add_argument("--model-version", type=int, default=None,
                           help="version to resolve (default latest)")
    m_publish = models_sub.add_parser("publish", help="fit a spec on a CSV and publish")
    m_publish.add_argument("registry", help="registry directory")
    m_publish.add_argument("path", help="CSV/TSV of numbers to fit on")
    m_publish.add_argument("--spec", default="mccatch?index=vptree",
                           help="detector spec (default mccatch?index=vptree)")
    m_publish.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")

    serve = sub.add_parser(
        "serve", help="serve a fitted model over HTTP with adaptive micro-batching"
    )
    serve.add_argument("--spec", default=None,
                       help="detector spec to resolve from --registry, "
                            "e.g. 'mccatch?a=15' (same index-default rewrite "
                            "as fit/score)")
    serve.add_argument("--registry", metavar="DIR", default=None,
                       help="model registry to resolve --spec from (and to "
                            "watch for new versions)")
    serve.add_argument("--model", metavar="PATH", default=None,
                       help="serve this saved model .npz instead of resolving "
                            "a registry spec (no hot swap)")
    serve.add_argument("--fingerprint", default=None,
                       help="dataset fingerprint selecting the registry key "
                            "(default: the spec's only published fingerprint)")
    serve.add_argument("--model-version", type=int, default=None,
                       help="pin one registry version (disables hot swap; "
                            "default: latest, then follow new publishes)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port (default 8787; 0 picks a free port)")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="score on N worker processes mmap-attached to the "
                            "model artifact (default 0: score in-process)")
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="micro-batch window: max milliseconds a request "
                            "waits to coalesce with concurrent ones "
                            "(default 2.0; 0 = per-request serving)")
    serve.add_argument("--max-batch", type=int, default=256,
                       help="max rows per coalesced engine batch (default 256)")
    serve.add_argument("--max-rows", type=int, default=4096,
                       help="max rows one request may carry (default 4096)")
    serve.add_argument("--max-pending", type=int, default=1024, metavar="N",
                       help="cap on requests waiting in the micro-batch "
                            "queue; past it new requests are shed with a 429 "
                            "and a Retry-After drain estimate (default 1024; "
                            "0 = unbounded)")
    serve.add_argument("--backlog", type=int, default=128, metavar="N",
                       help="listen-socket accept backlog (default 128)")
    serve.add_argument("--poll", type=float, default=2.0,
                       help="seconds between registry polls for hot model "
                            "swap (default 2.0; 0 disables watching)")
    serve.add_argument("--no-mmap", action="store_true",
                       help="materialize the model instead of memory-mapping "
                            "the artifact")
    serve.add_argument("--no-metrics", action="store_true",
                       help="disable the telemetry tier: no /metrics route, "
                            "no request tracing, no per-batch observation")
    serve.add_argument("--log-level", default=None, metavar="LEVEL",
                       help="attach a JSON-lines stderr handler to the "
                            "serving loggers at LEVEL (info enables per-"
                            "request access logs with trace spans; default: "
                            "no handler)")

    stats = sub.add_parser(
        "stats", help="scrape /healthz and /metrics of a running scoring server"
    )
    stats.add_argument("--url", default="http://127.0.0.1:8787",
                       help="base URL of the server "
                            "(default http://127.0.0.1:8787)")
    stats.add_argument("--raw", action="store_true",
                       help="print the raw Prometheus exposition and exit")
    stats.add_argument("--timeout", type=float, default=5.0,
                       help="per-request timeout in seconds (default 5)")

    sub.add_parser("datasets", help="list the built-in dataset generators")

    demo = sub.add_parser("demo", help="run McCatch on a built-in dataset")
    demo.add_argument("name", help="dataset name (see `repro datasets`)")
    demo.add_argument("--scale", type=float, default=0.1,
                      help="fraction of the paper's dataset size (default 0.1)")
    demo.add_argument("--seed", type=int, default=0)
    return parser


def _load_input(path: str, metric: str, delimiter: str):
    if metric == "levenshtein":
        with open(path) as f:
            items = [line.strip() for line in f if line.strip()]
        if not items:
            raise SystemExit(f"error: {path} contains no strings")
        return items, levenshtein
    try:
        X = np.loadtxt(path, delimiter=delimiter, ndmin=2)
    except ValueError as exc:
        raise SystemExit(
            f"error: could not parse {path} as numeric {delimiter!r}-separated data "
            f"({exc}); for string data pass --metric levenshtein"
        ) from exc
    return X, metric


def _fit(data, metric, detector: McCatch):
    if callable(metric):
        return detector.fit(data, metric)
    return detector.fit(np.asarray(data), metric if metric != "euclidean" else None)


def _cmd_detect(args) -> int:
    data, metric = _load_input(args.path, args.metric, args.delimiter)
    if args.shard_by != "query" and args.workers is None:
        raise SystemExit("error: --shard-by tree requires --workers")
    index = args.index
    if args.workers is not None and index == "auto":
        # "auto" on Euclidean vectors picks the compiled cKDTree, which
        # has no flat arrays to share across a pool — the one index
        # choice --workers can never use.
        index = "vptree"
    detector = McCatch(
        n_radii=args.n_radii,
        max_slope=args.max_slope,
        max_cardinality_fraction=args.max_cardinality_fraction,
        index=index,
        index_build=args.build,
        index_walk=args.walk,
        engine_mode="parallel" if args.workers is not None else "batched",
        workers=args.workers,
        shard_by=args.shard_by,
    )
    t0 = time.perf_counter()
    result = _fit(data, metric, detector)
    elapsed = time.perf_counter() - t0
    print(f"n={result.n}  microclusters={len(result.microclusters)}  "
          f"outlying points={result.n_outliers}  ({elapsed:.2f}s)")
    print()
    print(f"{'rank':>4}  {'size':>5}  {'score':>9}  {'bridge':>10}  members")
    for rank, mc in enumerate(result.microclusters[: args.top]):
        members = ", ".join(map(str, mc.indices[:8]))
        if mc.cardinality > 8:
            members += ", ..."
        print(f"{rank:>4}  {mc.cardinality:>5}  {mc.score:>9.2f}  "
              f"{mc.bridge_length:>10.4g}  [{members}]")
    if args.save_json:
        from repro.io import save_result_json

        print(f"\nresult archived to {save_result_json(result, args.save_json)}")
    return 0


def _cmd_report(args) -> int:
    from repro.io import result_to_markdown, save_result_json
    from repro.viz import write_report

    data, metric = _load_input(args.path, args.metric, args.delimiter)
    result = _fit(data, metric, McCatch())
    points = None if callable(metric) else np.asarray(data)
    out = write_report(result, args.output, points, title=args.title)
    print(f"n={result.n}  microclusters={len(result.microclusters)}")
    print(f"HTML report: {out}")
    if args.save_json:
        print(f"JSON archive: {save_result_json(result, args.save_json)}")
    if args.save_markdown:
        from pathlib import Path

        Path(args.save_markdown).write_text(result_to_markdown(result), encoding="utf-8")
        print(f"Markdown: {args.save_markdown}")
    return 0


def _cmd_stream(args) -> int:
    if args.batch < 1:
        raise SystemExit("error: --batch must be >= 1")
    data, _ = _load_input(args.path, "euclidean", args.delimiter)
    X = np.asarray(data)
    stream = StreamingMcCatch(
        McCatch(),
        refit_factor=args.refit_factor,
        min_fit_size=max(32, args.batch),
        max_window=args.max_window,
    )
    total_flagged = 0
    for start in range(0, X.shape[0], args.batch):
        update = stream.update(X[start : start + args.batch])
        total_flagged += update.provisional_outliers.size
        mode = "refit" if update.refitted else "score"
        print(f"[{mode}] rows {start:>7}..{start + update.n_new - 1:<7} "
              f"flagged={update.provisional_outliers.size:<4} window={len(stream)}")
    result = stream.refit()
    print()
    print(result.summary())
    print(f"\nflagged during replay: {total_flagged}; "
          f"outlying at final refit: {result.n_outliers}")
    return 0


def _spec_with(spec: str, key: str, value) -> str:
    """``spec`` with one more ``key=value`` parameter appended."""
    return f"{spec}{'&' if '?' in spec else '?'}{key}={value}"


def _print_published(record) -> None:
    """The one report both `fit --registry` and `models publish` print."""
    print(f"model published to {record.path}")
    print(f"  spec={record.spec}  fingerprint={record.fingerprint}  "
          f"version={record.version}")


def _default_index_into_spec(spec: str, index: str):
    """A McCatch spec that does not pin ``index=`` gets ``index`` filled in.

    The spec default is ``auto``, which picks the non-persistable
    compiled kd-tree — the one choice the persistence commands never
    want.  Both ``fit`` and the registry side of ``score`` apply the
    same rewrite, so the spec a user fits with is the spec they
    resolve with.
    """
    from repro.api import make_estimator, parse_spec
    from repro.api.estimators import McCatchEstimator

    estimator = make_estimator(spec)
    if isinstance(estimator, McCatchEstimator) and "index" not in parse_spec(spec)[1]:
        estimator = make_estimator(_spec_with(spec, "index", index))
    return estimator


def _resolve_fit_estimator(args):
    """The estimator `repro fit` should run: --spec, or flags folded in."""
    from repro.api import make_estimator, spec_of

    if args.shard_by is not None and args.workers is None and args.spec is None:
        raise SystemExit("error: --shard-by requires --workers")
    if args.spec is not None:
        # all the deprecated flags default to None, so explicitly typed
        # default values ("--n-radii 15") still count as given
        clashing = [flag for flag, value in (
            ("--n-radii", args.n_radii),
            ("--max-slope", args.max_slope),
            ("--max-cardinality-fraction", args.max_cardinality_fraction),
        ) if value is not None]
        if clashing:
            raise SystemExit(
                f"error: {', '.join(clashing)} cannot be combined with --spec; "
                "put the parameters in the spec instead "
                "(e.g. 'mccatch?a=20&b=0.2&c=0.05')"
            )
        from repro.api import parse_spec
        from repro.api.estimators import McCatchEstimator

        estimator = make_estimator(args.spec)
        # the flags default to None, so an explicitly typed default
        # value ("--index vptree") still counts as given
        if not isinstance(estimator, McCatchEstimator):
            if args.index is not None:
                raise SystemExit(
                    "error: --index applies only to McCatch specs "
                    f"(got {estimator.spec!r})"
                )
            if args.metric is not None:
                raise SystemExit(
                    "error: --metric applies only to McCatch specs "
                    f"(got {estimator.spec!r}; baselines are Euclidean-only)"
                )
            if args.workers is not None:
                raise SystemExit(
                    "error: --workers applies only to McCatch specs "
                    f"(got {estimator.spec!r})"
                )
            if args.shard_by is not None:
                raise SystemExit(
                    "error: --shard-by applies only to McCatch specs "
                    f"(got {estimator.spec!r})"
                )
            if args.build is not None:
                raise SystemExit(
                    "error: --build applies only to McCatch specs "
                    f"(got {estimator.spec!r})"
                )
            if args.walk is not None:
                raise SystemExit(
                    "error: --walk applies only to McCatch specs "
                    f"(got {estimator.spec!r})"
                )
            return estimator
        raw = parse_spec(args.spec)[1]
        spec = args.spec
        if "index" in raw:
            if args.index is not None:
                raise SystemExit(
                    "error: --index cannot be combined with a spec that "
                    "already pins index=...; pick one"
                )
        else:
            spec = _spec_with(spec, "index", args.index or "vptree")
        if "metric" in raw:
            if args.metric is not None:
                raise SystemExit(
                    "error: --metric cannot be combined with a spec that "
                    "already pins metric=...; pick one"
                )
        elif args.metric is not None:
            spec = _spec_with(spec, "metric", args.metric)
        if "build" in raw:
            if args.build is not None:
                raise SystemExit(
                    "error: --build cannot be combined with a spec that "
                    "already pins build=...; pick one"
                )
        elif args.build is not None:
            spec = _spec_with(spec, "build", args.build)
        if "walk" in raw:
            if args.walk is not None:
                raise SystemExit(
                    "error: --walk cannot be combined with a spec that "
                    "already pins walk=...; pick one"
                )
        elif args.walk is not None:
            spec = _spec_with(spec, "walk", args.walk)
        if args.shard_by is not None and args.workers is None:
            raise SystemExit("error: --shard-by requires --workers")
        if args.workers is not None:
            if "workers" in raw or "engine" in raw:
                raise SystemExit(
                    "error: --workers cannot be combined with a spec that "
                    "already pins engine=/workers=...; pick one"
                )
            spec = _spec_with(_spec_with(spec, "engine", "parallel"), "workers", args.workers)
            if args.shard_by is not None:
                if "shard_by" in raw:
                    raise SystemExit(
                        "error: --shard-by cannot be combined with a spec "
                        "that already pins shard_by=...; pick one"
                    )
                spec = _spec_with(spec, "shard_by", args.shard_by)
        return make_estimator(spec)
    spec = spec_of(McCatch(
        n_radii=args.n_radii if args.n_radii is not None else 15,
        max_slope=args.max_slope if args.max_slope is not None else 0.1,
        max_cardinality_fraction=(
            args.max_cardinality_fraction
            if args.max_cardinality_fraction is not None else 0.1
        ),
        index=args.index or "vptree",
        index_build=args.build,
        index_walk=args.walk,
        engine_mode="parallel" if args.workers is not None else "batched",
        workers=args.workers,
        shard_by=args.shard_by or "query",
    ))
    if args.metric is not None:
        spec = _spec_with(spec, "metric", args.metric)
    return make_estimator(spec)


def _cmd_fit(args) -> int:
    from repro.api import McCatchServingModel, ModelRegistry

    if args.registry and args.output is not None:
        raise SystemExit(
            "error: -o/--output cannot be combined with --registry "
            "(the registry chooses the artifact path)"
        )
    try:
        estimator = _resolve_fit_estimator(args)
    except ValueError as exc:  # unknown spec / bad parameter
        raise SystemExit(f"error: {exc}") from exc
    data, _ = _load_input(args.path, args.metric or "euclidean", args.delimiter)
    t0 = time.perf_counter()
    try:
        # --metric was folded into the spec by _resolve_fit_estimator
        model = estimator.fit(np.asarray(data))
    except (TypeError, ValueError, RuntimeError) as exc:
        # bad fit-time spec values (index=bogus), non-finite scores, ...
        raise SystemExit(f"error: {exc}") from exc
    elapsed = time.perf_counter() - t0
    if isinstance(model, McCatchServingModel):
        result = model.model.result
        print(f"n={result.n}  microclusters={len(result.microclusters)}  "
              f"outlying points={result.n_outliers}  ({elapsed:.2f}s)")
    else:
        print(f"n={model.n_fitted}  spec={model.spec}  ({elapsed:.2f}s)")
    try:
        if args.registry:
            _print_published(ModelRegistry(args.registry).publish(model))
        else:
            from repro.api import parse_spec

            default_out = f"{parse_spec(model.spec)[0]}_model.npz"
            print(f"model saved to {model.save(args.output or default_out)}")
    except TypeError as exc:  # e.g. a non-flat index kind
        raise SystemExit(f"error: {exc}") from exc
    return 0


def _load_served_model(args):
    """The model `repro score` should serve: registry spec or .npz path."""
    from repro.api import ModelRegistry, load_model

    if not args.registry and (args.fingerprint or args.model_version is not None):
        raise SystemExit(
            "error: --fingerprint/--model-version select a registry "
            "artifact; they require --registry"
        )
    if args.registry:
        from repro.api import parse_spec

        registry = ModelRegistry(args.registry)
        # mirror fit's index-default rewrite so the spec a user fitted
        # with resolves the model it published (vptree is fit's default)
        spec = _default_index_into_spec(args.model, "vptree").spec
        try:
            return registry.resolve(
                spec,
                fingerprint=args.fingerprint,
                version=args.model_version,
                mmap=args.mmap,
            )
        except LookupError:
            # fall back only across the index choice (e.g. fitted with
            # --index balltree): same detector, same hyperparameters.
            # Other parameter differences must fail — silently serving
            # a differently-configured model would misattribute scores.
            want_name, want_params = parse_spec(spec)
            want_params.pop("index", None)

            def same_but_index(published: str) -> bool:
                name, params = parse_spec(published)
                params.pop("index", None)
                return name == want_name and params == want_params

            candidates = sorted(
                {r.spec for r in registry.list() if same_but_index(r.spec)}
            )
            if len(candidates) != 1 or candidates[0] == spec:
                raise
            model = registry.resolve(
                candidates[0],
                fingerprint=args.fingerprint,
                version=args.model_version,
                mmap=args.mmap,
            )
            # stderr, after success: the note must neither pollute the
            # parseable score table nor precede a failing resolve
            print(f"note: serving published spec {candidates[0]!r} "
                  f"for requested {args.model!r}", file=sys.stderr)
            return model
    return load_model(args.model, mmap=args.mmap)


def _cmd_score(args) -> int:
    import zipfile
    from pathlib import Path

    from repro.api import McCatchServingModel

    try:
        model = _load_served_model(args)
    except (ValueError, LookupError, OSError, zipfile.BadZipFile) as exc:
        hint = ""
        if not args.registry and not Path(args.model).exists():
            hint = " (a spec string needs --registry DIR)"
        raise SystemExit(f"error: {exc}{hint}") from exc
    data, _ = _load_input(args.path, "euclidean", args.delimiter)
    X = np.asarray(data)
    t0 = time.perf_counter()
    try:
        if isinstance(model, McCatchServingModel):
            batch = model.score_details(X)
            scores, flagged = batch.scores, set(batch.flagged.tolist())
        else:
            scores, flagged = model.score_batch(X), set()
    except (ValueError, RuntimeError) as exc:
        # wrong-dimensionality batches; non-finite transductive re-scores
        raise SystemExit(f"error: {exc}") from exc
    elapsed = time.perf_counter() - t0
    print(f"model n={model.n_fitted}  scored rows={X.shape[0]}  "
          f"flagged={len(flagged)}  ({elapsed:.2f}s)")
    print()
    print(f"{'row':>6}  {'score':>9}  flagged")
    order = np.argsort(-scores, kind="stable")[: args.top]
    for r in order:
        mark = "yes" if int(r) in flagged else ""
        print(f"{int(r):>6}  {scores[r]:>9.2f}  {mark}")
    return 0


def _cmd_models(args) -> int:
    from repro.api import ModelRegistry

    registry = ModelRegistry(args.registry)
    if args.models_command == "list":
        try:
            records = registry.list(spec=args.spec)
        except ValueError as exc:  # e.g. an unknown --spec filter
            raise SystemExit(f"error: {exc}") from exc
        if not records:
            print(f"no published models in {registry.root}")
            return 0
        width = max(len(r.spec) for r in records) + 2
        print(f"{'spec':<{width}}{'fingerprint':<18}{'version':>7}  path")
        for record in records:
            print(f"{record.spec:<{width}}{record.fingerprint:<18}"
                  f"{record.version:>7}  {record.path}")
        return 0
    if args.models_command == "resolve":
        try:
            record = registry.record(
                args.spec, fingerprint=args.fingerprint, version=args.model_version
            )
        except (ValueError, LookupError) as exc:
            raise SystemExit(f"error: {exc}") from exc
        print(record.path)
        return 0
    # publish: fit the spec and push the artifact in one step (same
    # index-default rewrite as `fit`, for the same persistence reason)
    data, _ = _load_input(args.path, "euclidean", args.delimiter)
    try:
        model = _default_index_into_spec(args.spec, "vptree").fit(np.asarray(data))
        record = registry.publish(model)
    except (ValueError, TypeError, RuntimeError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    _print_published(record)
    return 0


def _resolve_served_model(args):
    """What `repro serve` should stand up: ``(model, server_kwargs,
    watcher_key_or_None)``."""
    from repro.api import ModelRegistry, load_model

    if (args.spec is None) == (args.model is None):
        raise SystemExit(
            "error: pass exactly one of --spec (resolved from --registry) "
            "or --model PATH"
        )
    mmap = not args.no_mmap
    if args.model is not None:
        if args.registry or args.fingerprint or args.model_version is not None:
            raise SystemExit(
                "error: --registry/--fingerprint/--model-version select a "
                "registry artifact; they go with --spec, not --model"
            )
        import zipfile

        try:
            model = load_model(args.model, mmap=mmap)
        except (ValueError, OSError, zipfile.BadZipFile) as exc:
            raise SystemExit(f"error: {exc}") from exc
        return model, {"artifact": args.model, "spec": model.spec}, None
    if not args.registry:
        raise SystemExit("error: --spec needs --registry DIR to resolve from")
    registry = ModelRegistry(args.registry)
    try:
        spec = _default_index_into_spec(args.spec, "vptree").spec
        record = registry.record(
            spec, fingerprint=args.fingerprint, version=args.model_version
        )
    except (ValueError, LookupError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    model = load_model(record.path, mmap=mmap)
    kwargs = {
        "artifact": record.path,
        "spec": record.spec,
        "version": record.version,
        "fingerprint": record.fingerprint,
    }
    # a pinned --model-version is a request to serve exactly that
    # version; following newer publishes would un-pin it
    watch = None
    if args.poll > 0 and args.model_version is None:
        watch = (registry, record.spec, record.fingerprint)
    return model, kwargs, watch


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import RegistryWatcher, ScoringServer

    model, server_kwargs, watch = _resolve_served_model(args)
    if args.log_level is not None:
        from repro.obs import configure_logging

        try:
            configure_logging(args.log_level)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
    try:
        server = ScoringServer(
            model,
            host=args.host,
            port=args.port,
            window_s=args.window_ms / 1000.0,
            max_batch=args.max_batch,
            max_rows=args.max_rows,
            max_pending=args.max_pending if args.max_pending > 0 else None,
            backlog=args.backlog,
            workers=args.workers,
            metrics=not args.no_metrics,
            **server_kwargs,
        )
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from exc

    async def _run() -> None:
        await server.start()
        watcher = None
        if watch is not None:
            registry, spec, fingerprint = watch
            watcher = RegistryWatcher(
                server, registry, spec, fingerprint,
                poll_s=args.poll, mmap=not args.no_mmap,
            ).start()
            if server.metrics is not None:
                watcher.bind_metrics(server.metrics)
        described = server.served.describe()
        print(f"serving {described['spec']}  n={described['n_fitted']}  "
              f"version={described['version']}")
        print(f"listening on http://{args.host}:{server.port}  "
              f"(window={args.window_ms:g}ms, max_batch={args.max_batch}, "
              f"workers={args.workers}"
              + (f", polling registry every {args.poll:g}s" if watcher else "")
              + ")")
        endpoints = "endpoints: POST /score  GET /healthz  GET /model"
        if server.metrics is not None:
            endpoints += "  GET /metrics"
        print(endpoints + "  (Ctrl-C stops)")
        try:
            await server.serve_forever()
        finally:
            if watcher is not None:
                await watcher.stop()
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _cmd_stats(args) -> int:
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    from repro.obs import parse_exposition

    base = args.url.rstrip("/")
    try:
        with urlopen(f"{base}/healthz", timeout=args.timeout) as resp:
            health = json.loads(resp.read().decode("utf-8"))
        with urlopen(f"{base}/metrics", timeout=args.timeout) as resp:
            text = resp.read().decode("utf-8")
    except (URLError, OSError, ValueError) as exc:
        raise SystemExit(f"error: could not scrape {base}: {exc}") from exc
    if args.raw:
        sys.stdout.write(text)
        return 0
    try:
        families = parse_exposition(text)
    except ValueError as exc:
        raise SystemExit(f"error: {base}/metrics is not valid "
                         f"Prometheus text format: {exc}") from exc
    print(f"{base}  status={health.get('status')}  "
          f"uptime={health.get('uptime_s', 0.0):.0f}s  "
          f"model_version={health.get('model_version')}  "
          f"generation={health.get('generation')}")
    print(f"requests_served={health.get('requests_served')}  "
          f"rows_scored={health.get('rows_scored')}  "
          f"batches={health.get('batches_dispatched')}  "
          f"shed={health.get('requests_shed')}  "
          f"swaps={health.get('swaps')}")
    print()
    print(f"{'metric':<46}{'labels':<28}{'value':>14}")
    for name in sorted(families):
        for sample_name, labels, value in families[name]["samples"]:
            if sample_name.endswith("_bucket"):
                continue  # histogram summary: show _sum/_count only
            label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            print(f"{sample_name:<46}{label_text:<28}{value:>14g}")
    return 0


def _cmd_datasets(_args) -> int:
    print(f"{'name':<22}{'kind':<10}{'paper n':>10}  notes")
    for name in dataset_names():
        if name in BENCHMARK_SPECS:
            spec = BENCHMARK_SPECS[name]
            note = f"{spec.dim}-d, {spec.outlier_pct}% outliers"
            if spec.microclusters:
                note += f", planted mcs {spec.microclusters}"
            print(f"{name:<22}{'vector':<10}{spec.n:>10,}  {note}")
        else:
            kind = "metric" if name in ("last_names", "fingerprints", "skeletons") else "vector"
            print(f"{name:<22}{kind:<10}{'-':>10}")
    return 0


def _cmd_demo(args) -> int:
    ds = load(args.name, scale=args.scale, random_state=args.seed)
    t0 = time.perf_counter()
    result = McCatch().fit(ds.data, ds.metric)
    elapsed = time.perf_counter() - t0
    print(f"{args.name}: n={ds.n}  ({elapsed:.2f}s)")
    if ds.labels is not None:
        print(f"AUROC vs ground truth: {auroc(ds.labels, result.point_scores):.3f}")
    print(result.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "detect": _cmd_detect,
        "report": _cmd_report,
        "stream": _cmd_stream,
        "fit": _cmd_fit,
        "score": _cmd_score,
        "models": _cmd_models,
        "serve": _cmd_serve,
        "stats": _cmd_stats,
        "datasets": _cmd_datasets,
        "demo": _cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
