"""McCatch core: Algorithms 1-4 and Definitions 1-7 of the paper."""

from repro.core.cutoff import compute_cutoff, histogram_of_1nn_distances, outlier_mask
from repro.core.gel import connected_components, spot_microclusters
from repro.core.mccatch import McCatch, detect_microclusters
from repro.core.mdl import best_split, cost_of_compression, universal_code_length
from repro.core.oracle import build_oracle_plot
from repro.core.plateaus import Plateau, analyze_counts, find_plateaus
from repro.core.radii import define_radii, radius_ladder
from repro.core.result import CutoffInfo, McCatchResult, Microcluster, OraclePlot
from repro.core.scoring import (
    microcluster_score,
    nearest_inlier_distances,
    point_score,
    score_microclusters,
)
from repro.core.streaming import StreamingMcCatch, StreamingUpdate

__all__ = [
    "StreamingMcCatch",
    "StreamingUpdate",
    "McCatch",
    "detect_microclusters",
    "McCatchResult",
    "Microcluster",
    "OraclePlot",
    "CutoffInfo",
    "Plateau",
    "build_oracle_plot",
    "analyze_counts",
    "find_plateaus",
    "compute_cutoff",
    "histogram_of_1nn_distances",
    "outlier_mask",
    "spot_microclusters",
    "connected_components",
    "score_microclusters",
    "microcluster_score",
    "nearest_inlier_distances",
    "point_score",
    "radius_ladder",
    "define_radii",
    "universal_code_length",
    "cost_of_compression",
    "best_split",
]
