"""Definitions 4-6: the data-driven Cutoff ``d``.

The Histogram of 1NN Distances puts each point in the bin of the radius
its first plateau ends at (x_i ≈ r_e', footnote 1).  The Cutoff is the
radius whose cut position best separates the tall bins (inliers +
mc-core points) from the short bins (outliers), judged by the MDL
two-part compression cost of Def. 5 — no user parameter anywhere.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mdl import best_split
from repro.core.result import CutoffInfo


def histogram_of_1nn_distances(first_end_index: np.ndarray, n_radii: int) -> np.ndarray:
    """Def. 4: bin counts ``h_e = |{p_i : x_i == r_e}|``.

    Points whose first plateau was not uncovered (index -1) fall in no
    bin — they have close neighbors below the smallest radius and could
    never sit on the outlier side of the cut anyway.
    """
    hist = np.zeros(n_radii, dtype=np.int64)
    valid = first_end_index[first_end_index >= 0]
    np.add.at(hist, valid, 1)
    return hist


def compute_cutoff(first_end_index: np.ndarray, radii: np.ndarray) -> CutoffInfo:
    """Defs. 4-6: build the histogram, find the MDL-optimal cut, return d.

    Returns a :class:`CutoffInfo` whose ``value`` is ``radii[index]``.
    Degenerate data (empty histogram, or the modal bin is the last one,
    leaving nothing to split) yield ``value = inf`` — no point is an
    outlier by the X axis, matching the "no structure" reading.
    """
    radii = np.asarray(radii, dtype=np.float64)
    a = radii.size
    hist = histogram_of_1nn_distances(np.asarray(first_end_index), a)
    if hist.sum() == 0:
        return CutoffInfo(math.inf, -1, hist, -1, math.nan)
    peak = int(np.argmax(hist))  # the mode of {x_1 ... x_n}
    # The search runs over the histogram's support only: bins beyond the
    # largest observed 1NN distance are empty by construction, and a cut
    # placed there "separates" the data from nothing (the all-zero right
    # partition compresses to ~0 bits and would swallow every real cut).
    last = int(np.nonzero(hist)[0][-1])
    if last - peak < 1:
        # No bins after the mode (common for duplicate-heavy metric data,
        # where only a handful of points ever uncover a first plateau):
        # nothing to split, so d sits one rung above the mode — any 1NN
        # or Group-1NN distance beyond the modal rung is outlying.
        if peak + 1 >= a:
            return CutoffInfo(math.inf, -1, hist, peak, math.nan)
        return CutoffInfo(float(radii[peak + 1]), peak + 1, hist, peak, math.nan)
    cut, cost = best_split(hist[: last + 1], start=peak)
    return CutoffInfo(float(radii[cut]), cut, hist, peak, cost)


def x_outlier_mask(oracle, cutoff: CutoffInfo) -> np.ndarray:
    """``x_i >= d`` via plateau-end rungs (Def. 4's x_i == r_e reading)."""
    if cutoff.index < 0:
        return np.zeros(len(oracle), dtype=bool)
    return np.asarray(oracle.first_end_index) >= cutoff.index


def y_outlier_mask(oracle, cutoff: CutoffInfo) -> np.ndarray:
    """``y_i >= d`` via plateau-end rungs (footnote 2's reading).

    Both axes identify a plateau with its end radius — exactly the
    approximation footnotes 1-2 make ("x_i / y_i is approximately the
    distance ...") and the one Def. 4 already uses to bin x.  Comparing
    raw plateau *lengths* against ``d`` would be strictly narrower: a
    middle plateau ending at the cutoff rung has length < d by
    construction, which silently loses the borderline microclusters
    whenever the dataset is small enough for the cut to land near them.
    """
    if cutoff.index < 0:
        return np.zeros(len(oracle), dtype=bool)
    return np.asarray(oracle.middle_end_index) >= cutoff.index


def outlier_mask(oracle, cutoff: CutoffInfo) -> np.ndarray:
    """Alg. 3 line 7: ``A = {p_i : x_i >= d or y_i >= d}``."""
    return x_outlier_mask(oracle, cutoff) | y_outlier_mask(oracle, cutoff)
