"""Explainability helpers (Sec. II-B: "explainable results thanks to
the plateaus of our 'Oracle' plot").

Every McCatch verdict traces back to observable quantities: a point's
neighbor-count curve, its plateaus, its position in the 'Oracle' plot,
and the MDL cutoff.  These helpers turn a result into human-readable
explanations and ASCII renderings — useful in terminals and logs where
no plotting stack exists.
"""

from __future__ import annotations

import numpy as np

from repro.core.plateaus import find_plateaus
from repro.core.result import McCatchResult
from repro.index.joins import UNKNOWN_COUNT


def explain_point(result: McCatchResult, index: int, *, max_cardinality: int | None = None) -> str:
    """A prose explanation of why point ``index`` was (or wasn't) flagged.

    Reconstructs the point's plateaus from the stored counts and relates
    its 1NN / Group-1NN rungs to the cutoff.
    """
    o = result.oracle
    if not 0 <= index < result.n:
        raise IndexError(f"point index {index} out of range for n={result.n}")
    c = max_cardinality if max_cardinality is not None else max(1, int(np.ceil(0.1 * result.n)))
    plateaus = find_plateaus(o.counts[index], o.radii, max_slope=0.1, max_cardinality=c)
    cut = result.cutoff.index
    lines = [f"point {index}:"]
    counts_str = " ".join("?" if v == UNKNOWN_COUNT else str(v) for v in o.counts[index])
    lines.append(f"  neighbor counts over radii: {counts_str}")
    if plateaus:
        for p in plateaus:
            kind = "first" if p.height == 1 else "middle/last"
            lines.append(
                f"  {kind} plateau: radii[{p.start}..{p.end}], height {p.height}, "
                f"length {p.length:.4g}"
            )
    else:
        lines.append("  no plateaus uncovered at this radius resolution")
    x_rung, y_rung = int(o.first_end_index[index]), int(o.middle_end_index[index])
    lines.append(
        f"  1NN rung {x_rung if x_rung >= 0 else '-'} vs cutoff rung {cut}; "
        f"Group-1NN rung {y_rung if y_rung >= 0 else '-'}"
    )
    rank = int(result.labels[index])
    if rank < 0:
        lines.append("  verdict: inlier (both rungs below the cutoff)")
    else:
        mc = result.microclusters[rank]
        why = "1NN distance" if x_rung >= cut else "Group 1NN distance"
        kind = "a one-off outlier" if mc.is_singleton else (
            f"part of a {mc.cardinality}-elements microcluster"
        )
        lines.append(
            f"  verdict: {kind} (rank #{rank}, score {mc.score:.2f}) — "
            f"its {why} reaches the cutoff"
        )
    return "\n".join(lines)


def ascii_oracle_plot(
    result: McCatchResult, *, width: int = 64, height: int = 20
) -> str:
    """ASCII rendering of the 'Oracle' plot (Fig. 3(ii)).

    ``.`` inliers, ``o`` detected outliers, ``#`` members of
    nonsingleton microclusters; the cutoff is drawn on both axes.
    """
    o = result.oracle
    x = np.maximum(o.x, 0.0)
    y = np.maximum(o.y, 0.0)
    x_max = float(x.max()) or 1.0
    y_max = float(y.max()) or 1.0
    grid = [[" "] * width for _ in range(height)]
    labels = result.labels
    order = np.argsort([0 if labels[i] < 0 else 1 for i in range(result.n)])
    for i in order:
        col = min(width - 1, int(x[i] / x_max * (width - 1)))
        row = height - 1 - min(height - 1, int(y[i] / y_max * (height - 1)))
        if labels[i] < 0:
            mark = "."
        elif result.microclusters[labels[i]].is_singleton:
            mark = "o"
        else:
            mark = "#"
        grid[row][col] = mark
    d = result.cutoff.value
    if np.isfinite(d):
        col = min(width - 1, int(d / x_max * (width - 1)))
        for row in range(height):
            if grid[row][col] == " ":
                grid[row][col] = "|"
        row = height - 1 - min(height - 1, int(d / y_max * (height - 1)))
        for col2 in range(width):
            if grid[row][col2] == " ":
                grid[row][col2] = "-"
    lines = ["Y: Group 1NN Distance   (. inlier, o one-off, # microcluster, |/- cutoff)"]
    lines.extend("".join(row) for row in grid)
    lines.append(f"X: 1NN Distance (0 .. {x_max:.4g});  d = {d:.4g}")
    return "\n".join(lines)


def ascii_histogram(result: McCatchResult, *, max_bar: int = 50) -> str:
    """ASCII Histogram of 1NN Distances with the MDL cutoff (Fig. 4)."""
    hist = result.cutoff.histogram
    peak, cut = result.cutoff.peak_index, result.cutoff.index
    top = max(1, int(hist.max()))
    lines = ["Histogram of 1NN Distances (Def. 4):"]
    for e, h in enumerate(hist):
        bar = "#" * int(round(h / top * max_bar))
        note = " <= peak" if e == peak else (" <= cutoff d" if e == cut else "")
        lines.append(f"  r[{e:2d}]={result.oracle.radii[e]:<10.4g} |{bar:<{max_bar}} {h}{note}")
    return "\n".join(lines)


def explain_microcluster(result: McCatchResult, rank: int) -> str:
    """A prose explanation of microcluster ``rank``'s score (Def. 7).

    Decomposes the score into the four compression items of Fig. 5 —
    cardinality ①, nearest-inlier id ②, Bridge's Length ③, average 1NN
    distance ④ — so an analyst can see *which* property makes the
    group anomalous.
    """
    if not 0 <= rank < len(result.microclusters):
        raise IndexError(
            f"rank {rank} out of range for {len(result.microclusters)} microclusters"
        )
    from repro.core.mdl import universal_code_length
    from repro.core.scoring import _ceil_ratio

    mc = result.microclusters[rank]
    r1 = float(result.oracle.radii[0])
    members = ", ".join(str(int(i)) for i in sorted(mc.indices)[:10])
    if mc.cardinality > 10:
        members += ", ..."
    item1 = universal_code_length(mc.cardinality)
    item2 = universal_code_length(result.n)
    bridge_units = _ceil_ratio(mc.bridge_length, r1) if r1 > 0 else 0
    lines = [
        f"microcluster #{rank}: {{{members}}}",
        f"  cardinality |M| = {mc.cardinality}"
        + (" (a one-off outlier)" if mc.is_singleton else ""),
        f"  Bridge's Length = {mc.bridge_length:.4g} "
        f"({bridge_units} units of r1 = {r1:.4g}) — the gap to the nearest inlier",
        f"  average member 1NN distance = {mc.mean_1nn_distance:.4g}",
        "  score decomposition (bits, before dividing by |M|):",
        f"    (1) store the cardinality:        {item1:.2f}",
        f"    (2) store the nearest inlier id:  {item2:.2f}",
        "    (3) describe the bridge and (4) the member chain scale with the",
        "        distances above times the space's Transformation Cost t",
        f"  => score s = {mc.score:.2f} bits per member "
        "(higher = cheaper to single out = more anomalous)",
    ]
    if not mc.is_singleton:
        lines.append(
            "  the members sit close together but far from everything else —"
            " the signature of coalition/repetition the paper targets"
        )
    return "\n".join(lines)


def compare_results(a: McCatchResult, b: McCatchResult, *, top: int = 10) -> str:
    """Diff two results over the same dataset (e.g. two hyperparameter
    settings, or a streaming refit vs a batch run).

    Reports outlier-set agreement (Jaccard), rank movements among the
    top microclusters, and the cutoff shift.  Raises if the results
    cover different dataset sizes.
    """
    if a.n != b.n:
        raise ValueError(f"results cover different datasets: n={a.n} vs n={b.n}")
    set_a = set(map(int, a.outlier_indices))
    set_b = set(map(int, b.outlier_indices))
    union = len(set_a | set_b)
    jaccard = (len(set_a & set_b) / union) if union else 1.0
    lines = [
        f"comparing two results over n={a.n}:",
        f"  outliers: {len(set_a)} vs {len(set_b)}; agreement (Jaccard) = {jaccard:.3f}",
        f"  cutoff d: {a.cutoff.value:.4g} vs {b.cutoff.value:.4g}",
        f"  microclusters: {len(a.microclusters)} vs {len(b.microclusters)}",
    ]
    only_a = sorted(set_a - set_b)
    only_b = sorted(set_b - set_a)
    if only_a:
        lines.append(f"  flagged only by the first:  {only_a[:top]}")
    if only_b:
        lines.append(f"  flagged only by the second: {only_b[:top]}")
    # Rank movements: match microclusters by member sets.
    index_b = {frozenset(map(int, mc.indices)): r for r, mc in enumerate(b.microclusters)}
    moves = []
    for r, mc in enumerate(a.microclusters[:top]):
        key = frozenset(map(int, mc.indices))
        if key in index_b and index_b[key] != r:
            moves.append(f"    {sorted(key)[:4]}...: rank {r} -> {index_b[key]}")
    if moves:
        lines.append("  rank movements among matched microclusters:")
        lines.extend(moves)
    return "\n".join(lines)
