"""Algorithm 3 (second half): gel the outliers into microclusters.

Outliers with a large Group 1NN Distance belong to nonsingleton
microclusters; they are grouped by connected components of the
neighborhood graph at the smallest radius that exceeds every member's
1NN Distance (so a point and its nearest neighbor always land in the
same component).  Remaining outliers become singleton microclusters.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import CutoffInfo, OraclePlot
from repro.engine import BatchQueryEngine
from repro.index.factory import build_index
from repro.metric.base import MetricSpace


def connected_components(node_ids: np.ndarray, edges: list[tuple[int, int]]) -> list[np.ndarray]:
    """Connected components via union-find; returns arrays of node ids."""
    id_to_pos = {int(v): k for k, v in enumerate(node_ids)}
    parent = np.arange(node_ids.size, dtype=np.intp)

    def find(u: int) -> int:
        while parent[u] != u:
            parent[u] = parent[parent[u]]  # path halving
            u = int(parent[u])
        return u

    for i, j in edges:
        ri, rj = find(id_to_pos[i]), find(id_to_pos[j])
        if ri != rj:
            parent[ri] = rj
    groups: dict[int, list[int]] = {}
    for pos, node in enumerate(node_ids):
        groups.setdefault(find(pos), []).append(int(node))
    return [np.array(sorted(members), dtype=np.intp) for members in groups.values()]


def spot_microclusters(
    space: MetricSpace,
    oracle: OraclePlot,
    cutoff: CutoffInfo,
    outliers: np.ndarray,
    *,
    index_kind: str = "auto",
    index_build: str | None = None,
    index_walk: str | None = None,
    engine_mode: str = "batched",
    workers: int | None = None,
    shard_by: str = "query",
) -> list[np.ndarray]:
    """Alg. 3 lines 7-19: split A into nonsingleton and singleton mcs.

    Parameters
    ----------
    space:
        The full metric space (needed to build the tree over M).
    oracle, cutoff:
        Outputs of Alg. 2 and Defs. 4-6.
    outliers:
        The set A as dataset positions (already computed by
        :func:`repro.core.cutoff.outlier_mask`).
    engine_mode, workers, shard_by:
        Execution plan (and parallel-mode pool size / sharding axis)
        for the pair join (see :class:`repro.engine.BatchQueryEngine`).

    Returns
    -------
    list of index arrays, one per microcluster (unranked; scoring
    orders them later).
    """
    if outliers.size == 0:
        return []
    radii = oracle.radii
    a = radii.size
    y_large = oracle.middle_end_index[outliers] >= cutoff.index
    grouped = outliers[y_large]  # the set M (candidates for nonsingleton mcs)
    singles = outliers[~y_large]

    clusters: list[np.ndarray] = []
    if grouped.size == 1:
        # A lone point with large Group 1NN Distance cannot gel with
        # anything; it degenerates to a singleton microcluster.
        clusters.append(grouped.copy())
    elif grouped.size > 1:
        # Threshold: the smallest radius larger than the largest 1NN
        # Distance within M (Alg. 3 lines 10-12); if no member has an
        # uncovered first plateau, every 1NN distance is below r_1.
        ends = oracle.first_end_index[grouped]
        max_end = int(ends.max())  # -1 when no first plateau anywhere in M
        e_next = min(max_end + 1, a - 1)
        threshold = float(radii[e_next])
        tree = build_index(
            space, grouped, kind=index_kind, build=index_build, walk=index_walk
        )
        edges = BatchQueryEngine(
            tree, mode=engine_mode, workers=workers, shard_by=shard_by
        ).pairs(threshold)
        clusters.extend(connected_components(grouped, edges))

    for i in singles:
        clusters.append(np.array([i], dtype=np.intp))
    return clusters
