"""Algorithm 1: the MCCATCH driver.

Four steps: (I) define the neighborhood radii from the tree's diameter
estimate; (II) build the 'Oracle' plot (Alg. 2); (III) spot the
microclusters (Alg. 3); (IV) compute the anomaly scores (Alg. 4).

The defaults a=15, b=0.1, c=ceil(0.1 n) are the paper's and were used
for every experiment there — McCatch is 'hands-off' (goal G5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.cutoff import compute_cutoff, outlier_mask
from repro.core.gel import spot_microclusters
from repro.core.oracle import build_oracle_plot
from repro.core.radii import define_radii
from repro.core.result import McCatchResult
from repro.core.scoring import point_score, score_microclusters
from repro.engine import check_engine_mode, nearest_distances_to
from repro.index.base import MetricIndex, check_build_mode, check_walk_mode
from repro.index.factory import build_index
from repro.metric.base import MetricSpace
from repro.metric.transformation import (
    transformation_cost_for_strings,
    transformation_cost_for_trees,
    transformation_cost_for_vectors,
)
from repro.metric.trees import LabeledTree
from repro.utils.validation import as_batch_rows, check_positive_int, check_probability


class McCatch:
    """Microcluster detector for dimensional and nondimensional data.

    Parameters
    ----------
    n_radii:
        Number of Radii ``a`` (default 15, the paper's).
    max_slope:
        Maximum Plateau Slope ``b`` (default 0.1).
    max_cardinality_fraction:
        The Maximum Microcluster Cardinality is
        ``c = ceil(n * max_cardinality_fraction)`` (default 0.1); pass
        ``max_cardinality`` to fix ``c`` absolutely instead.
    max_cardinality:
        Absolute ``c`` overriding the fraction (optional).
    index:
        Index kind for the joins: ``"auto"`` (default), or any of
        :func:`repro.index.available_index_kinds`.
    index_build:
        Construction strategy for the insertion-tree index families
        (``mtree``/``slimtree``/``covertree``): ``None`` (default)
        leaves the family's own default (the level-synchronous array
        bulk-load), ``"bulk"``/``"insert"`` pin it explicitly.
        Requesting a mode for an index family with no such path fails
        loudly in :func:`repro.index.build_index` rather than silently
        falling back.
    index_walk:
        Frontier-walk implementation for the flat-tree index families
        (``vptree``/``balltree``/``mtree``/``slimtree``/``covertree``):
        ``None`` (default) leaves the family's own default (``"auto"``
        — the compiled C kernel when it builds, the numpy level walk
        otherwise); ``"compiled"``/``"level"``/``"stack"`` pin it.
        Counts — and therefore every McCatch output — are bit-identical
        across walks; only wall-clock differs.  Like ``index_build``,
        an index kind without a selectable walk rejects it loudly.
    engine_mode:
        Execution plan for the neighborhood workloads:
        ``"batched"`` (default; single-descent multi-radius queries via
        :class:`repro.engine.BatchQueryEngine`), ``"per_point"`` (the
        reference one-query-per-radius plan), or ``"parallel"`` (the
        batched walks sharded across a persistent worker pool — see
        :class:`repro.engine.ShardedWalkExecutor`; requires a
        flat-backed ``index`` such as ``"vptree"`` to actually fan
        out).  Results are bit-for-bit identical across all modes;
        only wall-clock differs.
    workers:
        Worker-pool size for ``engine_mode="parallel"`` (default: the
        usable core count).  Setting it with a serial engine mode is
        an error rather than a silent no-op.
    shard_by:
        Sharding axis for ``engine_mode="parallel"``: ``"query"``
        (default) splits the query set across workers, ``"tree"``
        splits disjoint subtree node ranges (see
        :class:`repro.engine.ShardedWalkExecutor`).  Like ``workers``,
        selecting the non-default with a serial engine mode is an
        error rather than a silent no-op.
    transformation_cost:
        The ``t`` of Def. 7.  ``None`` (default) derives it from the
        data: dimensionality for vectors, the word formula for strings,
        the tree formula for :class:`LabeledTree` data; other object
        types fall back to 1.0 bit with the recommendation to supply a
        domain value.
    sparse_focused:
        Apply the sparse-focused join principle of Sec. IV-G (default
        True; disable only for ablations).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import McCatch
    >>> rng = np.random.default_rng(0)
    >>> X = np.vstack([rng.normal(0, 1, (500, 2)), [[8.0, 8.0], [8.1, 8.0]]])
    >>> result = McCatch().fit(X)
    >>> result.microclusters[0].cardinality
    2
    """

    def __init__(
        self,
        n_radii: int = 15,
        max_slope: float = 0.1,
        max_cardinality_fraction: float = 0.1,
        *,
        max_cardinality: int | None = None,
        index: str = "auto",
        index_build: str | None = None,
        index_walk: str | None = None,
        engine_mode: str = "batched",
        workers: int | None = None,
        shard_by: str = "query",
        transformation_cost: float | None = None,
        sparse_focused: bool = True,
    ):
        self.n_radii = check_positive_int(n_radii, name="n_radii", minimum=2)
        if max_slope < 0:
            raise ValueError(f"max_slope must be >= 0, got {max_slope}")
        self.max_slope = float(max_slope)
        self.max_cardinality_fraction = check_probability(
            max_cardinality_fraction, name="max_cardinality_fraction", allow_zero=False
        )
        if max_cardinality is not None:
            max_cardinality = check_positive_int(max_cardinality, name="max_cardinality")
        self.max_cardinality = max_cardinality
        self.index = index
        if index_build is not None:
            check_build_mode(index_build)
        self.index_build = index_build
        if index_walk is not None:
            check_walk_mode(index_walk)
        self.index_walk = index_walk
        self.engine_mode = check_engine_mode(engine_mode)
        if workers is not None:
            workers = check_positive_int(workers, name="workers")
            if self.engine_mode != "parallel":
                raise ValueError(
                    "workers= only applies to engine_mode='parallel' "
                    f"(got engine_mode={self.engine_mode!r})"
                )
        self.workers = workers
        from repro.engine.parallel import SHARD_MODES

        if shard_by not in SHARD_MODES:
            raise ValueError(
                f"unknown shard_by {shard_by!r}; choose from {SHARD_MODES}"
            )
        if shard_by != "query" and self.engine_mode != "parallel":
            raise ValueError(
                "shard_by= only applies to engine_mode='parallel' "
                f"(got engine_mode={self.engine_mode!r})"
            )
        self.shard_by = shard_by
        self.transformation_cost = transformation_cost
        self.sparse_focused = bool(sparse_focused)

    # -- public API --------------------------------------------------------

    def fit(self, data, metric: Callable | None = None) -> McCatchResult:
        """Run McCatch on ``data`` and return the full result.

        Parameters
        ----------
        data:
            A 2-d float array (vector data), or any sequence of objects
            (strings, trees, ...) together with ``metric``.
        metric:
            Distance function for nondimensional data; for vector data
            an optional L_p metric override (default Euclidean).
        """
        space = data if isinstance(data, MetricSpace) else MetricSpace(data, metric)
        return self._fit_space(space)[0]

    def fit_model(self, data, metric: Callable | None = None) -> "McCatchModel":
        """Run McCatch and return a reusable fitted model.

        Same computation as :meth:`fit`, but the returned
        :class:`McCatchModel` keeps the fitted space, the built index
        and the result together, so it can score held-out batches
        (:meth:`McCatchModel.score_batch`) and be persisted with
        :meth:`McCatchModel.save` / :meth:`McCatchModel.load` — fit
        once, serve many.
        """
        space = data if isinstance(data, MetricSpace) else MetricSpace(data, metric)
        result, tree = self._fit_space(space)
        return McCatchModel(space, tree, result)

    def _fit_space(self, space: MetricSpace) -> tuple[McCatchResult, MetricIndex]:
        """Alg. 1 over a prepared space; returns the result and the tree."""
        n = len(space)
        c = self._resolve_c(n)
        t = self._resolve_transformation_cost(space)

        # Step I: tree + radii (Alg. 1 lines 1-3).
        tree = build_index(
            space, kind=self.index, build=self.index_build, walk=self.index_walk
        )
        if self.engine_mode == "parallel":
            from repro.engine.parallel import supports_sharding

            # A worker pool can only shard FlatTree storage.  Falling
            # back to the serial plan here would make workers= a silent
            # no-op (and auto-swapping the index would break the
            # "modes differ only in wall-clock" contract, since the
            # index choice shapes the radius ladder) — so fail loudly.
            if not supports_sharding(tree):
                raise ValueError(
                    "engine_mode='parallel' needs a flat-backed index to "
                    f"shard across workers, but index={self.index!r} built "
                    f"a {type(tree).__name__}; pick one of vptree / "
                    "balltree / covertree / mtree / slimtree (the "
                    "Euclidean 'auto' default selects scipy's cKDTree, "
                    "which has no shareable arrays)"
                )
        if tree.diameter_estimate() <= 0.0:
            # Single element, or every element coincides: no radius
            # ladder exists and nothing can be anomalous.  Return the
            # empty verdict instead of failing deep in the substrate —
            # streaming windows and trivial inputs hit this legitimately.
            return _degenerate_result(n, self.n_radii), tree
        radii = define_radii(tree, self.n_radii)

        # Step II: 'Oracle' plot (Alg. 2).
        oracle = build_oracle_plot(
            tree,
            radii,
            max_slope=self.max_slope,
            max_cardinality=c,
            sparse_focused=self.sparse_focused,
            engine_mode=self.engine_mode,
            workers=self.workers,
            shard_by=self.shard_by,
        )

        # Step III: spot microclusters (Alg. 3).
        cutoff = compute_cutoff(oracle.first_end_index, radii)
        mask = outlier_mask(oracle, cutoff)
        outliers = np.nonzero(mask)[0]
        clusters = spot_microclusters(
            space, oracle, cutoff, outliers,
            index_kind=self.index, index_build=self.index_build,
            index_walk=self.index_walk,
            engine_mode=self.engine_mode,
            workers=self.workers, shard_by=self.shard_by,
        )

        # Step IV: anomaly scores (Alg. 4).
        microclusters, point_scores = score_microclusters(
            space, clusters, oracle,
            transformation_cost=t, index_kind=self.index,
            index_build=self.index_build, index_walk=self.index_walk,
            engine_mode=self.engine_mode, workers=self.workers,
            shard_by=self.shard_by,
        )
        result = McCatchResult(
            microclusters=microclusters,
            point_scores=point_scores,
            oracle=oracle,
            cutoff=cutoff,
            n=n,
        )
        return result, tree

    def fit_scores(self, data, metric: Callable | None = None) -> np.ndarray:
        """Per-point anomaly scores W only (baseline-compatible view)."""
        return self.fit(data, metric).point_scores

    # -- helpers ------------------------------------------------------------

    def _resolve_c(self, n: int) -> int:
        if self.max_cardinality is not None:
            return self.max_cardinality
        return max(1, math.ceil(n * self.max_cardinality_fraction))

    def _resolve_transformation_cost(self, space: MetricSpace) -> float:
        if self.transformation_cost is not None:
            if self.transformation_cost <= 0:
                raise ValueError("transformation_cost must be positive")
            return float(self.transformation_cost)
        if space.is_vector:
            return transformation_cost_for_vectors(space.dimensionality)
        sample = space.data[0]
        if isinstance(sample, str):
            return transformation_cost_for_strings(space.data)
        if isinstance(sample, LabeledTree):
            return transformation_cost_for_trees(space.data)
        return 1.0  # unknown object space; caller should supply t (Def. 7)


def _degenerate_result(n: int, n_radii: int) -> McCatchResult:
    """The empty verdict for zero-diameter data (see McCatch.fit)."""
    from repro.core.result import CutoffInfo, OraclePlot

    zeros = np.zeros(n, dtype=np.float64)
    none = np.full(n, -1, dtype=np.intp)
    oracle = OraclePlot(
        x=zeros.copy(),
        y=zeros.copy(),
        first_end_index=none.copy(),
        middle_end_index=none.copy(),
        radii=np.zeros(n_radii, dtype=np.float64),
        counts=np.full((n, n_radii), n, dtype=np.int64),
    )
    cutoff = CutoffInfo(
        value=float("inf"),
        index=-1,
        histogram=np.zeros(n_radii, dtype=np.intp),
        peak_index=0,
        split_cost=0.0,
    )
    return McCatchResult(
        microclusters=[], point_scores=zeros.copy(), oracle=oracle, cutoff=cutoff, n=n
    )


@dataclass(frozen=True)
class BatchScores:
    """What :meth:`McCatchModel.score_batch` produced for one batch.

    Attributes
    ----------
    scores:
        Per-element scores ``w = ⟨1 + g/r₁⟩`` (Alg. 4 line 22), where
        ``g`` is the distance to the model's nearest inlier.
    flagged:
        Batch positions with ``g ≥ d`` — the Cutoff's own semantics
        ("the minimum distance required between one microcluster and
        its nearest inlier").
    """

    scores: np.ndarray
    flagged: np.ndarray


class McCatchModel:
    """A fitted McCatch: space + index + result, ready to serve.

    Returned by :meth:`McCatch.fit_model`.  Keeps the three fitted
    artifacts together so held-out batches can be scored against the
    model (:meth:`score_batch`, the same provisional scorer streaming
    uses between refits), and — because the index is flat array-backed
    — the whole model persists to a single ``.npz``
    (:meth:`save` / :meth:`load`; vector spaces only, since a custom
    object metric cannot be serialized).

    Parameters
    ----------
    space:
        The fitted :class:`~repro.metric.base.MetricSpace`.
    index:
        The tree built over it (``None`` for a scoring-only model,
        e.g. the streaming scorer's).
    result:
        The :class:`~repro.core.result.McCatchResult` of the fit.
    spec:
        Optional serving-spec string (see :mod:`repro.api`) recorded by
        the unified API; persisted alongside the model so a registry
        can reconstruct the estimator that produced it.
    """

    def __init__(
        self,
        space: MetricSpace,
        index: MetricIndex | None,
        result: McCatchResult,
        *,
        spec: str | None = None,
    ):
        self.space = space
        self.index = index
        self.result = result
        self.spec = spec
        inlier_mask = np.ones(result.n, dtype=bool)
        if result.outlier_indices.size:
            inlier_mask[result.outlier_indices] = False
        inlier_ids = np.nonzero(inlier_mask)[0]
        if inlier_ids.size == 0:  # degenerate: everything was an outlier
            inlier_ids = np.arange(result.n)
        self._inlier_ids = inlier_ids

    @property
    def n(self) -> int:
        """Number of fitted elements."""
        return self.result.n

    def score_batch(self, batch) -> BatchScores:
        """Score held-out elements against the fitted model.

        ``g`` = distance to the nearest element the model considers an
        inlier; score = ⟨1 + g/r₁⟩ (Alg. 4 line 22); flagged iff
        ``g ≥ d``.  Costs O(|inliers|) distances per element, run as
        blocked bulk kernels via the batch engine
        (:func:`repro.engine.nearest_distances_to`).  Deterministic:
        the same batch scores identically before and after a
        save/load round trip.
        """
        if self.space.is_vector:
            rows = as_batch_rows(batch, self.space.dimensionality)
        else:
            rows = list(batch)
        if len(rows) == 0:
            return BatchScores(np.zeros(0), np.zeros(0, dtype=np.intp))
        r1 = float(self.result.oracle.radii[0])
        if r1 <= 0.0:  # degenerate fit: no radius ladder, nothing anomalous
            return BatchScores(np.zeros(len(rows)), np.zeros(0, dtype=np.intp))
        g = nearest_distances_to(self.space, rows, self._inlier_ids)
        scores = np.array([point_score(float(gi), r1) for gi in g], dtype=np.float64)
        flagged = np.nonzero(g >= self.result.cutoff.value)[0].astype(np.intp)
        return BatchScores(scores, flagged)

    def save(self, path) -> "Path":
        """Persist the model (index arrays + data + result) to one ``.npz``."""
        from repro.io.models import save_model

        return save_model(self, path)

    @classmethod
    def load(cls, path, *, mmap: bool = False) -> "McCatchModel":
        """Load a model saved by :meth:`save`.

        ``mmap=True`` memory-maps the index arrays and data matrix off
        the archive so concurrent scorers share one on-disk model (see
        :func:`repro.io.models.load_model`).
        """
        from repro.io.models import load_model

        return load_model(path, mmap=mmap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = type(self.index).__name__ if self.index is not None else "none"
        return (
            f"McCatchModel(n={self.n}, index={kind}, "
            f"microclusters={len(self.result.microclusters)})"
        )


def detect_microclusters(data, metric: Callable | None = None, **kwargs) -> McCatchResult:
    """One-shot convenience: ``McCatch(**kwargs).fit(data, metric)``."""
    return McCatch(**kwargs).fit(data, metric)
