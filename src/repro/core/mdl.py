"""Minimum Description Length primitives (Definitions 5-6 substrate).

McCatch is "hands-off" because both its Cutoff (Def. 6) and its anomaly
scores (Def. 7) come from compression arguments.  The building block is
Rissanen's universal code length for positive integers,

    <z> ~= log2(z) + log2(log2(z)) + ...   (positive terms only),

which is the optimal prefix-code length when the range of ``z`` is
unknown a priori [38], [39].
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def universal_code_length(z: int | float) -> float:
    """Rissanen's universal code length ⟨z⟩ for an integer ``z >= 1``.

    Sums ``log2(z) + log2(log2(z)) + ...`` while the terms stay
    positive.  ``z`` below 1 is clamped to 1 (⟨1⟩ = 0), matching the
    paper's "+1 to account for zeros" convention at call sites.
    """
    z = float(z)
    if math.isnan(z):
        raise ValueError("universal_code_length requires a number, got NaN")
    if z < 1.0:
        z = 1.0
    total = 0.0
    term = math.log2(z) if z > 1.0 else 0.0
    while term > 0.0:
        total += term
        term = math.log2(term) if term > 1.0 else 0.0
    return total


def universal_code_lengths(values: Sequence[float] | np.ndarray) -> np.ndarray:
    """Vectorized ⟨z⟩ over an array of values (clamped to >= 1)."""
    arr = np.asarray(values, dtype=np.float64)
    return np.array([universal_code_length(v) for v in arr.ravel()]).reshape(arr.shape)


def cost_of_compression(values: Sequence[int] | np.ndarray) -> float:
    """Cost of describing a nonempty integer set ``V`` (Definition 5).

    COST(V) = ⟨|V|⟩ + ⟨1 + ⌈avg(V)⌉⟩ + Σ_v ⟨1 + ⌈|v − avg(V)|⌉⟩.

    The set is described by its cardinality, its average, and each
    value's deviation from the average; homogeneous sets compress well
    because small deviations need few bits.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cost_of_compression requires a nonempty set")
    mean = float(arr.mean())
    cost = universal_code_length(arr.size)
    cost += universal_code_length(1.0 + math.ceil(mean))
    for v in arr:
        cost += universal_code_length(1.0 + math.ceil(abs(float(v) - mean)))
    return cost


def best_split(values: Sequence[int] | np.ndarray, *, start: int = 0) -> tuple[int, float]:
    """Best MDL two-way split of ``values[start:]`` (Definition 6 core).

    Evaluates every cut position ``e`` with ``start < e < len(values)``,
    scoring COST(values[start:e]) + COST(values[e:]), and returns
    ``(argmin_e, min_cost)``.  Raises if fewer than two elements remain
    after ``start`` (no split exists).
    """
    arr = np.asarray(values, dtype=np.float64)
    n = arr.size
    if n - start < 2:
        raise ValueError("best_split needs at least two values after `start`")
    best_e = -1
    best_cost = math.inf
    for e in range(start + 1, n):
        cost = cost_of_compression(arr[start:e]) + cost_of_compression(arr[e:])
        if cost < best_cost:
            best_cost = cost
            best_e = e
    return best_e, best_cost
