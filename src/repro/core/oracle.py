"""Algorithm 2: BUILDOPLOT — build the 'Oracle' plot.

Counts neighbors per point per radius via the batch query engine (with
the Sec. IV-G speed-up principles), then extracts each point's 1NN
Distance (x axis) and Group 1NN Distance (y axis) from its plateaus.
"""

from __future__ import annotations

import numpy as np

from repro.core.plateaus import analyze_counts
from repro.core.result import OraclePlot
from repro.engine import BatchQueryEngine
from repro.index.base import MetricIndex


def build_oracle_plot(
    index: MetricIndex,
    radii: np.ndarray,
    *,
    max_slope: float,
    max_cardinality: int,
    sparse_focused: bool = True,
    engine_mode: str = "batched",
    workers: int | None = None,
    shard_by: str = "query",
) -> OraclePlot:
    """Alg. 2: count neighbors, find plateaus, mount the 'Oracle' plot.

    Parameters
    ----------
    index:
        Index over the full dataset (the tree ``T`` of Alg. 1).
    radii:
        The radius ladder ``R``.
    max_slope, max_cardinality:
        Hyperparameters ``b`` and ``c``.
    sparse_focused:
        Apply the sparse-focused principle (skip counts already known
        to exceed ``c``).  Disable only for ablation; results are
        identical where it matters.
    engine_mode:
        Execution plan (see :class:`BatchQueryEngine`): ``"batched"``
        (default), ``"per_point"``, or ``"parallel"`` — results are
        bit-for-bit identical, only wall-clock differs.
    workers:
        Worker-pool size for ``engine_mode="parallel"`` (default: the
        usable core count); ignored by the serial modes.
    shard_by:
        Parallel-mode sharding axis, ``"query"`` (default) or
        ``"tree"``; ignored by the serial modes.
    """
    engine = BatchQueryEngine(
        index, mode=engine_mode, workers=workers, shard_by=shard_by
    )
    counts = engine.self_join_counts(
        radii,
        max_cardinality=max_cardinality,
        sparse_focused=sparse_focused,
    )
    x, y, first_end, middle_end = analyze_counts(
        counts, radii, max_slope=max_slope, max_cardinality=max_cardinality
    )
    return OraclePlot(
        x=x,
        y=y,
        first_end_index=first_end,
        middle_end_index=middle_end,
        radii=np.asarray(radii),
        counts=counts,
    )
