"""Plateau analysis: Definitions 1-3 of the paper.

A *plateau* of a point is a maximal range of radii over which its
neighbor count stays quasi-unaltered (log-log slope <= b).  The *first
plateau* (height 1) yields the 1NN Distance ``x_i``; the largest
non-excused *middle plateau* (height in (1, c], not touching the last
radius) yields the Group 1NN Distance ``y_i``.

Counts skipped by the sparse-focused principle are
:data:`~repro.index.joins.UNKNOWN_COUNT`; any slope touching an unknown
count is treated as "steep" (> b), which is safe because unknown counts
only occur after the count already exceeded the Maximum Microcluster
Cardinality ``c`` — i.e. in excused territory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.index.joins import UNKNOWN_COUNT


@dataclass(frozen=True)
class Plateau:
    """A maximal quasi-flat range ``[radii[start], radii[end]]`` of one point.

    ``height`` is the neighbor count at the plateau's smallest radius;
    ``length`` is ``radii[end] - radii[start]`` (Def. 1).
    """

    start: int
    end: int
    height: int
    length: float


def find_plateaus(
    counts_row: np.ndarray,
    radii: np.ndarray,
    *,
    max_slope: float,
    max_cardinality: int,
) -> list[Plateau]:
    """All (nonexcused) plateaus of one point, per Definition 1.

    Parameters
    ----------
    counts_row:
        Neighbor counts of the point at each radius (``UNKNOWN_COUNT``
        allowed).
    radii:
        The increasing radius ladder.
    max_slope:
        Maximum Plateau Slope ``b``.
    max_cardinality:
        Maximum Microcluster Cardinality ``c``; plateaus taller than
        this are *excused* (not returned).
    """
    a = len(radii)
    if counts_row.shape != (a,):
        raise ValueError(f"counts_row must have shape ({a},), got {counts_row.shape}")
    log_r = np.log2(radii)
    flat = np.zeros(a - 1, dtype=bool)
    for e in range(a - 1):
        q0, q1 = counts_row[e], counts_row[e + 1]
        if q0 == UNKNOWN_COUNT or q1 == UNKNOWN_COUNT:
            continue  # steep by convention (excused territory)
        slope = (math.log2(q1) - math.log2(q0)) / (log_r[e + 1] - log_r[e])
        flat[e] = slope <= max_slope

    plateaus: list[Plateau] = []
    e = 0
    while e < a - 1:
        if not flat[e]:
            e += 1
            continue
        start = e
        while e < a - 1 and flat[e]:
            e += 1
        end = e  # run covers radii[start..end], end > start (maximality)
        height = int(counts_row[start])
        if 1 <= height <= max_cardinality:
            plateaus.append(
                Plateau(start, end, height, float(radii[end] - radii[start]))
            )
    return plateaus


def first_plateau(plateaus: list[Plateau]) -> Plateau | None:
    """The unique height-1 plateau (Def. 2), or None if not uncovered."""
    for p in plateaus:
        if p.height == 1:
            return p
    return None


def middle_plateau(plateaus: list[Plateau], n_radii: int) -> Plateau | None:
    """The longest plateau with height > 1 not touching the last radius (Def. 3).

    Ties on length are broken towards the larger end radius (the more
    isolated cluster).
    """
    best: Plateau | None = None
    for p in plateaus:
        if p.height <= 1 or p.end == n_radii - 1:
            continue
        if best is None or (p.length, p.end) > (best.length, best.end):
            best = p
    return best


def analyze_counts(
    counts: np.ndarray,
    radii: np.ndarray,
    *,
    max_slope: float,
    max_cardinality: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-point (x_i, y_i, first-plateau end, middle-plateau end).

    This is the "Find the plateaus" half of Alg. 2 (lines 4-7):
    ``x[i]`` is the 1NN Distance (0 if the radius ladder cannot uncover
    the first plateau, e.g. duplicated points), ``y[i]`` the Group 1NN
    Distance (0 if no middle plateau).  The end *indices* (-1 if the
    plateau does not exist) identify each plateau value with its end
    radius, the approximation of footnotes 1-2 that Def. 4 relies on
    for binning and that the Cutoff comparisons reuse.
    """
    n = counts.shape[0]
    x = np.zeros(n, dtype=np.float64)
    y = np.zeros(n, dtype=np.float64)
    first_end = np.full(n, -1, dtype=np.intp)
    middle_end = np.full(n, -1, dtype=np.intp)
    a = len(radii)
    for i in range(n):
        plateaus = find_plateaus(
            counts[i], radii, max_slope=max_slope, max_cardinality=max_cardinality
        )
        fp = first_plateau(plateaus)
        if fp is not None:
            x[i] = fp.length
            first_end[i] = fp.end
        mp = middle_plateau(plateaus, a)
        if mp is not None:
            y[i] = mp.length
            middle_end[i] = mp.end
    return x, y, first_end, middle_end
