"""Step I of Alg. 1: the neighborhood radius ladder.

Given the dataset diameter estimate ``l`` (from the tree, Alg. 1
line 2) and the Number of Radii ``a``, the ladder is

    R = { l/2^(a-1), l/2^(a-2), ..., l/2^0 }

— geometric with ratio 2, ending exactly at ``l``.  Constant log-radius
spacing is what makes the plateau slope of Def. 1 a simple difference
of log-counts.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import MetricIndex


def radius_ladder(diameter: float, n_radii: int) -> np.ndarray:
    """The set R of Alg. 1 line 3 (increasing, ``radii[-1] == diameter``)."""
    if n_radii < 2:
        raise ValueError(f"Number of Radii a must be >= 2, got {n_radii}")
    if diameter <= 0:
        raise ValueError(f"diameter must be positive, got {diameter}")
    exponents = np.arange(n_radii - 1, -1, -1, dtype=np.float64)
    return diameter / np.power(2.0, exponents)


def define_radii(index: MetricIndex, n_radii: int) -> np.ndarray:
    """Alg. 1 lines 2-3: estimate the diameter from the tree, build R."""
    diameter = index.diameter_estimate()
    if diameter <= 0:
        raise ValueError(
            "estimated dataset diameter is zero: all elements coincide, "
            "so no microcluster structure exists"
        )
    return radius_ladder(diameter, n_radii)
