"""Result containers returned by :class:`repro.core.mccatch.McCatch`."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Microcluster:
    """A detected microcluster ``M_j`` and its anomaly score ``s_j``.

    Attributes
    ----------
    indices:
        Dataset positions of the member elements.
    score:
        Def. 7 score (bits per member); larger = more anomalous.
    bridge_length:
        The "Bridge's Length" — smallest distance from any member to
        its nearest inlier.
    mean_1nn_distance:
        Average 1NN Distance of the members (x̄ in Def. 7, item ④).
    """

    indices: np.ndarray
    score: float
    bridge_length: float
    mean_1nn_distance: float

    @property
    def cardinality(self) -> int:
        """Number of member elements ``|M_j|``."""
        return int(self.indices.size)

    @property
    def is_singleton(self) -> bool:
        """True for 'one-off' outliers (cardinality 1)."""
        return self.cardinality == 1

    def __repr__(self) -> str:
        kind = "singleton" if self.is_singleton else f"{self.cardinality}-elements"
        return f"Microcluster({kind}, score={self.score:.2f}, bridge={self.bridge_length:.4g})"


@dataclass(frozen=True)
class OraclePlot:
    """The 'Oracle' plot: 1NN Distance vs Group 1NN Distance per point.

    Attributes
    ----------
    x:
        Lengths of the first plateaus — the 1NN Distances (0 where the
        radius ladder could not uncover a first plateau).
    y:
        Lengths of the (largest, nonexcused) middle plateaus — the
        Group 1NN Distances (0 where none exists).
    first_end_index:
        Radius index ending each point's first plateau (-1 if none);
        this is the histogram bin of Def. 4.
    middle_end_index:
        Radius index ending each point's middle plateau (-1 if none);
        per footnote 2, the radius this index points at approximates
        the Group 1NN Distance and drives the Y-axis outlier test.
    radii:
        The radius ladder ``R`` of Alg. 1 line 3.
    counts:
        Neighbor counts per point per radius
        (:data:`~repro.index.joins.UNKNOWN_COUNT` where the
        sparse-focused principle skipped the join).
    """

    x: np.ndarray
    y: np.ndarray
    first_end_index: np.ndarray
    middle_end_index: np.ndarray
    radii: np.ndarray
    counts: np.ndarray

    def __len__(self) -> int:
        return int(self.x.size)


@dataclass(frozen=True)
class CutoffInfo:
    """The data-driven Cutoff ``d`` (Def. 6) and its provenance.

    ``index`` is the cut position ``e`` into ``radii`` (so ``d ==
    radii[index]``); -1 with ``value == inf`` means no cut existed
    (e.g. every point sits in the modal bin) and nothing is an outlier
    on the X axis.
    """

    value: float
    index: int
    histogram: np.ndarray
    peak_index: int
    split_cost: float


@dataclass
class McCatchResult:
    """Everything McCatch returns (Alg. 1 outputs M, S, W + provenance).

    ``microclusters`` is ranked most-strange-first; ``point_scores`` is
    the per-point ranking ``W`` used for AUROC comparisons against
    point-scoring competitors.
    """

    microclusters: list[Microcluster]
    point_scores: np.ndarray
    oracle: OraclePlot
    cutoff: CutoffInfo
    n: int
    _labels: np.ndarray | None = field(default=None, repr=False)

    @property
    def scores(self) -> np.ndarray:
        """Per-microcluster scores S, aligned with ``microclusters``."""
        return np.array([m.score for m in self.microclusters], dtype=np.float64)

    @property
    def outlier_indices(self) -> np.ndarray:
        """Sorted dataset positions of every outlying element (set A)."""
        if not self.microclusters:
            return np.array([], dtype=np.intp)
        return np.sort(np.concatenate([m.indices for m in self.microclusters]))

    @property
    def labels(self) -> np.ndarray:
        """Per-point labels: -1 for inliers, rank of the microcluster otherwise.

        Rank 0 is the most anomalous microcluster.
        """
        if self._labels is None:
            labels = np.full(self.n, -1, dtype=np.intp)
            for rank, mc in enumerate(self.microclusters):
                labels[mc.indices] = rank
            self._labels = labels
        return self._labels

    @property
    def n_outliers(self) -> int:
        """Total number of outlying elements."""
        return int(sum(m.cardinality for m in self.microclusters))

    def nonsingleton(self) -> list[Microcluster]:
        """Only the microclusters with two or more members."""
        return [m for m in self.microclusters if not m.is_singleton]

    def summary(self, max_rows: int = 10) -> str:
        """Human-readable ranking table (most-strange-first)."""
        lines = [f"McCatchResult: n={self.n}, {len(self.microclusters)} microclusters"]
        for rank, mc in enumerate(self.microclusters[:max_rows]):
            lines.append(
                f"  #{rank}: |M|={mc.cardinality:<4d} score={mc.score:8.2f} "
                f"bridge={mc.bridge_length:.4g}"
            )
        if len(self.microclusters) > max_rows:
            lines.append(f"  ... and {len(self.microclusters) - max_rows} more")
        return "\n".join(lines)
