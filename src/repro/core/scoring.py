"""Algorithm 4: SCOREMCS — compression-based anomaly scores (Def. 7).

A microcluster is scored by the bits-per-member cost of describing it
in terms of its nearest inlier: cardinality + inlier id + bridge +
member-to-member hops.  The construction makes the Isolation and
Cardinality axioms of Sec. III hold by design: a longer bridge raises
the cost, and a larger cardinality dilutes the fixed costs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mdl import universal_code_length
from repro.core.result import Microcluster, OraclePlot
from repro.engine import BatchQueryEngine
from repro.index.factory import build_index
from repro.metric.base import MetricSpace


def nearest_inlier_distances(
    space: MetricSpace,
    outliers: np.ndarray,
    oracle: OraclePlot,
    *,
    index_kind: str = "auto",
    index_build: str | None = None,
    index_walk: str | None = None,
    engine_mode: str = "batched",
    workers: int | None = None,
    shard_by: str = "query",
) -> np.ndarray:
    """Per-point distance g_i to the nearest inlier (Alg. 4 lines 1-15).

    For each outlier: the largest radius at which it still has zero
    inlier neighbors (0 if it has an inlier within the smallest radius;
    the top radius if it has none at all — e.g. when every point is an
    outlier).  For each inlier: its own 1NN Distance x_i.

    The rung-by-rung ladder scan of Alg. 4 runs through the batch
    engine: one multi-radius query per outlier in batched mode, the
    literal shrinking-set loop in per-point mode — identical ``g``
    either way.
    """
    n = len(space)
    radii = oracle.radii
    g = np.array(oracle.x, dtype=np.float64)  # inliers: g_i = x_i
    if outliers.size == 0:
        return g

    inlier_mask = np.ones(n, dtype=bool)
    inlier_mask[outliers] = False
    inlier_ids = np.nonzero(inlier_mask)[0]
    if inlier_ids.size == 0:
        g[outliers] = radii[-1]
        return g

    inlier_tree = build_index(
        space, inlier_ids, kind=index_kind, build=index_build, walk=index_walk
    )
    engine = BatchQueryEngine(
        inlier_tree, mode=engine_mode, workers=workers, shard_by=shard_by
    )
    first = engine.first_nonempty_radius(outliers, radii)
    g[outliers] = radii[-1]  # default: no inlier neighbor within l
    # First radius with an inlier neighbor: g is one rung below.
    below = first > 0
    g[outliers[below]] = radii[first[below] - 1]
    g[outliers[first == 0]] = 0.0
    return g


def _ceil_ratio(value: float, r1: float) -> int:
    """⌈value / r1⌉ with near-integer snapping.

    Distances produced by the algorithm (plateau lengths, bridge rungs)
    are exact multiples of r1 by construction; float division turns
    those exact integers into integer ± ulp, and a raw ceil would flip
    by one depending on rounding direction.  Snapping within a relative
    1e-9 keeps scores deterministic under rigid motions of the data.
    """
    ratio = value / r1
    nearest = round(ratio)
    if abs(ratio - nearest) <= 1e-9 * max(1.0, abs(nearest)):
        return int(nearest)
    return math.ceil(ratio)


def microcluster_score(
    cardinality: int,
    n: int,
    bridge_length: float,
    mean_1nn: float,
    r1: float,
    transformation_cost: float,
) -> float:
    """Def. 7: the bits-per-member description cost of one microcluster."""
    if cardinality < 1:
        raise ValueError("microcluster cardinality must be >= 1")
    if r1 <= 0:
        raise ValueError("r1 must be positive")
    item1 = universal_code_length(cardinality)  # ① cardinality
    item2 = universal_code_length(n)  # ② nearest-inlier id (worst case)
    item3 = transformation_cost * universal_code_length(_ceil_ratio(bridge_length, r1))  # ③
    item4 = transformation_cost * universal_code_length(1 + _ceil_ratio(mean_1nn, r1))  # ④
    return (item1 + item2 + item3 + (cardinality - 1) * item4) / cardinality


def point_score(g_i: float, r1: float) -> float:
    """Alg. 4 line 22: per-point score w_i = ⟨1 + ⌈g_i / r_1⌉⟩."""
    return universal_code_length(1 + _ceil_ratio(g_i, r1))


def score_microclusters(
    space: MetricSpace,
    clusters: list[np.ndarray],
    oracle: OraclePlot,
    *,
    transformation_cost: float,
    index_kind: str = "auto",
    index_build: str | None = None,
    index_walk: str | None = None,
    engine_mode: str = "batched",
    workers: int | None = None,
    shard_by: str = "query",
) -> tuple[list[Microcluster], np.ndarray]:
    """Alg. 4: scores per microcluster (ranked) and per point.

    Returns
    -------
    microclusters:
        :class:`Microcluster` records sorted most-strange-first
        (descending score; ties broken towards smaller cardinality,
        then longer bridge, for determinism).
    point_scores:
        Array W of per-point scores, higher = more anomalous.
    """
    n = len(space)
    radii = oracle.radii
    r1 = float(radii[0])
    outliers = (
        np.sort(np.concatenate(clusters))
        if clusters
        else np.array([], dtype=np.intp)
    )
    g = nearest_inlier_distances(
        space, outliers, oracle,
        index_kind=index_kind, index_build=index_build, index_walk=index_walk,
        engine_mode=engine_mode, workers=workers,
        shard_by=shard_by,
    )

    microclusters: list[Microcluster] = []
    for members in clusters:
        bridge = float(g[members].min())
        mean_1nn = float(oracle.x[members].mean())
        score = microcluster_score(
            members.size, n, bridge, mean_1nn, r1, transformation_cost
        )
        microclusters.append(
            Microcluster(
                indices=members,
                score=score,
                bridge_length=bridge,
                mean_1nn_distance=mean_1nn,
            )
        )
    microclusters.sort(
        key=lambda m: (-m.score, m.cardinality, -m.bridge_length, int(m.indices[0]))
    )

    point_scores = np.array([point_score(float(gi), r1) for gi in g], dtype=np.float64)
    return microclusters, point_scores
