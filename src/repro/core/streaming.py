"""Streaming McCatch: batched ingestion with amortized refits.

The paper's McCatch is a batch algorithm; fraud and intrusion feeds
(its motivating workloads, Sec. I) arrive continuously.  This
extension keeps the batch algorithm as the source of truth and wraps
it in the standard streaming recipe:

- **Geometric refits.**  A full McCatch refit runs whenever the data
  has grown by ``refit_factor`` since the last one.  Refitting at
  n, 1.5n, 2.25n, ... keeps the *total* work a constant factor of one
  final fit, so the subquadratic bound of Lemma 1 survives streaming.
- **Provisional scores in between.**  Until the next refit, each new
  element is scored against the current model: its distance ``g`` to
  the nearest current *inlier* is plugged into the paper's per-point
  score ``w = ⟨1 + g/r₁⟩`` (Alg. 4 line 22), and it is provisionally
  flagged when ``g ≥ d`` — the Cutoff's own semantics ("the minimum
  distance required between one microcluster and its nearest inlier").
- **Optional sliding window.**  With ``max_window`` set, only the most
  recent elements participate; older ones age out before the next
  refit.

After any :meth:`refit`, :attr:`result` is *identical* to running
:class:`~repro.core.mccatch.McCatch` on the current window from
scratch — streaming adds no approximation at refit points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mccatch import McCatch, McCatchModel
from repro.core.result import McCatchResult
from repro.metric.base import MetricSpace


def _coerce_detector(detector) -> McCatch:
    """Normalize the ``detector`` argument to a McCatch instance.

    Accepts a McCatch, ``None`` (paper defaults), or anything the
    serving API resolves — a spec string or an estimator — as long as
    it describes McCatch: streaming refits run the full algorithm, so
    a baseline spec has nothing to refit with.
    """
    if detector is None:
        return McCatch()
    if isinstance(detector, McCatch):
        return detector
    from repro.api import make_estimator
    from repro.api.estimators import McCatchEstimator

    estimator = make_estimator(detector)
    if not isinstance(estimator, McCatchEstimator):
        raise TypeError(
            f"streaming requires a McCatch detector, got spec {estimator.spec!r}"
        )
    if estimator.metric is not None:
        raise TypeError(
            f"spec {estimator.spec!r} pins a fit metric; pass metric= to "
            "StreamingMcCatch instead"
        )
    return estimator.detector


@dataclass(frozen=True)
class StreamingUpdate:
    """What one :meth:`StreamingMcCatch.update` call produced.

    Attributes
    ----------
    n_new:
        Number of elements ingested by this call.
    n_seen:
        Total elements ingested so far (before any window eviction).
    refitted:
        True if this update triggered a full McCatch refit.
    provisional_scores:
        Per-new-element scores ``w = ⟨1 + g/r₁⟩``; on a refit these are
        the exact batch scores of the new elements instead.
    provisional_outliers:
        Window positions of new elements with ``g ≥ d`` (or, after a
        refit, the new elements the batch run flagged).
    """

    n_new: int
    n_seen: int
    refitted: bool
    provisional_scores: np.ndarray
    provisional_outliers: np.ndarray


class StreamingMcCatch:
    """Batched streaming wrapper around :class:`McCatch`.

    Parameters
    ----------
    detector:
        Configured McCatch instance (defaults to paper defaults), or a
        serving-API spec string / estimator for one
        (``"mccatch?a=15&engine=batched"``, see
        :func:`repro.api.make_estimator`) — streaming is a McCatch
        capability, so non-McCatch specs are rejected.
    metric:
        Distance function for nondimensional elements (as in
        :meth:`McCatch.fit`).
    refit_factor:
        Refit when the window has grown by this factor since the last
        refit (must be > 1; smaller = fresher model, more work).
    min_fit_size:
        Defer the first fit until this many elements arrived (McCatch
        needs some mass for a meaningful radius ladder).
    max_window:
        Sliding-window size; ``None`` keeps everything.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.streaming import StreamingMcCatch
    >>> rng = np.random.default_rng(0)
    >>> stream = StreamingMcCatch()
    >>> for _ in range(4):
    ...     _ = stream.update(rng.normal(0, 1, (100, 2)))
    >>> update = stream.update(np.array([[9.0, 9.0], [9.1, 9.0]]))
    >>> bool(update.provisional_outliers.size)
    True
    """

    def __init__(
        self,
        detector: McCatch | None = None,
        *,
        metric=None,
        refit_factor: float = 1.5,
        min_fit_size: int = 32,
        max_window: int | None = None,
    ):
        if refit_factor <= 1.0:
            raise ValueError(f"refit_factor must be > 1, got {refit_factor}")
        if min_fit_size < 2:
            raise ValueError(f"min_fit_size must be >= 2, got {min_fit_size}")
        if max_window is not None and max_window < min_fit_size:
            raise ValueError("max_window must be >= min_fit_size")
        self.detector = _coerce_detector(detector)
        self.metric = metric
        self.refit_factor = float(refit_factor)
        self.min_fit_size = int(min_fit_size)
        self.max_window = max_window
        self._window: list = []
        self._fit_window: list = []
        self._is_vector: bool | None = None
        self._n_seen = 0
        self._last_fit_size = 0
        self._result: McCatchResult | None = None
        self._model: McCatchModel | None = None  # lazy scoring view of _result

    # -- public API ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._window)

    @property
    def n_seen(self) -> int:
        """Total elements ingested (including any that aged out)."""
        return self._n_seen

    @property
    def result(self) -> McCatchResult | None:
        """The latest full McCatch result (None before the first fit).

        Indices in the result refer to positions in :attr:`window_data`
        *at the time of the last refit*; call :meth:`refit` for a
        result aligned with the current window.
        """
        return self._result

    @property
    def window_data(self):
        """The current window as an array (vector) or list (objects)."""
        if self._is_vector:
            return np.asarray(self._window, dtype=np.float64)
        return list(self._window)

    def update(self, batch) -> StreamingUpdate:
        """Ingest ``batch`` and return scores/flags for its elements."""
        rows = self._coerce_batch(batch)
        if not rows:
            return StreamingUpdate(0, self._n_seen, False, np.array([]), np.array([], dtype=np.intp))
        self._window.extend(rows)
        self._n_seen += len(rows)
        self._evict()

        must_fit = self._result is None and len(self._window) >= self.min_fit_size
        due = (
            self._result is not None
            and len(self._window) >= self.refit_factor * self._last_fit_size
        )
        if must_fit or due:
            self.refit()
            new_positions = np.arange(len(self._window) - len(rows), len(self._window))
            scores = self._result.point_scores[new_positions]
            flagged_set = set(int(i) for i in self._result.outlier_indices)
            flagged = np.array(
                [int(p) for p in new_positions if int(p) in flagged_set], dtype=np.intp
            )
            return StreamingUpdate(len(rows), self._n_seen, True, scores, flagged)

        if self._result is None:  # still warming up
            return StreamingUpdate(
                len(rows), self._n_seen, False,
                np.zeros(len(rows)), np.array([], dtype=np.intp),
            )
        scores, flagged_local = self._provisional(rows)
        offset = len(self._window) - len(rows)
        return StreamingUpdate(
            len(rows), self._n_seen, False, scores, flagged_local + offset
        )

    def refit(self) -> McCatchResult:
        """Run full McCatch on the current window now."""
        if len(self._window) < 2:
            raise RuntimeError("need at least 2 elements to fit")
        self._result = self.detector.fit(self.window_data, self.metric)
        self._last_fit_size = len(self._window)
        # Snapshot the fitted elements: provisional scoring must look up
        # the model's inliers even after window eviction shifts positions.
        self._fit_window = list(self._window)
        self._model = None  # rebuilt lazily against the new fit
        return self._result

    # -- internals -----------------------------------------------------------

    def _coerce_batch(self, batch) -> list:
        if isinstance(batch, np.ndarray) and np.issubdtype(batch.dtype, np.number):
            arr = np.asarray(batch, dtype=np.float64)
            if arr.ndim == 1:
                arr = arr.reshape(1, -1) if self._is_vector is None or self._is_vector else arr
            if self._is_vector is None:
                self._is_vector = True
            elif not self._is_vector:
                raise TypeError("stream started with object data; got an array batch")
            return [row for row in arr]
        rows = list(batch)
        if self._is_vector is None:
            self._is_vector = False
            if self.metric is None:
                raise ValueError("object streams require a metric callable")
        elif self._is_vector:
            raise TypeError("stream started with vector data; got an object batch")
        return rows

    def _evict(self) -> None:
        if self.max_window is not None and len(self._window) > self.max_window:
            overflow = len(self._window) - self.max_window
            del self._window[:overflow]

    def _provisional(self, rows: list) -> tuple[np.ndarray, np.ndarray]:
        """Score new elements against the last fitted model.

        Delegates to :meth:`McCatchModel.score_batch` — the same
        scorer the serving contract (:mod:`repro.api`) and the
        persistence layer use, so a streamed provisional score, a
        served batch score, and a loaded-model score are one code
        path: ``g`` =
        distance to the nearest model inlier, score = ⟨1 + g/r₁⟩
        (Alg. 4 line 22), flagged iff ``g ≥ d``.  Costs O(|inliers|)
        distances per element — the price of freshness between refits —
        run as blocked bulk kernels, not a per-element Python loop.
        """
        if self._model is None:
            if self._is_vector:
                space = MetricSpace(np.asarray(self._fit_window, dtype=np.float64))
            else:
                space = MetricSpace(self._fit_window, self.metric)
            self._model = McCatchModel(space, None, self._result)
        batch = self._model.score_batch(rows)
        return batch.scores, batch.flagged
