"""Datasets: generators for every Table III dataset (or its stand-in).

Real datasets unavailable offline are replaced by synthetic stand-ins
matched to Table III's cardinality / dimensionality / outlier fraction
and the paper's planted-structure stories; see DESIGN.md,
*Substitutions*, for the full mapping.
"""

from repro.datasets.axioms import AXIOMS, SHAPES, AxiomDataset, make_axiom_dataset
from repro.datasets.benchmarks import (
    BENCHMARK_SPECS,
    MICROCLUSTER_DATASETS,
    make_benchmark_like,
    make_http_like,
)
from repro.datasets.imagery import TileDataset, make_shanghai_tiles, make_volcano_tiles
from repro.datasets.names import NON_ENGLISH_SURNAMES, US_SURNAMES, make_last_names
from repro.datasets.registry import (
    AXIOM_NAMES,
    BENCHMARK_NAMES,
    METRIC_NAMES,
    SATELLITE_NAMES,
    SYNTH_NAMES,
    LoadedDataset,
    dataset_names,
    load,
)
from repro.datasets.shapes import (
    make_fingerprints,
    make_human_skeleton,
    make_quadruped_skeleton,
    make_skeletons,
)
from repro.datasets.streams import burst_stream, regime_shift_stream, trickle_stream
from repro.datasets.synthetic import (
    diagonal_line,
    gaussian_blobs,
    labeled_outlier_dataset,
    plant_microcluster,
    plant_singletons,
    uniform_cube,
)

__all__ = [
    "load",
    "dataset_names",
    "burst_stream",
    "regime_shift_stream",
    "trickle_stream",
    "LoadedDataset",
    "BENCHMARK_NAMES",
    "METRIC_NAMES",
    "AXIOM_NAMES",
    "SATELLITE_NAMES",
    "SYNTH_NAMES",
    "BENCHMARK_SPECS",
    "MICROCLUSTER_DATASETS",
    "make_benchmark_like",
    "make_http_like",
    "make_axiom_dataset",
    "AxiomDataset",
    "AXIOMS",
    "SHAPES",
    "make_last_names",
    "US_SURNAMES",
    "NON_ENGLISH_SURNAMES",
    "make_skeletons",
    "make_human_skeleton",
    "make_quadruped_skeleton",
    "make_fingerprints",
    "make_shanghai_tiles",
    "make_volcano_tiles",
    "TileDataset",
    "uniform_cube",
    "diagonal_line",
    "gaussian_blobs",
    "plant_microcluster",
    "plant_singletons",
    "labeled_outlier_dataset",
]
