"""The axiom datasets of Fig. 2: Gaussian-, cross- and arc-shaped inliers
plus two planted microclusters (red and green) differing in exactly one
property.

- **Isolation axiom**: same cardinality, the green mc sits farther from
  the inliers (longer 'Bridge's Length') — green must score higher.
- **Cardinality axiom**: same bridge length, the green mc is less
  populous — green must score higher.

The paper tests 50 datasets per (axiom, shape) pair, ~1M inliers each;
``n_inliers`` scales that down while keeping the geometry (inliers live
in a [0, 100]^2 frame as in Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import check_random_state

SHAPES = ("gaussian", "cross", "arc")
AXIOMS = ("isolation", "cardinality")


@dataclass(frozen=True)
class AxiomDataset:
    """One Fig. 2 scenario: data + the two planted microclusters.

    ``labels``: 0 = inlier, 1 = red microcluster (the less weird one),
    2 = green microcluster (the one that must score higher).
    """

    X: np.ndarray
    labels: np.ndarray
    shape: str
    axiom: str

    @property
    def red_indices(self) -> np.ndarray:
        return np.nonzero(self.labels == 1)[0]

    @property
    def green_indices(self) -> np.ndarray:
        return np.nonzero(self.labels == 2)[0]


def _inlier_shape(shape: str, n: int, rng: np.random.Generator) -> np.ndarray:
    """Inlier cloud in the [0, 100]^2 frame of Fig. 2."""
    if shape == "gaussian":
        # Truncated at 2.2 sigma: the planted bridges are measured from a
        # stable, dense boundary (stray tail points would otherwise move
        # the effective 'Bridge's Length' from run to run).
        points = np.empty((0, 2))
        while points.shape[0] < n:
            batch = rng.normal(loc=[55.0, 55.0], scale=8.0, size=(n, 2))
            keep = np.linalg.norm(batch - [55.0, 55.0], axis=1) <= 2.2 * 8.0
            points = np.vstack([points, batch[keep]])
        return points[:n]
    if shape == "cross":
        half = n // 2
        horizontal = np.column_stack(
            [rng.uniform(25.0, 85.0, half), rng.normal(55.0, 2.5, half)]
        )
        vertical = np.column_stack(
            [rng.normal(55.0, 2.5, n - half), rng.uniform(25.0, 85.0, n - half)]
        )
        return np.vstack([horizontal, vertical])
    if shape == "arc":
        theta = rng.uniform(np.pi * 0.15, np.pi * 0.85, n)
        radius = rng.normal(30.0, 2.5, n)
        return np.column_stack(
            [55.0 + radius * np.cos(theta), 40.0 + radius * np.sin(theta)]
        )
    raise ValueError(f"unknown shape {shape!r}; choose from {SHAPES}")


def _nearest_inlier_anchor(inliers: np.ndarray, target: np.ndarray) -> np.ndarray:
    """The inlier closest to ``target`` (the bridge is measured from it)."""
    d = np.linalg.norm(inliers - target, axis=1)
    return inliers[np.argmin(d)]


def _clump_offsets(cardinality: int) -> np.ndarray:
    """Tight, zero-centred clump shape shared by both planted mcs.

    Both microclusters of a scenario are built from the *same* offsets
    (the larger one extends the smaller one's), so "all else being
    equal" holds exactly — they differ only in the property under test.
    The shape is also fixed across seeds (only the inlier cloud is
    redrawn): at the paper's 1M-point scale the mc-internal terms of a
    score are effectively constant between datasets, and pinning the
    clump reproduces that stability at laptop scale, keeping the
    two-sample t-test of Table V well powered.  The clump is tight
    (sigma 0.15 in the [0,100]^2 frame) so the gel step's connectivity
    rung can never fragment it.
    """
    shape_rng = np.random.default_rng(1234)
    return shape_rng.normal(0.0, 0.15, size=(cardinality, 2))


def _jitter_offsets(offsets: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Seed-dependent perturbation of the fixed clump shape.

    Applied identically to both planted mcs of a dataset (the caller
    slices one set of jittered offsets), so within a dataset the clumps
    stay congruent — "all else being equal" — while scores still vary
    across the 50 datasets, keeping Table V's t statistics finite.
    """
    return offsets + rng.normal(0.0, 0.003, size=offsets.shape)


def _plant(
    inliers: np.ndarray,
    toward: np.ndarray,
    bridge: float,
    offsets: np.ndarray,
) -> np.ndarray:
    """Clump with shape ``offsets`` exactly ``bridge`` from its nearest inlier."""
    anchor = _nearest_inlier_anchor(inliers, toward)
    direction = toward - anchor
    direction = direction / np.linalg.norm(direction)
    clump = anchor + direction * bridge + offsets
    # Re-center so the closest clump point is at the exact bridge length.
    d = np.linalg.norm(clump - anchor, axis=1)
    clump += direction * (bridge - d.min())
    return clump


def make_axiom_dataset(
    shape: str = "gaussian",
    axiom: str = "isolation",
    *,
    n_inliers: int = 20_000,
    red_bridge: float = 8.0,
    green_bridge_factor: float = 2.5,
    red_cardinality: int = 100,
    green_cardinality: int = 10,
    random_state=None,
) -> AxiomDataset:
    """One Fig. 2 dataset for the requested axiom and inlier shape.

    Isolation: both mcs have ``green_cardinality`` points; green's
    bridge is ``green_bridge_factor`` times red's.  Cardinality: both
    bridges equal ``red_bridge``; red has ``red_cardinality`` points,
    green ``green_cardinality`` (fewer).
    """
    if axiom not in AXIOMS:
        raise ValueError(f"unknown axiom {axiom!r}; choose from {AXIOMS}")
    rng = check_random_state(random_state)
    inliers = _inlier_shape(shape, n_inliers, rng)

    left = np.array([0.0, 55.0])  # red grows to the left of the shape
    below = np.array([55.0, 0.0])  # green below, as drawn in Fig. 2
    if axiom == "isolation":
        offsets = _jitter_offsets(_clump_offsets(green_cardinality), rng)
        red = _plant(inliers, left, red_bridge, offsets)
        green = _plant(inliers, below, red_bridge * green_bridge_factor, offsets)
    else:
        offsets = _jitter_offsets(_clump_offsets(red_cardinality), rng)
        red = _plant(inliers, left, red_bridge, offsets)
        green = _plant(inliers, below, red_bridge, offsets[:green_cardinality])

    X = np.vstack([inliers, red, green])
    labels = np.zeros(X.shape[0], dtype=np.intp)
    labels[n_inliers : n_inliers + red.shape[0]] = 1
    labels[n_inliers + red.shape[0] :] = 2
    return AxiomDataset(X=X, labels=labels, shape=shape, axiom=axiom)
