"""Synthetic stand-ins for the popular benchmark datasets of Table III.

The paper evaluates on 18 public benchmark datasets (HTTP, Shuttle,
Mammography, ...).  Offline, we generate a stand-in per dataset matched
to Table III's cardinality, dimensionality and outlier percentage:
Gaussian-mixture inliers, scattered singleton outliers, and — for the
datasets the paper flags as containing nonsingleton microclusters
(HTTP and Annthyroid, per [6]) — planted outlier clumps.  See
DESIGN.md, *Substitutions*.

``make_http_like`` additionally reproduces the Fig. 8 story: a dense
log-normal traffic mass plus a 30-point 'DoS' microcluster and a few
scattered rarities, in 3 features (bytes sent, bytes received,
duration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import gaussian_blobs, plant_microcluster
from repro.utils.rng import check_random_state


@dataclass(frozen=True)
class BenchmarkSpec:
    """Shape parameters of one Table III stand-in."""

    name: str
    n: int
    dim: int
    outlier_pct: float  # Table III's '% Outliers'
    n_blobs: int = 3
    microclusters: tuple[int, ...] = ()  # planted clump cardinalities


#: Table III rows (popular benchmark section), verbatim n / dim / %outliers.
BENCHMARK_SPECS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        BenchmarkSpec("http", 222_027, 3, 0.03, n_blobs=2, microclusters=(30,)),
        BenchmarkSpec("shuttle", 49_097, 9, 7.15, n_blobs=4),
        BenchmarkSpec("kddcup08", 24_995, 25, 0.68, n_blobs=3),
        BenchmarkSpec("mammography", 7_848, 6, 3.22, n_blobs=3),
        BenchmarkSpec("annthyroid", 7_200, 6, 7.41, n_blobs=3, microclusters=(25, 15, 10)),
        BenchmarkSpec("satellite", 6_435, 36, 31.64, n_blobs=4),
        BenchmarkSpec("satimage2", 5_803, 36, 1.22, n_blobs=4),
        BenchmarkSpec("speech", 3_686, 400, 1.65, n_blobs=2),
        BenchmarkSpec("thyroid", 3_656, 6, 2.54, n_blobs=2),
        BenchmarkSpec("vowels", 1_452, 12, 3.17, n_blobs=4),
        BenchmarkSpec("pima", 526, 8, 4.94, n_blobs=2),
        BenchmarkSpec("ionosphere", 350, 33, 35.71, n_blobs=2),
        BenchmarkSpec("ecoli", 336, 7, 2.68, n_blobs=3),
        BenchmarkSpec("vertebral", 240, 6, 12.5, n_blobs=2),
        BenchmarkSpec("glass", 213, 9, 4.23, n_blobs=3),
        BenchmarkSpec("wine", 129, 13, 7.75, n_blobs=2),
        BenchmarkSpec("hepatitis", 70, 20, 4.29, n_blobs=2),
        BenchmarkSpec("parkinson", 50, 22, 4.0, n_blobs=2),
    )
}

#: Datasets known to contain nonsingleton microclusters ([6], Sec. V).
MICROCLUSTER_DATASETS = ("http", "annthyroid")


def make_benchmark_like(
    name: str, *, scale: float = 1.0, random_state=None
) -> tuple[np.ndarray, np.ndarray]:
    """Stand-in for benchmark dataset ``name`` at ``scale`` of its size.

    Returns ``(X, y)`` with ``y`` binary (1 = outlier).  Outliers are
    scattered uniform points outside the inlier mass plus, where the
    spec plants microclusters, tight clumps at a clear bridge length.
    """
    try:
        spec = BENCHMARK_SPECS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARK_SPECS)}"
        ) from None
    rng = check_random_state(random_state)
    n = max(30, int(round(spec.n * scale)))
    n_out_total = max(1, int(round(n * spec.outlier_pct / 100.0)))
    n_mc = sum(spec.microclusters)
    mc_cards = list(spec.microclusters)
    if n_mc >= n_out_total and mc_cards:
        # Scale the planted clumps down with the dataset.
        shrink = max(0.0, (n_out_total - 1) / max(n_mc, 1))
        mc_cards = [max(2, int(round(c * shrink))) for c in mc_cards]
        n_mc = sum(mc_cards)
        if n_mc >= n_out_total:
            mc_cards, n_mc = [], 0
    n_scatter = n_out_total - n_mc
    n_in = n - n_out_total

    inliers = gaussian_blobs(n_in, spec.dim, n_blobs=spec.n_blobs, random_state=rng)
    groups: list[np.ndarray] = []
    for card in mc_cards:
        groups.append(
            plant_microcluster(
                inliers, card, bridge_length=0.6, tightness=0.015, random_state=rng
            )
        )
    if n_scatter > 0:
        # Real benchmark outliers are rarities near the data mass, not
        # distant islands (a stand-in where every detector scores 1.0
        # would be unfaithful to Fig. 6, where methods mostly tie).
        # Half the scatter are "near rarities" in the sparse shell of a
        # blob; the rest sit just beyond the rim.  In d dimensions the
        # inlier mass concentrates at radius ~ spread * sqrt(d), so the
        # shell is calibrated to 1.6-2.4x that — outside the mass in any
        # dimension, but never a distant island.
        n_near = n_scatter // 2
        blob_centers = inliers[rng.integers(n_in, size=n_near)]
        shell_dirs = rng.normal(size=(n_near, spec.dim))
        shell_dirs /= np.linalg.norm(shell_dirs, axis=1, keepdims=True)
        typical_radius = 0.05 * np.sqrt(spec.dim)
        near = blob_centers + shell_dirs * (
            typical_radius * rng.uniform(1.6, 2.4, size=(n_near, 1))
        )
        center = inliers.mean(axis=0)
        rim = float(np.percentile(np.linalg.norm(inliers - center, axis=1), 99))
        n_far = n_scatter - n_near
        far_dirs = rng.normal(size=(n_far, spec.dim))
        far_dirs /= np.linalg.norm(far_dirs, axis=1, keepdims=True)
        far = center + far_dirs * rim * rng.uniform(1.05, 1.6, size=(n_far, 1))
        groups.append(np.vstack([near, far]) if n_near else far)

    X = np.vstack([inliers, *groups]) if groups else inliers
    y = np.zeros(X.shape[0], dtype=np.intp)
    y[n_in:] = 1
    return X, y


def make_http_like(
    n: int = 222_027, *, scale: float = 1.0, random_state=None
) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 8(ii)'s HTTP stand-in: traffic mass + 30-point DoS mc + rarities.

    Features mimic (log bytes sent, log bytes received, log duration).
    The DoS microcluster sends "too many bytes to a server" — large on
    the first axis, tightly clustered (a coalition exploiting one
    vulnerability).  Returns ``(X, y)``, 1 = attack/rarity.
    """
    rng = check_random_state(random_state)
    n = max(200, int(round(n * scale)))
    # The DoS microcluster keeps its 30-connection cardinality at any
    # scale: a 30-strong coalition is the phenomenon under study (and
    # what defeats the k<=10 neighbor-based competitors of Table II).
    n_dos = min(30, max(3, n // 20))
    n_rare = max(3, int(round(36 * max(scale, 0.1))))
    n_in = n - n_dos - n_rare

    # Normal traffic: correlated log-normal-ish cloud.
    base = rng.normal(0.0, 1.0, size=(n_in, 3))
    mix = np.array([[1.0, 0.6, 0.2], [0.0, 0.8, 0.3], [0.0, 0.0, 0.9]])
    inliers = np.array([4.0, 6.0, 1.0]) + base @ mix

    dos_center = np.array([14.0, 5.5, 1.2])  # huge bytes-sent, normal otherwise
    dos = dos_center + rng.normal(0.0, 0.08, size=(n_dos, 3))

    rare = np.empty((n_rare, 3))
    for i in range(n_rare):
        axis = rng.integers(3)
        point = np.array([4.0, 6.0, 1.0]) + rng.normal(0.0, 1.0, 3) @ mix
        point[axis] += rng.uniform(6.0, 12.0)  # oddly large on one feature
        rare[i] = point

    X = np.vstack([inliers, dos, rare])
    y = np.zeros(X.shape[0], dtype=np.intp)
    y[n_in:] = 1
    return X, y
