"""Satellite-tile stand-ins: Shanghai and Volcanoes (Figs. 1(i) and 8(i)).

The paper splits a satellite image into rectangular tiles and keeps
each tile's average RGB — a 3-d vector dataset.  Our procedural
stand-ins reproduce the planted stories:

- **Shanghai**: urban texture (correlated grey-brown tiles) with two
  2-tile microclusters of unusually colored roofs (one red pair, one
  blue pair) and a few mutually-distinct outlier tiles (yellow).
- **Volcanoes**: a radial volcano cone (dark rock rim, vegetated
  foothills) with a 3-tile snow microcluster at the summit and a few
  scattered odd tiles.

Both return tile-center coordinates too, so examples can report *where*
the detected tiles sit in the image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import check_random_state


@dataclass(frozen=True)
class TileDataset:
    """A tiled image: mean-RGB features + grid positions + planted labels.

    ``labels``: 0 normal tile, 1 scattered odd tile, 2+ one id per
    planted microcluster.
    """

    rgb: np.ndarray  # (n, 3) in [0, 255]
    positions: np.ndarray  # (n, 2) tile-center (row, col)
    labels: np.ndarray

    def __len__(self) -> int:
        return int(self.rgb.shape[0])


def make_shanghai_tiles(grid: int = 36, random_state=None) -> TileDataset:
    """Shanghai-like urban grid (default 36x36 = 1296 tiles, as Table III).

    Plants two 2-tile roof microclusters (red, blue) and 4 scattered
    distinct outliers (yellow-ish but mutually far apart).
    """
    rng = check_random_state(random_state)
    n = grid * grid
    rows, cols = np.divmod(np.arange(n), grid)
    positions = np.column_stack([rows, cols]).astype(np.float64)

    # Urban texture: grey-brown with smooth spatial variation.
    base = 110.0 + 18.0 * np.sin(rows / 5.0) + 14.0 * np.cos(cols / 7.0)
    rgb = np.column_stack([base + 8.0, base, base - 10.0])
    rgb += rng.normal(0.0, 7.0, size=rgb.shape)

    labels = np.zeros(n, dtype=np.intp)
    flat = lambda r, c: r * grid + c  # noqa: E731 - tiny index helper

    red_pair = [flat(5, 7), flat(5, 8)]  # adjacent unusually red roofs
    for i in red_pair:
        rgb[i] = [214.0, 40.0, 38.0] + rng.normal(0.0, 2.0, 3)
        labels[i] = 2
    blue_pair = [flat(25, 30), flat(26, 30)]
    for i in blue_pair:
        rgb[i] = [36.0, 88.0, 210.0] + rng.normal(0.0, 2.0, 3)
        labels[i] = 3
    scattered = [flat(2, 30), flat(18, 3), flat(30, 12), flat(33, 33)]
    hues = [[230, 220, 60], [20, 160, 90], [240, 150, 20], [180, 30, 150]]
    for i, hue in zip(scattered, hues):
        rgb[i] = np.array(hue, dtype=np.float64) + rng.normal(0.0, 2.0, 3)
        labels[i] = 1

    return TileDataset(rgb=np.clip(rgb, 0, 255), positions=positions, labels=labels)


def make_volcano_tiles(grid: int = 61, random_state=None) -> TileDataset:
    """Volcano-like radial cone (default 61x61 = 3721 tiles, as Table III).

    Plants a 3-tile snow microcluster at the summit and 3 scattered odd
    tiles (bare rock / water) on the flanks.
    """
    rng = check_random_state(random_state)
    n = grid * grid
    rows, cols = np.divmod(np.arange(n), grid)
    positions = np.column_stack([rows, cols]).astype(np.float64)
    center = (grid - 1) / 2.0
    radius = np.sqrt((rows - center) ** 2 + (cols - center) ** 2) / center

    # Vegetated foothills (green) grading into dark rock near the summit.
    green = np.clip(120.0 - 90.0 * (1.0 - radius), 20.0, 120.0)
    rock = np.clip(95.0 * (1.0 - radius), 0.0, 95.0)
    rgb = np.column_stack([40.0 + rock, green + rock * 0.4, 30.0 + rock * 0.5])
    rgb += rng.normal(0.0, 6.0, size=rgb.shape)

    labels = np.zeros(n, dtype=np.intp)
    summit = int(center) * grid + int(center)
    snow = [summit, summit + 1, summit + grid]  # 3 adjacent summit tiles
    for i in snow:
        rgb[i] = [238.0, 240.0, 248.0] + rng.normal(0.0, 2.0, 3)
        labels[i] = 2
    scattered = [
        int(center + 18) * grid + int(center + 5),
        int(center - 20) * grid + int(center - 10),
        int(center + 8) * grid + int(center - 22),
    ]
    hues = [[15, 30, 120], [200, 180, 40], [90, 10, 10]]
    for i, hue in zip(scattered, hues):
        rgb[i] = np.array(hue, dtype=np.float64) + rng.normal(0.0, 2.0, 3)
        labels[i] = 1

    return TileDataset(rgb=np.clip(rgb, 0, 255), positions=positions, labels=labels)
