"""The Last Names stand-in (Fig. 1(ii)): US surnames + non-English outliers.

The paper samples 5k surnames frequent in the US (inliers) and 50
frequent elsewhere (outliers), compared under the Levenshtein distance.
Offline we embed curated lists (frequent US surnames from census-style
rankings; non-English surnames of varied origins — Polish, Vietnamese,
Greek, Icelandic, Ethiopian, ...) and sample with replacement to the
requested sizes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import check_random_state

# Frequent US surnames (census-style top lists; short, English-pattern).
US_SURNAMES = [
    "SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER",
    "DAVIS", "RODRIGUEZ", "MARTINEZ", "HERNANDEZ", "LOPEZ", "GONZALEZ",
    "WILSON", "ANDERSON", "THOMAS", "TAYLOR", "MOORE", "JACKSON", "MARTIN",
    "LEE", "PEREZ", "THOMPSON", "WHITE", "HARRIS", "SANCHEZ", "CLARK",
    "RAMIREZ", "LEWIS", "ROBINSON", "WALKER", "YOUNG", "ALLEN", "KING",
    "WRIGHT", "SCOTT", "TORRES", "NGUYEN", "HILL", "FLORES", "GREEN",
    "ADAMS", "NELSON", "BAKER", "HALL", "RIVERA", "CAMPBELL", "MITCHELL",
    "CARTER", "ROBERTS", "GOMEZ", "PHILLIPS", "EVANS", "TURNER", "DIAZ",
    "PARKER", "CRUZ", "EDWARDS", "COLLINS", "REYES", "STEWART", "MORRIS",
    "MORALES", "MURPHY", "COOK", "ROGERS", "GUTIERREZ", "ORTIZ", "MORGAN",
    "COOPER", "PETERSON", "BAILEY", "REED", "KELLY", "HOWARD", "RAMOS",
    "KIM", "COX", "WARD", "RICHARDSON", "WATSON", "BROOKS", "CHAVEZ",
    "WOOD", "JAMES", "BENNETT", "GRAY", "MENDOZA", "RUIZ", "HUGHES",
    "PRICE", "ALVAREZ", "CASTILLO", "SANDERS", "PATEL", "MYERS", "LONG",
    "ROSS", "FOSTER", "JIMENEZ", "POWELL", "JENKINS", "PERRY", "RUSSELL",
    "SULLIVAN", "BELL", "COLEMAN", "BUTLER", "HENDERSON", "BARNES",
    "GONZALES", "FISHER", "VASQUEZ", "SIMMONS", "ROMERO", "JORDAN",
    "PATTERSON", "ALEXANDER", "HAMILTON", "GRAHAM", "REYNOLDS", "GRIFFIN",
    "WALLACE", "MORENO", "WEST", "COLE", "HAYES", "BRYANT", "HERRERA",
    "GIBSON", "ELLIS", "TRAN", "MEDINA", "AGUILAR", "STEVENS", "MURRAY",
    "FORD", "CASTRO", "MARSHALL", "OWENS", "HARRISON", "FERNANDEZ",
    "MCDONALD", "WOODS", "WASHINGTON", "KENNEDY", "WELLS", "VARGAS",
    "HENRY", "CHEN", "FREEMAN", "WEBB", "TUCKER", "GUZMAN", "BURNS",
    "CRAWFORD", "OLSON", "SIMPSON", "PORTER", "HUNTER", "GORDON", "MENDEZ",
    "SILVA", "SHAW", "SNYDER", "MASON", "DIXON", "MUNOZ", "HUNT", "HICKS",
    "HOLMES", "PALMER", "WAGNER", "BLACK", "ROBERTSON", "BOYD", "ROSE",
    "STONE", "SALAZAR", "FOX", "WARREN", "MILLS", "MEYER", "RICE",
    "SCHMIDT", "GARZA", "DANIELS", "FERGUSON", "NICHOLS", "STEPHENS",
    "SOTO", "WEAVER", "RYAN", "GARDNER", "PAYNE", "GRANT", "DUNN",
    "KELLEY", "SPENCER", "HAWKINS", "ARNOLD", "PIERCE", "VAZQUEZ",
    "HANSEN", "PETERS", "SANTOS", "HART", "BRADLEY", "KNIGHT", "ELLIOTT",
    "CUNNINGHAM", "DUNCAN", "ARMSTRONG", "HUDSON", "CARROLL", "LANE",
    "RILEY", "ANDREWS", "ALVARADO", "RAY", "DELGADO", "BERRY", "PERKINS",
    "HOFFMAN", "JOHNSTON", "MATTHEWS", "PENA", "RICHARDS", "CONTRERAS",
    "WILLIS", "CARPENTER", "LAWRENCE", "SANDOVAL", "GUERRERO", "GEORGE",
    "CHAPMAN", "RIOS", "ESTRADA", "ORTEGA", "WATKINS", "GREENE", "NUNEZ",
    "WHEELER", "VALDEZ", "HARPER", "BURKE", "LARSON", "SANTIAGO",
    "MALDONADO", "MORRISON", "FRANKLIN", "CARLSON", "AUSTIN", "DOMINGUEZ",
    "CARR", "LAWSON", "JACOBS", "OBRIEN", "LYNCH", "SINGH", "VEGA",
    "BISHOP", "MONTGOMERY", "OLIVER", "JENSEN", "HARVEY", "WILLIAMSON",
    "GILBERT", "DEAN", "SIMS", "ESPINOZA", "HOWELL", "LI", "WONG", "REID",
    "HANSON", "LE", "MCCOY", "GARRETT", "BURTON", "FULLER", "WANG",
    "WEBER", "WELCH", "ROJAS", "LUCAS", "MARQUEZ", "FIELDS", "PARK",
    "YANG", "LITTLE", "BANKS", "PADILLA", "DAY", "WALSH", "BOWMAN",
    "SCHULTZ", "LUNA", "FOWLER", "MEJIA",
]

# Surnames frequent elsewhere (the paper's outliers carry many origins).
NON_ENGLISH_SURNAMES = [
    "BRZEZINSKI", "SZCZEPANSKI", "WOJCIECHOWSKI", "KRZYZANOWSKI",  # Polish
    "NGUYENTHI", "PHAMVAN", "TRANTHIKIM",  # Vietnamese compounds
    "PAPADOPOULOS", "GIANNOPOULOS", "HATZIDAKIS",  # Greek
    "GUDMUNDSDOTTIR", "SIGURDARDOTTIR", "JONSSONARSON",  # Icelandic
    "TESFAYE", "GEBREMARIAM", "WOLDEMARIAM",  # Ethiopian
    "OYELARANTINUBU", "CHUKWUEMEKA", "OLUWASEUN",  # Nigerian
    "SRINIVASAN", "VENKATARAMAN", "KRISHNAMURTHY",  # Tamil
    "DELLAROVERE", "QUATTROCCHI", "MASTROIANNI",  # Italian
    "ZHELEZNYAKOV", "MIKHAILOVSKY", "DOSTOYEVSKY",  # Russian
    "KOVALENKOVYCH", "BONDARENKOVA",  # Ukrainian
    "ABDURRAHMANOGLU", "KARAOSMANOGLU",  # Turkish
    "VONHOHENZOLLERN", "SCHWARZENEGGER",  # German
    "RAVANAKORNUPATHAM", "SIRIVADHANABHAKDI",  # Thai
    "RAKOTOMALALA", "RAZAFINDRAKOTO",  # Malagasy
    "KEREKESFALVI", "SZENTGYORGYI",  # Hungarian
    "VANDENBROUCKE", "VERMEULENBERG",  # Dutch/Flemish
    "FERNANDOPULLE", "WICKRAMASINGHE",  # Sri Lankan
    "TCHAIKOVSKAYA", "PRZYBYLSKI", "YAMAMOTOKAWA", "XIAOJIANGLIN",
    "OKONKWOEZE", "MBEKIMANDELA", "KJAERGAARD", "THORVALDSEN",
]


def make_last_names(
    n_inliers: int = 1000,
    n_outliers: int = 20,
    random_state=None,
) -> tuple[list[str], np.ndarray]:
    """Sampled (names, labels) with 1 = non-English outlier.

    Inliers are drawn with replacement (names repeat, as real surname
    data does); outliers are drawn without replacement to keep the 50
    distinct origins of the paper's outlier set.
    """
    rng = check_random_state(random_state)
    if n_outliers > len(NON_ENGLISH_SURNAMES):
        raise ValueError(
            f"at most {len(NON_ENGLISH_SURNAMES)} distinct outlier names available"
        )
    inliers = list(rng.choice(US_SURNAMES, size=n_inliers, replace=True))
    outliers = list(rng.choice(NON_ENGLISH_SURNAMES, size=n_outliers, replace=False))
    names = inliers + outliers
    labels = np.zeros(len(names), dtype=np.intp)
    labels[n_inliers:] = 1
    return names, labels
