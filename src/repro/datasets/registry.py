"""Dataset registry: every Table III dataset behind one loader.

``load(name, scale=..., random_state=...)`` returns a
:class:`LoadedDataset` holding the data, binary outlier labels (where
known), and — for nondimensional data — the distance function, so the
benches can iterate the full paper grid uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.axioms import make_axiom_dataset
from repro.datasets.benchmarks import (
    BENCHMARK_SPECS,
    MICROCLUSTER_DATASETS,
    make_benchmark_like,
    make_http_like,
)
from repro.datasets.imagery import make_shanghai_tiles, make_volcano_tiles
from repro.datasets.names import make_last_names
from repro.datasets.shapes import make_fingerprints, make_skeletons
from repro.datasets.synthetic import diagonal_line, uniform_cube
from repro.metric.strings import levenshtein
from repro.metric.trees import tree_edit_distance
from repro.utils.rng import check_random_state


@dataclass
class LoadedDataset:
    """One loaded dataset ready for the evaluation harness."""

    name: str
    data: object  # ndarray for vector data, list of objects otherwise
    labels: np.ndarray | None  # binary, 1 = outlier; None if unknown
    metric: Callable | None  # None = Euclidean on vectors
    has_microclusters: bool = False

    @property
    def is_vector(self) -> bool:
        return isinstance(self.data, np.ndarray)

    @property
    def n(self) -> int:
        return len(self.data)


#: Names of the vector benchmark stand-ins (Fig. 6 'Real' block).
BENCHMARK_NAMES = tuple(sorted(BENCHMARK_SPECS))
#: Nondimensional datasets (Fig. 6 'Metric' block).
METRIC_NAMES = ("last_names", "fingerprints", "skeletons")
#: Axiom datasets (Fig. 6 'Axioms' block): shape x axiom.
AXIOM_NAMES = tuple(
    f"{shape}_{axiom}"
    for axiom in ("isolation", "cardinality")
    for shape in ("gaussian", "cross", "arc")
)
#: Satellite datasets (outliers "unknown" in the paper; ours are planted).
SATELLITE_NAMES = ("shanghai", "volcanoes")
#: Scalability datasets.
SYNTH_NAMES = ("uniform", "diagonal")


def dataset_names() -> list[str]:
    """All loadable dataset names."""
    return list(BENCHMARK_NAMES) + list(METRIC_NAMES) + list(AXIOM_NAMES) + list(
        SATELLITE_NAMES
    ) + list(SYNTH_NAMES)


def load(
    name: str,
    *,
    scale: float = 1.0,
    random_state=0,
    dim: int = 2,
    n: int | None = None,
) -> LoadedDataset:
    """Load dataset ``name``.

    ``scale`` shrinks the Table III cardinality (handy for tests and
    time-boxed benches); ``dim``/``n`` configure the synthetic Uniform
    and Diagonal families.
    """
    rng = check_random_state(random_state)
    key = name.lower()

    if key in BENCHMARK_SPECS:
        if key == "http":
            X, y = make_http_like(scale=scale, random_state=rng)
        else:
            X, y = make_benchmark_like(key, scale=scale, random_state=rng)
        return LoadedDataset(
            key, X, y, None, has_microclusters=key in MICROCLUSTER_DATASETS
        )

    if key == "last_names":
        names, y = make_last_names(
            n_inliers=max(50, int(1000 * scale)),
            n_outliers=max(5, int(20 * scale)),
            random_state=rng,
        )
        return LoadedDataset(key, names, y, levenshtein)

    if key == "fingerprints":
        codes, y = make_fingerprints(
            n_full=max(30, int(398 * scale)),
            n_partial=max(3, int(10 * scale)),
            random_state=rng,
        )
        return LoadedDataset(key, codes, y, levenshtein)

    if key == "skeletons":
        trees, y = make_skeletons(
            n_humans=max(20, int(200 * scale)), n_animals=3, random_state=rng
        )
        return LoadedDataset(key, trees, y, tree_edit_distance)

    if key in AXIOM_NAMES:
        shape, axiom = key.rsplit("_", 1)
        ds = make_axiom_dataset(
            shape, axiom, n_inliers=max(500, int(20_000 * scale)), random_state=rng
        )
        return LoadedDataset(
            key, ds.X, (ds.labels > 0).astype(np.intp), None, has_microclusters=True
        )

    if key == "shanghai":
        tiles = make_shanghai_tiles(random_state=rng)
        return LoadedDataset(
            key, tiles.rgb, (tiles.labels > 0).astype(np.intp), None, has_microclusters=True
        )
    if key == "volcanoes":
        tiles = make_volcano_tiles(random_state=rng)
        return LoadedDataset(
            key, tiles.rgb, (tiles.labels > 0).astype(np.intp), None, has_microclusters=True
        )

    if key == "uniform":
        size = n if n is not None else max(100, int(1_000_000 * scale))
        return LoadedDataset(key, uniform_cube(size, dim, rng), None, None)
    if key == "diagonal":
        size = n if n is not None else max(100, int(1_000_000 * scale))
        return LoadedDataset(key, diagonal_line(size, dim, random_state=rng), None, None)

    raise KeyError(f"unknown dataset {name!r}; choose from {dataset_names()}")
