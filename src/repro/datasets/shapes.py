"""Skeletons and Fingerprints stand-ins (Fig. 1(iii) and Table III).

- **Skeletons**: the paper compares 200 human skeleton graphs against 3
  wild-animal ones under a graph edit distance.  Skeleton graphs are
  trees, so we generate labeled trees: bipeds (head-torso-two-arms-two-
  legs topology with natural variation in segment lengths) as inliers
  and quadrupeds (four legs off a horizontal spine plus a tail) as
  outliers, compared with the Zhang-Shasha tree edit distance.

- **Fingerprints**: ridges from 398 full and 10 partial fingerprints.
  We encode each print as a ridge-direction code string from one of a
  few pattern classes (loop / whorl / arch); *partial* prints are
  truncated codes — the outliers — compared with the edit distance.
"""

from __future__ import annotations

import numpy as np

from repro.metric.trees import LabeledTree
from repro.utils.rng import check_random_state


def _chain(label: str, length: int) -> LabeledTree:
    """A path of ``length`` nodes labeled ``label`` (a limb of segments)."""
    node = LabeledTree(label)
    head = node
    for _ in range(length - 1):
        node = node.add(LabeledTree(label))
    return head


def make_human_skeleton(rng: np.random.Generator) -> LabeledTree:
    """A biped: torso chain with head, two arms, and two legs."""
    torso_len = int(rng.integers(3, 6))
    root = LabeledTree("torso")
    node = root
    for _ in range(torso_len - 1):
        node = node.add(LabeledTree("torso"))
    # Head (with occasional neck segment) at the top of the torso.
    head = root.add(LabeledTree("neck")) if rng.random() < 0.5 else root
    head.add(_chain("head", 1))
    for _ in range(2):
        root.add(_chain("arm", int(rng.integers(2, 5))))
    for _ in range(2):
        node.add(_chain("leg", int(rng.integers(3, 6))))
    return root


def make_quadruped_skeleton(rng: np.random.Generator) -> LabeledTree:
    """A wild animal: horizontal spine, four legs, tail, snout."""
    spine_len = int(rng.integers(5, 9))
    root = LabeledTree("spine")
    node = root
    legs_at = {1, spine_len - 2}
    spine_nodes = [root]
    for i in range(1, spine_len):
        node = node.add(LabeledTree("spine"))
        spine_nodes.append(node)
    for i in legs_at:
        for _ in range(2):
            spine_nodes[i].add(_chain("leg", int(rng.integers(2, 4))))
    spine_nodes[0].add(_chain("snout", int(rng.integers(1, 3))))
    spine_nodes[-1].add(_chain("tail", int(rng.integers(3, 7))))
    return root


def make_skeletons(
    n_humans: int = 200, n_animals: int = 3, random_state=None
) -> tuple[list[LabeledTree], np.ndarray]:
    """(trees, labels) with 1 = wild-animal skeleton (Table III: 203 graphs)."""
    rng = check_random_state(random_state)
    trees = [make_human_skeleton(rng) for _ in range(n_humans)]
    trees += [make_quadruped_skeleton(rng) for _ in range(n_animals)]
    labels = np.zeros(len(trees), dtype=np.intp)
    labels[n_humans:] = 1
    return trees, labels


# -- fingerprints -----------------------------------------------------------

_PATTERNS = {
    # Ridge-flow grammars per fingerprint class: repeated motifs give
    # class-consistent long codes.
    "loop": "LRRULLDRRU",
    "whorl": "CWCCWWCWCC",
    "arch": "AUUDDAAUUD",
}


def _ridge_code(pattern: str, length: int, rng: np.random.Generator) -> str:
    motif = _PATTERNS[pattern]
    code = (motif * (length // len(motif) + 1))[:length]
    # Natural variation: a few point mutations.
    chars = list(code)
    for _ in range(max(1, length // 12)):
        pos = int(rng.integers(length))
        chars[pos] = str(rng.choice(list("LRUDCWA")))
    return "".join(chars)


def make_fingerprints(
    n_full: int = 398, n_partial: int = 10, random_state=None
) -> tuple[list[str], np.ndarray]:
    """(ridge codes, labels) with 1 = partial print (Table III: 408 prints).

    Full prints are ~60-character class-consistent ridge codes; partial
    prints are 12-20 character fragments — far (in edit distance) from
    every full print and moderately close to each other.
    """
    rng = check_random_state(random_state)
    classes = list(_PATTERNS)
    codes = [
        _ridge_code(classes[int(rng.integers(len(classes)))], int(rng.integers(55, 70)), rng)
        for _ in range(n_full)
    ]
    for _ in range(n_partial):
        codes.append(_ridge_code(classes[int(rng.integers(len(classes)))],
                                 int(rng.integers(12, 21)), rng))
    labels = np.zeros(len(codes), dtype=np.intp)
    labels[n_full:] = 1
    return codes, labels
