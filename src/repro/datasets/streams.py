"""Stream workload generators for the streaming extension.

Batched feeds with controlled temporal structure:

- :func:`regime_shift_stream` — the inlier distribution jumps to a new
  location partway through (tests window eviction / model staleness);
- :func:`burst_stream` — a steady inlier feed with a coordinated
  microcluster burst injected at a known batch (the fraud-campaign /
  DoS shape of the paper's Sec. I motivation);
- :func:`trickle_stream` — one-off outliers sprinkled at a fixed rate.

Each generator yields ``(batch, labels)`` pairs so tests can check the
alerts against ground truth batch by batch.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.rng import check_random_state


def _check(n_batches: int, batch_size: int) -> None:
    if n_batches < 1:
        raise ValueError(f"n_batches must be >= 1, got {n_batches}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")


def regime_shift_stream(
    n_batches: int = 10,
    batch_size: int = 100,
    *,
    shift_at: float = 0.5,
    offset: float = 30.0,
    dim: int = 2,
    random_state=0,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Gaussian inliers whose mean jumps by ``offset`` after a fraction
    ``shift_at`` of the batches.  All labels are False (nothing is an
    outlier *within* its regime) — what shifts is the model's notion of
    normal, which is the sliding-window test case.
    """
    _check(n_batches, batch_size)
    if not 0.0 < shift_at < 1.0:
        raise ValueError(f"shift_at must be in (0, 1), got {shift_at}")
    rng = check_random_state(random_state)
    switch = int(round(n_batches * shift_at))
    for b in range(n_batches):
        center = 0.0 if b < switch else offset
        batch = rng.normal(center, 1.0, (batch_size, dim))
        yield batch, np.zeros(batch_size, dtype=bool)


def burst_stream(
    n_batches: int = 10,
    batch_size: int = 100,
    *,
    burst_batch: int = 7,
    burst_size: int = 12,
    burst_offset: float = 15.0,
    burst_spread: float = 0.05,
    dim: int = 2,
    random_state=0,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Steady Gaussian inliers with a tight coordinated burst injected
    into batch ``burst_batch`` — the microcluster arrival scenario.
    """
    _check(n_batches, batch_size)
    if not 0 <= burst_batch < n_batches:
        raise ValueError(f"burst_batch must be in [0, {n_batches}), got {burst_batch}")
    if burst_size < 1:
        raise ValueError(f"burst_size must be >= 1, got {burst_size}")
    rng = check_random_state(random_state)
    for b in range(n_batches):
        batch = rng.normal(0.0, 1.0, (batch_size, dim))
        labels = np.zeros(batch_size, dtype=bool)
        if b == burst_batch:
            center = np.full(dim, burst_offset)
            burst = rng.normal(center, burst_spread, (burst_size, dim))
            batch = np.vstack([batch, burst])
            labels = np.concatenate([labels, np.ones(burst_size, dtype=bool)])
        yield batch, labels


def trickle_stream(
    n_batches: int = 10,
    batch_size: int = 100,
    *,
    outlier_rate: float = 0.01,
    outlier_offset: float = 20.0,
    dim: int = 2,
    random_state=0,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Steady inliers with independent one-off outliers at
    ``outlier_rate`` per element, each placed at a random direction
    ``outlier_offset`` away from the inlier mass.
    """
    _check(n_batches, batch_size)
    if not 0.0 <= outlier_rate <= 1.0:
        raise ValueError(f"outlier_rate must be in [0, 1], got {outlier_rate}")
    rng = check_random_state(random_state)
    for _ in range(n_batches):
        batch = rng.normal(0.0, 1.0, (batch_size, dim))
        labels = rng.random(batch_size) < outlier_rate
        for i in np.nonzero(labels)[0]:
            direction = rng.normal(size=dim)
            direction /= np.linalg.norm(direction)
            batch[i] = direction * outlier_offset + rng.normal(0, 0.1, dim)
        yield batch, labels
