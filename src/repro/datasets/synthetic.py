"""Synthetic vector datasets: Uniform, Diagonal, blobs, planted outliers.

Uniform and Diagonal are the paper's scalability datasets (Table III):
up to 1M points, 2-50 dimensions, fractal dimension equal to the
embedding dimension (Uniform) or 1.0 (Diagonal).  The helpers here also
plant singleton outliers and microclusters with controlled bridge
lengths, which the axiom and accuracy generators build on.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import check_random_state


def uniform_cube(n: int, dim: int, random_state=None) -> np.ndarray:
    """``n`` points uniform in the unit cube (fractal dimension = dim)."""
    rng = check_random_state(random_state)
    return rng.uniform(0.0, 1.0, size=(n, dim))


def diagonal_line(n: int, dim: int, jitter: float = 0.0, random_state=None) -> np.ndarray:
    """``n`` points on the main diagonal of the unit cube (fractal dim 1).

    ``jitter`` adds isotropic noise of that scale (0 keeps the exact
    line, as in the paper's Diagonal dataset).
    """
    rng = check_random_state(random_state)
    t = rng.uniform(0.0, 1.0, size=n)
    X = np.repeat(t[:, None], dim, axis=1)
    if jitter > 0:
        X = X + rng.normal(0.0, jitter, size=X.shape)
    return X


def gaussian_blobs(
    n: int,
    dim: int,
    n_blobs: int = 3,
    spread: float = 0.05,
    random_state=None,
) -> np.ndarray:
    """A mixture of ``n_blobs`` Gaussians with centers in the unit cube."""
    rng = check_random_state(random_state)
    centers = rng.uniform(0.2, 0.8, size=(n_blobs, dim))
    assignment = rng.integers(n_blobs, size=n)
    return centers[assignment] + rng.normal(0.0, spread, size=(n, dim))


def plant_microcluster(
    inliers: np.ndarray,
    cardinality: int,
    bridge_length: float,
    *,
    tightness: float = 0.02,
    direction: np.ndarray | None = None,
    random_state=None,
) -> np.ndarray:
    """A clump of ``cardinality`` points at ``bridge_length`` from the inliers.

    The clump center is placed so its *nearest inlier* is exactly (up to
    the clump's own tiny radius) ``bridge_length`` away: we pick the
    inlier on the hull in a random outward direction and offset from it.
    ``tightness`` is the clump's standard deviation, kept well below the
    bridge so the planted structure is unambiguous.
    """
    rng = check_random_state(random_state)
    dim = inliers.shape[1]
    if direction is None:
        direction = rng.normal(size=dim)
    direction = np.asarray(direction, dtype=np.float64)
    direction = direction / np.linalg.norm(direction)
    # Hull point: the inlier farthest along the direction.
    anchor = inliers[np.argmax(inliers @ direction)]
    center = anchor + direction * bridge_length
    clump = center + rng.normal(0.0, tightness, size=(cardinality, dim))
    return clump


def plant_singletons(
    inliers: np.ndarray,
    count: int,
    distance: float,
    random_state=None,
) -> np.ndarray:
    """``count`` isolated points, each ``distance`` beyond the inlier hull."""
    rng = check_random_state(random_state)
    out = np.empty((count, inliers.shape[1]))
    for i in range(count):
        out[i] = plant_microcluster(
            inliers, 1, distance, tightness=0.0, random_state=rng
        )[0]
    return out


def labeled_outlier_dataset(
    inliers: np.ndarray, *outlier_groups: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Stack inliers + groups; labels: 0 = inlier, g = 1-based group id."""
    parts = [inliers, *outlier_groups]
    X = np.vstack(parts)
    labels = np.zeros(X.shape[0], dtype=np.intp)
    offset = inliers.shape[0]
    for g, group in enumerate(outlier_groups, start=1):
        labels[offset : offset + group.shape[0]] = g
        offset += group.shape[0]
    return X, labels
