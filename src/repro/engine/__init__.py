"""Batch query engine: plans and runs neighborhood workloads.

The engine sits between the index layer (:mod:`repro.index`) and the
McCatch core (:mod:`repro.core`).  Indexes answer point queries;
McCatch asks *workload*-shaped questions — "count every point's
neighbors at every radius of the ladder", "find each outlier's first
radius with an inlier", "materialize the outlier pairs".  The
:class:`BatchQueryEngine` owns those workloads: it batches them into
single-descent multi-radius queries (or chunked distance blocks on the
brute-force path), applies the paper's Sec. IV-G scheduling principles,
and keeps a ``mode="per_point"`` reference executor that reproduces the
historical one-query-at-a-time plan bit for bit — the differential
tests in ``tests/test_engine.py`` hold the two to exact equality.

``mode="parallel"`` layers :mod:`repro.engine.parallel` on top: the
multi-radius walks shard across a persistent worker pool — threads
over the shared flat arrays for vector metrics, mmap-attached
processes for object metrics — with counts still bit-identical.  The
work can be split along either axis: the query set
(``shard_by="query"``) or disjoint subtree node ranges
(``shard_by="tree"``).
"""

from repro.engine.executor import (
    ENGINE_MODES,
    UNKNOWN_COUNT,
    BatchQueryEngine,
    check_engine_mode,
)
from repro.engine.parallel import (
    SHARD_MODES,
    ShardedWalkExecutor,
    default_workers,
    supports_sharding,
)
from repro.engine.neighbors import (
    count_within_to,
    knn_distances,
    knn_to,
    nearest_distances_to,
)

__all__ = [
    "BatchQueryEngine",
    "ENGINE_MODES",
    "SHARD_MODES",
    "ShardedWalkExecutor",
    "UNKNOWN_COUNT",
    "check_engine_mode",
    "count_within_to",
    "default_workers",
    "knn_distances",
    "knn_to",
    "nearest_distances_to",
    "supports_sharding",
]
