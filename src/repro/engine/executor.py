"""The batch query executor: plans and runs neighborhood workloads.

McCatch's cost is dominated by the SELFJOINC of Alg. 2 — every point
range-counted at every radius of the ladder.  Executed naively that is
``n × a`` independent tree descents.  :class:`BatchQueryEngine` turns
the same workload into *one* descent per point that answers all radii
at once (``MetricIndex.count_within_many`` — on the metric trees a
single node-major walk over their
:class:`~repro.index.base.FlatTree` arrays, with every leaf bucket a
slice of the shared element permutation), with chunked
pairwise-distance blocks on the brute-force/vector path, and owns the
paper's Sec. IV-G scheduling principles (sparse-focused,
small-radii-only) that used to live inside
:func:`repro.index.joins.self_join_counts`.

Two execution modes, selected at construction:

- ``"batched"`` (default) — multi-radius single-walk queries.  The
  sparse-focused principle runs at *radius-block* granularity: the
  ladder is processed a few rungs at a time, each block as one
  node-major walk over the still-active points, and a point whose
  count exceeded ``c`` inside a block is dropped before the next —
  so the expensive top-of-the-ladder rungs are only ever joined for
  still-sparse points, preserving the principle's distance savings.
  Entries the per-point schedule would never have computed (the tail
  of the block where a point first exceeded ``c``) are blanked, so
  outputs are bit-for-bit identical to ``"per_point"``.
- ``"per_point"`` — the reference executor: one ``count_within`` pass
  per radius with the literal active-set recursion.  Kept for
  differential testing and for the ablation benches that measure what
  batching buys.
- ``"parallel"`` — the batched plan with the multi-radius walks
  sharded across a persistent worker pool
  (:class:`repro.engine.parallel.ShardedWalkExecutor`): the query-id
  set splits into contiguous shards, every worker walks its shards
  over the *same* flat arrays (threads share them in place; process
  workers attach to an mmap artifact), and the per-shard count
  matrices stack back in shard order.  Counts are bit-identical to
  ``"batched"`` for any worker count.  Requires a flat-backed index;
  anything else (scipy's cKDTree, brute force) falls back to the
  serial batched plan.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import (
    UNKNOWN_COUNT,
    MetricIndex,
    check_radii_ascending,
    check_walk_mode,
    count_walk,
)
from repro.obs import hooks as _obs_hooks

#: Execution modes understood by :class:`BatchQueryEngine`.
ENGINE_MODES = ("batched", "per_point", "parallel")


def check_engine_mode(mode: str) -> str:
    """Validate an engine mode name, returning it unchanged."""
    if mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode {mode!r}; choose from {ENGINE_MODES}")
    return mode


class BatchQueryEngine:
    """Batch executor for neighborhood workloads over a :class:`MetricIndex`.

    Parameters
    ----------
    index:
        Any index from :mod:`repro.index`; the engine only relies on
        the :class:`MetricIndex` protocol.
    mode:
        ``"batched"`` (default), ``"per_point"``, or ``"parallel"`` —
        see module docstring.  All modes produce identical results;
        only the execution plan differs.
    radius_block_size:
        How many ladder rungs each batched walk answers before the
        sparse-focused drop is applied (batched/parallel modes only).
        Larger blocks share more per-walk work; smaller blocks drop
        dense points sooner.  The default (4) keeps both effects.
    workers, shards, backend, shard_by:
        Worker-pool size, shard count, pool backend, and sharding axis
        (``"query"`` or ``"tree"``) for ``mode="parallel"`` (defaults:
        the usable core count, a few shards per worker,
        thread-vs-process by metric type, and query sharding — see
        :class:`~repro.engine.parallel.ShardedWalkExecutor`).
        Ignored by the serial modes.
    walk:
        Frontier-walk override (``"level"`` / ``"stack"`` /
        ``"compiled"`` / ``"auto"``) for every count the engine issues.
        ``None`` (default) defers to the index's own ``walk``
        attribute.  Requires flat-tree storage — any other index kind
        has no selectable walk and rejects the override loudly.
    """

    def __init__(
        self,
        index: MetricIndex,
        *,
        mode: str = "batched",
        radius_block_size: int = 4,
        workers: int | None = None,
        shards: int | None = None,
        backend: str = "auto",
        shard_by: str = "query",
        walk: str | None = None,
    ):
        self.index = index
        self.mode = check_engine_mode(mode)
        if radius_block_size < 1:
            raise ValueError(f"radius_block_size must be >= 1, got {radius_block_size}")
        self.radius_block_size = int(radius_block_size)
        self.workers = workers
        self.walk = None if walk is None else check_walk_mode(walk)
        if self.walk is not None:
            from repro.engine.parallel import supports_sharding

            if not supports_sharding(index):
                raise ValueError(
                    f"walk={walk!r} needs flat-tree storage; "
                    f"{type(index).__name__} has no selectable frontier walk"
                )
        self._sharded = None
        if self.mode == "parallel":
            from repro.engine.parallel import ShardedWalkExecutor, supports_sharding

            # Parallel mode needs FlatTree storage to share across the
            # pool; for any other index the batched serial plan is the
            # best this engine can do, so fall back to it rather than
            # failing a workload that would still run correctly.
            if supports_sharding(index):
                self._sharded = ShardedWalkExecutor(
                    index, workers=workers, shards=shards, backend=backend,
                    shard_by=shard_by, walk=walk,
                )
        # Flat-backed trees (anything carrying a FlatTree, including a
        # loaded FrozenIndex) override count_within_many with one
        # node-major walk over their arrays, so the batched schedule
        # pays off.  An index that only inherits the generic
        # count_within_many (one count_within pass per radius) gains
        # nothing from it — and would lose the fine-grained
        # sparse-focused shrinkage — so scheduling decisions fall back
        # to the per-point plan for it.  scipy's CKDTreeIndex (the
        # Euclidean "auto" default) is the prominent case.  The check
        # stays attribute-free so the M-tree's lazy freeze is not
        # triggered at engine construction.
        self._walks_batched = (
            type(index).count_within_many is not MetricIndex.count_within_many
        )

    def __repr__(self) -> str:
        return f"BatchQueryEngine({type(self.index).__name__}, mode={self.mode!r})"

    # -- primitive: multi-radius counts -----------------------------------

    def multi_radius_counts(
        self,
        query_ids: Sequence[int] | np.ndarray,
        radii: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """Counts for every query at every radius: a ``(q, a)`` matrix.

        No scheduling principles applied — every entry is computed.
        Batched mode issues one multi-radius descent per query;
        parallel mode shards those descents across the worker pool;
        per-point mode stacks one ``count_within`` pass per radius.
        """
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        sink = _obs_hooks.ENGINE
        if sink is not None:
            sink.bump(
                count_calls=1,
                count_queries=query_ids.size,
                count_entries=query_ids.size * radii.size,
            )
        if self._sharded is not None:
            return np.asarray(
                self._sharded.count_within_many(query_ids, radii), dtype=np.int64
            )
        if self.mode != "per_point":
            if self.walk is not None:
                return np.asarray(
                    count_walk(
                        self.index.space, query_ids, radii, self.index.flat,
                        walk=self.walk,
                    ),
                    dtype=np.int64,
                )
            return np.asarray(
                self.index.count_within_many(query_ids, radii), dtype=np.int64
            )
        out = np.empty((query_ids.size, radii.size), dtype=np.int64)
        for e in range(radii.size):
            out[:, e] = self._count_single(query_ids, float(radii[e]))
        return out

    def _count_single(self, query_ids, radius: float) -> np.ndarray:
        """One-radius counts, honoring the engine's walk override."""
        if self.walk is None:
            return self.index.count_within(query_ids, float(radius))
        counts = count_walk(
            self.index.space,
            np.asarray(query_ids, dtype=np.intp),
            np.array([float(radius)]),
            self.index.flat,
            walk=self.walk,
        )
        return counts[:, 0].astype(np.intp)

    # -- SELFJOINC (Alg. 2) ------------------------------------------------

    def self_join_counts(
        self,
        radii: Sequence[float] | np.ndarray,
        *,
        max_cardinality: int | None = None,
        sparse_focused: bool = True,
        small_radii_only: bool = True,
    ) -> np.ndarray:
        """Neighbor counts (+ self) for every indexed point at every radius.

        Parameters and result layout match the historical
        :func:`repro.index.joins.self_join_counts` exactly, including
        where ``UNKNOWN_COUNT`` (-1) appears: with ``sparse_focused``,
        a point whose count at radius ``r_{e-1}`` already exceeds
        ``max_cardinality`` is unknown at every later radius (its
        further counts could only describe clusters too big to be
        microclusters), and with ``small_radii_only`` the top radius is
        never joined — still-tracked points get ``n`` there, the rest
        stay unknown.
        """
        radii = np.asarray(radii, dtype=np.float64)
        if radii.size < 2:
            raise ValueError("need at least two radii")
        if np.any(np.diff(radii) <= 0):
            raise ValueError("radii must be strictly increasing")
        if self.mode == "per_point" or not self._walks_batched:
            return self._self_join_counts_per_point(
                radii,
                max_cardinality=max_cardinality,
                sparse_focused=sparse_focused,
                small_radii_only=small_radii_only,
            )
        index = self.index
        n = len(index)
        a = radii.size
        counts = np.full((n, a), UNKNOWN_COUNT, dtype=np.int64)
        joined = a - 1 if small_radii_only else a  # columns actually joined
        if not (sparse_focused and max_cardinality is not None):
            counts[:, :joined] = self.multi_radius_counts(index.ids, radii[:joined])
            if small_radii_only:
                counts[:, a - 1] = n
            return counts
        # Sparse-focused, block-batched: each block of rungs is one
        # node-major walk over the still-active points; points whose
        # count exceeded c inside a block are dropped before the next,
        # and the block tail past a point's first exceed is blanked so
        # the output matches the per-point schedule exactly.
        active = np.arange(n)  # positions still being tracked
        for start in range(0, joined, self.radius_block_size):
            if active.size == 0:
                break
            stop = min(start + self.radius_block_size, joined)
            block = self.multi_radius_counts(index.ids[active], radii[start:stop])
            exceeded = block > max_cardinality
            # A rung is known iff no earlier rung of this block exceeded
            # c (earlier blocks already dropped prior exceeders).
            prior_exceed = np.cumsum(exceeded, axis=1) - exceeded
            counts[np.ix_(active, np.arange(start, stop))] = np.where(
                prior_exceed == 0, block, UNKNOWN_COUNT
            )
            active = active[~exceeded.any(axis=1)]
        if small_radii_only:
            counts[active, a - 1] = n
        return counts

    def _self_join_counts_per_point(
        self,
        radii: np.ndarray,
        *,
        max_cardinality: int | None,
        sparse_focused: bool,
        small_radii_only: bool,
    ) -> np.ndarray:
        """Reference executor: the literal per-radius active-set recursion."""
        index = self.index
        n = len(index)
        a = radii.size
        counts = np.full((n, a), UNKNOWN_COUNT, dtype=np.int64)
        active = np.arange(n)  # positions (not ids) still being tracked
        for e in range(a):
            if small_radii_only and e == a - 1:
                # Small-radii-only principle: at r_a = l everything is a
                # neighbor of everything, no join needed.
                counts[active, e] = n
                break
            if active.size == 0:
                break
            counts[active, e] = self._count_single(index.ids[active], float(radii[e]))
            if sparse_focused and max_cardinality is not None:
                active = active[counts[active, e] <= max_cardinality]
        return counts

    # -- JOINC (Alg. 4) ----------------------------------------------------

    def join_counts(
        self, query_ids: Sequence[int] | np.ndarray, radius: float
    ) -> np.ndarray:
        """Per-query counts of indexed elements within one radius."""
        return self._count_single(np.asarray(query_ids, dtype=np.intp), float(radius))

    def first_nonempty_radius(
        self,
        query_ids: Sequence[int] | np.ndarray,
        radii: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """Per query, the smallest radius position with any indexed neighbor.

        Returns an ``(q,)`` int array: the first ``e`` with a count
        ``> 0``, or ``-1`` when no radius of the ladder reaches an
        indexed element.  This is the ladder scan of Alg. 4 lines 3-12
        (each outlier probed rung by rung until an inlier appears),
        executed as one batched multi-radius query in batched mode and
        as the literal shrinking-set rung loop in per-point mode.
        """
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        first = np.full(query_ids.size, -1, dtype=np.intp)
        if query_ids.size == 0:
            return first
        if self.mode != "per_point" and self._walks_batched:
            found = self.multi_radius_counts(query_ids, radii) > 0
            has_any = found.any(axis=1)
            first[has_any] = np.argmax(found[has_any], axis=1)
            return first
        remaining = np.arange(query_ids.size)
        for e in range(radii.size):
            if remaining.size == 0:
                break
            f = self.join_counts(query_ids[remaining], float(radii[e]))
            hit = f > 0
            first[remaining[hit]] = e
            remaining = remaining[~hit]
        return first

    # -- SELFJOIN (Alg. 3) -------------------------------------------------

    def pairs(self, radius: float) -> list[tuple[int, int]]:
        """Materialized self-join: unordered id pairs within ``radius``.

        Only used on small sets (the outliers of Alg. 3 line 12);
        delegates to the index, whose default is adequate there.
        """
        return self.index.pairs_within(float(radius))

    # -- single-radius sweeps (baselines) ----------------------------------

    def count_all_within(self, radius: float) -> np.ndarray:
        """Neighbor count (+ self) of every indexed point at one radius.

        The whole-dataset range-count sweep baselines like DB-Out need;
        one chunked/compiled pass, no per-point Python loop.
        """
        return self._count_single(self.index.ids, float(radius))
