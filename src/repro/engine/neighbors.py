"""Batched nearest-neighbor workloads on top of the engine substrate.

Two workloads the query-heavy baselines and the streaming scorer need
beyond range counts:

- :func:`knn_distances` — each indexed point's k nearest neighbors
  (self excluded), served by scipy's compiled kd-tree when the index
  is the Euclidean fast path and by chunked pairwise-distance blocks
  otherwise;
- :func:`nearest_distances_to` — nearest-indexed-element distance for
  out-of-dataset query objects (the streaming provisional scorer),
  again as blocked bulk distances instead of a per-object Python loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex
from repro.metric.base import MetricSpace

_CHUNK = 512  # bounds the temporary distance-matrix footprint


def knn_distances(index: MetricIndex, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Distances and ids of each indexed point's ``k`` nearest neighbors.

    Self is excluded; both returned arrays have shape ``(n, k)`` and
    rows follow ``index.ids`` order.  The second array holds element
    *ids* of the indexed space (for a full-dataset index these are the
    dataset row numbers, matching the historical baseline helper).

    An index exposing the optional ``knn_all(k)`` hook (e.g. the
    compiled :class:`~repro.index.ckdtree.CKDTreeIndex` fast path)
    answers directly; every other index falls back to chunked
    brute-force blocks with deterministic (stable-sort) tie breaking.
    """
    n = len(index)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k >= n:
        raise ValueError(f"k={k} must be < n={n}")
    knn_all = getattr(index, "knn_all", None)
    if knn_all is not None:
        return knn_all(k)
    space = index.space
    ids = index.ids
    dists = np.empty((n, k), dtype=np.float64)
    nbr_ids = np.empty((n, k), dtype=np.intp)
    for start in range(0, n, _CHUNK):
        block = ids[start : start + _CHUNK]
        dm = space.distances_among(block, ids)
        rows = np.arange(block.size)
        dm[rows, start + rows] = np.inf  # exclude self by position
        order = np.argsort(dm, axis=1, kind="stable")[:, :k]
        dists[start : start + block.size] = np.take_along_axis(dm, order, axis=1)
        nbr_ids[start : start + block.size] = ids[order]
    return dists, nbr_ids


def nearest_distances_to(
    space: MetricSpace, objs: Sequence, indices: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Distance from each (out-of-dataset) object to its nearest element.

    ``indices`` selects the candidate elements of ``space``; the result
    has one entry per object.  Vector spaces answer each chunk with one
    bulk distance block; object spaces pay the honest per-pair metric
    cost but still avoid per-object dispatch overhead.
    """
    idx = np.asarray(indices, dtype=np.intp)
    if idx.size == 0:
        raise ValueError("need at least one candidate element")
    n_objs = len(objs)
    out = np.empty(n_objs, dtype=np.float64)
    for start in range(0, n_objs, _CHUNK):
        block = objs[start : start + _CHUNK]
        out[start : start + len(block)] = space.distances_to_many(block, idx).min(axis=1)
    return out


def knn_to(
    space: MetricSpace, objs: Sequence, indices: Sequence[int] | np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """k nearest indexed elements for each (out-of-dataset) object.

    The held-out counterpart of :func:`knn_distances`: nothing is
    excluded (a held-out object is not among the candidates), ties
    break deterministically by stable sort on candidate order, and both
    returned ``(q, k)`` arrays follow ``objs`` order — distances and
    element ids.  Serves the inductive baseline models of
    :mod:`repro.api` (kNN-Out / LOF scoring batches against a fit).
    """
    idx = np.asarray(indices, dtype=np.intp)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > idx.size:
        raise ValueError(f"k={k} must be <= {idx.size} candidate elements")
    n_objs = len(objs)
    dists = np.empty((n_objs, k), dtype=np.float64)
    nbr_ids = np.empty((n_objs, k), dtype=np.intp)
    for start in range(0, n_objs, _CHUNK):
        block = objs[start : start + _CHUNK]
        dm = space.distances_to_many(block, idx)
        order = np.argsort(dm, axis=1, kind="stable")[:, :k]
        dists[start : start + len(block)] = np.take_along_axis(dm, order, axis=1)
        nbr_ids[start : start + len(block)] = idx[order]
    return dists, nbr_ids


def count_within_to(
    space: MetricSpace,
    objs: Sequence,
    indices: Sequence[int] | np.ndarray,
    radius: float,
) -> np.ndarray:
    """Indexed elements within ``radius`` of each (out-of-dataset) object.

    Distances are inclusive (``d <= radius``), matching the index
    layer's counting convention; chunked bulk blocks keep the
    temporary distance matrix bounded.  Serves the inductive DB-Out
    model of :mod:`repro.api`.
    """
    idx = np.asarray(indices, dtype=np.intp)
    if idx.size == 0:
        raise ValueError("need at least one candidate element")
    n_objs = len(objs)
    out = np.empty(n_objs, dtype=np.int64)
    for start in range(0, n_objs, _CHUNK):
        block = objs[start : start + _CHUNK]
        dm = space.distances_to_many(block, idx)
        out[start : start + len(block)] = np.count_nonzero(dm <= radius, axis=1)
    return out
