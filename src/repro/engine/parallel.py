"""Parallel sharded frontier walks: multi-worker range counting.

The flat refactor (PR 2) reduced every metric tree to a
:class:`~repro.index.base.FlatTree` — primitive read-only arrays — and
the serving layer (PR 3) made those arrays memory-mappable straight off
an uncompressed ``.npz`` (:mod:`repro.io.mmap`).  Together they enable
the classic shared-nothing fan-out of tree-backed similarity systems:
*shard the work, share the index*.  :class:`ShardedWalkExecutor`
supports two sharding axes:

- ``shard_by="query"`` (default) splits the query-id set into
  contiguous shards and runs one
  :func:`~repro.index.base.level_count_walk` per shard, then stacks
  the per-shard count matrices in shard order.
- ``shard_by="tree"`` opens the top of the tree once
  (:func:`~repro.index.base.open_tree_frontier`), splits the resulting
  :class:`~repro.index.base.WalkFrontier` into disjoint contiguous
  node ranges (:func:`~repro.index.base.split_frontier`) and resumes
  one walk per range — every worker touches a disjoint region of the
  tree arrays, and the per-range count matrices plus the partial
  accumulated while opening *sum* to the serial result (scatters are
  integer adds; the final cumsum is linear).

Two pool backends, chosen by the metric:

- ``"thread"`` (vector spaces) — workers share the live index; the
  walk's bulk einsum/BLAS blocks release the GIL, so threads scale
  without copying anything.
- ``"process"`` (object metrics: edit distance, TED — Python loops
  that hold the GIL) — workers *attach* to an on-disk index artifact
  via the zip-offset mmap path (:func:`repro.io.mmap.open_npz_mmap`)
  instead of receiving pickled arrays: every worker process maps the
  same physical pages, so an index is stored once no matter how many
  workers count over it.  Only the shard ids and the radius ladder
  cross the process boundary per task (plus, for object spaces, the
  element payload the artifact cannot embed).

Sharding is exact, not approximate: each query row of the count matrix
depends only on that query (the einsum bulk kernel is bitwise
shape-independent — see :meth:`repro.metric.vector.VectorMetric.bulk`),
so the stacked shard results are bit-identical to one serial walk for
*any* shard count, worker count, and backend.  The differential tests
in ``tests/test_parallel_walk.py`` pin exactly that.

Pools are process-global and persistent: one pool per
``(backend, workers)`` configuration, reused across executors, engines,
and fits, shut down at interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.index.base import (
    DEFAULT_WALK,
    FlatTree,
    WalkFrontier,
    check_radii_ascending,
    check_walk_mode,
    count_walk,
    open_tree_frontier,
    split_frontier,
)
from repro.metric.base import MetricSpace

#: Pool backends understood by :class:`ShardedWalkExecutor`.
BACKENDS = ("auto", "thread", "process")

#: Sharding axes understood by :class:`ShardedWalkExecutor`: split the
#: query set, or split the tree into disjoint subtree node ranges.
SHARD_MODES = ("query", "tree")

#: Default shards-per-worker oversubscription: frontier walks cost
#: different amounts per query (dense regions prune less), so a few
#: shards per worker lets fast workers absorb the stragglers' tail.
OVERSHARD = 4


def default_workers() -> int:
    """Worker count used when none is requested: the usable core count."""
    if hasattr(os, "sched_getaffinity"):
        return max(1, len(os.sched_getaffinity(0)))
    return max(1, os.cpu_count() or 1)


def supports_sharding(index) -> bool:
    """True when ``index`` carries :class:`FlatTree` storage.

    Attribute-free for the lazily frozen trees (M-/Slim-tree expose
    ``flat`` as a property), so asking the question does not trigger a
    freeze at engine-construction time.
    """
    if isinstance(index.__dict__.get("flat"), FlatTree):
        return True
    return isinstance(getattr(type(index), "flat", None), property)


# -- persistent pools --------------------------------------------------------

_POOLS: dict[tuple[str, int], object] = {}


def _get_pool(backend: str, workers: int):
    """The process-global pool for one ``(backend, workers)`` configuration."""
    key = (backend, workers)
    pool = _POOLS.get(key)
    if pool is None:
        if backend == "thread":
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-walk"
            )
        else:
            pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every persistent worker pool (registered atexit)."""
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)


# -- worker side -------------------------------------------------------------
#
# Module-level functions so they survive pickling under any start
# method; the attached-index cache is keyed by artifact path, so one
# long-lived worker process serves any number of executors and indexes
# without re-attaching.

#: Attached-index cache, keyed by (path, inode, mtime_ns) so a path
#: that was re-published with different content (or unlinked and
#: recreated) never serves a stale mapping.  Bounded: a long-lived
#: worker serving many executors must not accumulate one FrozenIndex
#: (plus, for object spaces, a materialized element list) per artifact
#: it ever saw.
_ATTACHED: dict[tuple[str, int, int], object] = {}
_ATTACHED_MAX = 8


def _attached_index(path: str, items, metric):
    """The worker's FrozenIndex for one artifact, mmap-attached once."""
    stat = os.stat(path)
    key = (path, stat.st_ino, stat.st_mtime_ns)
    index = _ATTACHED.get(key)
    if index is None:
        from repro.io.indexes import frozen_from_payload
        from repro.io.mmap import open_npz_mmap

        space = None if items is None else MetricSpace(items, metric)
        index = frozen_from_payload(open_npz_mmap(path), space)
        while len(_ATTACHED) >= _ATTACHED_MAX:
            _ATTACHED.pop(next(iter(_ATTACHED)))  # oldest insertion first
        _ATTACHED[key] = index
    return index


def _count_shard_attached(
    path, items, metric, query_ids, radii, walk: str = "level"
) -> np.ndarray:
    """One query shard's count matrix, walked over the mmap-attached artifact."""
    index = _attached_index(path, items, metric)
    return count_walk(index.space, query_ids, radii, index.flat, walk=walk)


def _count_frontier_attached(
    path, items, metric, query_ids, radii, frontier: tuple, walk: str = "level"
) -> np.ndarray:
    """One subtree shard's count matrix: resume a saved frontier over
    the mmap-attached artifact (``shard_by="tree"``)."""
    index = _attached_index(path, items, metric)
    return count_walk(
        index.space, query_ids, radii, index.flat,
        walk=walk, frontier=WalkFrontier(*frontier),
    )


def _is_mmap_backed(arr) -> bool:
    """True when the array's memory ultimately comes from an ``np.memmap``.

    ``np.asarray`` strips the memmap subclass but keeps the mapped
    buffer, so the honest check walks the ``base`` chain instead of
    testing the instance type.
    """
    node = arr
    while node is not None:
        if isinstance(node, np.memmap):
            return True
        node = getattr(node, "base", None)
    return False


def attachment_report(path, items=None, metric=None) -> dict:
    """How a worker sees one artifact (diagnostic / test hook).

    Submitted through the process pool, the report proves workers
    attach to the published archive rather than materializing copies:
    ``tree_mmap`` / ``data_mmap`` are True iff the walk's arrays are
    views of the mapped file, and ``pid`` identifies the worker.
    """
    index = _attached_index(path, items, metric)
    flat = index.flat
    tree_mmap = all(
        _is_mmap_backed(a)
        for a in (flat.center, flat.radius, flat.elems, flat.child_lo)
    )
    data_mmap = (
        _is_mmap_backed(index.space.data) if index.space.is_vector else None
    )
    return {
        "pid": os.getpid(),
        "tree_mmap": tree_mmap,
        "data_mmap": data_mmap,
        "n": len(index),
    }


# -- the executor ------------------------------------------------------------


class ShardedWalkExecutor:
    """Multi-worker ``count_within_many`` over one flat-backed index.

    Parameters
    ----------
    index:
        Any index carrying :class:`FlatTree` storage (the metric trees
        and :class:`~repro.index.base.FrozenIndex`); see
        :func:`supports_sharding`.
    workers:
        Worker count (default: the usable core count).  ``workers=1``
        runs the serial walk inline — no pool, no overhead, so a
        single-worker configuration never regresses the serial path.
    shards:
        Shard count per query batch (default ``OVERSHARD * workers``,
        capped at the batch size).  Any value produces bit-identical
        counts; more shards only smooth load imbalance.
    backend:
        ``"auto"`` (default) picks ``"thread"`` for vector spaces —
        the bulk kernels release the GIL — and ``"process"`` for
        object metrics, whose Python-loop distances do not.
    shard_by:
        ``"query"`` (default) splits the query set across workers;
        ``"tree"`` opens the top of the tree serially, splits the
        frontier into disjoint contiguous subtree node ranges and
        resumes one walk per range, summing the results onto the
        partial counts.  Both axes are exact for any worker and shard
        count.
    artifact:
        Optional path of an already-published index archive
        (:func:`repro.io.indexes.save_index` /
        ``ModelRegistry``-style uncompressed ``.npz``) for process
        workers to attach to.  Without one, the executor publishes its
        own artifact to a temporary directory on first use.
    artifact_dir:
        Directory for the self-published artifact (default: a fresh
        temporary directory, removed with the executor).
    walk:
        Frontier-walk implementation for every shard (default: the
        index's own ``walk`` attribute, normally ``"auto"``).  The
        ``"stack"`` differential baseline has no resumable-frontier
        form, so it maps to ``"level"`` here — the counts are
        bit-identical by construction.
    """

    def __init__(
        self,
        index,
        *,
        workers: int | None = None,
        shards: int | None = None,
        backend: str = "auto",
        shard_by: str = "query",
        artifact: str | Path | None = None,
        artifact_dir: str | Path | None = None,
        walk: str | None = None,
    ):
        if not supports_sharding(index):
            raise TypeError(
                f"{type(index).__name__} has no FlatTree storage to share "
                "across workers; sharded walks need a metric tree or a "
                "FrozenIndex"
            )
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if shard_by not in SHARD_MODES:
            raise ValueError(
                f"unknown shard_by {shard_by!r}; choose from {SHARD_MODES}"
            )
        self.shard_by = shard_by
        self.index = index
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shards is not None and int(shards) < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = None if shards is None else int(shards)
        if backend == "auto":
            backend = "thread" if index.space.is_vector else "process"
        self.backend = backend
        if walk is None:
            walk = getattr(index, "walk", DEFAULT_WALK)
        check_walk_mode(walk)
        if walk == "stack":
            # The stack walk cannot resume a WalkFrontier; level is
            # bit-identical, so sharded executors run it instead.
            walk = "level"
        self.walk = walk
        self._artifact = None if artifact is None else Path(artifact)
        self._artifact_dir = None if artifact_dir is None else Path(artifact_dir)
        self._owned_artifact: Path | None = None
        self._finalizer = None

    # -- artifact publication ------------------------------------------------

    @property
    def artifact(self) -> Path | None:
        """The archive process workers attach to (``None`` for threads).

        Lazily self-published via
        :func:`repro.io.indexes.save_index` — uncompressed, so the
        zip-offset mmap path applies — unless the constructor was
        handed an existing artifact.
        """
        if self.backend != "process":
            return None
        if self._artifact is None:
            from repro.io.indexes import save_index

            directory = self._artifact_dir
            if directory is None:
                directory = Path(tempfile.mkdtemp(prefix="repro-sharded-walk-"))
            else:
                directory.mkdir(parents=True, exist_ok=True)
            # mkstemp, not a name derived from id(self.index): ids are
            # reused after GC, and a recycled artifact path must never
            # alias an earlier executor's archive
            fd, name = tempfile.mkstemp(prefix="index-", suffix=".npz", dir=directory)
            os.close(fd)
            path = Path(name)
            save_index(self.index, path)
            self._artifact = path
            self._owned_artifact = path
            self._finalizer = weakref.finalize(
                self, _remove_artifact, str(path), self._artifact_dir is None
            )
        return self._artifact

    def close(self) -> None:
        """Remove the self-published artifact, if any (pools are shared
        process-globals and stay up; see :func:`shutdown_pools`)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
            self._artifact = None
            self._owned_artifact = None

    def __enter__(self) -> "ShardedWalkExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries -------------------------------------------------------------

    def _shard(self, query_ids: np.ndarray) -> list[np.ndarray]:
        """Contiguous query shards; stacking them in order is exact."""
        if query_ids.size == 0:
            return []
        k = self.shards if self.shards is not None else OVERSHARD * self.workers
        k = max(1, min(int(k), query_ids.size))
        return [s for s in np.array_split(query_ids, k) if s.size]

    def _space_payload(self):
        """What process workers need beyond the artifact: nothing for
        vector spaces (data and metric are embedded), the element list
        and metric callable for object spaces."""
        space = self.index.space
        if space.is_vector:
            return None, None
        return list(space.data), space.metric

    def count_within_many(
        self,
        query_ids: Sequence[int] | np.ndarray,
        radii: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """The ``(q, a)`` count matrix, sharded across the worker pool.

        Bit-identical to one serial
        :func:`~repro.index.base.level_count_walk` /
        :func:`~repro.index.base.frontier_count_walk` for every shard
        axis, shard count and worker count (see module docstring).
        """
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        if self.workers == 1:
            return count_walk(
                self.index.space, query_ids, radii, self.index.flat, walk=self.walk
            )
        if self.shard_by == "tree":
            return self._count_tree_sharded(query_ids, radii)
        shards = self._shard(query_ids)
        if len(shards) <= 1:
            return count_walk(
                self.index.space, query_ids, radii, self.index.flat, walk=self.walk
            )
        if self.backend == "thread":
            pool = _get_pool("thread", self.workers)
            space, flat = self.index.space, self.index.flat
            futures = [
                pool.submit(count_walk, space, shard, radii, flat, walk=self.walk)
                for shard in shards
            ]
        else:
            path = str(self.artifact)
            items, metric = self._space_payload()
            pool = _get_pool("process", self.workers)
            futures = [
                pool.submit(
                    _count_shard_attached,
                    path, items, metric, shard, radii, self.walk,
                )
                for shard in shards
            ]
        return np.vstack([f.result() for f in futures])

    def _count_tree_sharded(
        self, query_ids: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        """``shard_by="tree"``: open the top serially, fan out subtrees.

        The opening walk runs level steps until the frontier spans at
        least the requested shard count of distinct nodes; the frontier
        is then cut into contiguous node ranges and each range resumed
        independently.  Swallow credits and leaf scatters recorded
        while opening live in the partial matrix, each entry of the
        split frontier is handed out exactly once, and integer adds
        commute — so ``partial + Σ piece`` equals the serial walk bit
        for bit regardless of how the frontier was cut.
        """
        space, flat = self.index.space, self.index.flat
        k = self.shards if self.shards is not None else OVERSHARD * self.workers
        partial, frontier = open_tree_frontier(
            space, query_ids, radii, flat, min_nodes=max(1, int(k))
        )
        pieces = split_frontier(frontier, max(1, int(k)))
        if not pieces:
            return partial
        if len(pieces) == 1:
            return partial + count_walk(
                space, query_ids, radii, flat, walk=self.walk, frontier=pieces[0]
            )
        if self.backend == "thread":
            pool = _get_pool("thread", self.workers)
            futures = [
                pool.submit(
                    count_walk, space, query_ids, radii, flat,
                    walk=self.walk, frontier=piece,
                )
                for piece in pieces
            ]
        else:
            path = str(self.artifact)
            items, metric = self._space_payload()
            pool = _get_pool("process", self.workers)
            futures = [
                pool.submit(
                    _count_frontier_attached,
                    path, items, metric, query_ids, radii, tuple(piece), self.walk,
                )
                for piece in pieces
            ]
        for future in futures:
            partial += future.result()
        return partial

    def count_within(
        self, query_ids: Sequence[int] | np.ndarray, radius: float
    ) -> np.ndarray:
        """Single-radius counts (the :class:`MetricIndex` signature)."""
        counts = self.count_within_many(query_ids, np.array([float(radius)]))
        return counts[:, 0].astype(np.intp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedWalkExecutor({type(self.index).__name__}, "
            f"workers={self.workers}, backend={self.backend!r}, "
            f"shard_by={self.shard_by!r})"
        )


def _remove_artifact(path: str, remove_dir: bool) -> None:
    """Finalizer for self-published artifacts (module-level: no cycles)."""
    try:
        os.unlink(path)
        if remove_dir:
            os.rmdir(os.path.dirname(path))
    except OSError:  # pragma: no cover - best-effort cleanup
        pass
