"""Evaluation harness: metrics, rank aggregation, axiom tests, runtime."""

from repro.eval.axioms import (
    AxiomTestResult,
    AxiomTrial,
    aggregate_trials,
    match_planted_microcluster,
    run_axiom_suite,
    run_axiom_trial,
)
from repro.eval.bootstrap import BootstrapResult, bootstrap_metric
from repro.eval.correlation import kendall_tau, spearman_rho
from repro.eval.leaderboard import CellResult, Leaderboard, evaluate_detectors
from repro.eval.metrics import (
    ALL_METRICS,
    auroc,
    average_precision,
    max_f1,
    precision_recall_curve,
)
from repro.eval.topk import (
    precision_at_k,
    precision_at_n_outliers,
    recall_at_k,
    top_k_indices,
)
from repro.eval.ranking import format_rank_table, harmonic_mean_rank, ranking_positions
from repro.eval.runtime import (
    ScalingResult,
    SweepPoint,
    fit_loglog_slope,
    runtime_sweep,
    time_callable,
)
from repro.eval.sensitivity import (
    A_GRID,
    B_GRID,
    C_FRACTION_GRID,
    SensitivityCurve,
    sweep_parameter,
)

__all__ = [
    "evaluate_detectors",
    "Leaderboard",
    "CellResult",
    "kendall_tau",
    "spearman_rho",
    "precision_at_k",
    "recall_at_k",
    "precision_at_n_outliers",
    "top_k_indices",
    "bootstrap_metric",
    "BootstrapResult",
    "auroc",
    "average_precision",
    "max_f1",
    "precision_recall_curve",
    "ALL_METRICS",
    "ranking_positions",
    "harmonic_mean_rank",
    "format_rank_table",
    "run_axiom_suite",
    "run_axiom_trial",
    "aggregate_trials",
    "match_planted_microcluster",
    "AxiomTrial",
    "AxiomTestResult",
    "runtime_sweep",
    "fit_loglog_slope",
    "time_callable",
    "ScalingResult",
    "SweepPoint",
    "sweep_parameter",
    "SensitivityCurve",
    "A_GRID",
    "B_GRID",
    "C_FRACTION_GRID",
]
