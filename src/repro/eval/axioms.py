"""Axiom-compliance testing (Table V / Q2).

For each (axiom, inlier shape) pair the paper runs 50 seeded datasets,
extracts the scores of the planted green and red microclusters, and
runs a one-sided two-sample t-test of "green scores exceed red scores"
against the null of indifference.  A method *fails* a configuration
outright if it misses either planted microcluster in any dataset
(Gen2Out misses them on every cross/arc dataset).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.mccatch import McCatch
from repro.core.result import McCatchResult
from repro.datasets.axioms import AxiomDataset, make_axiom_dataset


@dataclass
class AxiomTrial:
    """Scores of the planted mcs in one dataset (NaN = mc missed)."""

    red_score: float
    green_score: float

    @property
    def found_both(self) -> bool:
        return np.isfinite(self.red_score) and np.isfinite(self.green_score)


@dataclass
class AxiomTestResult:
    """Aggregated Table V cell: t statistic and p-value, or failure."""

    shape: str
    axiom: str
    n_trials: int
    n_found: int
    statistic: float
    p_value: float

    @property
    def failed(self) -> bool:
        """Fail if any planted microcluster was missed (paper's criterion)."""
        return self.n_found < self.n_trials

    @property
    def obeys(self) -> bool:
        return not self.failed and self.p_value < 0.05 and self.statistic > 0

    def cell(self) -> str:
        """Table V cell text.

        Degenerate t statistics (near-identical samples, possible at
        small scales where scores quantize to the same rungs) are shown
        as ``>1e3``.
        """
        if self.failed:
            return "Fail"
        if not np.isfinite(self.statistic) or self.statistic > 1e3:
            return f">1e3 (p={max(self.p_value, 1e-300):.1e})"
        return f"{self.statistic:.1f} (p={self.p_value:.1e})"


def match_planted_microcluster(
    result: McCatchResult, planted: np.ndarray, min_overlap: float = 0.5
) -> float:
    """Score of the detected mc best covering ``planted`` (NaN if missed).

    A planted mc counts as found when one detected microcluster covers
    at least ``min_overlap`` of its members; if several planted members
    ended up in different detected mcs, the best-covering one speaks.
    """
    planted_set = set(int(i) for i in planted)
    best_score, best_cover = np.nan, 0.0
    for mc in result.microclusters:
        cover = len(planted_set.intersection(int(i) for i in mc.indices)) / len(planted_set)
        if cover > best_cover:
            best_cover = cover
            best_score = mc.score
    return best_score if best_cover >= min_overlap else np.nan


def run_axiom_trial(
    dataset: AxiomDataset, detector: McCatch | None = None
) -> AxiomTrial:
    """Run McCatch on one axiom dataset; extract the planted mc scores."""
    detector = detector or McCatch()
    result = detector.fit(dataset.X)
    return AxiomTrial(
        red_score=match_planted_microcluster(result, dataset.red_indices),
        green_score=match_planted_microcluster(result, dataset.green_indices),
    )


def aggregate_trials(shape: str, axiom: str, trials: list[AxiomTrial]) -> AxiomTestResult:
    """Table V cell from per-dataset trials (one-sided Welch t-test)."""
    found = [t for t in trials if t.found_both]
    if len(found) < 2:
        return AxiomTestResult(shape, axiom, len(trials), len(found), np.nan, np.nan)
    green = np.array([t.green_score for t in found])
    red = np.array([t.red_score for t in found])
    stat, p_two = stats.ttest_ind(green, red, equal_var=False)
    # One-sided: green > red.
    p = p_two / 2.0 if stat > 0 else 1.0 - p_two / 2.0
    return AxiomTestResult(shape, axiom, len(trials), len(found), float(stat), float(p))


def run_axiom_suite(
    *,
    shapes: tuple[str, ...] = ("gaussian", "cross", "arc"),
    axioms: tuple[str, ...] = ("isolation", "cardinality"),
    n_trials: int = 50,
    n_inliers: int = 5_000,
    detector_factory=None,
    seed0: int = 0,
) -> list[AxiomTestResult]:
    """The full Table V battery for McCatch (or a custom detector factory).

    ``detector_factory() -> McCatch`` lets callers test alternative
    hyperparameters; the default is the paper's hands-off configuration.
    """
    results = []
    for axiom in axioms:
        for shape in shapes:
            trials = []
            for trial in range(n_trials):
                ds = make_axiom_dataset(
                    shape, axiom, n_inliers=n_inliers, random_state=seed0 + trial
                )
                det = detector_factory() if detector_factory else McCatch()
                trials.append(run_axiom_trial(ds, det))
            results.append(aggregate_trials(shape, axiom, trials))
    return results
