"""Bootstrap confidence intervals for evaluation metrics.

The paper reports point estimates (AUROC, AP, Max-F1) per dataset;
small benchmark datasets (Parkinson has 50 points, Hepatitis 70) make
those estimates noisy.  A percentile bootstrap over resampled
(label, score) pairs quantifies that noise without distributional
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import check_random_state


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with its percentile bootstrap interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __repr__(self) -> str:
        pct = int(round(self.confidence * 100))
        return (
            f"BootstrapResult({self.estimate:.4f}, "
            f"{pct}% CI [{self.lower:.4f}, {self.upper:.4f}])"
        )


def bootstrap_metric(
    metric: Callable[[np.ndarray, np.ndarray], float],
    labels,
    scores,
    *,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    random_state=0,
) -> BootstrapResult:
    """Percentile bootstrap CI for ``metric(labels, scores)``.

    Resamples that lose all positive (or all negative) labels are
    redrawn, since threshold metrics are undefined on single-class
    samples; this is the standard stratified-rejection convention.

    Parameters
    ----------
    metric:
        ``f(labels, scores) -> float`` (e.g. :func:`repro.eval.auroc`).
    labels, scores:
        Ground truth booleans and detector scores.
    n_resamples:
        Bootstrap iterations.
    confidence:
        Interval mass (default 0.95).
    random_state:
        Seed; fixed by default so reported CIs are reproducible.
    """
    y = np.asarray(labels).astype(bool).ravel()
    s = np.asarray(scores, dtype=np.float64).ravel()
    if y.size != s.size:
        raise ValueError(f"length mismatch: {y.size} labels vs {s.size} scores")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    if y.all() or not y.any():
        raise ValueError("bootstrap_metric needs both classes present")

    rng = check_random_state(random_state)
    estimate = float(metric(y, s))
    stats = np.empty(n_resamples)
    n = y.size
    for b in range(n_resamples):
        while True:
            idx = rng.integers(0, n, size=n)
            if y[idx].any() and not y[idx].all():
                break
        stats[b] = metric(y[idx], s[idx])
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(stats, [alpha, 1.0 - alpha])
    return BootstrapResult(estimate, float(lower), float(upper), confidence, n_resamples)
