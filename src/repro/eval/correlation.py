"""Rank correlation from scratch: Kendall's tau-b and Spearman's rho.

Used to compare detector *rankings* rather than raw scores — two
detectors can disagree wildly in score magnitudes while inducing the
same outlier ordering, which is what AUROC-style evaluation actually
consumes.  Kendall's tau is also the objective XTreK [25] maximizes.
"""

from __future__ import annotations

import numpy as np


def _validate_pair(a, b) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(a, dtype=np.float64).ravel()
    y = np.asarray(b, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("rank correlation needs at least 2 observations")
    return x, y


def kendall_tau(a, b) -> float:
    """Kendall's tau-b (tie-corrected), computed in O(n²) pairs.

    Returns a value in [-1, 1]; 0 when either input is constant
    (no ordering information).
    """
    x, y = _validate_pair(a, b)
    n = x.size
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n - 1):
        dx = x[i + 1 :] - x[i]
        dy = y[i + 1 :] - y[i]
        product_sign = np.sign(dx) * np.sign(dy)
        concordant += int((product_sign > 0).sum())
        discordant += int((product_sign < 0).sum())
        ties_x += int(((dx == 0) & (dy != 0)).sum())
        ties_y += int(((dy == 0) & (dx != 0)).sum())
    denom = np.sqrt(
        float(concordant + discordant + ties_x) * float(concordant + discordant + ties_y)
    )
    if denom == 0:
        return 0.0
    return (concordant - discordant) / denom


def _rank_with_ties(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based), with tied values sharing their mean rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def spearman_rho(a, b) -> float:
    """Spearman's rank correlation (Pearson correlation of average ranks).

    Returns 0 when either input is constant.
    """
    x, y = _validate_pair(a, b)
    rx, ry = _rank_with_ties(x), _rank_with_ties(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx * rx).sum() * (ry * ry).sum())
    if denom == 0:
        return 0.0
    return float((rx * ry).sum() / denom)
