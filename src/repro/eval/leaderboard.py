"""Leaderboard: compare detectors across datasets in three lines.

The programmatic face of Table IV — run any point-scoring detectors
(McCatch included) over any labeled datasets, collect AUROC / AP /
Max-F1, and aggregate with the paper's harmonic-mean-rank summary:

>>> from repro.eval.leaderboard import evaluate_detectors  # doctest: +SKIP
>>> board = evaluate_detectors([McCatch(), LOF(), IForest()], ["wine", "glass"])
>>> print(board.render())  # doctest: +SKIP

Detectors that raise on a dataset (nonapplicable, out of budget) are
recorded as failures and simply don't compete there — the paper's
treatment of its timeout/memory cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.mccatch import McCatch
from repro.datasets.registry import LoadedDataset, load
from repro.eval.metrics import ALL_METRICS
from repro.eval.ranking import harmonic_mean_rank


@dataclass(frozen=True)
class CellResult:
    """One (detector, dataset) evaluation."""

    detector: str
    dataset: str
    metrics: dict[str, float]  # metric name -> value; empty on failure
    seconds: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the detector produced scores on this dataset."""
        return self.error is None


@dataclass
class Leaderboard:
    """All cell results plus the Table IV-style aggregation."""

    cells: list[CellResult] = field(default_factory=list)

    def values(self, metric: str) -> list[dict[str, float]]:
        """Per-dataset {detector: value} maps for one metric."""
        by_dataset: dict[str, dict[str, float]] = {}
        for cell in self.cells:
            if cell.ok and metric in cell.metrics:
                by_dataset.setdefault(cell.dataset, {})[cell.detector] = cell.metrics[metric]
        return list(by_dataset.values())

    def harmonic_mean_ranks(self, metric: str = "auroc") -> dict[str, float]:
        """The paper's summary: harmonic mean of ranks, lower = better."""
        return harmonic_mean_rank(self.values(metric))

    def failures(self) -> list[CellResult]:
        """Cells where a detector could not run (the 'NON APPL.' set)."""
        return [c for c in self.cells if not c.ok]

    def render(self, *, metric: str = "auroc") -> str:
        """Monospace table: datasets as rows, detectors as columns."""
        detectors: list[str] = []
        datasets: list[str] = []
        for cell in self.cells:
            if cell.detector not in detectors:
                detectors.append(cell.detector)
            if cell.dataset not in datasets:
                datasets.append(cell.dataset)
        lookup = {(c.detector, c.dataset): c for c in self.cells}
        width = max(8, *(len(d) for d in detectors)) + 2
        lines = ["dataset".ljust(16) + "".join(d.rjust(width) for d in detectors)]
        for ds in datasets:
            row = [ds.ljust(16)]
            for det in detectors:
                cell = lookup.get((det, ds))
                if cell is None or not cell.ok:
                    row.append("fail".rjust(width))
                else:
                    row.append(f"{cell.metrics.get(metric, float('nan')):.3f}".rjust(width))
            lines.append("".join(row))
        hm = self.harmonic_mean_ranks(metric)
        lines.append("-" * len(lines[0]))
        lines.append(
            "h.mean rank".ljust(16)
            + "".join(
                (f"{hm[d]:.2f}" if d in hm else "-").rjust(width) for d in detectors
            )
        )
        return "\n".join(lines)


def _score_with(detector, ds: LoadedDataset) -> np.ndarray:
    """Dispatch: McCatch handles metric data itself; baselines need vectors."""
    from repro.api.base import Estimator

    if isinstance(detector, Estimator):
        model = detector.fit(ds.data, ds.metric)
        return np.asarray(model.training_scores)
    if isinstance(detector, McCatch):
        return detector.fit(ds.data, ds.metric).point_scores
    if not ds.is_vector:
        raise TypeError(f"{_name(detector)} requires vector data (dataset {ds.name!r})")
    return detector.fit_scores(np.asarray(ds.data))


def _name(detector) -> str:
    spec = getattr(detector, "spec", None)
    if isinstance(spec, str):  # unified-API estimators render as their spec
        return spec
    return getattr(detector, "name", None) or type(detector).__name__


def evaluate_detectors(
    detectors: Sequence,
    datasets: Sequence,
    *,
    metrics: dict[str, Callable] | None = None,
    scale: float = 1.0,
    random_state: int = 0,
) -> Leaderboard:
    """Run every detector on every dataset and collect a Leaderboard.

    Parameters
    ----------
    detectors:
        Spec strings (``"mccatch?a=15"``, ``"lof?k=20"`` — anything
        :func:`repro.api.make_estimator` accepts), unified-API
        estimators, McCatch instances, and/or any objects with
        ``fit_scores(X)`` (every class in :mod:`repro.baselines`
        qualifies), freely mixed.  McCatch gets the dataset's native
        metric; baselines get vectors only.  Spec-built detectors
        appear in the board under their canonical spec string.
    datasets:
        Dataset names for :func:`repro.datasets.load`, or already
        loaded :class:`LoadedDataset` objects.  Datasets without labels
        are rejected — there is nothing to score against.
    metrics:
        Metric name -> ``f(labels, scores)``; defaults to the paper's
        AUROC / Average Precision / Max-F1 (``ALL_METRICS``).
    scale, random_state:
        Forwarded to :func:`load` for named datasets.
    """
    if not detectors:
        raise ValueError("need at least one detector")
    if not datasets:
        raise ValueError("need at least one dataset")
    resolved = []
    for det in detectors:
        if isinstance(det, str):
            from repro.api import make_estimator

            det = make_estimator(det)
        resolved.append(det)
    detectors = resolved
    metric_fns = dict(ALL_METRICS) if metrics is None else dict(metrics)

    loaded: list[LoadedDataset] = []
    for ds in datasets:
        if isinstance(ds, str):
            ds = load(ds, scale=scale, random_state=random_state)
        if ds.labels is None:
            raise ValueError(f"dataset {ds.name!r} has no labels to evaluate against")
        loaded.append(ds)

    board = Leaderboard()
    for ds in loaded:
        labels = np.asarray(ds.labels).astype(bool)
        for det in detectors:
            t0 = time.perf_counter()
            try:
                scores = _score_with(det, ds)
                values = {m: float(fn(labels, scores)) for m, fn in metric_fns.items()}
                cell = CellResult(_name(det), ds.name, values, time.perf_counter() - t0)
            except Exception as exc:  # noqa: BLE001 - failures are data here
                cell = CellResult(
                    _name(det), ds.name, {}, time.perf_counter() - t0, error=str(exc)
                )
            board.cells.append(cell)
    return board
