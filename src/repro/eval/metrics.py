"""Evaluation metrics, from scratch: AUROC, Average Precision, Max-F1.

The paper evaluates per-point anomaly scores with these three metrics
(Table IV).  Conventions: ``y_true`` is binary (1 = outlier),
``scores`` are higher-is-more-anomalous; ties are handled by midrank
(AUROC) and by processing score groups atomically (AP / Max-F1), the
standard definitions.
"""

from __future__ import annotations

import numpy as np


def _validate(y_true, scores) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(y_true).astype(np.intp).ravel()
    s = np.asarray(scores, dtype=np.float64).ravel()
    if y.shape != s.shape:
        raise ValueError(f"y_true {y.shape} and scores {s.shape} differ in length")
    if not np.isin(y, (0, 1)).all():
        raise ValueError("y_true must be binary (0 = inlier, 1 = outlier)")
    if y.sum() == 0 or y.sum() == y.size:
        raise ValueError("y_true needs at least one positive and one negative")
    if not np.isfinite(s).all():
        raise ValueError("scores must be finite")
    return y, s


def auroc(y_true, scores) -> float:
    """Area under the ROC curve via the midrank (Mann-Whitney) formula."""
    y, s = _validate(y_true, scores)
    order = np.argsort(s, kind="stable")
    ranks = np.empty(s.size, dtype=np.float64)
    ranks[order] = np.arange(1, s.size + 1)
    # Midranks for tied scores.
    sorted_s = s[order]
    i = 0
    while i < s.size:
        j = i
        while j + 1 < s.size and sorted_s[j + 1] == sorted_s[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    n_pos = int(y.sum())
    n_neg = y.size - n_pos
    rank_sum = float(ranks[y == 1].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def precision_recall_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(precision, recall, thresholds) sweeping thresholds high to low.

    Tied scores enter together (one curve point per distinct score).
    """
    y, s = _validate(y_true, scores)
    order = np.argsort(-s, kind="stable")
    y_sorted = y[order]
    s_sorted = s[order]
    distinct = np.nonzero(np.diff(s_sorted))[0]
    cut_positions = np.concatenate([distinct, [y.size - 1]])
    tp = np.cumsum(y_sorted)[cut_positions].astype(np.float64)
    predicted = (cut_positions + 1).astype(np.float64)
    precision = tp / predicted
    recall = tp / y.sum()
    return precision, recall, s_sorted[cut_positions]


def average_precision(y_true, scores) -> float:
    """AP = sum over curve points of precision * delta-recall."""
    precision, recall, _ = precision_recall_curve(y_true, scores)
    delta = np.diff(np.concatenate([[0.0], recall]))
    return float(np.sum(precision * delta))


def max_f1(y_true, scores) -> float:
    """Best F1 over all score thresholds."""
    precision, recall, _ = precision_recall_curve(y_true, scores)
    denom = precision + recall
    with np.errstate(divide="ignore", invalid="ignore"):
        f1 = np.where(denom > 0, 2.0 * precision * recall / denom, 0.0)
    return float(f1.max())


ALL_METRICS = {"auroc": auroc, "ap": average_precision, "max_f1": max_f1}
