"""Rank aggregation across datasets (Table IV).

The paper summarizes accuracy as the *harmonic mean of the ranking
positions* of each method over all datasets, per metric — lower is
better (1.8 for McCatch vs 6.0 for LOCI under AUROC).  Methods that
could not run on a dataset (timeout / memory / nonapplicable) simply
don't compete there, matching the paper's treatment.
"""

from __future__ import annotations

import math

import numpy as np


def ranking_positions(values: dict[str, float], *, higher_is_better: bool = True) -> dict[str, float]:
    """Competition ranks (1 = best) with average ranks on ties.

    ``values`` maps method name -> metric value on one dataset; methods
    absent from the dict did not run and get no rank.
    """
    names = list(values)
    vals = np.array([values[m] for m in names], dtype=np.float64)
    order = -vals if higher_is_better else vals
    sorted_idx = np.argsort(order, kind="stable")
    ranks = np.empty(len(names), dtype=np.float64)
    i = 0
    while i < len(names):
        j = i
        while j + 1 < len(names) and order[sorted_idx[j + 1]] == order[sorted_idx[i]]:
            j += 1
        ranks[sorted_idx[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return {names[k]: float(ranks[k]) for k in range(len(names))}


def harmonic_mean_rank(per_dataset_values: list[dict[str, float]]) -> dict[str, float]:
    """Harmonic mean of each method's ranks across datasets (Table IV).

    Each element of ``per_dataset_values`` maps method -> value on one
    dataset (higher = better).  Methods missing everywhere are omitted.
    """
    rank_lists: dict[str, list[float]] = {}
    for values in per_dataset_values:
        if not values:
            continue
        for method, rank in ranking_positions(values).items():
            rank_lists.setdefault(method, []).append(rank)
    out: dict[str, float] = {}
    for method, ranks in rank_lists.items():
        out[method] = len(ranks) / sum(1.0 / r for r in ranks)
    return out


def format_rank_table(
    hmeans: dict[str, dict[str, float]], metric_order: list[str] | None = None
) -> str:
    """Plain-text Table IV: one row per metric, one column per method."""
    metrics = metric_order or sorted(hmeans)
    methods: list[str] = sorted({m for row in hmeans.values() for m in row})
    width = max(8, *(len(m) + 1 for m in methods))
    header = f"{'metric':<22}" + "".join(f"{m:>{width}}" for m in methods)
    lines = [header, "-" * len(header)]
    for metric in metrics:
        row = hmeans.get(metric, {})
        cells = "".join(
            f"{row[m]:>{width}.1f}" if m in row and math.isfinite(row[m]) else f"{'-':>{width}}"
            for m in methods
        )
        lines.append(f"{'H.MeanRank(' + metric + ')':<22}" + cells)
    return "\n".join(lines)
