"""Runtime measurement and log-log slope fitting (Fig. 7 / Table VI).

Fig. 7 plots McCatch's runtime against the dataset size for samples of
Uniform and Diagonal, comparing the measured log-log slope with
Lemma 1's expectation ``2 - 1/u`` (``u`` = correlation fractal
dimension).  These helpers time callables over a size sweep and fit the
slope.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass
class SweepPoint:
    """One (size, seconds) measurement."""

    n: int
    seconds: float


@dataclass
class ScalingResult:
    """A size sweep plus its fitted log-log slope."""

    label: str
    points: list[SweepPoint]
    slope: float
    expected_slope: float | None = None

    def table(self) -> str:
        lines = [f"{self.label}: slope={self.slope:.2f}"
                 + (f" (expected {self.expected_slope:.2f})" if self.expected_slope else "")]
        for p in self.points:
            lines.append(f"  n={p.n:>9,d}  {p.seconds:8.3f}s")
        return "\n".join(lines)


def time_callable(fn: Callable[[], object], *, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return float(best)


def fit_loglog_slope(sizes: Sequence[int], seconds: Sequence[float]) -> float:
    """Least-squares slope of log(seconds) vs log(n)."""
    sizes = np.asarray(sizes, dtype=np.float64)
    seconds = np.maximum(np.asarray(seconds, dtype=np.float64), 1e-9)
    if sizes.size < 2:
        raise ValueError("need at least two sweep points to fit a slope")
    return float(np.polyfit(np.log(sizes), np.log(seconds), deg=1)[0])


def runtime_sweep(
    label: str,
    run_at_size: Callable[[int], object],
    sizes: Sequence[int],
    *,
    expected_slope: float | None = None,
    repeats: int = 1,
) -> ScalingResult:
    """Time ``run_at_size(n)`` for each ``n`` and fit the log-log slope."""
    points = [
        SweepPoint(int(n), time_callable(lambda n=n: run_at_size(int(n)), repeats=repeats))
        for n in sizes
    ]
    slope = fit_loglog_slope([p.n for p in points], [p.seconds for p in points])
    return ScalingResult(label, points, slope, expected_slope)
