"""Hyperparameter sensitivity sweeps (Fig. 9 / Q5).

Fig. 9 shows AUROC versus each hyperparameter around the defaults —
a in 13..17, b in 0.08..0.12, c in ceil(0.08 n)..ceil(0.12 n) — with
near-flat lines on every dataset: McCatch needs no tuning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.mccatch import McCatch
from repro.eval.metrics import auroc

A_GRID = (13, 14, 15, 16, 17)
B_GRID = (0.08, 0.09, 0.10, 0.11, 0.12)
C_FRACTION_GRID = (0.08, 0.09, 0.10, 0.11, 0.12)


@dataclass
class SensitivityCurve:
    """AUROC across one hyperparameter grid on one dataset."""

    dataset: str
    parameter: str  # 'a', 'b', or 'c'
    grid: tuple
    aurocs: np.ndarray

    @property
    def spread(self) -> float:
        """Max - min AUROC over the grid (flatness of the Fig. 9 line)."""
        valid = self.aurocs[np.isfinite(self.aurocs)]
        return float(valid.max() - valid.min()) if valid.size else math.nan


def _detector(parameter: str, value) -> McCatch:
    if parameter == "a":
        return McCatch(n_radii=int(value))
    if parameter == "b":
        return McCatch(max_slope=float(value))
    if parameter == "c":
        return McCatch(max_cardinality_fraction=float(value))
    raise ValueError(f"unknown parameter {parameter!r}; use 'a', 'b', or 'c'")


def sweep_parameter(
    dataset_name: str,
    data,
    labels: np.ndarray,
    parameter: str,
    metric=None,
    grid: tuple | None = None,
) -> SensitivityCurve:
    """One Fig. 9 line: AUROC vs a hyperparameter on one dataset."""
    if grid is None:
        grid = {"a": A_GRID, "b": B_GRID, "c": C_FRACTION_GRID}[parameter]
    scores = []
    for value in grid:
        result = _detector(parameter, value).fit(data, metric)
        scores.append(auroc(labels, result.point_scores))
    return SensitivityCurve(dataset_name, parameter, tuple(grid), np.array(scores))
