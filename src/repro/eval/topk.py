"""Top-k retrieval metrics for anomaly rankings.

AUROC integrates over all thresholds; an analyst reading a ranked
outlier report only looks at the top of the list.  These metrics
answer the operational question directly: of the ``k`` highest-scored
elements, how many are true outliers?

Ties at the k-th score are resolved pessimistically against the
detector (tied elements beyond position ``k`` are excluded), keeping
the metrics deterministic and not rewarding constant scores.
"""

from __future__ import annotations

import numpy as np


def _validate(labels, scores, k: int) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(labels).astype(bool).ravel()
    s = np.asarray(scores, dtype=np.float64).ravel()
    if y.size != s.size:
        raise ValueError(f"length mismatch: {y.size} labels vs {s.size} scores")
    if not 1 <= k <= y.size:
        raise ValueError(f"k must be in [1, {y.size}], got {k}")
    return y, s


def top_k_indices(scores, k: int) -> np.ndarray:
    """Positions of the ``k`` highest scores (deterministic: ties broken
    by position, earlier elements first)."""
    s = np.asarray(scores, dtype=np.float64).ravel()
    if not 1 <= k <= s.size:
        raise ValueError(f"k must be in [1, {s.size}], got {k}")
    order = np.argsort(-s, kind="stable")
    return order[:k]


def precision_at_k(labels, scores, k: int) -> float:
    """Fraction of the top-``k`` scored elements that are true outliers."""
    y, s = _validate(labels, scores, k)
    return float(y[top_k_indices(s, k)].mean())


def recall_at_k(labels, scores, k: int) -> float:
    """Fraction of all true outliers captured in the top ``k``.

    Returns 0.0 when there are no positive labels (nothing to recall).
    """
    y, s = _validate(labels, scores, k)
    total = int(y.sum())
    if total == 0:
        return 0.0
    return float(y[top_k_indices(s, k)].sum() / total)


def precision_at_n_outliers(labels, scores) -> float:
    """Precision at ``k = (number of true outliers)`` — the 'adjusted
    precision' convention common in outlier-detection benchmarks (it
    equals recall at the same cut)."""
    y = np.asarray(labels).astype(bool).ravel()
    total = int(y.sum())
    if total == 0:
        return 0.0
    return precision_at_k(labels, scores, total)
