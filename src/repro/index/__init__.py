"""Metric and spatial indexes plus the similarity joins built on them.

The paper's *using-index principle* (Sec. IV-G): every join leverages a
tree.  Every index also answers the batched multi-radius query
``count_within_many`` that :mod:`repro.engine` schedules McCatch's
workloads onto — the metric trees with a single node-major walk, the
rest with stacked per-radius passes.  Available trees:

- :class:`~repro.index.vptree.VPTree` — default for nondimensional data;
- :class:`~repro.index.mtree.MTree` / :class:`~repro.index.slimtree.SlimTree`
  — the metric access methods the paper names [35], [36];
- :class:`~repro.index.kdtree.KDTree` (pure Python) and
  :class:`~repro.index.ckdtree.CKDTreeIndex` (scipy fast path) — vectors
  in main memory;
- :class:`~repro.index.rtree.RTree` — STR-packed, the disk-based option;
- :class:`~repro.index.covertree.CoverTree` /
  :class:`~repro.index.balltree.BallTree` — alternative metric trees for
  the index ablation;
- :class:`~repro.index.laesa.LAESAIndex` — pivot-table filtering for
  expensive metrics (tree edit distance, long strings);
- :class:`~repro.index.bruteforce.BruteForceIndex` — correctness oracle.

The metric trees all store their structure as a
:class:`~repro.index.base.FlatTree` (struct-of-arrays, one element
permutation, CSR children) walked by the shared flat walks: the
depth-major :func:`~repro.index.base.level_count_walk` (the default —
O(depth) numpy dispatches, float32-bracketed leaf kernels, virtual
leaves) and the node-major
:func:`~repro.index.base.frontier_count_walk` kept as the frozen
differential baseline (``walk="stack"``); both produce bit-identical
counts.  A fitted tree can be persisted with
:func:`repro.io.save_index` and served as a
:class:`~repro.index.base.FrozenIndex`.
"""

from repro.index.balltree import BallTree
from repro.index.base import (
    UNKNOWN_COUNT,
    FlatTree,
    FrozenIndex,
    MetricIndex,
    count_walk,
    frontier_count_walk,
    level_count_walk,
)
from repro.index.bruteforce import BruteForceIndex
from repro.index.bulk import bulk_build_covertree, bulk_build_mtree, slim_down_flat
from repro.index.ckdtree import CKDTreeIndex
from repro.index.covertree import CoverTree
from repro.index.factory import available_index_kinds, build_index
from repro.index.joins import join_counts, self_join_counts, self_join_pairs
from repro.index.kdtree import KDTree
from repro.index.laesa import LAESAIndex
from repro.index.mtree import MTree
from repro.index.rtree import RTree
from repro.index.slimtree import SlimTree
from repro.index.vptree import VPTree

__all__ = [
    "MetricIndex",
    "FlatTree",
    "FrozenIndex",
    "count_walk",
    "frontier_count_walk",
    "level_count_walk",
    "BruteForceIndex",
    "VPTree",
    "KDTree",
    "CKDTreeIndex",
    "MTree",
    "SlimTree",
    "RTree",
    "CoverTree",
    "BallTree",
    "LAESAIndex",
    "build_index",
    "available_index_kinds",
    "bulk_build_mtree",
    "bulk_build_covertree",
    "slim_down_flat",
    "self_join_counts",
    "join_counts",
    "self_join_pairs",
    "UNKNOWN_COUNT",
]
