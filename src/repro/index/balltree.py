"""Ball tree: binary metric index via two-pivot ("bouncing ball") splits.

Each node is a ball — a pivot element plus the covering radius of its
members.  Splitting picks two far-apart pivots (an approximation of
the diametral pair: farthest-from-random, then farthest-from-that) and
assigns every member to the nearer pivot, which tends to produce
compact, well-separated children even in nondimensional spaces, since
only distances are used.

Like the other trees here, range counting applies the two standard
triangle-inequality cuts — skip a ball the query ball misses, count a
ball it swallows — so the join cost tracks the data's intrinsic
dimension (Lemma 1) rather than its embedding dimension.

Storage is a :class:`~repro.index.base.FlatTree` built
**level-synchronously**: the whole depth's pivot distances come from
three paired-distance calls (members-to-pivot, members-to-``a``,
members-to-``b``) and each segment is partitioned in place inside one
shared permutation array — no per-node recursion or node objects.
Queries run the shared flat
:func:`~repro.index.base.frontier_count_walk`.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import (
    DEFAULT_WALK,
    FlatQueryMixin,
    FlatTree,
    MetricIndex,
    attach_leaf_distances,
    check_walk_mode,
    concat_ranges,
)
from repro.metric.base import MetricSpace


class BallTree(FlatQueryMixin, MetricIndex):
    """Binary ball tree with subtree-count pruning.

    Parameters
    ----------
    space, ids:
        The metric space and the element ids to index.
    leaf_size:
        Maximum bucket size before a node is split.

    Attributes
    ----------
    flat:
        The :class:`~repro.index.base.FlatTree` storage.  A node's
        pivot is the first member of its slice; children partition the
        whole slice (the pivot lands on one side of the split).
    """

    def __init__(
        self, space: MetricSpace, ids=None, *, leaf_size: int = 16, walk: str = DEFAULT_WALK
    ):
        super().__init__(space, ids)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size
        self.walk = check_walk_mode(walk)
        self.flat = attach_leaf_distances(space, self._build_flat())

    # -- construction ----------------------------------------------------

    def _build_flat(self) -> FlatTree:
        """Level-synchronous vectorized construction (see module docstring)."""
        space, leaf_size = self.space, self.leaf_size
        elems = self.ids.copy()
        n = elems.size
        center: list[int] = []
        radius: list[float] = []
        size: list[int] = []
        child_lo: list[int] = []
        child_hi: list[int] = []
        elem_lo: list[int] = []
        elem_hi: list[int] = []

        def new_node(lo: int, hi: int) -> int:
            idx = len(center)
            center.append(int(elems[lo]))  # pivot = first member of the slice
            radius.append(0.0)
            size.append(hi - lo)
            child_lo.append(0)
            child_hi.append(0)
            elem_lo.append(lo)
            elem_hi.append(hi)
            return idx

        def argmax_per_segment(values: np.ndarray, offsets: np.ndarray, sizes: np.ndarray):
            """First position of each segment's maximum (relative to ``values``)."""
            maxima = np.maximum.reduceat(values, offsets[:-1])
            seg_of = np.repeat(np.arange(sizes.size), sizes)
            hits = np.flatnonzero(values == np.repeat(maxima, sizes))
            _, first = np.unique(seg_of[hits], return_index=True)
            return hits[first]

        level = [new_node(0, n)]
        while level:
            seg_lo = np.array([elem_lo[i] for i in level], dtype=np.intp)
            seg_sizes = np.array([elem_hi[i] - elem_lo[i] for i in level], dtype=np.intp)
            positions = concat_ranges(seg_lo, seg_sizes)
            members = elems[positions]
            d0 = space.paired_distances(np.repeat(elems[seg_lo], seg_sizes), members)
            offsets = np.concatenate([[0], np.cumsum(seg_sizes)])
            radii_level = np.maximum.reduceat(d0, offsets[:-1])
            for k, i in enumerate(level):
                if seg_sizes[k] > 1:
                    radius[i] = float(radii_level[k])
            split_k = np.flatnonzero((seg_sizes > leaf_size) & (radii_level > 0.0))
            if not split_k.size:
                break

            # Approximate diametral pair for all splitting segments at
            # once, each leg one paired-distance call: a = farthest from
            # the pivot, b = farthest from a.
            keep = np.repeat(np.isin(np.arange(len(level)), split_k), seg_sizes)
            spl_pos = positions[keep]
            spl_members = members[keep]
            spl_sizes = seg_sizes[split_k]
            spl_off = np.concatenate([[0], np.cumsum(spl_sizes)])
            spl_d0 = d0[keep]
            a_ids = spl_members[argmax_per_segment(spl_d0, spl_off, spl_sizes)]
            d_a = space.paired_distances(np.repeat(a_ids, spl_sizes), spl_members)
            b_ids = spl_members[argmax_per_segment(d_a, spl_off, spl_sizes)]
            d_b = space.paired_distances(np.repeat(b_ids, spl_sizes), spl_members)

            left = d_a <= d_b
            k_left = np.add.reduceat(left, spl_off[:-1])
            # Stable partition of every splitting segment at once: left
            # halves first, original order preserved within each half.
            spl_seg = np.repeat(np.arange(split_k.size), spl_sizes)
            elems[spl_pos] = spl_members[np.lexsort((~left, spl_seg))]

            next_level: list[int] = []
            for j, k in enumerate(split_k):
                # All members coincide with one pivot's side (heavy
                # ties): a leaf is the honest fallback.
                if k_left[j] == 0 or k_left[j] == spl_sizes[j]:
                    continue
                i = level[k]
                lo, hi = elem_lo[i], elem_hi[i]
                mid = lo + int(k_left[j])
                left_node = new_node(lo, mid)
                right_node = new_node(mid, hi)
                child_lo[i], child_hi[i] = left_node, right_node + 1
                next_level.extend((left_node, right_node))
            level = next_level

        return FlatTree(
            center=center, threshold=np.zeros(len(center)), radius=radius, size=size,
            child_lo=child_lo, child_hi=child_hi,
            elem_lo=elem_lo, elem_hi=elem_hi, elems=elems,
        )

    # -- queries (count_within / count_within_many from FlatQueryMixin) ---

    def diameter_estimate(self) -> float:
        """Root-ball two-scan estimate (Alg. 1 line 2 analogue)."""
        if self.ids.size == 1:
            return 0.0
        d0 = self.space.distances(int(self.flat.center[0]), self.ids)
        far = int(self.ids[int(np.argmax(d0))])
        return float(self.space.distances(far, self.ids).max())

    def leaf_sizes(self) -> list[int]:
        """Sizes of all leaf buckets (balance diagnostics)."""
        return self.flat.leaf_sizes()
