"""Ball tree: binary metric index via two-pivot ("bouncing ball") splits.

Each node is a ball — a pivot element plus the covering radius of its
members.  Splitting picks two far-apart pivots (an approximation of
the diametral pair: farthest-from-random, then farthest-from-that) and
assigns every member to the nearer pivot, which tends to produce
compact, well-separated children even in nondimensional spaces, since
only distances are used.

Like the other trees here, range counting applies the two standard
triangle-inequality cuts — skip a ball the query ball misses, count a
ball it swallows — so the join cost tracks the data's intrinsic
dimension (Lemma 1) rather than its embedding dimension.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex, check_radii_ascending, frontier_count_walk
from repro.metric.base import MetricSpace


class _BallNode:
    __slots__ = ("pivot", "radius", "size", "left", "right", "bucket")

    def __init__(self):
        self.pivot: int = -1
        self.radius: float = 0.0
        self.size: int = 0
        self.left: "_BallNode | None" = None
        self.right: "_BallNode | None" = None
        self.bucket: np.ndarray | None = None


class BallTree(MetricIndex):
    """Binary ball tree with subtree-count pruning.

    Parameters
    ----------
    space, ids:
        The metric space and the element ids to index.
    leaf_size:
        Maximum bucket size before a node is split.
    """

    def __init__(self, space: MetricSpace, ids=None, *, leaf_size: int = 16):
        super().__init__(space, ids)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size
        self.root = self._build(self.ids.copy())

    # -- construction ----------------------------------------------------

    def _build(self, members: np.ndarray) -> _BallNode:
        node = _BallNode()
        node.size = int(members.size)
        node.pivot = int(members[0])
        d0 = self.space.distances(node.pivot, members)
        node.radius = float(d0.max()) if members.size > 1 else 0.0
        if members.size <= self.leaf_size or node.radius == 0.0:
            node.bucket = members
            return node

        # Approximate diametral pair: a = farthest from the pivot,
        # b = farthest from a; then a nearest-pivot assignment.
        a = int(members[int(np.argmax(d0))])
        d_a = self.space.distances(a, members)
        b = int(members[int(np.argmax(d_a))])
        d_b = self.space.distances(b, members)
        left_mask = d_a <= d_b
        left, right = members[left_mask], members[~left_mask]
        if left.size == 0 or right.size == 0:
            # All members coincide with one pivot's side (heavy ties):
            # a leaf is the honest fallback.
            node.bucket = members
            return node
        node.left = self._build(left)
        node.right = self._build(right)
        return node

    # -- queries ----------------------------------------------------------

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        """Per-query neighbor counts (see :class:`MetricIndex`)."""
        query_ids = np.asarray(query_ids, dtype=np.intp)
        return np.array([self._count_one(int(q), radius) for q in query_ids], dtype=np.intp)

    def _count_one(self, query: int, radius: float) -> int:
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            d = self.space.distance(query, node.pivot)
            if d - node.radius > radius:
                continue
            if d + node.radius <= radius:
                total += node.size
                continue
            if node.bucket is not None:
                dists = self.space.distances(query, node.bucket)
                total += int((dists <= radius).sum())
                continue
            stack.append(node.left)
            stack.append(node.right)
        return total

    def count_within_many(self, query_ids, radii) -> np.ndarray:
        """All radii for all queries in one node-major walk
        (:func:`~repro.index.base.frontier_count_walk`)."""
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        def descend(stack, node, pos, lo, hi, d, diff, radii_):
            stack.append((node.left, pos, lo, hi))
            stack.append((node.right, pos, lo, hi))

        return frontier_count_walk(
            self.space, query_ids, radii, self.root, lambda node: node.pivot, descend
        )

    def diameter_estimate(self) -> float:
        """Root-ball two-scan estimate (Alg. 1 line 2 analogue)."""
        if self.ids.size == 1:
            return 0.0
        d0 = self.space.distances(self.root.pivot, self.ids)
        far = int(self.ids[int(np.argmax(d0))])
        return float(self.space.distances(far, self.ids).max())

    def leaf_sizes(self) -> list[int]:
        """Sizes of all leaf buckets (balance diagnostics)."""
        sizes: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.bucket is not None:
                sizes.append(int(node.bucket.size))
            else:
                stack.append(node.left)
                stack.append(node.right)
        return sizes
