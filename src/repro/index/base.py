"""The MetricIndex protocol and the flat array-backed tree substrate.

An index covers a subset of a :class:`~repro.metric.base.MetricSpace`
(identified by element ids) and answers four queries:

- ``count_within(query_ids, radius)`` — per-query neighbor counts, the
  *count-only principle* of Sec. IV-G (no pair materialization);
- ``count_within_many(query_ids, radii)`` — the multi-radius form
  McCatch's radius ladder actually needs: one ``(q, a)`` matrix of
  counts.  The generic default stacks per-radius calls; the metric
  trees override it with a single-descent walk that answers every
  radius at once (see :mod:`repro.engine`);
- ``pairs_within(radius)`` — the self-join of Alg. 3 line 12, needed
  only for the small outlier set;
- ``diameter_estimate()`` — Alg. 1 line 2, the radius-ladder anchor.

Queries are expressed as element ids of the same space, so a join
between outliers and inliers (Alg. 4) is just an index on the inlier
ids queried with the outlier ids.

Every metric tree in this package stores its structure as a
:class:`FlatTree` — a struct-of-arrays container (contiguous ``center``
/ ``threshold`` / ``radius`` / ``size`` / CSR-style children arrays
plus one permutation of element ids) instead of a graph of Python node
objects.  The VP- and ball trees build it directly with
level-synchronous vectorized construction; the insertion-built trees
(cover, M-, Slim-) keep their classic build logic and *freeze* into a
FlatTree before the first query.  Two shared walks answer multi-radius
count queries over the flat arrays: the node-major
:func:`frontier_count_walk` (one stack pop and a handful of small
NumPy calls per node — kept as the differential baseline) and the
level-synchronous :func:`level_count_walk` (the default: the whole
frontier of one depth becomes flat ``(node, query, lo, hi)`` arrays,
so each level costs one grouped distance computation, a few batched
``searchsorted`` calls and bincount scatters — O(depth) NumPy
dispatches instead of O(nodes)).  Both produce bit-identical counts;
because the layout is a handful of primitive NumPy arrays, any fitted
index can be persisted to a single ``.npz`` (:mod:`repro.io.indexes`)
and served without rebuilding.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from typing import NamedTuple, Sequence

import numpy as np

from repro.metric.base import MetricSpace
from repro.obs import hooks as _obs_hooks

#: Sentinel for neighbor counts a scheduling principle never computed
#: (see the sparse-focused principle in :mod:`repro.engine`).  Lives
#: here — the one module both the engine and the join layer can import
#: without a cycle.
UNKNOWN_COUNT = -1


class MetricIndex(ABC):
    """Base class for range-count indexes over a MetricSpace subset."""

    def __init__(self, space: MetricSpace, ids: Sequence[int] | np.ndarray | None = None):
        self.space = space
        if ids is None:
            ids = np.arange(len(space), dtype=np.intp)
        self.ids = np.asarray(ids, dtype=np.intp)
        if self.ids.size == 0:
            raise ValueError("cannot build an index over zero elements")

    def __len__(self) -> int:
        return int(self.ids.size)

    @abstractmethod
    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        """Number of indexed elements within ``radius`` of each query element.

        Distances are inclusive (``d <= radius``).  A query element that
        is itself indexed counts itself, matching the paper's
        "neighbors (+ self)" convention.
        """

    def count_within_many(
        self, query_ids: Sequence[int] | np.ndarray, radii: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Counts for every query at every radius: a ``(q, a)`` int matrix.

        ``radii`` must be sorted ascending (ties allowed).  Entry
        ``[i, e]`` equals ``count_within([query_ids[i]], radii[e])[0]``
        exactly — implementations answer all radii in one structure
        walk, but never change a count.

        The generic default issues one :meth:`count_within` pass per
        radius; the metric trees override it with a single descent that
        prunes with the largest still-active radius and bucket-counts
        all radii at once.
        """
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        out = np.empty((query_ids.size, radii.size), dtype=np.int64)
        for e in range(radii.size):
            out[:, e] = self.count_within(query_ids, float(radii[e]))
        return out

    #: Query-chunk size bounding the temporary distance-block footprint
    #: of the generic bulk implementations (pairs_within here, the
    #: count queries in :class:`~repro.index.bruteforce.BruteForceIndex`).
    _CHUNK = 512

    def pairs_within(self, radius: float) -> list[tuple[int, int]]:
        """All unordered indexed pairs ``(i, j)``, ``i < j``, within ``radius``.

        Default implementation, by metric type: vector spaces use
        chunked bulk blocks — each chunk of elements measured against
        itself and its successors in one BLAS/einsum
        ``distances_among`` call, qualifying pairs selected and
        ordered by array ops, no per-element Python loop.  Object
        spaces keep one bulk row per element against its successors:
        their "bulk" kernel is the honest per-pair metric loop, so the
        triangle-only row form is what minimizes metric evaluations.
        Only used on small sets (the outliers of Alg. 3), so the
        O(n^2) distance cost is fine; subclasses may still override.
        """
        pairs: list[tuple[int, int]] = []
        ids = self.ids
        if not self.space.is_vector:
            for a in range(ids.size - 1):
                i = int(ids[a])
                d = self.space.distances(i, ids[a + 1 :])
                near = ids[a + 1 :][d <= radius]
                if near.size:
                    lo = np.minimum(near, i)
                    hi = np.maximum(near, i)
                    pairs.extend(zip(lo.tolist(), hi.tolist()))
            return pairs
        for start in range(0, ids.size - 1, self._CHUNK):
            block = ids[start : start + self._CHUNK]
            rest = ids[start:]  # block members and their successors
            dm = self.space.distances_among(block, rest)
            rows, cols = np.nonzero(dm <= radius)
            keep = cols > rows  # strict upper triangle (both sides start at `start`)
            if keep.any():
                bi, bj = block[rows[keep]], rest[cols[keep]]
                lo = np.minimum(bi, bj)
                hi = np.maximum(bi, bj)
                pairs.extend(zip(lo.tolist(), hi.tolist()))
        return pairs

    def sharded(self, *, workers: int | None = None, shards: int | None = None,
                backend: str = "auto", shard_by: str = "query"):
        """A multi-worker executor over this index (flat-backed only).

        The ``workers=`` path of the index layer: returns a
        :class:`repro.engine.parallel.ShardedWalkExecutor` whose
        ``count_within`` / ``count_within_many`` shard the query set
        (``shard_by="query"``) or disjoint subtree node ranges
        (``shard_by="tree"``) across a persistent worker pool with
        bit-identical counts.  Raises ``TypeError`` for indexes without
        :class:`FlatTree` storage (brute force, kd-/R-trees, LAESA).
        """
        from repro.engine.parallel import ShardedWalkExecutor

        return ShardedWalkExecutor(
            self, workers=workers, shards=shards, backend=backend, shard_by=shard_by
        )

    def diameter_estimate(self) -> float:
        """Estimated diameter of the indexed elements (Alg. 1 line 2).

        Default: the classic two-scan heuristic — from an arbitrary
        element find the farthest element ``p``, then the farthest from
        ``p``.  Exact on many shapes and never more than a factor 2 off
        for metric spaces; subclasses with structure (tree roots,
        bounding boxes) override with the paper's root-children rule.
        """
        ids = self.ids
        if ids.size == 1:
            return 0.0
        d0 = self.space.distances(int(ids[0]), ids)
        far = int(ids[int(np.argmax(d0))])
        d1 = self.space.distances(far, ids)
        return float(d1.max())


def check_radii_ascending(radii: Sequence[float] | np.ndarray) -> np.ndarray:
    """Validate the multi-radius query vector: 1-d, nonempty, ascending."""
    radii = np.asarray(radii, dtype=np.float64)
    if radii.ndim != 1 or radii.size == 0:
        raise ValueError("radii must be a nonempty 1-d array")
    if np.any(np.diff(radii) < 0):
        raise ValueError("radii must be sorted ascending")
    return radii


class FlatTree:
    """A metric tree as struct-of-arrays: the storage behind every tree here.

    Node ``i`` is described across parallel arrays; children occupy the
    contiguous node-index range ``[child_lo[i], child_hi[i])`` (equal
    bounds mean a leaf), and the node's members are the slice
    ``elems[elem_lo[i]:elem_hi[i]]`` of one shared permutation of
    element ids — a leaf bucket is a view, never an allocation.

    Attributes
    ----------
    center:
        Element id of the node's center (vantage / pivot / routing
        pivot).  For a leaf it is the first bucket member.
    threshold:
        VP median-split threshold (0 for non-VP trees).
    radius:
        Covering radius: every member lies within ``radius`` of the
        center.
    size:
        Member count (``elem_hi - elem_lo``), kept explicit so the walk
        credits swallowed subtrees without touching ``elems``.
    child_lo, child_hi:
        CSR-style children range (node indices).
    elem_lo, elem_hi, elems:
        Member slices into the shared element-id permutation.
    d_parent:
        Distance from each node's center to its parent's center, or
        ``None``.  When present (frozen M-trees) the walk applies the
        M-tree parent-distance filter before computing any distance to
        the node.
    d_elem:
        Distance from each entry of ``elems`` to its leaf node's
        center, or ``None``.  When present the level walk decides most
        leaf pairs without evaluating the metric: the triangle
        inequality brackets ``d(q, member)`` between
        ``|d(q, center) − d_elem|`` and ``d(q, center) + d_elem``, so
        a member provably beyond the last undecided radius is dropped
        and one provably inside the first is credited wholesale —
        only the band in between pays for a distance.  M-/Slim-trees
        record these during construction; the other families get them
        from :func:`attach_leaf_distances` at build time.
    vp_split:
        True for VP-trees: an internal node's center is held by the
        node itself (outside both children), the two children are
        ``child_lo`` (inside) and ``child_lo + 1`` (outside), and the
        walk tightens their radius windows with ``threshold``.
    """

    __slots__ = (
        "center", "threshold", "radius", "size", "child_lo", "child_hi",
        "elem_lo", "elem_hi", "elems", "d_parent", "d_elem", "vp_split",
        "_leaf_cache", "_rect_cache",
    )

    def __init__(
        self,
        *,
        center,
        threshold,
        radius,
        size,
        child_lo,
        child_hi,
        elem_lo,
        elem_hi,
        elems,
        d_parent=None,
        d_elem=None,
        vp_split: bool = False,
    ):
        self.center = np.asarray(center, dtype=np.intp)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.radius = np.asarray(radius, dtype=np.float64)
        self.size = np.asarray(size, dtype=np.int64)
        self.child_lo = np.asarray(child_lo, dtype=np.intp)
        self.child_hi = np.asarray(child_hi, dtype=np.intp)
        self.elem_lo = np.asarray(elem_lo, dtype=np.intp)
        self.elem_hi = np.asarray(elem_hi, dtype=np.intp)
        self.elems = np.asarray(elems, dtype=np.intp)
        self.d_parent = None if d_parent is None else np.asarray(d_parent, dtype=np.float64)
        self.d_elem = None if d_elem is None else np.asarray(d_elem, dtype=np.float64)
        self.vp_split = bool(vp_split)
        self._leaf_cache = None  # lazy (float32 d_elem, max) for the leaf filter
        self._rect_cache = None  # lazy padded member blocks for the rect kernel
        n_nodes = self.center.size
        for name in ("threshold", "radius", "size", "child_lo", "child_hi", "elem_lo", "elem_hi"):
            if getattr(self, name).shape != (n_nodes,):
                raise ValueError(f"FlatTree array {name!r} must have shape ({n_nodes},)")
        if self.d_parent is not None and self.d_parent.shape != (n_nodes,):
            raise ValueError("FlatTree d_parent must match the node count")
        if self.d_elem is not None and self.d_elem.shape != self.elems.shape:
            raise ValueError("FlatTree d_elem must match the elems shape")
        if n_nodes == 0:
            raise ValueError("FlatTree needs at least one node")

    @property
    def n_nodes(self) -> int:
        """Total number of nodes (internal + leaves)."""
        return int(self.center.size)

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` stores a bucket instead of children."""
        return bool(self.child_lo[node] == self.child_hi[node])

    def bucket(self, node: int) -> np.ndarray:
        """Member-id slice of a leaf (a view into ``elems``)."""
        return self.elems[self.elem_lo[node] : self.elem_hi[node]]

    def leaf_sizes(self) -> list[int]:
        """Sizes of all leaf buckets (balance diagnostics)."""
        leaves = self.child_lo == self.child_hi
        return (self.elem_hi[leaves] - self.elem_lo[leaves]).tolist()

    def max_depth(self) -> int:
        """Height of the tree (leaves are depth 1).

        Walks the CSR children arrays one whole level at a time — each
        level is one fancy-indexed count plus one :func:`concat_ranges`
        expansion, never a per-node Python loop.
        """
        depth = 1
        level = np.array([0], dtype=np.intp)
        while True:
            counts = self.child_hi[level] - self.child_lo[level]
            expand = counts > 0
            if not expand.any():
                return depth
            level = concat_ranges(self.child_lo[level][expand], counts[expand])
            depth += 1

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The storage as plain arrays (the persistence payload)."""
        out = {
            "center": self.center,
            "threshold": self.threshold,
            "radius": self.radius,
            "size": self.size,
            "child_lo": self.child_lo,
            "child_hi": self.child_hi,
            "elem_lo": self.elem_lo,
            "elem_hi": self.elem_hi,
            "elems": self.elems,
            "vp_split": np.bool_(self.vp_split),
        }
        if self.d_parent is not None:
            out["d_parent"] = self.d_parent
        if self.d_elem is not None:
            out["d_elem"] = self.d_elem
        return out

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "FlatTree":
        """Rebuild a FlatTree from :meth:`to_arrays` output."""
        return cls(
            center=arrays["center"],
            threshold=arrays["threshold"],
            radius=arrays["radius"],
            size=arrays["size"],
            child_lo=arrays["child_lo"],
            child_hi=arrays["child_hi"],
            elem_lo=arrays["elem_lo"],
            elem_hi=arrays["elem_hi"],
            elems=arrays["elems"],
            d_parent=arrays.get("d_parent"),
            d_elem=arrays.get("d_elem"),
            vp_split=bool(arrays["vp_split"]),
        )


#: Counter keys both walks accumulate into a caller-supplied ``stats``
#: dict — the benchmark compares them to show O(depth) vs O(nodes)
#: NumPy-dispatch overhead.
_WALK_STAT_KEYS = (
    "steps", "entries", "distance_calls", "searchsorted_calls", "scatter_calls",
)


def frontier_count_walk(
    space: MetricSpace,
    query_ids: np.ndarray,
    radii: np.ndarray,
    tree: FlatTree,
    *,
    stats: dict | None = None,
) -> np.ndarray:
    """Node-major multi-radius range counting over a :class:`FlatTree`.

    The shared engine room behind every flat-backed ``count_within`` /
    ``count_within_many``.  The tree is walked once with a *query
    frontier*: every stack entry carries an integer node index, the
    queries that still reach that subtree and, per query, the window
    ``[lo, hi)`` of radius positions not yet decided there.  Each node
    computes one bulk distance block for its whole frontier (queries
    stay the ``Q`` side of the metric, so floats are bit-identical to
    per-query evaluation); radii whose ball swallows the node are
    credited ``size[node]`` in O(1) and leave the window, radii whose
    ball cannot reach it leave it too, and leaf buckets — slices of the
    permutation array, not allocations — scatter range-adds into a
    per-query difference array that one cumulative sum turns into
    counts.

    Tree-specific behaviour is driven by the flat metadata: VP-trees
    (``vp_split``) credit the vantage point held at internal nodes and
    tighten each child's window with the median-split ``threshold``;
    frozen M-trees (``d_parent``) apply the classic parent-distance
    filter — ``|d(q, parent) − d_parent| − radius`` lower-bounds the
    reachable radius — before computing any distance to a node.

    ``stats``, when a dict, accumulates dispatch counters comparable
    with :func:`level_count_walk`: ``steps`` (stack pops here, levels
    there), ``entries`` (total frontier pairs processed) and the
    NumPy-call counts ``distance_calls`` / ``searchsorted_calls`` /
    ``scatter_calls``.
    """
    track = stats is not None
    if track:
        for key in _WALK_STAT_KEYS:
            stats.setdefault(key, 0)
    nq, a = query_ids.size, radii.size
    diff = np.zeros((nq, a + 1), dtype=np.int64)
    center, node_radius, sizes = tree.center, tree.radius, tree.size
    child_lo, child_hi = tree.child_lo, tree.child_hi
    elems, elem_lo, elem_hi = tree.elems, tree.elem_lo, tree.elem_hi
    threshold, d_parent = tree.threshold, tree.d_parent
    vp = tree.vp_split
    stack = [
        (0, np.arange(nq), np.zeros(nq, dtype=np.intp), np.full(nq, a, dtype=np.intp), None)
    ]
    while stack:
        node, pos, lo, hi, dpar = stack.pop()
        if track:
            stats["steps"] += 1
            stats["entries"] += pos.size
        if dpar is not None:
            bound = np.abs(dpar - d_parent[node]) - node_radius[node]
            lo = np.maximum(lo, np.searchsorted(radii, bound))
            if track:
                stats["searchsorted_calls"] += 1
            live = lo < hi
            if not live.any():
                continue  # pruned for every query without a distance call
            if not live.all():
                pos, lo, hi = pos[live], lo[live], hi[live]
        d = space.distances_among(query_ids[pos], [center[node]])[:, 0]
        full = np.searchsorted(radii, d + node_radius[node])
        if track:
            stats["distance_calls"] += 1
            stats["searchsorted_calls"] += 1
        swallow = full < hi
        if swallow.any():  # ball swallowed whole
            rows = pos[swallow]
            diff[rows, np.maximum(full[swallow], lo[swallow])] += sizes[node]
            diff[rows, hi[swallow]] -= sizes[node]
            hi = np.minimum(hi, full)
            if track:
                stats["scatter_calls"] += 1
        lo = np.maximum(lo, np.searchsorted(radii, d - node_radius[node]))
        if track:
            stats["searchsorted_calls"] += 1
        live = lo < hi
        if not live.any():
            continue
        if not live.all():
            pos, lo, hi, d = pos[live], lo[live], hi[live], d[live]
        lo_c, hi_c = child_lo[node], child_hi[node]
        if lo_c == hi_c:  # leaf: bucket is a slice of the permutation array
            dm = space.distances_among(query_ids[pos], elems[elem_lo[node] : elem_hi[node]])
            e = np.searchsorted(radii, dm)  # (m, b) radius position per member
            if track:
                stats["distance_calls"] += 1
                stats["searchsorted_calls"] += 1
                stats["scatter_calls"] += 1
            valid = e < hi[:, None]
            rows = np.broadcast_to(pos[:, None], e.shape)[valid]
            np.add.at(diff, (rows, np.maximum(e, lo[:, None])[valid]), 1)
            np.add.at(diff, (rows, np.broadcast_to(hi[:, None], e.shape)[valid]), -1)
            continue
        if vp:
            sv = np.searchsorted(radii, d)
            if track:
                stats["searchsorted_calls"] += 1
            self_in = sv < hi
            if self_in.any():  # the vantage point itself
                rows = pos[self_in]
                diff[rows, np.maximum(sv[self_in], lo[self_in])] += 1
                diff[rows, hi[self_in]] -= 1
                if track:
                    stats["scatter_calls"] += 1
            t = threshold[node]
            lo_in = np.maximum(lo, np.searchsorted(radii, d - t))
            m = lo_in < hi
            if m.any():
                stack.append((int(lo_c), pos[m], lo_in[m], hi[m], None))
            lo_out = np.maximum(lo, np.searchsorted(radii, t - d, side="right"))
            if track:
                stats["searchsorted_calls"] += 2
            m = lo_out < hi
            if m.any():
                stack.append((int(lo_c) + 1, pos[m], lo_out[m], hi[m], None))
            continue
        child_dpar = d if d_parent is not None else None
        for child in range(lo_c, hi_c):
            stack.append((int(child), pos, lo, hi, child_dpar))
    return np.cumsum(diff[:, :a], axis=1)


class WalkFrontier(NamedTuple):
    """One depth of a level-synchronous walk, as flat parallel arrays.

    Entry ``k`` says: node ``nodes[k]`` is still reachable by query
    ``pos[k]`` (a row of the query set) with the radius-position window
    ``[lo[k], hi[k])`` undecided.  ``dpar`` carries the distance from
    each entry's query to the node's *parent* center (the M-tree
    parent-distance filter input) — ``None`` whenever the tree stores
    no ``d_parent`` or the entries are roots.  The tuple is plain
    picklable data, so a frontier can be shipped to a worker process
    and resumed there (``shard_by="tree"``).
    """

    nodes: np.ndarray
    pos: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    dpar: np.ndarray | None


def _root_frontier(nq: int, a: int) -> WalkFrontier:
    """Every query at the root with the full radius window ``[0, a)``."""
    return WalkFrontier(
        nodes=np.zeros(nq, dtype=np.intp),
        pos=np.arange(nq, dtype=np.intp),
        lo=np.zeros(nq, dtype=np.intp),
        hi=np.full(nq, a, dtype=np.intp),
        dpar=None,
    )


_EMPTY_INTP = np.empty(0, dtype=np.intp)
_EMPTY_FRONTIER = WalkFrontier(_EMPTY_INTP, _EMPTY_INTP, _EMPTY_INTP, _EMPTY_INTP, None)

#: Maximum frontier entries advanced per level step.  Wider frontiers
#: are sliced first: the walk's scatters commute, so any slicing sums
#: to the same counts, and chunking keeps every temporary (and the
#: leaf-scatter pair expansion, up to ``leaf_size`` times wider) at
#: cache-friendly sizes instead of the full width of the densest level.
_LEVEL_CHUNK = 1 << 19


def _range_add(diff, stride, rows, start_cols, end_cols, weights=None):
    """Difference-array range add ``diff[rows, start:end] += w`` for many
    (row, window) pairs at once: ``+w`` at ``start_cols``, ``-w`` at
    ``end_cols``, accumulated with ``bincount`` so duplicate (row, col)
    pairs — many frontier entries per query at one level — sum instead
    of last-write-wins like fancy-index assignment would.  The add and
    subtract halves ride one signed-weight ``bincount``: the output
    array spans every query row, so halving the accumulator allocations
    is a measurable slice of the scatter cost.

    ``diff`` is the flat float64 view of the per-query difference
    matrix; float64 accumulation of integer weights is exact below
    2**53, far beyond any count this repo can produce.
    """
    base = rows * stride
    if weights is None:
        # Unweighted windows count with two plain integer bincounts —
        # cheaper than materializing a float weight vector.
        acc = np.bincount(base + start_cols)
        diff[: acc.size] += acc
        acc = np.bincount(base + end_cols)
        diff[: acc.size] -= acc
        return
    idx = np.concatenate([base + start_cols, base + end_cols])
    w = np.concatenate([weights, -np.asarray(weights, dtype=np.float64)])
    acc = np.bincount(idx, weights=w)
    diff[: acc.size] += acc


class _IdentityIds:
    """Stand-in for ``query_ids == arange(nq)`` — the SELFJOINC shape.

    ``take`` / ``__getitem__`` hand the index array straight back,
    turning the level walk's per-step ``query_ids[pos]`` gathers into
    no-ops.  Callers never mutate gathered query ids, so the aliasing
    is safe.
    """

    __slots__ = ("size",)

    def __init__(self, size: int):
        self.size = size

    def take(self, idx):
        return idx

    def __getitem__(self, idx):
        return idx


def _identity_or_ids(query_ids):
    """``query_ids`` itself, or :class:`_IdentityIds` when it is a
    contiguous ``arange`` — one O(nq) check per walk buys away one
    full-frontier gather per level step."""
    q = np.asarray(query_ids)
    n = q.size
    if (
        n
        and q.dtype.kind in "iu"
        and q[0] == 0
        and q[-1] == n - 1
        and np.array_equal(q, np.arange(n, dtype=q.dtype))
    ):
        return _IdentityIds(n)
    return query_ids


def _leaf_filter_cache(tree):
    """Lazy ``(float32 d_elem copy, float(d_elem.max()))`` for the filter.

    The triangle bounds below never decide a count by themselves — an
    over-generous safety margin only forwards extra pairs to the exact
    float64 comparison — so the bound arithmetic can run in float32,
    halving the gather and compare traffic of the hottest loop.  The
    maximum parent distance feeds the margin's absolute scale.
    """
    cache = tree._leaf_cache
    if cache is None:
        d_elem = tree.d_elem
        cache = tree._leaf_cache = (
            d_elem.astype(np.float32),
            float(d_elem.max()) if d_elem.size else 0.0,
        )
    return cache


#: Virtual-leaf size classes: the level walk stops descending into a
#: non-swallowed, non-pruned subtree of at most the largest cap (when
#: its radius window is down to one rung and the rect kernel applies)
#: and decides its members per pair instead.  The deepest levels hold
#: most of a frontier's entries, so trading their bookkeeping for extra
#: float32 pair evaluations is a large net win on the SELFJOINC ladder.
#: Each cap gets its own padded block, so a 20-member subtree pads to
#: 24 slots, not to the largest cap — the kernel's cost is padded cells,
#: and a graded ladder keeps the padding waste around ten percent.
_VIRTUAL_LEAF_CAPS = (24, 32, 48, 64)

#: Upper bound on the padded-block allocation (bytes) before the rect
#: kernel is declined — only degenerate shapes (one huge bucket next to
#: many nodes) get anywhere near it.
_RECT_PAD_BYTES_CAP = 1 << 27


def _build_rect_pad(cols32, sq32, tree, sel, width):
    """NaN-padded per-node member-coordinate blocks for the rect kernel.

    For every selected node, row ``i`` of each block holds a member
    coordinate (or squared norm) in float32, padded to ``width`` with
    NaN — comparisons against NaN are False, so padding can never be
    counted.  Unselected rows stay NaN and are never routed here.
    """
    n_nodes = tree.elem_lo.size
    bs = tree.elem_hi[sel] - tree.elem_lo[sel]
    rows = np.repeat(np.flatnonzero(sel), bs)
    mpos = concat_ranges(tree.elem_lo[sel], bs)
    within = mpos - np.repeat(tree.elem_lo[sel], bs)
    members = tree.elems.take(mpos)
    pad = []
    for col in cols32:
        block = np.full((n_nodes, width), np.nan, dtype=np.float32)
        block[rows, within] = col.take(members)
        pad.append(block)
    sq_block = np.full((n_nodes, width), np.nan, dtype=np.float32)
    sq_block[rows, within] = sq32.take(members)
    return pad, sq_block


def _rect_leaf_cache(space, tree):
    """Lazy padded blocks for :func:`_rect_single_rung`, or ``None``.

    Graded size classes keep padding waste low: class 0 is sized to the
    largest leaf bucket and covers every node that small; each
    ``_VIRTUAL_LEAF_CAPS`` rung past it covers the subtrees in its size
    band (classes whose band is empty are skipped).  The cache tuple is
    ``(route_max, classes)`` with ``classes`` a list of
    ``(cap, pad, sq_pad)`` in ascending cap order; ``route_max`` is the
    largest member count the walk may route to the kernel.
    """
    cache = tree._rect_cache
    if cache is None:
        cache = False
        f32 = getattr(space, "float32_coords", None)
        coords = f32() if f32 is not None else None
        if coords is not None:
            cols32, sq32, _ = coords
            b = tree.elem_hi - tree.elem_lo
            leaves = tree.child_lo == tree.child_hi
            b0 = int(b[leaves].max()) if leaves.any() else 0
            caps = [b0] + [cap for cap in _VIRTUAL_LEAF_CAPS if cap > b0]
            per_node = (len(cols32) + 1) * 4
            if 0 < b0 and tree.elem_lo.size * sum(caps) * per_node <= _RECT_PAD_BYTES_CAP:
                classes = []
                prev = 0
                for cap in caps:
                    sel = (b > prev) & (b <= cap)
                    if prev == 0 or sel.any():
                        pad, sq_pad = _build_rect_pad(cols32, sq32, tree, sel, cap)
                        classes.append((cap, pad, sq_pad))
                    prev = cap
                cache = (caps[-1], classes)
        tree._rect_cache = cache
    return cache or None


#: Reusable per-thread rectangle buffers, keyed by pad width.  A fresh
#: multi-megabyte temporary per kernel call would be returned to the OS
#: on free and page-faulted back in on the next call; reuse keeps the
#: hot rectangles resident.  Thread-local so sharded walk workers never
#: share a buffer.
_RECT_TLS = threading.local()


def _rect_scratch(g, width):
    """Two float32 and two bool ``(g, width)`` views over grown-on-demand
    thread-local buffers."""
    bufs = getattr(_RECT_TLS, "bufs", None)
    if bufs is None:
        bufs = _RECT_TLS.bufs = {}
    cur = bufs.get(width)
    if cur is None or cur[0].shape[0] < g:
        cur = bufs[width] = (
            np.empty((g, width), dtype=np.float32),
            np.empty((g, width), dtype=np.float32),
            np.empty((g, width), dtype=bool),
            np.empty((g, width), dtype=bool),
        )
    return tuple(buf[:g] for buf in cur)


def _rect_single_rung(
    space, query_ids, radii, tree, diff, stride, nodes, pos, lo, b, pad, sq_pad,
    track, stats,
):
    """Single-rung leaf scatter as one rectangular float32 kernel.

    Every (entry, bucket-slot) cell of the ``(entries, width)``
    rectangle gets the squared-distance expansion
    ``||q||^2 + ||m||^2 - 2 q.m`` in float32 from the padded blocks —
    contiguous row gathers and broadcast column arithmetic, no per-pair
    index vectors at all.  A cell decides against ``r^2`` bracketed by
    an absolute margin covering the float32 round-off (``1e-4`` of the
    coordinate magnitude scale plus ``1e-6`` relative, versus actual
    error below ``1e-5`` of scale): provably-inside cells are counted
    by a row sum, provably-outside cells are dropped, and only the
    sliver in between is re-evaluated through the exact float64 metric
    path — so counts stay bit-identical to the stack walk.  NaN padding
    fails every comparison and can never be counted.
    """
    cols32, sq32, scale2 = space.float32_coords()
    qid = query_ids.take(pos)
    r = radii[lo]  # the one undecided rung, per frontier entry
    # Signed square: a negative rung must count nothing, and r*|r| < 0
    # puts every cell above the sure-in bracket; any cell the margin
    # still lets into the band is settled by the exact signed compare.
    rr = r * np.abs(r)
    # Absolute margin ~8x the worst-case accumulated float32 round-off
    # of the (dim+6)-operation expansion; the relative term keeps the
    # float32 cast of the brackets themselves conservative when the
    # radius dwarfs the data scale.
    eps = (len(cols32) + 10) * 4e-7 * scale2 + 1e-6 * rr
    r2lo = (rr - eps).astype(np.float32)[:, None]
    r2hi = (rr + eps).astype(np.float32)[:, None]
    ab, s2, sure, band = _rect_scratch(nodes.size, pad[0].shape[1])
    np.take(pad[0], nodes, axis=0, out=ab)
    np.multiply(ab, cols32[0].take(qid)[:, None], out=ab)
    for col, block in zip(cols32[1:], pad[1:]):
        np.take(block, nodes, axis=0, out=s2)
        np.multiply(s2, col.take(qid)[:, None], out=s2)
        np.add(ab, s2, out=ab)
    np.take(sq_pad, nodes, axis=0, out=s2)
    np.add(s2, sq32.take(qid)[:, None], out=s2)
    np.multiply(ab, np.float32(2.0), out=ab)
    np.subtract(s2, ab, out=s2)
    np.less_equal(s2, r2lo, out=sure)
    cnt = sure.sum(axis=1)
    np.less_equal(s2, r2hi, out=band)
    np.logical_xor(band, sure, out=band)  # sure-in cells are inside the band superset
    if track:
        pairs = int(b.sum())
        stats["distance_calls"] += 1  # the grouped float32 evaluation
        stats["searchsorted_calls"] += 1  # the rung-boundary compare
        stats["leaf_entries_total"] = stats.get("leaf_entries_total", 0) + pairs
        stats["leaf_entries_filtered"] = (
            stats.get("leaf_entries_filtered", 0) + pairs - int(band.sum())
        )
    rows = band.any(axis=1)  # one cheap reduce; nonzero's two passes with
    if rows.any():  # per-hit index arithmetic then touch only banded rows
        ridx = np.flatnonzero(rows)
        br_s, bc = np.nonzero(band[ridx])
        br = ridx.take(br_s)
        epos = tree.elem_lo.take(nodes.take(br)) + bc
        dm = space.paired_distances(qid.take(br), tree.elems.take(epos))
        if track:
            stats["distance_calls"] += 1
            stats["searchsorted_calls"] += 1
        hit = dm <= r.take(br)
        if hit.any():
            cnt += np.bincount(br[hit], minlength=cnt.size)
    nz = np.flatnonzero(cnt)
    if nz.size:
        lon = lo.take(nz)
        _range_add(diff, stride, pos.take(nz), lon, lon + 1, weights=cnt.take(nz))
        if track:
            stats["scatter_calls"] += 1


def _leaf_single_rung(
    space, query_ids, radii, tree, diff, stride, nodes, pos, lo, d, b, track, stats
):
    """Leaf scatter for entries with exactly one undecided rung.

    At the late (large-radius) blocks of a SELFJOINC nearly every leaf
    entry straddles a single radius — the window is ``[lo, lo+1)`` —
    and a member either contributes ``+1`` at column ``lo`` or nothing.
    The triangle inequality brackets ``d(q, member)`` between
    ``|d − d_elem|`` and ``d + d_elem`` (``d`` the query-to-center
    distance), which splits the pairs three ways without a metric call:

    - *sure out* — lower bound beyond ``radii[lo]``: dropped;
    - *sure in* — upper bound within ``radii[lo]``: aggregated per
      frontier entry and credited as one weighted range-add;
    - *undecided* — the band in between: the only pairs that pay for a
      distance, decided by the exact ``dm <= radii[lo]`` (equivalent to
      the stack walk's ``searchsorted`` on a one-rung window).

    Bound arithmetic runs in float32 with an absolute safety margin of
    ``1e-5`` of the magnitude scale (largest radius plus twice the
    largest parent distance bounds every operand) — float32 round-off
    is below ``3e-7`` of that scale, so the margin only ever moves
    pairs *into* the undecided band, where the exact comparison settles
    them: counts stay bit-identical to the unfiltered stack walk.
    """
    g = nodes.size
    r = radii[lo]  # the one undecided rung, per frontier entry
    de32, de_max = _leaf_filter_cache(tree)
    margin = 1e-5 * (float(radii[-1]) + 2.0 * de_max) + 1e-12
    up = (r + margin).astype(np.float32)
    dn = (r - margin).astype(np.float32)
    d32 = d.astype(np.float32)
    mpos = concat_ranges(tree.elem_lo[nodes], b)
    eidx = np.repeat(np.arange(g, dtype=np.intp), b)
    de = de32.take(mpos)
    t = d32.take(eidx)
    s = t - de
    np.abs(s, out=s)
    decided = s > up.take(eidx)  # sure out
    np.add(t, de, out=t)
    sure_in = t <= dn.take(eidx)
    sure_in &= ~decided
    cnt = np.bincount(eidx[sure_in], minlength=g)
    np.logical_or(decided, sure_in, out=decided)
    np.logical_not(decided, out=decided)
    undecided = np.flatnonzero(decided)
    if track:
        stats["searchsorted_calls"] += 1  # the rung-boundary bound compares
        stats["leaf_entries_total"] = stats.get("leaf_entries_total", 0) + eidx.size
        stats["leaf_entries_filtered"] = (
            stats.get("leaf_entries_filtered", 0) + eidx.size - undecided.size
        )
    if undecided.size:
        qe = eidx.take(undecided)
        dm = space.paired_distances(
            query_ids.take(pos.take(qe)), tree.elems.take(mpos.take(undecided))
        )
        if track:
            stats["distance_calls"] += 1
            stats["searchsorted_calls"] += 1
        hit = dm <= r.take(qe)
        if hit.any():
            cnt += np.bincount(qe[hit], minlength=g)
    nz = np.flatnonzero(cnt)
    if nz.size:
        lon = lo.take(nz)
        _range_add(diff, stride, pos.take(nz), lon, lon + 1, weights=cnt.take(nz))
        if track:
            stats["scatter_calls"] += 1


def _leaf_pairs_scatter(
    space, query_ids, radii, tree, diff, stride, nodes, pos, lo, hi, d, b, track, stats
):
    """General leaf scatter: full pair expansion over multi-rung windows.

    When the tree carries per-entry parent distances (``d_elem``) the
    (query, member) pair list is first thinned with the
    triangle-inequality bound ``|d(q, center) − d_elem|``: a member
    whose bound already exceeds the last undecided radius
    (``radii[hi-1]``, plus the absolute float round-off margin of
    :func:`_leaf_single_rung`, here in float64) cannot change any
    count, so neither the metric nor the binary search is evaluated
    for it.  Pair-level state is carried as ``eidx`` — the
    frontier-entry index of every pair — so the per-pair cost before
    the filter is one ``repeat`` plus gathers; the expensive repeats
    of query/window arrays happen only for surviving pairs.
    """
    mpos = concat_ranges(tree.elem_lo[nodes], b)
    eidx = np.repeat(np.arange(nodes.size, dtype=np.intp), b)
    if tree.d_elem is not None:
        de32, de_max = _leaf_filter_cache(tree)
        margin = 1e-5 * (float(radii[-1]) + 2.0 * de_max) + 1e-12
        bound = d.astype(np.float32).take(eidx)
        np.subtract(bound, de32.take(mpos), out=bound)
        np.abs(bound, out=bound)
        # last undecided radius per entry, float32 with the same
        # conservative margin as _leaf_single_rung: the filter only
        # drops pairs provably beyond every undecided rung.
        thr = (radii[hi - 1] + margin).astype(np.float32)
        alive = bound <= thr.take(eidx)
        if track:
            stats["searchsorted_calls"] += 1
            stats["leaf_entries_total"] = (
                stats.get("leaf_entries_total", 0) + eidx.size
            )
            stats["leaf_entries_filtered"] = stats.get(
                "leaf_entries_filtered", 0
            ) + int(eidx.size - int(alive.sum()))
        if not alive.all():
            eidx, mpos = eidx[alive], mpos[alive]
        if eidx.size == 0:
            return
    rep_q = pos[eidx]
    dm = space.paired_distances(query_ids[rep_q], tree.elems[mpos])
    e = np.searchsorted(radii, dm)
    if track:
        stats["distance_calls"] += 1
        stats["searchsorted_calls"] += 1
        stats["scatter_calls"] += 1
    valid = e < hi[eidx]
    eidx, e = eidx[valid], e[valid]
    _range_add(
        diff, stride, rep_q[valid], np.maximum(e, lo[eidx]), hi[eidx]
    )


def _level_leaf_scatter(
    space, query_ids, radii, tree, diff, stride, nodes, pos, lo, hi, d, track, stats,
    rect_fn=None,
):
    """Scatter every leaf bucket of one level into ``diff`` at once.

    Entries whose radius window has collapsed to a single rung — the
    overwhelming majority on a SELFJOINC ladder — take the bound-split
    fast path (:func:`_leaf_single_rung`); the rest expand to pairs and
    walk the full window (:func:`_leaf_pairs_scatter`).  Both paths
    produce counts bit-identical to the stack walk's per-node leaf
    handling: integer scatter adds commute, so splitting the entries is
    invisible in the sums.

    ``rect_fn`` swaps the single-rung rectangle implementation (same
    signature as :func:`_rect_single_rung`); the compiled walk binds
    its C kernel here so every other leaf path stays shared.
    """
    if rect_fn is None:
        rect_fn = _rect_single_rung
    b = tree.elem_hi[nodes] - tree.elem_lo[nodes]
    keep = b > 0
    if not keep.all():
        nodes, pos, lo, hi, d, b = (
            nodes[keep], pos[keep], lo[keep], hi[keep], d[keep], b[keep]
        )
        if nodes.size == 0:
            return
    w1 = (hi - lo) == 1
    rc = _rect_leaf_cache(space, tree)
    if rc is not None and w1.any():
        rem = w1
        for cap, pad, sq_pad in rc[1]:
            cls = rem & (b <= cap)
            if cls.any():
                rect_fn(
                    space, query_ids, radii, tree, diff, stride,
                    nodes[cls], pos[cls], lo[cls], b[cls], pad, sq_pad,
                    track, stats,
                )
                rem = rem ^ cls
        if w1.all():
            return
        rest = ~w1
        nodes, pos, lo, hi, d, b = (
            nodes[rest], pos[rest], lo[rest], hi[rest], d[rest], b[rest]
        )
    elif tree.d_elem is not None:
        if w1.all():
            _leaf_single_rung(
                space, query_ids, radii, tree, diff, stride,
                nodes, pos, lo, d, b, track, stats,
            )
            return
        if w1.any():
            _leaf_single_rung(
                space, query_ids, radii, tree, diff, stride,
                nodes[w1], pos[w1], lo[w1], d[w1], b[w1], track, stats,
            )
            wide = ~w1
            nodes, pos, lo, hi, d, b = (
                nodes[wide], pos[wide], lo[wide], hi[wide], d[wide], b[wide]
            )
    _leaf_pairs_scatter(
        space, query_ids, radii, tree, diff, stride,
        nodes, pos, lo, hi, d, b, track, stats,
    )


def _clipped_cols(radii, v, lo, rl, side, track, stats):
    """Window-clipped ladder positions ``max(searchsorted(radii, v), lo)``.

    ``rl`` is ``radii[lo]`` per entry.  A value at or inside its
    entry's low radius clips to ``lo`` — the overwhelming majority once
    a SELFJOINC window has tightened — so only the remainder pays a
    (subset) binary search.  The clip gate mirrors ``searchsorted``
    semantics exactly: strict for ``side="left"``
    (``searchsorted(v) > lo`` iff ``v > radii[lo]``), inclusive for
    ``side="right"`` (``> lo`` iff ``v >= radii[lo]``).  Callers
    guarantee ``v`` does not exceed ``radii[hi-1]`` (their liveness
    gate), so results stay inside the window.  Returns ``lo`` itself
    when nothing clips above it — callers must not mutate the result.
    """
    mid = np.flatnonzero(v > rl if side == "left" else v >= rl)
    if not mid.size:
        return lo
    cols = lo.copy()
    cols[mid] = np.searchsorted(radii, v.take(mid), side=side)
    if track:
        stats["searchsorted_calls"] += 1
    return cols


def _level_step(space, query_ids, radii, tree, diff, frontier, stats=None):
    """Advance a :class:`WalkFrontier` by one depth, scattering into ``diff``.

    The level-synchronous core: the same swallow / prune /
    window-tightening logic as one :func:`frontier_count_walk`
    iteration, but applied to the flat arrays of *every* (node, query)
    pair at the current depth — one grouped
    :meth:`~repro.metric.base.MetricSpace.paired_distances` call
    (queries stay on the Q side of the metric, so every float is
    bit-identical to the per-node bulk evaluation), batched
    ``searchsorted`` over concatenated value arrays (elementwise
    identical to the per-node calls), bincount scatters (integer adds
    commute, so any grouping sums to the same difference array), and a
    CSR :func:`concat_ranges` expansion to the next depth.
    """
    track = stats is not None
    nodes, pos, lo, hi, dpar = frontier
    if track:
        stats["steps"] += 1
        stats["entries"] += nodes.size
    a = radii.size
    stride = a + 1
    if a == 0:
        return _EMPTY_FRONTIER
    if dpar is not None:
        bound = np.abs(dpar - tree.d_parent[nodes]) - tree.radius[nodes]
        lo = np.maximum(lo, np.searchsorted(radii, bound))
        if track:
            stats["searchsorted_calls"] += 1
        live = lo < hi
        if not live.all():
            nodes, pos, lo, hi = nodes[live], pos[live], lo[live], hi[live]
            if nodes.size == 0:
                return _EMPTY_FRONTIER
    d = space.paired_distances(query_ids[pos], tree.center[nodes])
    r_node = tree.radius[nodes]
    if track:
        stats["distance_calls"] += 1
    # Every searchsorted below is replaced by two boundary compares
    # against the entry's own window radii (``rl = radii[lo]``,
    # ``rh = radii[hi-1]``): a value past ``rh`` is a kill, a value at
    # or inside ``rl`` clips to ``lo``, and only values strictly inside
    # the window — rare once SELFJOINC windows tighten to a rung — pay
    # a subset binary search (:func:`_clipped_cols`).  Each compare
    # mirrors ``searchsorted`` semantics exactly (see the helper), so
    # decisions stay bit-identical to the stack walk.
    rsh = np.empty(a + 1)  # rsh[k] = radii[k-1]; rsh[0] junk (dead rows only)
    rsh[0] = radii[0]
    rsh[1:] = radii
    rh = rsh.take(hi)  # last undecided radius, per entry
    v = d + r_node
    swallow = v <= rh  # == searchsorted(radii, d + r_node) < hi
    if swallow.any():  # ball swallowed whole: credit size[node] in O(1)
        sw = np.flatnonzero(swallow)
        lo_sw = lo.take(sw)
        cols = _clipped_cols(
            radii, v.take(sw), lo_sw, radii.take(lo_sw), "left", track, stats
        )
        _range_add(
            diff, stride, pos.take(sw), cols, hi.take(sw),
            weights=tree.size[nodes.take(sw)],
        )
        # The remaining window is [lo, cols) — empty (dead) when the
        # credit started at lo.  Dead rows may leave a garbage rh
        # (cols - 1 can wrap); they cannot survive the lo < hi gate.
        hi = hi.copy()
        hi[sw] = cols
        rh[sw] = rsh.take(cols)
        if track:
            stats["scatter_calls"] += 1
    v = np.subtract(d, r_node, out=v)
    live = (v <= rh) & (lo < hi)  # kill: searchsorted(v) >= hi, or already dead
    if not live.any():
        return _EMPTY_FRONTIER
    if not live.all():
        keep = np.flatnonzero(live)
        nodes, pos, lo, hi, d, v, rh = (
            nodes.take(keep), pos.take(keep), lo.take(keep), hi.take(keep),
            d.take(keep), v.take(keep), rh.take(keep),
        )
    rl = radii.take(lo)
    mid = np.flatnonzero(v > rl)
    if mid.size:  # window floor rises: lo = searchsorted(radii, d - r_node)
        lo = lo.copy()
        nl = np.searchsorted(radii, v.take(mid))
        lo[mid] = nl
        rl[mid] = radii.take(nl)
        if track:
            stats["searchsorted_calls"] += 1
    leaf = tree.child_lo[nodes] == tree.child_hi[nodes]
    rc = _rect_leaf_cache(space, tree)
    if rc is not None:
        # Virtual leaves: a small non-swallowed subtree whose window is
        # down to one rung is decided per pair by the rect kernel right
        # here instead of walking its remaining levels — its members
        # are one contiguous ``elems`` slice, and the exact-equivalence
        # the node-level bounds guarantee (a credited or pruned rung
        # agrees with the per-pair float64 decision, the property the
        # oracle tests pin for every family) makes the early per-pair
        # decision bit-identical to descending the subtree.
        leaf |= (tree.size[nodes] <= rc[0]) & (hi - lo == 1)
    if leaf.any():
        lf = np.flatnonzero(leaf)
        _level_leaf_scatter(
            space, query_ids, radii, tree, diff, stride,
            nodes.take(lf), pos.take(lf), lo.take(lf), hi.take(lf),
            d.take(lf), track, stats,
        )
    internal = ~leaf
    if not internal.any():
        return _EMPTY_FRONTIER
    if not internal.all():
        keep = np.flatnonzero(internal)
        nodes, pos, lo, hi, d, rl, rh = (
            nodes.take(keep), pos.take(keep), lo.take(keep), hi.take(keep),
            d.take(keep), rl.take(keep), rh.take(keep),
        )
    if tree.vp_split:
        self_in = d <= rh  # == searchsorted(radii, d) < hi
        if self_in.any():  # the vantage point itself
            si = np.flatnonzero(self_in)
            lo_si = lo.take(si)
            cols = _clipped_cols(
                radii, d.take(si), lo_si, rl.take(si), "left", track, stats
            )
            _range_add(diff, stride, pos.take(si), cols, hi.take(si))
            if track:
                stats["scatter_calls"] += 1
        t = tree.threshold[nodes]
        child_in = tree.child_lo[nodes]
        ii = np.flatnonzero((d - t) <= rh)  # == lo_in < hi
        oo = np.flatnonzero((t - d) < rh)  # == lo_out < hi (side="right")
        lo_in = _clipped_cols(
            radii, d.take(ii) - t.take(ii), lo.take(ii), rl.take(ii),
            "left", track, stats,
        )
        lo_out = _clipped_cols(
            radii, t.take(oo) - d.take(oo), lo.take(oo), rl.take(oo),
            "right", track, stats,
        )
        return WalkFrontier(
            nodes=np.concatenate([child_in.take(ii), child_in.take(oo) + 1]),
            pos=np.concatenate([pos.take(ii), pos.take(oo)]),
            lo=np.concatenate([lo_in, lo_out]),
            hi=np.concatenate([hi.take(ii), hi.take(oo)]),
            dpar=None,
        )
    counts = tree.child_hi[nodes] - tree.child_lo[nodes]
    return WalkFrontier(
        nodes=concat_ranges(tree.child_lo[nodes], counts),
        pos=np.repeat(pos, counts),
        lo=np.repeat(lo, counts),
        hi=np.repeat(hi, counts),
        dpar=np.repeat(d, counts) if tree.d_parent is not None else None,
    )


def _finish_counts(diff: np.ndarray, nq: int, a: int) -> np.ndarray:
    """Flat float64 difference array -> the ``(nq, a)`` int64 count matrix."""
    return np.cumsum(diff.reshape(nq, a + 1)[:, :a].astype(np.int64), axis=1)


def level_count_walk(
    space: MetricSpace,
    query_ids: np.ndarray,
    radii: np.ndarray,
    tree: FlatTree,
    *,
    frontier: WalkFrontier | None = None,
    stats: dict | None = None,
) -> np.ndarray:
    """Level-synchronous multi-radius range counting over a :class:`FlatTree`.

    Produces counts bit-identical to :func:`frontier_count_walk` — same
    distances (queries on the Q side of every metric call), same
    ``searchsorted`` boundary decisions, same integer credits — but the
    walk is depth-major: the whole frontier of one depth is flat
    ``(node, query, lo, hi)`` arrays and each depth costs a constant
    number of NumPy dispatches, so total interpreter overhead is
    O(depth) instead of O(nodes).  This is the default walk behind
    every flat-backed index; the stack walk remains as the
    differential baseline.

    ``frontier`` resumes the walk from a saved :class:`WalkFrontier`
    (the ``shard_by="tree"`` executor opens the top of the tree once,
    splits the frontier into disjoint node ranges and hands each worker
    one piece); counts accumulated before the split must be added by
    the caller.  ``stats`` collects the same dispatch counters as
    :func:`frontier_count_walk`.
    """
    if stats is not None:
        for key in _WALK_STAT_KEYS:
            stats.setdefault(key, 0)
    nq, a = query_ids.size, radii.size
    query_ids = _identity_or_ids(query_ids)
    diff = np.zeros(nq * (a + 1), dtype=np.float64)
    fr = _root_frontier(nq, a) if frontier is None else frontier
    work = [fr]
    while work:
        fr = work.pop()
        if fr.nodes.size > _LEVEL_CHUNK:
            # Bound the temporaries: scatters are commuting integer
            # adds, so slicing a frontier into arbitrary pieces and
            # walking each to completion sums to the identical matrix,
            # while peak memory stays at chunk scale instead of the
            # full width of the tree's densest level.
            for start in range(0, fr.nodes.size, _LEVEL_CHUNK):
                sl = slice(start, start + _LEVEL_CHUNK)
                work.append(
                    WalkFrontier(
                        fr.nodes[sl], fr.pos[sl], fr.lo[sl], fr.hi[sl],
                        None if fr.dpar is None else fr.dpar[sl],
                    )
                )
            continue
        fr = _level_step(space, query_ids, radii, tree, diff, fr, stats)
        if fr.nodes.size:
            work.append(fr)
    return _finish_counts(diff, nq, a)


def open_tree_frontier(
    space: MetricSpace,
    query_ids: np.ndarray,
    radii: np.ndarray,
    tree: FlatTree,
    *,
    min_nodes: int,
    stats: dict | None = None,
) -> tuple[np.ndarray, WalkFrontier]:
    """Walk the top of the tree until the frontier spans ``min_nodes``.

    Runs level steps until at least ``min_nodes`` distinct nodes are on
    the frontier (or the walk finishes), and returns the counts
    accumulated so far — a full ``(nq, len(radii))`` matrix — together
    with the remaining :class:`WalkFrontier`.  Splitting that frontier
    (:func:`split_frontier`) and summing per-piece
    :func:`level_count_walk` results onto the partial counts
    reproduces the serial walk exactly: scatters are integer adds and
    the final cumsum is linear, so any partition of the work sums to
    the same matrix.
    """
    if stats is not None:
        for key in _WALK_STAT_KEYS:
            stats.setdefault(key, 0)
    nq, a = query_ids.size, radii.size
    query_ids = _identity_or_ids(query_ids)
    diff = np.zeros(nq * (a + 1), dtype=np.float64)
    fr = _root_frontier(nq, a)
    while fr.nodes.size and np.unique(fr.nodes).size < min_nodes:
        fr = _level_step(space, query_ids, radii, tree, diff, fr, stats)
    return _finish_counts(diff, nq, a), fr


def split_frontier(frontier: WalkFrontier, shards: int) -> list[WalkFrontier]:
    """Split a frontier into at most ``shards`` disjoint node-range pieces.

    The distinct node ids on the frontier are cut into contiguous
    groups of near-equal count; every frontier entry follows its node.
    Because a node's subtree occupies a contiguous node-index range
    (CSR layout), workers resuming different pieces touch disjoint
    regions of the tree arrays.  Empty pieces are dropped, so fewer
    than ``shards`` frontiers may come back.
    """
    if frontier.nodes.size == 0:
        return []
    uniq = np.unique(frontier.nodes)
    k = max(1, min(int(shards), uniq.size))
    groups = [g for g in np.array_split(uniq, k) if g.size]
    uppers = np.array([g[-1] for g in groups])
    gid = np.searchsorted(uppers, frontier.nodes)
    out = []
    for g in range(len(groups)):
        m = gid == g
        if not m.any():
            continue
        out.append(
            WalkFrontier(
                nodes=frontier.nodes[m],
                pos=frontier.pos[m],
                lo=frontier.lo[m],
                hi=frontier.hi[m],
                dpar=None if frontier.dpar is None else frontier.dpar[m],
            )
        )
    return out


def attach_leaf_distances(space: MetricSpace, tree: FlatTree) -> FlatTree:
    """Populate ``tree.d_elem`` with each leaf member's center distance.

    One :meth:`~repro.metric.base.MetricSpace.paired_distances` call
    measures every leaf bucket against its leaf's center — the same
    float path the walks compare radii against — and the result powers
    the leaf-scatter triangle filter of :func:`level_count_walk`.
    Positions held by internal nodes (a VP-tree's vantage points) stay
    zero; the leaf scatter never reads them.  Trees that already carry
    ``d_elem`` (M-trees record it during construction) are returned
    untouched.
    """
    if tree.d_elem is not None:
        return tree
    leaves = np.flatnonzero(tree.child_lo == tree.child_hi)
    b = tree.elem_hi[leaves] - tree.elem_lo[leaves]
    leaves, b = leaves[b > 0], b[b > 0]
    d_elem = np.zeros(tree.elems.size, dtype=np.float64)
    if leaves.size:
        mpos = concat_ranges(tree.elem_lo[leaves], b)
        d_elem[mpos] = space.paired_distances(
            np.repeat(tree.center[leaves], b), tree.elems[mpos]
        )
    tree.d_elem = d_elem
    return tree


#: Walk implementations selectable on every flat-backed index: the
#: level-synchronous walk, the node-major stack walk kept as the
#: differential baseline, and the C/ctypes kernel walk
#: (:mod:`repro.index.ckernel`) — all three bit-identical.
WALK_MODES = ("level", "stack", "compiled")

#: The default on every flat-backed index: resolve at query time to
#: ``"compiled"`` when the C kernel builds, ``"level"`` otherwise.
#: Kept symbolic (not resolved at construction) so persisted indexes
#: stay environment-independent.
DEFAULT_WALK = "auto"


def check_walk_mode(walk: str) -> str:
    """Validate a walk-mode string (:data:`WALK_MODES` or ``"auto"``)."""
    if walk != DEFAULT_WALK and walk not in WALK_MODES:
        raise ValueError(
            f"unknown walk {walk!r}; choose from {WALK_MODES + (DEFAULT_WALK,)}"
        )
    return walk


def resolve_walk(walk: str = DEFAULT_WALK) -> str:
    """Resolve ``"auto"`` to a concrete walk for this environment:
    ``"compiled"`` when the C kernel is available, else ``"level"``."""
    if check_walk_mode(walk) != DEFAULT_WALK:
        return walk
    from repro.index.ckernel import kernel_available

    return "compiled" if kernel_available() else "level"


#: Construction strategies selectable on the insertion-tree families
#: (M-tree / Slim-tree / cover tree): the level-synchronous array
#: bulk-load (default — writes :class:`FlatTree` arrays directly, no
#: object-node intermediate) and the classic per-insert builders kept
#: as the frozen differential baseline (mirroring ``walk="stack"``).
BUILD_MODES = ("bulk", "insert")


def check_build_mode(build: str) -> str:
    """Validate a build-mode string against :data:`BUILD_MODES`."""
    if build not in BUILD_MODES:
        raise ValueError(f"unknown build {build!r}; choose from {BUILD_MODES}")
    return build


def count_walk(
    space: MetricSpace,
    query_ids: np.ndarray,
    radii: np.ndarray,
    tree: FlatTree,
    *,
    walk: str = DEFAULT_WALK,
    frontier: "WalkFrontier | None" = None,
    stats: dict | None = None,
) -> np.ndarray:
    """Dispatch a multi-radius count to the selected walk implementation.

    ``walk="auto"`` (the default) resolves to the compiled kernel when
    it is available and the numpy level walk otherwise.  An *explicit*
    ``walk="compiled"`` that cannot run (no compiler, or
    ``REPRO_NO_CKERNEL=1``) falls back to the level walk with one loud
    :class:`RuntimeWarning` — counts are bit-identical either way.
    ``frontier`` resumes a saved :class:`WalkFrontier` (tree-axis
    sharding); the stack walk has no resumable form and rejects it.

    When process telemetry is enabled (:mod:`repro.obs.hooks`), the
    walk's stats counters and wall time merge into the process-wide
    walk sink once per call; when it is off (the default), the only
    cost is this one ``None`` check — the walk itself is untouched
    either way, so counts stay bit-identical with telemetry on.
    """
    sink = _obs_hooks.WALK
    if sink is None:
        return _count_walk_dispatch(
            space, query_ids, radii, tree, walk=walk, frontier=frontier, stats=stats
        )
    local = stats if stats is not None else {}
    # Callers may accumulate one stats dict across sharded resumes, so
    # merge only this call's delta into the process sink.
    before = dict(local)
    started = time.perf_counter()
    out = _count_walk_dispatch(
        space, query_ids, radii, tree, walk=walk, frontier=frontier, stats=local
    )
    elapsed = time.perf_counter() - started
    delta = {k: v - before.get(k, 0) for k, v in local.items()}
    sink.merge(delta, walks=1, seconds=elapsed)
    return out


def _count_walk_dispatch(
    space: MetricSpace,
    query_ids: np.ndarray,
    radii: np.ndarray,
    tree: FlatTree,
    *,
    walk: str,
    frontier: "WalkFrontier | None",
    stats: dict | None,
) -> np.ndarray:
    """The walk selection of :func:`count_walk`, telemetry-free."""
    walk = resolve_walk(walk)
    if walk == "compiled":
        from repro.index.ckernel import (
            compiled_count_walk,
            kernel_available,
            warn_fallback,
        )

        if kernel_available():
            return compiled_count_walk(
                space, query_ids, radii, tree, frontier=frontier, stats=stats
            )
        warn_fallback()
        walk = "level"
    if walk == "stack":
        if frontier is not None:
            raise ValueError(
                "walk='stack' has no resumable frontier form; "
                "use walk='level' or walk='compiled' for sharded resumes"
            )
        return frontier_count_walk(space, query_ids, radii, tree, stats=stats)
    return level_count_walk(
        space, query_ids, radii, tree, frontier=frontier, stats=stats
    )


class FlatQueryMixin:
    """Count queries answered by a flat walk over ``self.flat``.

    Mixed into every flat-backed index; requires ``self.space`` and a
    ``self.flat`` :class:`FlatTree`.  ``self.walk`` selects the
    implementation — the level-synchronous :func:`level_count_walk`
    (default) or the node-major :func:`frontier_count_walk` baseline;
    both return bit-identical counts.
    """

    space: MetricSpace
    flat: FlatTree
    walk: str = DEFAULT_WALK

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        """Per-query neighbor counts (see :class:`MetricIndex`)."""
        query_ids = np.asarray(query_ids, dtype=np.intp)
        counts = count_walk(
            self.space, query_ids, np.array([float(radius)]), self.flat,
            walk=self.walk,
        )
        return counts[:, 0].astype(np.intp)

    def count_within_many(self, query_ids, radii) -> np.ndarray:
        """All radii for all queries in one walk over the flat arrays
        (:func:`level_count_walk` / :func:`frontier_count_walk`)."""
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        return count_walk(self.space, query_ids, radii, self.flat, walk=self.walk)


class FrozenIndex(FlatQueryMixin, MetricIndex):
    """A fitted index reduced to its flat arrays — what persistence loads.

    Answers every :class:`MetricIndex` query from a :class:`FlatTree`
    alone; construction logic, node objects and RNG state are gone.
    ``diameter_estimate`` returns the value recorded at save time, so a
    loaded index anchors the same radius ladder as the one that was
    saved.
    """

    def __init__(
        self,
        space: MetricSpace,
        ids,
        flat: FlatTree,
        *,
        kind: str = "frozen",
        diameter: float | None = None,
        walk: str = DEFAULT_WALK,
    ):
        super().__init__(space, ids)
        self.flat = flat
        self.kind = str(kind)
        self._diameter = None if diameter is None else float(diameter)
        self.walk = check_walk_mode(walk)

    def diameter_estimate(self) -> float:
        """The diameter recorded at save time (two-scan fallback without one)."""
        if self._diameter is not None:
            return self._diameter
        return super().diameter_estimate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrozenIndex(kind={self.kind!r}, n={len(self)}, nodes={self.flat.n_nodes})"


def concat_ranges(starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """``np.concatenate([np.arange(s, s + k) for s, k in zip(starts, sizes)])``
    without the per-range Python loop (all ``sizes`` must be positive).

    The level-synchronous builds use this to gather every tree level's
    member positions — one cumsum over a step array whose entries are 1
    inside a range and the jump to the next start at each boundary.
    """
    starts = np.asarray(starts, dtype=np.intp)
    sizes = np.asarray(sizes, dtype=np.intp)
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    step = np.ones(total, dtype=np.intp)
    step[0] = starts[0]
    if starts.size > 1:
        step[np.cumsum(sizes[:-1])] = starts[1:] - (starts[:-1] + sizes[:-1]) + 1
    return np.cumsum(step)


def chunked(array: np.ndarray, size: int):
    """Yield consecutive chunks of ``array`` of at most ``size`` rows."""
    for start in range(0, len(array), size):
        yield array[start : start + size]
