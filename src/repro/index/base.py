"""The MetricIndex protocol shared by every tree in :mod:`repro.index`.

An index covers a subset of a :class:`~repro.metric.base.MetricSpace`
(identified by element ids) and answers four queries:

- ``count_within(query_ids, radius)`` — per-query neighbor counts, the
  *count-only principle* of Sec. IV-G (no pair materialization);
- ``count_within_many(query_ids, radii)`` — the multi-radius form
  McCatch's radius ladder actually needs: one ``(q, a)`` matrix of
  counts.  The generic default stacks per-radius calls; the metric
  trees override it with a single-descent walk that answers every
  radius at once (see :mod:`repro.engine`);
- ``pairs_within(radius)`` — the self-join of Alg. 3 line 12, needed
  only for the small outlier set;
- ``diameter_estimate()`` — Alg. 1 line 2, the radius-ladder anchor.

Queries are expressed as element ids of the same space, so a join
between outliers and inliers (Alg. 4) is just an index on the inlier
ids queried with the outlier ids.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.metric.base import MetricSpace

#: Sentinel for neighbor counts a scheduling principle never computed
#: (see the sparse-focused principle in :mod:`repro.engine`).  Lives
#: here — the one module both the engine and the join layer can import
#: without a cycle.
UNKNOWN_COUNT = -1


class MetricIndex(ABC):
    """Base class for range-count indexes over a MetricSpace subset."""

    def __init__(self, space: MetricSpace, ids: Sequence[int] | np.ndarray | None = None):
        self.space = space
        if ids is None:
            ids = np.arange(len(space), dtype=np.intp)
        self.ids = np.asarray(ids, dtype=np.intp)
        if self.ids.size == 0:
            raise ValueError("cannot build an index over zero elements")

    def __len__(self) -> int:
        return int(self.ids.size)

    @abstractmethod
    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        """Number of indexed elements within ``radius`` of each query element.

        Distances are inclusive (``d <= radius``).  A query element that
        is itself indexed counts itself, matching the paper's
        "neighbors (+ self)" convention.
        """

    def count_within_many(
        self, query_ids: Sequence[int] | np.ndarray, radii: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Counts for every query at every radius: a ``(q, a)`` int matrix.

        ``radii`` must be sorted ascending (ties allowed).  Entry
        ``[i, e]`` equals ``count_within([query_ids[i]], radii[e])[0]``
        exactly — implementations answer all radii in one structure
        walk, but never change a count.

        The generic default issues one :meth:`count_within` pass per
        radius; the metric trees override it with a single descent that
        prunes with the largest still-active radius and bucket-counts
        all radii at once.
        """
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        out = np.empty((query_ids.size, radii.size), dtype=np.int64)
        for e in range(radii.size):
            out[:, e] = self.count_within(query_ids, float(radii[e]))
        return out

    def pairs_within(self, radius: float) -> list[tuple[int, int]]:
        """All unordered indexed pairs ``(i, j)``, ``i < j``, within ``radius``.

        Default implementation delegates to per-element range queries;
        subclasses may override.  Only used on small sets (the outliers),
        so the default is adequate.
        """
        pairs: list[tuple[int, int]] = []
        ids = self.ids
        for a in range(ids.size):
            d = self.space.distances(int(ids[a]), ids[a + 1 :])
            for off in np.nonzero(d <= radius)[0]:
                i, j = int(ids[a]), int(ids[a + 1 + off])
                pairs.append((i, j) if i < j else (j, i))
        return pairs

    def diameter_estimate(self) -> float:
        """Estimated diameter of the indexed elements (Alg. 1 line 2).

        Default: the classic two-scan heuristic — from an arbitrary
        element find the farthest element ``p``, then the farthest from
        ``p``.  Exact on many shapes and never more than a factor 2 off
        for metric spaces; subclasses with structure (tree roots,
        bounding boxes) override with the paper's root-children rule.
        """
        ids = self.ids
        if ids.size == 1:
            return 0.0
        d0 = self.space.distances(int(ids[0]), ids)
        far = int(ids[int(np.argmax(d0))])
        d1 = self.space.distances(far, ids)
        return float(d1.max())


def check_radii_ascending(radii: Sequence[float] | np.ndarray) -> np.ndarray:
    """Validate the multi-radius query vector: 1-d, nonempty, ascending."""
    radii = np.asarray(radii, dtype=np.float64)
    if radii.ndim != 1 or radii.size == 0:
        raise ValueError("radii must be a nonempty 1-d array")
    if np.any(np.diff(radii) < 0):
        raise ValueError("radii must be sorted ascending")
    return radii


def frontier_count_walk(
    space: MetricSpace,
    query_ids: np.ndarray,
    radii: np.ndarray,
    root,
    center_of,
    descend,
) -> np.ndarray:
    """Node-major multi-radius range counting over a metric tree.

    The shared engine room behind the single-walk ``count_within_many``
    overrides of :class:`~repro.index.vptree.VPTree`,
    :class:`~repro.index.balltree.BallTree` and
    :class:`~repro.index.covertree.CoverTree`.  Nodes must expose a
    covering ``radius``, a member ``size`` and an optional leaf
    ``bucket``; ``center_of(node)`` returns the center element id, and
    ``descend(stack, node, pos, lo, hi, d, diff, radii)`` handles an
    internal node whose window survived — pushing children (with any
    tree-specific window tightening) and crediting members not stored
    in any child, such as the VP-tree's vantage point.

    The tree is walked once with a *query frontier*: every stack entry
    carries the queries that still reach that subtree plus, per query,
    the window ``[lo, hi)`` of radius positions not yet decided there.
    Each node computes one bulk distance block for its whole frontier
    (queries stay the ``Q`` side of the metric, so floats are
    bit-identical to the per-query walks'); radii whose ball swallows
    the node are credited ``node.size`` in O(1) and leave the window,
    radii whose ball cannot reach it leave it too, and leaf buckets
    scatter range-adds into a per-query difference array that one
    cumulative sum turns into counts.
    """
    nq, a = query_ids.size, radii.size
    diff = np.zeros((nq, a + 1), dtype=np.int64)
    stack = [(root, np.arange(nq), np.zeros(nq, dtype=np.intp), np.full(nq, a, dtype=np.intp))]
    while stack:
        node, pos, lo, hi = stack.pop()
        d = space.distances_among(query_ids[pos], [center_of(node)])[:, 0]
        full = np.searchsorted(radii, d + node.radius)
        swallow = full < hi
        if swallow.any():  # ball swallowed whole
            rows = pos[swallow]
            diff[rows, np.maximum(full[swallow], lo[swallow])] += node.size
            diff[rows, hi[swallow]] -= node.size
            hi = np.minimum(hi, full)
        lo = np.maximum(lo, np.searchsorted(radii, d - node.radius))
        live = lo < hi
        if not live.any():
            continue
        if not live.all():
            pos, lo, hi, d = pos[live], lo[live], hi[live], d[live]
        if node.bucket is not None:
            dm = space.distances_among(query_ids[pos], node.bucket)
            e = np.searchsorted(radii, dm)  # (m, b) radius position per member
            valid = e < hi[:, None]
            rows = np.broadcast_to(pos[:, None], e.shape)[valid]
            np.add.at(diff, (rows, np.maximum(e, lo[:, None])[valid]), 1)
            np.add.at(diff, (rows, np.broadcast_to(hi[:, None], e.shape)[valid]), -1)
            continue
        descend(stack, node, pos, lo, hi, d, diff, radii)
    return np.cumsum(diff[:, :a], axis=1)


def chunked(array: np.ndarray, size: int):
    """Yield consecutive chunks of ``array`` of at most ``size`` rows."""
    for start in range(0, len(array), size):
        yield array[start : start + size]
