"""The MetricIndex protocol and the flat array-backed tree substrate.

An index covers a subset of a :class:`~repro.metric.base.MetricSpace`
(identified by element ids) and answers four queries:

- ``count_within(query_ids, radius)`` — per-query neighbor counts, the
  *count-only principle* of Sec. IV-G (no pair materialization);
- ``count_within_many(query_ids, radii)`` — the multi-radius form
  McCatch's radius ladder actually needs: one ``(q, a)`` matrix of
  counts.  The generic default stacks per-radius calls; the metric
  trees override it with a single-descent walk that answers every
  radius at once (see :mod:`repro.engine`);
- ``pairs_within(radius)`` — the self-join of Alg. 3 line 12, needed
  only for the small outlier set;
- ``diameter_estimate()`` — Alg. 1 line 2, the radius-ladder anchor.

Queries are expressed as element ids of the same space, so a join
between outliers and inliers (Alg. 4) is just an index on the inlier
ids queried with the outlier ids.

Every metric tree in this package stores its structure as a
:class:`FlatTree` — a struct-of-arrays container (contiguous ``center``
/ ``threshold`` / ``radius`` / ``size`` / CSR-style children arrays
plus one permutation of element ids) instead of a graph of Python node
objects.  The VP- and ball trees build it directly with
level-synchronous vectorized construction; the insertion-built trees
(cover, M-, Slim-) keep their classic build logic and *freeze* into a
FlatTree before the first query.  One shared
:func:`frontier_count_walk` answers multi-radius count queries over
the flat arrays, and because the layout is a handful of primitive
NumPy arrays, any fitted index can be persisted to a single ``.npz``
(:mod:`repro.io.indexes`) and served without rebuilding.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.metric.base import MetricSpace

#: Sentinel for neighbor counts a scheduling principle never computed
#: (see the sparse-focused principle in :mod:`repro.engine`).  Lives
#: here — the one module both the engine and the join layer can import
#: without a cycle.
UNKNOWN_COUNT = -1


class MetricIndex(ABC):
    """Base class for range-count indexes over a MetricSpace subset."""

    def __init__(self, space: MetricSpace, ids: Sequence[int] | np.ndarray | None = None):
        self.space = space
        if ids is None:
            ids = np.arange(len(space), dtype=np.intp)
        self.ids = np.asarray(ids, dtype=np.intp)
        if self.ids.size == 0:
            raise ValueError("cannot build an index over zero elements")

    def __len__(self) -> int:
        return int(self.ids.size)

    @abstractmethod
    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        """Number of indexed elements within ``radius`` of each query element.

        Distances are inclusive (``d <= radius``).  A query element that
        is itself indexed counts itself, matching the paper's
        "neighbors (+ self)" convention.
        """

    def count_within_many(
        self, query_ids: Sequence[int] | np.ndarray, radii: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Counts for every query at every radius: a ``(q, a)`` int matrix.

        ``radii`` must be sorted ascending (ties allowed).  Entry
        ``[i, e]`` equals ``count_within([query_ids[i]], radii[e])[0]``
        exactly — implementations answer all radii in one structure
        walk, but never change a count.

        The generic default issues one :meth:`count_within` pass per
        radius; the metric trees override it with a single descent that
        prunes with the largest still-active radius and bucket-counts
        all radii at once.
        """
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        out = np.empty((query_ids.size, radii.size), dtype=np.int64)
        for e in range(radii.size):
            out[:, e] = self.count_within(query_ids, float(radii[e]))
        return out

    #: Query-chunk size bounding the temporary distance-block footprint
    #: of the generic bulk implementations (pairs_within here, the
    #: count queries in :class:`~repro.index.bruteforce.BruteForceIndex`).
    _CHUNK = 512

    def pairs_within(self, radius: float) -> list[tuple[int, int]]:
        """All unordered indexed pairs ``(i, j)``, ``i < j``, within ``radius``.

        Default implementation, by metric type: vector spaces use
        chunked bulk blocks — each chunk of elements measured against
        itself and its successors in one BLAS/einsum
        ``distances_among`` call, qualifying pairs selected and
        ordered by array ops, no per-element Python loop.  Object
        spaces keep one bulk row per element against its successors:
        their "bulk" kernel is the honest per-pair metric loop, so the
        triangle-only row form is what minimizes metric evaluations.
        Only used on small sets (the outliers of Alg. 3), so the
        O(n^2) distance cost is fine; subclasses may still override.
        """
        pairs: list[tuple[int, int]] = []
        ids = self.ids
        if not self.space.is_vector:
            for a in range(ids.size - 1):
                i = int(ids[a])
                d = self.space.distances(i, ids[a + 1 :])
                near = ids[a + 1 :][d <= radius]
                if near.size:
                    lo = np.minimum(near, i)
                    hi = np.maximum(near, i)
                    pairs.extend(zip(lo.tolist(), hi.tolist()))
            return pairs
        for start in range(0, ids.size - 1, self._CHUNK):
            block = ids[start : start + self._CHUNK]
            rest = ids[start:]  # block members and their successors
            dm = self.space.distances_among(block, rest)
            rows, cols = np.nonzero(dm <= radius)
            keep = cols > rows  # strict upper triangle (both sides start at `start`)
            if keep.any():
                bi, bj = block[rows[keep]], rest[cols[keep]]
                lo = np.minimum(bi, bj)
                hi = np.maximum(bi, bj)
                pairs.extend(zip(lo.tolist(), hi.tolist()))
        return pairs

    def sharded(self, *, workers: int | None = None, shards: int | None = None,
                backend: str = "auto"):
        """A multi-worker executor over this index (flat-backed only).

        The ``workers=`` path of the index layer: returns a
        :class:`repro.engine.parallel.ShardedWalkExecutor` whose
        ``count_within`` / ``count_within_many`` shard the query set
        across a persistent worker pool with bit-identical counts.
        Raises ``TypeError`` for indexes without :class:`FlatTree`
        storage (brute force, kd-/R-trees, LAESA).
        """
        from repro.engine.parallel import ShardedWalkExecutor

        return ShardedWalkExecutor(self, workers=workers, shards=shards, backend=backend)

    def diameter_estimate(self) -> float:
        """Estimated diameter of the indexed elements (Alg. 1 line 2).

        Default: the classic two-scan heuristic — from an arbitrary
        element find the farthest element ``p``, then the farthest from
        ``p``.  Exact on many shapes and never more than a factor 2 off
        for metric spaces; subclasses with structure (tree roots,
        bounding boxes) override with the paper's root-children rule.
        """
        ids = self.ids
        if ids.size == 1:
            return 0.0
        d0 = self.space.distances(int(ids[0]), ids)
        far = int(ids[int(np.argmax(d0))])
        d1 = self.space.distances(far, ids)
        return float(d1.max())


def check_radii_ascending(radii: Sequence[float] | np.ndarray) -> np.ndarray:
    """Validate the multi-radius query vector: 1-d, nonempty, ascending."""
    radii = np.asarray(radii, dtype=np.float64)
    if radii.ndim != 1 or radii.size == 0:
        raise ValueError("radii must be a nonempty 1-d array")
    if np.any(np.diff(radii) < 0):
        raise ValueError("radii must be sorted ascending")
    return radii


class FlatTree:
    """A metric tree as struct-of-arrays: the storage behind every tree here.

    Node ``i`` is described across parallel arrays; children occupy the
    contiguous node-index range ``[child_lo[i], child_hi[i])`` (equal
    bounds mean a leaf), and the node's members are the slice
    ``elems[elem_lo[i]:elem_hi[i]]`` of one shared permutation of
    element ids — a leaf bucket is a view, never an allocation.

    Attributes
    ----------
    center:
        Element id of the node's center (vantage / pivot / routing
        pivot).  For a leaf it is the first bucket member.
    threshold:
        VP median-split threshold (0 for non-VP trees).
    radius:
        Covering radius: every member lies within ``radius`` of the
        center.
    size:
        Member count (``elem_hi - elem_lo``), kept explicit so the walk
        credits swallowed subtrees without touching ``elems``.
    child_lo, child_hi:
        CSR-style children range (node indices).
    elem_lo, elem_hi, elems:
        Member slices into the shared element-id permutation.
    d_parent:
        Distance from each node's center to its parent's center, or
        ``None``.  When present (frozen M-trees) the walk applies the
        M-tree parent-distance filter before computing any distance to
        the node.
    vp_split:
        True for VP-trees: an internal node's center is held by the
        node itself (outside both children), the two children are
        ``child_lo`` (inside) and ``child_lo + 1`` (outside), and the
        walk tightens their radius windows with ``threshold``.
    """

    __slots__ = (
        "center", "threshold", "radius", "size", "child_lo", "child_hi",
        "elem_lo", "elem_hi", "elems", "d_parent", "vp_split",
    )

    def __init__(
        self,
        *,
        center,
        threshold,
        radius,
        size,
        child_lo,
        child_hi,
        elem_lo,
        elem_hi,
        elems,
        d_parent=None,
        vp_split: bool = False,
    ):
        self.center = np.asarray(center, dtype=np.intp)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.radius = np.asarray(radius, dtype=np.float64)
        self.size = np.asarray(size, dtype=np.int64)
        self.child_lo = np.asarray(child_lo, dtype=np.intp)
        self.child_hi = np.asarray(child_hi, dtype=np.intp)
        self.elem_lo = np.asarray(elem_lo, dtype=np.intp)
        self.elem_hi = np.asarray(elem_hi, dtype=np.intp)
        self.elems = np.asarray(elems, dtype=np.intp)
        self.d_parent = None if d_parent is None else np.asarray(d_parent, dtype=np.float64)
        self.vp_split = bool(vp_split)
        n_nodes = self.center.size
        for name in ("threshold", "radius", "size", "child_lo", "child_hi", "elem_lo", "elem_hi"):
            if getattr(self, name).shape != (n_nodes,):
                raise ValueError(f"FlatTree array {name!r} must have shape ({n_nodes},)")
        if self.d_parent is not None and self.d_parent.shape != (n_nodes,):
            raise ValueError("FlatTree d_parent must match the node count")
        if n_nodes == 0:
            raise ValueError("FlatTree needs at least one node")

    @property
    def n_nodes(self) -> int:
        """Total number of nodes (internal + leaves)."""
        return int(self.center.size)

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` stores a bucket instead of children."""
        return bool(self.child_lo[node] == self.child_hi[node])

    def bucket(self, node: int) -> np.ndarray:
        """Member-id slice of a leaf (a view into ``elems``)."""
        return self.elems[self.elem_lo[node] : self.elem_hi[node]]

    def leaf_sizes(self) -> list[int]:
        """Sizes of all leaf buckets (balance diagnostics)."""
        leaves = self.child_lo == self.child_hi
        return (self.elem_hi[leaves] - self.elem_lo[leaves]).tolist()

    def max_depth(self) -> int:
        """Height of the tree (leaves are depth 1)."""
        depth = 1
        level = [0]
        while True:
            nxt: list[int] = []
            for node in level:
                nxt.extend(range(self.child_lo[node], self.child_hi[node]))
            if not nxt:
                return depth
            depth += 1
            level = nxt

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The storage as plain arrays (the persistence payload)."""
        out = {
            "center": self.center,
            "threshold": self.threshold,
            "radius": self.radius,
            "size": self.size,
            "child_lo": self.child_lo,
            "child_hi": self.child_hi,
            "elem_lo": self.elem_lo,
            "elem_hi": self.elem_hi,
            "elems": self.elems,
            "vp_split": np.bool_(self.vp_split),
        }
        if self.d_parent is not None:
            out["d_parent"] = self.d_parent
        return out

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "FlatTree":
        """Rebuild a FlatTree from :meth:`to_arrays` output."""
        return cls(
            center=arrays["center"],
            threshold=arrays["threshold"],
            radius=arrays["radius"],
            size=arrays["size"],
            child_lo=arrays["child_lo"],
            child_hi=arrays["child_hi"],
            elem_lo=arrays["elem_lo"],
            elem_hi=arrays["elem_hi"],
            elems=arrays["elems"],
            d_parent=arrays.get("d_parent"),
            vp_split=bool(arrays["vp_split"]),
        )


def frontier_count_walk(
    space: MetricSpace,
    query_ids: np.ndarray,
    radii: np.ndarray,
    tree: FlatTree,
) -> np.ndarray:
    """Node-major multi-radius range counting over a :class:`FlatTree`.

    The shared engine room behind every flat-backed ``count_within`` /
    ``count_within_many``.  The tree is walked once with a *query
    frontier*: every stack entry carries an integer node index, the
    queries that still reach that subtree and, per query, the window
    ``[lo, hi)`` of radius positions not yet decided there.  Each node
    computes one bulk distance block for its whole frontier (queries
    stay the ``Q`` side of the metric, so floats are bit-identical to
    per-query evaluation); radii whose ball swallows the node are
    credited ``size[node]`` in O(1) and leave the window, radii whose
    ball cannot reach it leave it too, and leaf buckets — slices of the
    permutation array, not allocations — scatter range-adds into a
    per-query difference array that one cumulative sum turns into
    counts.

    Tree-specific behaviour is driven by the flat metadata: VP-trees
    (``vp_split``) credit the vantage point held at internal nodes and
    tighten each child's window with the median-split ``threshold``;
    frozen M-trees (``d_parent``) apply the classic parent-distance
    filter — ``|d(q, parent) − d_parent| − radius`` lower-bounds the
    reachable radius — before computing any distance to a node.
    """
    nq, a = query_ids.size, radii.size
    diff = np.zeros((nq, a + 1), dtype=np.int64)
    center, node_radius, sizes = tree.center, tree.radius, tree.size
    child_lo, child_hi = tree.child_lo, tree.child_hi
    elems, elem_lo, elem_hi = tree.elems, tree.elem_lo, tree.elem_hi
    threshold, d_parent = tree.threshold, tree.d_parent
    vp = tree.vp_split
    stack = [
        (0, np.arange(nq), np.zeros(nq, dtype=np.intp), np.full(nq, a, dtype=np.intp), None)
    ]
    while stack:
        node, pos, lo, hi, dpar = stack.pop()
        if dpar is not None:
            bound = np.abs(dpar - d_parent[node]) - node_radius[node]
            lo = np.maximum(lo, np.searchsorted(radii, bound))
            live = lo < hi
            if not live.any():
                continue  # pruned for every query without a distance call
            if not live.all():
                pos, lo, hi = pos[live], lo[live], hi[live]
        d = space.distances_among(query_ids[pos], [center[node]])[:, 0]
        full = np.searchsorted(radii, d + node_radius[node])
        swallow = full < hi
        if swallow.any():  # ball swallowed whole
            rows = pos[swallow]
            diff[rows, np.maximum(full[swallow], lo[swallow])] += sizes[node]
            diff[rows, hi[swallow]] -= sizes[node]
            hi = np.minimum(hi, full)
        lo = np.maximum(lo, np.searchsorted(radii, d - node_radius[node]))
        live = lo < hi
        if not live.any():
            continue
        if not live.all():
            pos, lo, hi, d = pos[live], lo[live], hi[live], d[live]
        lo_c, hi_c = child_lo[node], child_hi[node]
        if lo_c == hi_c:  # leaf: bucket is a slice of the permutation array
            dm = space.distances_among(query_ids[pos], elems[elem_lo[node] : elem_hi[node]])
            e = np.searchsorted(radii, dm)  # (m, b) radius position per member
            valid = e < hi[:, None]
            rows = np.broadcast_to(pos[:, None], e.shape)[valid]
            np.add.at(diff, (rows, np.maximum(e, lo[:, None])[valid]), 1)
            np.add.at(diff, (rows, np.broadcast_to(hi[:, None], e.shape)[valid]), -1)
            continue
        if vp:
            sv = np.searchsorted(radii, d)
            self_in = sv < hi
            if self_in.any():  # the vantage point itself
                rows = pos[self_in]
                diff[rows, np.maximum(sv[self_in], lo[self_in])] += 1
                diff[rows, hi[self_in]] -= 1
            t = threshold[node]
            lo_in = np.maximum(lo, np.searchsorted(radii, d - t))
            m = lo_in < hi
            if m.any():
                stack.append((int(lo_c), pos[m], lo_in[m], hi[m], None))
            lo_out = np.maximum(lo, np.searchsorted(radii, t - d, side="right"))
            m = lo_out < hi
            if m.any():
                stack.append((int(lo_c) + 1, pos[m], lo_out[m], hi[m], None))
            continue
        child_dpar = d if d_parent is not None else None
        for child in range(lo_c, hi_c):
            stack.append((int(child), pos, lo, hi, child_dpar))
    return np.cumsum(diff[:, :a], axis=1)


class FlatQueryMixin:
    """Count queries answered by :func:`frontier_count_walk` over ``self.flat``.

    Mixed into every flat-backed index; requires ``self.space`` and a
    ``self.flat`` :class:`FlatTree`.
    """

    space: MetricSpace
    flat: FlatTree

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        """Per-query neighbor counts (see :class:`MetricIndex`)."""
        query_ids = np.asarray(query_ids, dtype=np.intp)
        counts = frontier_count_walk(
            self.space, query_ids, np.array([float(radius)]), self.flat
        )
        return counts[:, 0].astype(np.intp)

    def count_within_many(self, query_ids, radii) -> np.ndarray:
        """All radii for all queries in one node-major walk
        (:func:`frontier_count_walk`)."""
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        return frontier_count_walk(self.space, query_ids, radii, self.flat)


class FrozenIndex(FlatQueryMixin, MetricIndex):
    """A fitted index reduced to its flat arrays — what persistence loads.

    Answers every :class:`MetricIndex` query from a :class:`FlatTree`
    alone; construction logic, node objects and RNG state are gone.
    ``diameter_estimate`` returns the value recorded at save time, so a
    loaded index anchors the same radius ladder as the one that was
    saved.
    """

    def __init__(
        self,
        space: MetricSpace,
        ids,
        flat: FlatTree,
        *,
        kind: str = "frozen",
        diameter: float | None = None,
    ):
        super().__init__(space, ids)
        self.flat = flat
        self.kind = str(kind)
        self._diameter = None if diameter is None else float(diameter)

    def diameter_estimate(self) -> float:
        """The diameter recorded at save time (two-scan fallback without one)."""
        if self._diameter is not None:
            return self._diameter
        return super().diameter_estimate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrozenIndex(kind={self.kind!r}, n={len(self)}, nodes={self.flat.n_nodes})"


def concat_ranges(starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """``np.concatenate([np.arange(s, s + k) for s, k in zip(starts, sizes)])``
    without the per-range Python loop (all ``sizes`` must be positive).

    The level-synchronous builds use this to gather every tree level's
    member positions — one cumsum over a step array whose entries are 1
    inside a range and the jump to the next start at each boundary.
    """
    starts = np.asarray(starts, dtype=np.intp)
    sizes = np.asarray(sizes, dtype=np.intp)
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    step = np.ones(total, dtype=np.intp)
    step[0] = starts[0]
    if starts.size > 1:
        step[np.cumsum(sizes[:-1])] = starts[1:] - (starts[:-1] + sizes[:-1]) + 1
    return np.cumsum(step)


def chunked(array: np.ndarray, size: int):
    """Yield consecutive chunks of ``array`` of at most ``size`` rows."""
    for start in range(0, len(array), size):
        yield array[start : start + size]
