"""The MetricIndex protocol shared by every tree in :mod:`repro.index`.

An index covers a subset of a :class:`~repro.metric.base.MetricSpace`
(identified by element ids) and answers three queries:

- ``count_within(query_ids, radius)`` — per-query neighbor counts, the
  *count-only principle* of Sec. IV-G (no pair materialization);
- ``pairs_within(radius)`` — the self-join of Alg. 3 line 12, needed
  only for the small outlier set;
- ``diameter_estimate()`` — Alg. 1 line 2, the radius-ladder anchor.

Queries are expressed as element ids of the same space, so a join
between outliers and inliers (Alg. 4) is just an index on the inlier
ids queried with the outlier ids.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.metric.base import MetricSpace


class MetricIndex(ABC):
    """Base class for range-count indexes over a MetricSpace subset."""

    def __init__(self, space: MetricSpace, ids: Sequence[int] | np.ndarray | None = None):
        self.space = space
        if ids is None:
            ids = np.arange(len(space), dtype=np.intp)
        self.ids = np.asarray(ids, dtype=np.intp)
        if self.ids.size == 0:
            raise ValueError("cannot build an index over zero elements")

    def __len__(self) -> int:
        return int(self.ids.size)

    @abstractmethod
    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        """Number of indexed elements within ``radius`` of each query element.

        Distances are inclusive (``d <= radius``).  A query element that
        is itself indexed counts itself, matching the paper's
        "neighbors (+ self)" convention.
        """

    def pairs_within(self, radius: float) -> list[tuple[int, int]]:
        """All unordered indexed pairs ``(i, j)``, ``i < j``, within ``radius``.

        Default implementation delegates to per-element range queries;
        subclasses may override.  Only used on small sets (the outliers),
        so the default is adequate.
        """
        pairs: list[tuple[int, int]] = []
        ids = self.ids
        for a in range(ids.size):
            d = self.space.distances(int(ids[a]), ids[a + 1 :])
            for off in np.nonzero(d <= radius)[0]:
                i, j = int(ids[a]), int(ids[a + 1 + off])
                pairs.append((i, j) if i < j else (j, i))
        return pairs

    def diameter_estimate(self) -> float:
        """Estimated diameter of the indexed elements (Alg. 1 line 2).

        Default: the classic two-scan heuristic — from an arbitrary
        element find the farthest element ``p``, then the farthest from
        ``p``.  Exact on many shapes and never more than a factor 2 off
        for metric spaces; subclasses with structure (tree roots,
        bounding boxes) override with the paper's root-children rule.
        """
        ids = self.ids
        if ids.size == 1:
            return 0.0
        d0 = self.space.distances(int(ids[0]), ids)
        far = int(ids[int(np.argmax(d0))])
        d1 = self.space.distances(far, ids)
        return float(d1.max())


def chunked(array: np.ndarray, size: int):
    """Yield consecutive chunks of ``array`` of at most ``size`` rows."""
    for start in range(0, len(array), size):
        yield array[start : start + size]
