"""Brute-force index: the correctness oracle for every other index.

O(n * m) per query batch with no pruning; used for small datasets, in
tests (every tree must agree with it), and in the index ablation bench.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex, chunked
from repro.metric.base import MetricSpace


class BruteForceIndex(MetricIndex):
    """Exhaustive range counting over a MetricSpace subset."""

    _CHUNK = 512  # bounds the temporary distance-matrix footprint

    def __init__(self, space: MetricSpace, ids=None):
        super().__init__(space, ids)

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        counts = np.empty(query_ids.size, dtype=np.intp)
        pos = 0
        for chunk in chunked(query_ids, self._CHUNK):
            dm = self.space.distances_among(chunk, self.ids)
            counts[pos : pos + len(chunk)] = (dm <= radius).sum(axis=1)
            pos += len(chunk)
        return counts
