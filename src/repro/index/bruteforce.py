"""Brute-force index: the correctness oracle for every other index.

O(n * m) per query batch with no pruning; used for small datasets, in
tests (every tree must agree with it), and in the index ablation bench.

All three queries are built from the same primitive: a chunked
pairwise-distance block (``space.distances_among`` on at most
``_CHUNK`` queries at a time).  No per-point Python loop survives —
vector spaces answer each block with one BLAS-backed broadcast, and a
block is reused across the whole radius ladder in
:meth:`count_within_many`, which is what the batch engine
(:mod:`repro.engine`) leans on for the vector fast path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex, check_radii_ascending, chunked
from repro.metric.base import MetricSpace


class BruteForceIndex(MetricIndex):
    """Exhaustive range counting over a MetricSpace subset.

    Chunk size comes from ``MetricIndex._CHUNK``; ``pairs_within`` is
    the (equally chunked) base implementation.
    """

    def __init__(self, space: MetricSpace, ids=None):
        super().__init__(space, ids)

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        counts = np.empty(query_ids.size, dtype=np.intp)
        pos = 0
        for chunk in chunked(query_ids, self._CHUNK):
            dm = self.space.distances_among(chunk, self.ids)
            counts[pos : pos + len(chunk)] = (dm <= radius).sum(axis=1)
            pos += len(chunk)
        return counts

    def count_within_many(
        self, query_ids: Sequence[int] | np.ndarray, radii: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """One distance block per query chunk, shared by every radius."""
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        counts = np.empty((query_ids.size, radii.size), dtype=np.int64)
        pos = 0
        for chunk in chunked(query_ids, self._CHUNK):
            dm = self.space.distances_among(chunk, self.ids)
            for e in range(radii.size):
                counts[pos : pos + len(chunk), e] = (dm <= radii[e]).sum(axis=1)
            pos += len(chunk)
        return counts
