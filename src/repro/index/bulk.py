"""Level-synchronous array bulk-loads for the insertion-tree families.

PR 4 batched the M-tree *decision* hot loops (choose-subtree, promote,
partition, MST split), which left the insertion loop itself — one
Python round trip per element — as the dominant build cost.  This
module removes the loop: :func:`bulk_build_mtree` and
:func:`bulk_build_covertree` construct the
:class:`~repro.index.base.FlatTree` struct-of-arrays **directly**, with
no object-node intermediate, using the same level-synchronous pattern
as the VP-/ball-tree builds:

- one shared element permutation; every node's members are a contiguous
  slice of it, and children partition their parent's slice in order
  (exactly the layout :func:`~repro.index.base.level_count_walk`
  consumes);
- per depth step, *one* row-aligned
  :meth:`~repro.metric.base.MetricSpace.paired_distances` call measures
  every pending member against its segment's center, covering radii
  fall out of ``np.maximum.reduceat``, and the partition of all
  splitting segments happens in one stable ``np.lexsort``;
- node routing is k-way greedy farthest-point promotion: pivot 0 is
  the segment's own center (the nesting invariant the cover tree
  needs, and the routing-pivot reuse the M-tree wants), later pivots
  are each segment's farthest member from its already-chosen pivots —
  one grouped paired call per promotion round, shared across every
  splitting segment on the level.

The emitted trees honour the full M-tree invariant set the walks rely
on: covering radii bound every member (computed from the *actual*
member distances, never estimated), ``d_parent`` is the exact
child-center-to-parent-center distance (the classic parent-distance
pre-filter), and ``d_elem`` is the exact member-to-leaf-center distance
(the level walk's leaf triangle filter) recorded on the same
``paired_distances`` float path that
:func:`~repro.index.base.attach_leaf_distances` uses.

:func:`slim_down_flat` ports the Slim-tree's slim-down to the flat
arrays so bulk-built Slim-trees keep their post-construction pass:
border members migrate between sibling leaves *in place* inside the
parent's slice (sibling migration never changes an ancestor's member
set, so only the parent's slice is rewritten).
"""

from __future__ import annotations

import numpy as np

from repro.index.base import FlatTree, concat_ranges
from repro.metric.base import MetricSpace

__all__ = ["bulk_build_mtree", "bulk_build_covertree", "slim_down_flat"]


def _argmax_per_segment(values: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """First position of each segment's maximum (absolute into ``values``).

    Same reduceat/first-hit trick as the ball tree's diametral-pair
    selection: ties resolve to the earliest position, matching the
    ``np.argmax`` the per-node builders used.
    """
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    maxima = np.maximum.reduceat(values, offsets[:-1])
    seg_of = np.repeat(np.arange(sizes.size), sizes)
    hits = np.flatnonzero(values == np.repeat(maxima, sizes))
    _, first = np.unique(seg_of[hits], return_index=True)
    return hits[first]


class _LevelBuilder:
    """Shared level-loop state for the bulk builders.

    Holds the growing struct-of-arrays columns plus the one element
    permutation, and the grouped-dispatch helpers both tree families
    share; the family-specific piece — how many pivots a splitting
    segment promotes — stays in the build functions.
    """

    def __init__(self, space: MetricSpace, ids: np.ndarray, stats: dict | None):
        self.space = space
        self.stats = stats
        self.elems = np.asarray(ids, dtype=np.intp).copy()
        self.d_elem = np.zeros(self.elems.size, dtype=np.float64)
        self.center: list[int] = []
        self.radius: list[float] = []
        self.size: list[int] = []
        self.child_lo: list[int] = []
        self.child_hi: list[int] = []
        self.elem_lo: list[int] = []
        self.elem_hi: list[int] = []
        self.d_parent: list[float] = []

    def paired(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """One grouped metric dispatch, counted honestly."""
        if self.stats is not None:
            self.stats["distance_calls"] = (
                self.stats.get("distance_calls", 0) + int(right.size)
            )
        return self.space.paired_distances(left, right)

    def new_node(self, c: int, dpar: float, lo: int, hi: int) -> int:
        idx = len(self.center)
        self.center.append(int(c))
        self.radius.append(0.0)  # measured next level from actual members
        self.size.append(hi - lo)
        self.child_lo.append(0)
        self.child_hi.append(0)
        self.elem_lo.append(lo)
        self.elem_hi.append(hi)
        self.d_parent.append(float(dpar))
        return idx

    def open_level(self, level: list[int]):
        """Gather one depth's segments and measure members to centers."""
        seg_lo = np.array([self.elem_lo[i] for i in level], dtype=np.intp)
        seg_sizes = np.array(
            [self.elem_hi[i] - self.elem_lo[i] for i in level], dtype=np.intp
        )
        positions = concat_ranges(seg_lo, seg_sizes)
        members = self.elems[positions]
        cent = np.array([self.center[i] for i in level], dtype=np.intp)
        d0 = self.paired(np.repeat(cent, seg_sizes), members)
        offsets = np.concatenate([[0], np.cumsum(seg_sizes)])
        radii = np.maximum.reduceat(d0, offsets[:-1])
        for k, i in enumerate(level):
            if seg_sizes[k] > 1:
                self.radius[i] = float(radii[k])
        return seg_sizes, positions, members, cent, d0, radii

    def finish(self, *, with_d_parent: bool) -> FlatTree:
        return FlatTree(
            center=self.center,
            threshold=np.zeros(len(self.center)),
            radius=self.radius,
            size=self.size,
            child_lo=self.child_lo,
            child_hi=self.child_hi,
            elem_lo=self.elem_lo,
            elem_hi=self.elem_hi,
            elems=self.elems,
            d_parent=self.d_parent if with_d_parent else None,
            d_elem=self.d_elem,
        )


def _grow_pivots(
    b: _LevelBuilder,
    spl_members: np.ndarray,
    spl_sizes: np.ndarray,
    spl_d0: np.ndarray,
    centers: np.ndarray,
    *,
    thresholds: np.ndarray,
    max_pivots: int | None,
):
    """Greedy farthest-point promotion across all splitting segments.

    Pivot 0 of every segment is its own center.  Each round picks each
    still-growing segment's farthest member from its nearest chosen
    pivot, stops a segment once that farthest distance is no longer
    above its ``threshold`` (0 for the M-tree — stop only when every
    member coincides with a pivot; the child-scale separation for the
    cover tree), and measures all the new pivots against their
    segments' members in one grouped paired call.  Members follow their
    nearest pivot, ties to the earliest one — the same first-minimum
    rule the per-insert builders used.

    Returns ``(piv_ids, piv_dpar, owner)``: per-segment pivot id lists,
    matching exact pivot-to-segment-center distances, and each member's
    owning pivot ordinal.
    """
    n_spl = spl_sizes.size
    spl_seg = np.repeat(np.arange(n_spl), spl_sizes)
    owner = np.zeros(spl_members.size, dtype=np.intp)
    best = spl_d0.copy()  # distance of each member to its nearest chosen pivot
    piv_ids = [[int(centers[s])] for s in range(n_spl)]
    piv_dpar = [[0.0] for _ in range(n_spl)]
    j = 0
    while max_pivots is None or j + 1 < max_pivots:
        j += 1
        far = _argmax_per_segment(best, spl_sizes)
        grow = np.flatnonzero(best[far] > thresholds)
        if grow.size == 0:
            break
        gfar = far[grow]
        new_ids = spl_members[gfar]
        for s, pid, dpar in zip(grow, new_ids, spl_d0[gfar]):
            piv_ids[int(s)].append(int(pid))
            piv_dpar[int(s)].append(float(dpar))
        grow_seg = np.zeros(n_spl, dtype=bool)
        grow_seg[grow] = True
        gmask = grow_seg[spl_seg]
        d_new = b.paired(np.repeat(new_ids, spl_sizes[grow]), spl_members[gmask])
        sub_best = best[gmask]
        closer = d_new < sub_best  # strict: ties stay with the earlier pivot
        sub_owner = owner[gmask]
        sub_owner[closer] = j
        owner[gmask] = sub_owner
        sub_best[closer] = d_new[closer]
        best[gmask] = sub_best
        if j >= spl_members.size:  # pragma: no cover - defensive bound
            break
    return piv_ids, piv_dpar, owner


def _emit_children(
    b: _LevelBuilder,
    level: list[int],
    split_k: np.ndarray,
    spl_pos: np.ndarray,
    spl_members: np.ndarray,
    spl_sizes: np.ndarray,
    piv_ids: list[list[int]],
    piv_dpar: list[list[float]],
    owner: np.ndarray,
) -> list[int]:
    """Partition every splitting segment and append its child nodes.

    One stable lexsort groups each segment's members by owning pivot
    (original order preserved within a group), the permutation slice is
    rewritten in place, and children land in BFS order — contiguous per
    parent, each owning the matching contiguous sub-slice.
    """
    n_spl = split_k.size
    spl_seg = np.repeat(np.arange(n_spl), spl_sizes)
    order = np.lexsort((owner, spl_seg))  # stable: segment-major, then pivot
    b.elems[spl_pos] = spl_members[order]
    width = max(len(p) for p in piv_ids)
    counts = np.bincount(spl_seg * width + owner, minlength=n_spl * width).reshape(
        n_spl, width
    )
    next_level: list[int] = []
    for s in range(n_spl):
        i = level[int(split_k[s])]
        first = len(b.center)
        cursor = b.elem_lo[i]
        for g in range(len(piv_ids[s])):
            c = int(counts[s, g])
            if c == 0:  # pragma: no cover - every promoted pivot owns itself
                continue
            next_level.append(
                b.new_node(piv_ids[s][g], piv_dpar[s][g], cursor, cursor + c)
            )
            cursor += c
        b.child_lo[i], b.child_hi[i] = first, len(b.center)
    return next_level


def bulk_build_mtree(
    space: MetricSpace,
    ids: np.ndarray,
    *,
    fanout: int = 16,
    leaf_cap: int = 16,
    stats: dict | None = None,
) -> FlatTree:
    """Bulk-load an M-tree-shaped :class:`FlatTree` (k-way farthest-point).

    Segments larger than ``leaf_cap`` with a positive covering radius
    promote up to ``fanout`` pivots (the node capacity) and route every
    member to its nearest pivot — the array analogue of the M-tree's
    minimum-distance choose-subtree rule, with promotion by farthest
    point instead of overflow splits.  Duplicate-only segments (radius
    0) become leaves at any size, like the insert builder's one-sided
    split fallback.  ``stats["distance_calls"]`` accumulates the metric
    evaluations spent, one count per paired row.
    """
    b = _LevelBuilder(space, ids, stats)
    n = b.elems.size
    level = [b.new_node(int(b.elems[0]), 0.0, 0, n)]
    while level:
        seg_sizes, positions, members, cent, d0, radii = b.open_level(level)
        is_split = (seg_sizes > leaf_cap) & (radii > 0.0)
        split_k = np.flatnonzero(is_split)
        leaf_rows = ~np.repeat(is_split, seg_sizes)
        b.d_elem[positions[leaf_rows]] = d0[leaf_rows]
        if not split_k.size:
            break
        keep = ~leaf_rows
        piv_ids, piv_dpar, owner = _grow_pivots(
            b,
            members[keep],
            seg_sizes[split_k],
            d0[keep],
            cent[split_k],
            thresholds=np.zeros(split_k.size),
            max_pivots=fanout,
        )
        level = _emit_children(
            b, level, split_k, positions[keep], members[keep], seg_sizes[split_k],
            piv_ids, piv_dpar, owner,
        )
    return b.finish(with_d_parent=True)


def bulk_build_covertree(
    space: MetricSpace,
    ids: np.ndarray,
    *,
    base: float = 2.0,
    leaf_size: int = 16,
    stats: dict | None = None,
) -> FlatTree:
    """Bulk-load a cover-tree-shaped :class:`FlatTree`.

    The per-node recursion's scale bookkeeping collapses into one rule:
    a splitting segment's child separation is ``base**(s-1)`` for the
    smallest scale ``s`` with ``base**s >= radius`` — exactly where the
    top-down builder's scale-dropping loop lands, since every scale
    whose separation meets or exceeds the covering radius yields a
    single child and recurses straight down.  Pivot promotion then runs
    until no member is farther than that separation from every chosen
    pivot, so sibling centers stay pairwise more than ``sep`` apart
    (the cover-tree separation invariant) and pivot 0 being the segment
    center keeps the nesting invariant.
    """
    b = _LevelBuilder(space, ids, stats)
    n = b.elems.size
    level = [b.new_node(int(b.elems[0]), 0.0, 0, n)]
    while level:
        seg_sizes, positions, members, cent, d0, radii = b.open_level(level)
        is_split = (seg_sizes > leaf_size) & (radii > 0.0)
        split_k = np.flatnonzero(is_split)
        leaf_rows = ~np.repeat(is_split, seg_sizes)
        b.d_elem[positions[leaf_rows]] = d0[leaf_rows]
        if not split_k.size:
            break
        spl_radii = radii[split_k]
        with np.errstate(divide="ignore"):
            scale = np.ceil(np.log(spl_radii) / np.log(base))
        sep = np.power(base, scale - 1.0)
        # Float fuzz at exact powers of `base` can land sep on (or
        # above) the radius, which would promote no second pivot and
        # loop forever — the same degenerate scale the recursive
        # builder escapes by dropping a level.
        while np.any(sep >= spl_radii):
            sep = np.where(sep >= spl_radii, sep / base, sep)
        keep = ~leaf_rows
        piv_ids, piv_dpar, owner = _grow_pivots(
            b,
            members[keep],
            seg_sizes[split_k],
            d0[keep],
            cent[split_k],
            thresholds=sep,
            max_pivots=None,
        )
        level = _emit_children(
            b, level, split_k, positions[keep], members[keep], seg_sizes[split_k],
            piv_ids, piv_dpar, owner,
        )
    return b.finish(with_d_parent=False)


def slim_down_flat(
    space: MetricSpace,
    tree: FlatTree,
    *,
    capacity: int,
    max_rounds: int = 3,
    stats: dict | None = None,
) -> int:
    """Slim-down over flat arrays, in place; returns the move count.

    The same migration rule as the object pass: a member on the border
    of its leaf (its ``d_elem`` *is* the covering radius) moves to the
    first sibling leaf that also covers it without enlargement, has
    room under ``capacity``, and is at least as full — after which the
    donor's radius shrinks to its remaining farthest member.  Only
    parents whose children are all leaves participate (bulk trees are
    not depth-balanced, and sibling migration below a mixed-depth
    parent would cascade slice renumbering); since siblings share a
    parent, every move rewrites just that parent's slice of the element
    permutation and its children's sub-slices — ancestors see the same
    member set and keep their radii.

    Level-synchronous like the builds: each round selects every leaf's
    border member with one segmented reduction and measures all
    candidate member-to-sibling-center distances in one grouped
    :meth:`~repro.metric.base.MetricSpace.paired_distances` call
    (counted into ``stats``); only the move bookkeeping — which needs
    the sequential room/fullness state — stays a (cheap) Python loop.
    Each child donates at most one member per round.
    """
    is_leaf = tree.child_lo == tree.child_hi
    parents = [
        int(p)
        for p in np.flatnonzero(~is_leaf)
        if int(tree.child_hi[p] - tree.child_lo[p]) >= 2
        and bool(np.all(is_leaf[tree.child_lo[p] : tree.child_hi[p]]))
    ]
    if not parents:
        return 0
    parents_arr = np.array(parents, dtype=np.intp)
    k_children = tree.child_hi[parents_arr] - tree.child_lo[parents_arr]
    #: all participating leaves, parent-major in child order
    leaf_nodes = concat_ranges(tree.child_lo[parents_arr], k_children)
    #: each leaf's row range inside the flattened candidate matrix:
    #: parent block `p` is a (k, k) donor x sibling square
    block_of = np.repeat(np.arange(parents_arr.size), k_children)
    row_off = np.concatenate([[0], np.cumsum(np.repeat(k_children, k_children))])

    moves = 0
    for _ in range(max_rounds):
        sizes = (tree.elem_hi[leaf_nodes] - tree.elem_lo[leaf_nodes]).astype(np.intp)
        positions = concat_ranges(tree.elem_lo[leaf_nodes], sizes)
        far_abs = _argmax_per_segment(tree.d_elem[positions], sizes)
        far_pos = positions[far_abs]  # position of each leaf's border member
        far_id = tree.elems[far_pos]
        far_d = tree.d_elem[far_pos]
        # One grouped call: every donor's border member against every
        # sibling center of its parent (k x k per parent).
        left = np.repeat(far_id, np.repeat(k_children, k_children))
        right = tree.center[concat_ranges(
            np.repeat(tree.child_lo[parents_arr], k_children),
            np.repeat(k_children, k_children),
        )]
        if stats is not None:
            stats["distance_calls"] = stats.get("distance_calls", 0) + int(right.size)
        d_cand = space.paired_distances(left, right)

        moved = 0
        live = sizes.copy()
        #: per-leaf incoming migrants: (member id, distance to new center)
        incoming: dict[int, list[tuple[int, float]]] = {}
        outgoing: dict[int, int] = {}  # leaf row -> donated member position
        for bi, p in enumerate(parents_arr):
            k = int(k_children[bi])
            rows = np.flatnonzero(block_of == bi)
            for ai in range(k):
                a = int(rows[ai])
                if live[a] <= 1 or a in outgoing:
                    continue
                if far_d[a] < tree.radius[leaf_nodes[a]]:
                    continue  # not on the border
                row = d_cand[row_off[rows[0] + ai] : row_off[rows[0] + ai] + k]
                for ci in range(k):
                    c = int(rows[ci])
                    if c == a or live[c] >= capacity or live[c] < live[a]:
                        continue
                    if row[ci] <= tree.radius[leaf_nodes[c]]:
                        outgoing[a] = int(far_pos[a])
                        incoming.setdefault(c, []).append(
                            (int(far_id[a]), float(row[ci]))
                        )
                        live[a] -= 1
                        live[c] += 1
                        moved += 1
                        break
        if moved == 0:
            break
        moves += moved
        # Write-back, one parent slice at a time: drop donated members,
        # append migrants, re-pack the children's contiguous sub-slices
        # and shrink donor radii to their remaining farthest member.
        touched_blocks = {int(block_of[a]) for a in (*outgoing, *incoming)}
        for bi in touched_blocks:
            rows = np.flatnonzero(block_of == bi)
            new_ids: list[np.ndarray] = []
            new_ds: list[np.ndarray] = []
            for a in rows:
                a = int(a)
                leaf = int(leaf_nodes[a])
                lo, hi = int(tree.elem_lo[leaf]), int(tree.elem_hi[leaf])
                # copies, not views: the cursor re-pack below writes
                # into the very positions these slices occupy
                ids_a = tree.elems[lo:hi].copy()
                ds_a = tree.d_elem[lo:hi].copy()
                if a in outgoing:
                    keep = np.arange(lo, hi) != outgoing[a]
                    ids_a, ds_a = ids_a[keep], ds_a[keep]
                if a in incoming:
                    add = incoming[a]
                    ids_a = np.concatenate([ids_a, [m for m, _ in add]])
                    ds_a = np.concatenate([ds_a, [d for _, d in add]])
                if a in outgoing:
                    # Shrink to the remaining farthest member — after
                    # appending migrants: a leaf that both donates and
                    # receives this round must still cover its arrivals.
                    tree.radius[leaf] = float(ds_a.max())
                new_ids.append(np.asarray(ids_a, dtype=np.intp))
                new_ds.append(np.asarray(ds_a, dtype=np.float64))
            cursor = int(tree.elem_lo[int(parents_arr[bi])])
            for a, ids_a, ds_a in zip(rows, new_ids, new_ds):
                leaf = int(leaf_nodes[int(a)])
                k = ids_a.size
                tree.elems[cursor : cursor + k] = ids_a
                tree.d_elem[cursor : cursor + k] = ds_a
                tree.elem_lo[leaf], tree.elem_hi[leaf] = cursor, cursor + k
                tree.size[leaf] = k
                cursor += k
    if moves:
        # The walks' lazy leaf-filter / rect-kernel caches snapshot
        # elems/d_elem; drop them in case a query already ran.
        tree._leaf_cache = None
        tree._rect_cache = None
    return moves
