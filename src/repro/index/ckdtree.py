"""scipy cKDTree adapter: the fast path for Euclidean vector data.

McCatch's contract is "any off-the-shelf spatial join algorithm that
can leverage a tree" (Sec. IV-C).  For vector data under the Euclidean
metric, scipy's compiled cKDTree is that off-the-shelf component; this
adapter exposes it through the same :class:`MetricIndex` protocol as
the pure-Python trees so the core never knows the difference.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.index.base import MetricIndex
from repro.metric.base import MetricSpace


class CKDTreeIndex(MetricIndex):
    """Range counting backed by :class:`scipy.spatial.cKDTree`."""

    def __init__(self, space: MetricSpace, ids=None):
        if not space.is_vector:
            raise TypeError("CKDTreeIndex requires vector data")
        super().__init__(space, ids)
        self._points = space.data[self.ids]
        self._tree = cKDTree(self._points)

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        counts = self._tree.query_ball_point(
            self.space.data[query_ids], r=float(radius), return_length=True
        )
        return np.asarray(counts, dtype=np.intp)

    def knn_all(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Each indexed point's ``k`` nearest neighbors (self excluded).

        Returns ``(distances, ids)``, both ``(n, k)``, rows in
        ``self.ids`` order.  The optional fast-path hook
        :func:`repro.engine.knn_distances` dispatches on.  Self
        exclusion strips the first result column — with exact duplicate
        points the kept zero-distance column may be either twin
        (historical scipy-path semantics).
        """
        if not 1 <= k < len(self):
            raise ValueError(f"k must be in [1, {len(self) - 1}], got {k}")
        dists, pos = self._tree.query(self._points, k=k + 1)
        return dists[:, 1:], self.ids[pos[:, 1:]]

    def pairs_within(self, radius: float) -> list[tuple[int, int]]:
        raw = self._tree.query_pairs(r=float(radius), output_type="ndarray")
        out: list[tuple[int, int]] = []
        for a, b in raw:
            i, j = int(self.ids[a]), int(self.ids[b])
            out.append((i, j) if i < j else (j, i))
        return out

    def diameter_estimate(self) -> float:
        lo = self._points.min(axis=0)
        hi = self._points.max(axis=0)
        return float(np.linalg.norm(hi - lo))
