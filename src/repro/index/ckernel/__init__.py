"""Compiled (C/ctypes) kernel for the innermost frontier-walk loops.

Public surface:

- :func:`kernel_available` — can ``walk="compiled"`` actually run here?
- :func:`compiled_count_walk` — the drop-in for ``level_count_walk``.
- :func:`kernel_info` — diagnostics (cache key, compiler, build error),
  recorded into saved-model metadata by :mod:`repro.io`.
- ``REPRO_NO_CKERNEL=1`` forces the pure-numpy fallback; see
  :mod:`repro.index.ckernel.loader` for build and cache semantics.
"""

from repro.index.ckernel.loader import (
    ABI_VERSION,
    CFLAGS,
    CKernelError,
    ENV_CACHE,
    ENV_DISABLE,
    SOURCE_PATH,
    build_error,
    cache_dir,
    find_compiler,
    get_kernel,
    kernel_available,
    kernel_disabled,
    kernel_info,
    reset,
    warn_fallback,
)
from repro.index.ckernel.walk import compiled_count_walk

__all__ = [
    "ABI_VERSION",
    "CFLAGS",
    "CKernelError",
    "ENV_CACHE",
    "ENV_DISABLE",
    "SOURCE_PATH",
    "build_error",
    "cache_dir",
    "compiled_count_walk",
    "find_compiler",
    "get_kernel",
    "kernel_available",
    "kernel_disabled",
    "kernel_info",
    "reset",
    "warn_fallback",
]
