/* Compiled inner loops of the level-synchronous frontier walk.
 *
 * This file is compiled on demand by repro.index.ckernel.loader with
 * the platform C compiler and loaded through ctypes; it has no Python
 * or numpy dependency.  Every function operates on the row-aligned
 * flat arrays of a FlatTree frontier (nodes/pos/lo/hi plus the tree's
 * struct-of-arrays storage) exactly as _level_step does in
 * repro/index/base.py, and must stay bit-identical to it:
 *
 * - all node-level decisions are single IEEE-754 float64 operations
 *   (one add or subtract, then a ladder compare) — elementwise
 *   identical to numpy as long as FP contraction is off, which the
 *   loader enforces with -ffp-contract=off;
 * - lower_bound/upper_bound reproduce np.searchsorted side="left" /
 *   side="right" (the ladder is finite and ascending);
 * - scatter adds into the difference array are exact integer adds in
 *   float64 (far below 2**53) and commute, so per-entry scattering
 *   sums to the same matrix as numpy's grouped bincounts;
 * - the float32 rectangle only *brackets* squared distances: every
 *   cell inside the margin band is settled by the exact float64
 *   metric (in here for 1-/2-d euclidean data, whose column-take
 *   expansion is reproduced operation for operation; back in Python
 *   for everything else).
 *
 * ctypes releases the GIL around every call, so thread-backed shard
 * executors overlap these loops on real cores.
 */

#include <math.h>
#include <stdint.h>

#define REPRO_CKERNEL_ABI 1

/* np.searchsorted(radii, v, side="left"): first i with radii[i] >= v. */
static int64_t lower_bound(const double *r, int64_t n, double v) {
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (r[mid] < v) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* np.searchsorted(radii, v, side="right"): first i with radii[i] > v. */
static int64_t upper_bound(const double *r, int64_t n, double v) {
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (r[mid] <= v) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* _clipped_cols(side="left"): max(searchsorted(radii, v), lo), with the
 * clip gate (v > radii[lo]) evaluated before paying the search. */
static int64_t clipped_left(const double *r, int64_t a, double v, int64_t lo) {
    return (v > r[lo]) ? lower_bound(r, a, v) : lo;
}

static int64_t clipped_right(const double *r, int64_t a, double v, int64_t lo) {
    return (v >= r[lo]) ? upper_bound(r, a, v) : lo;
}

int64_t repro_ckernel_abi(void) { return REPRO_CKERNEL_ABI; }

/* M-tree parent-distance filter over one frontier chunk, compacting the
 * five row-aligned arrays in place.  Returns the surviving entry count.
 * Mirrors the dpar branch at the top of _level_step:
 *   lo = max(lo, searchsorted(radii, |dpar - d_parent[node]| - radius))
 *   keep iff lo < hi
 */
int64_t repro_dpar_filter(
    int64_t n, int64_t a, const double *radii,
    int64_t *nodes, int64_t *pos, int64_t *lo, int64_t *hi, double *dpar,
    const double *d_parent, const double *node_radius)
{
    int64_t w = 0;
    for (int64_t k = 0; k < n; k++) {
        int64_t nd = nodes[k];
        double bound = fabs(dpar[k] - d_parent[nd]) - node_radius[nd];
        int64_t l = lower_bound(radii, a, bound);
        if (l < lo[k]) l = lo[k];
        if (l < hi[k]) {
            nodes[w] = nd; pos[w] = pos[k]; lo[w] = l; hi[w] = hi[k];
            dpar[w] = dpar[k];
            w++;
        }
    }
    return w;
}

/* One depth of the level walk over a frontier chunk: swallow / prune /
 * window tightening / vantage handling / child expansion, scattering
 * whole-node credits straight into the per-query difference array and
 * emitting leaf entries plus the next-depth frontier into
 * caller-provided buffers (capacities: n for the leaf arrays, the
 * summed child count for the next-frontier arrays).
 *
 * Two distance sources:
 *   - d_in != 0:   query-to-center distances precomputed in Python
 *                  (any metric); dpar_in must be 0 (already filtered).
 *   - qcol0 != 0:  fused 1-/2-d euclidean path.  Reproduces the
 *                  column-take expansion of MetricSpace.paired_distances
 *                  operation for operation — ab = x0*y0 (+ x1*y1);
 *                  s = (sq_l + sq_r) - 2*ab; clamp at 0; sqrt — which is
 *                  bitwise identical with FP contraction off.  qids is 0
 *                  for identity query ids (pos is the data id).  The
 *                  parent-distance filter, when dpar_in != 0, runs
 *                  inline before paying for the distance.
 *
 * counters[0] <- number of leaf entries emitted
 * counters[1] <- number of next-frontier entries emitted
 */
void repro_advance(
    int64_t n, int64_t a, const double *radii,
    const int64_t *nodes, const int64_t *pos,
    const int64_t *lo_in, const int64_t *hi_in,
    const double *d_in, const double *dpar_in,
    const int64_t *qids, const double *qcol0, const double *qcol1,
    const double *sqn, int64_t ncols,
    const int64_t *center, const double *node_radius, const int64_t *node_size,
    const int64_t *child_lo, const int64_t *child_hi,
    const double *threshold, const double *d_parent,
    int64_t vp_split, int64_t route_max, int64_t emit_dpar,
    double *diff, int64_t stride,
    int64_t *leaf_nodes, int64_t *leaf_pos, int64_t *leaf_lo, int64_t *leaf_hi,
    double *leaf_d,
    int64_t *out_nodes, int64_t *out_pos, int64_t *out_lo, int64_t *out_hi,
    double *out_dpar,
    int64_t *counters)
{
    int64_t wl = 0, wn = 0;
    for (int64_t k = 0; k < n; k++) {
        int64_t nd = nodes[k];
        int64_t p = pos[k];
        int64_t lo = lo_in[k], hi = hi_in[k];
        double rnode = node_radius[nd];
        double d;
        if (qcol0 != 0) {
            if (dpar_in != 0) {
                double bound = fabs(dpar_in[k] - d_parent[nd]) - rnode;
                int64_t l2 = lower_bound(radii, a, bound);
                if (l2 > lo) lo = l2;
                if (lo >= hi) continue;
            }
            int64_t ql = (qids != 0) ? qids[p] : p;
            int64_t cr = center[nd];
            double ab = qcol0[ql] * qcol0[cr];
            if (ncols == 2) ab += qcol1[ql] * qcol1[cr];
            double s = (sqn[ql] + sqn[cr]) - 2.0 * ab;
            if (s <= 0.0) s = 0.0; /* np.maximum(out, 0.0) */
            d = sqrt(s);
        } else {
            d = d_in[k];
        }
        double rh = radii[hi - 1]; /* last undecided radius */
        double v = d + rnode;
        if (v <= rh) { /* ball swallowed whole: credit size[node] in O(1) */
            int64_t c = clipped_left(radii, a, v, lo);
            double w = (double)node_size[nd];
            double *row = diff + p * stride;
            row[c] += w;
            row[hi] -= w;
            hi = c;
            if (lo >= hi) continue; /* credit started at lo: window empty */
            rh = radii[hi - 1];
        }
        v = d - rnode;
        if (v > rh) continue; /* prune: no undecided radius reaches it */
        if (v > radii[lo]) lo = lower_bound(radii, a, v); /* floor rises */
        int leaf = (child_lo[nd] == child_hi[nd]);
        if (!leaf && route_max > 0 && node_size[nd] <= route_max && hi - lo == 1)
            leaf = 1; /* virtual leaf: small subtree, single-rung window */
        if (leaf) {
            leaf_nodes[wl] = nd; leaf_pos[wl] = p;
            leaf_lo[wl] = lo; leaf_hi[wl] = hi; leaf_d[wl] = d;
            wl++;
            continue;
        }
        if (vp_split) {
            if (d <= rh) { /* the vantage point itself */
                int64_t c = clipped_left(radii, a, d, lo);
                double *row = diff + p * stride;
                row[c] += 1.0;
                row[hi] -= 1.0;
            }
            double t = threshold[nd];
            int64_t ci = child_lo[nd];
            double vi = d - t;
            if (vi <= rh) { /* inside child still reachable */
                out_nodes[wn] = ci; out_pos[wn] = p;
                out_lo[wn] = clipped_left(radii, a, vi, lo); out_hi[wn] = hi;
                wn++;
            }
            double vo = t - d;
            if (vo < rh) { /* outside child: side="right" boundary */
                out_nodes[wn] = ci + 1; out_pos[wn] = p;
                out_lo[wn] = clipped_right(radii, a, vo, lo); out_hi[wn] = hi;
                wn++;
            }
        } else {
            for (int64_t c = child_lo[nd]; c < child_hi[nd]; c++) {
                out_nodes[wn] = c; out_pos[wn] = p;
                out_lo[wn] = lo; out_hi[wn] = hi;
                if (emit_dpar) out_dpar[wn] = d;
                wn++;
            }
        }
    }
    counters[0] = wl;
    counters[1] = wn;
}

/* Single-rung rectangular leaf kernel over NaN-padded member blocks:
 * the compiled twin of _rect_single_rung.  Every (entry, bucket-slot)
 * cell gets the float32 squared-distance expansion
 * ||q||^2 + ||m||^2 - 2 q.m against r^2 bracketed by an absolute
 * margin: provably-inside cells count, provably-outside cells drop,
 * and only the sliver in between pays the exact float64 metric.  NaN
 * padding fails every comparison and can never be counted.
 *
 * Band settlement:
 *   - ecol0 != 0: 1-/2-d euclidean data; the exact re-check runs right
 *     here with the same column-take expansion as the fused advance
 *     (bitwise identical to MetricSpace.paired_distances), and the
 *     per-entry counts are scattered into diff directly.
 *   - ecol0 == 0: band (entry, slot) pairs are emitted (capacity
 *     n * width) for the caller to settle through the exact metric;
 *     cnt_out holds the sure-in counts and the caller scatters.
 *
 * counters[0] <- number of band cells (emitted, or settled inline).
 */
void repro_rect_rung(
    int64_t n, int64_t width, int64_t ncols,
    const int64_t *nodes, const int64_t *pos, const int64_t *lo,
    const int64_t *qids,
    const float **pad, const float *sq_pad,
    const float **qcols, const float *qsq,
    const double *radii, double eps_abs,
    const double *ecol0, const double *ecol1, const double *esq,
    const int64_t *elems, const int64_t *elem_lo,
    double *diff, int64_t stride,
    int64_t *band_entry, int64_t *band_col,
    int64_t *cnt_out,
    int64_t *counters)
{
    int64_t wb = 0;
    for (int64_t k = 0; k < n; k++) {
        int64_t nd = nodes[k];
        int64_t q = (qids != 0) ? qids[pos[k]] : pos[k];
        double r = radii[lo[k]]; /* the one undecided rung */
        /* Signed square: a negative rung counts nothing (rr < 0 puts
         * every cell above the sure-in bracket); the margin mirrors
         * _rect_single_rung's float64 arithmetic exactly. */
        double rr = r * fabs(r);
        double eps = eps_abs + 1e-6 * rr;
        float r2lo = (float)(rr - eps);
        float r2hi = (float)(rr + eps);
        float qv[64];
        for (int64_t m = 0; m < ncols; m++) qv[m] = qcols[m][q];
        float q2 = qsq[q];
        const float *sqrow = sq_pad + nd * width;
        int64_t cnt = 0;
        for (int64_t j = 0; j < width; j++) {
            float ab = pad[0][nd * width + j] * qv[0];
            for (int64_t m = 1; m < ncols; m++) ab += pad[m][nd * width + j] * qv[m];
            float s2 = (sqrow[j] + q2) - 2.0f * ab;
            if (s2 <= r2lo) { cnt++; continue; } /* provably inside */
            if (s2 <= r2hi) { /* margin band: needs the exact metric */
                wb++;
                if (ecol0 != 0) {
                    int64_t mb = elems[elem_lo[nd] + j];
                    double ab2 = ecol0[q] * ecol0[mb];
                    if (ecol1 != 0) ab2 += ecol1[q] * ecol1[mb];
                    double s = (esq[q] + esq[mb]) - 2.0 * ab2;
                    if (s <= 0.0) s = 0.0;
                    if (sqrt(s) <= r) cnt++;
                } else {
                    band_entry[wb - 1] = k;
                    band_col[wb - 1] = j;
                }
            }
        }
        cnt_out[k] = cnt;
        if (ecol0 != 0 && cnt > 0) { /* settled: scatter the rung credit */
            double *row = diff + pos[k] * stride;
            row[lo[k]] += (double)cnt;
            row[lo[k] + 1] -= (double)cnt;
        }
    }
    counters[0] = wb;
}
