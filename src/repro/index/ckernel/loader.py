"""On-demand build and ctypes loading of the compiled walk kernel.

The kernel ships as plain C source (``kernel.c``) next to this module —
no build-time dependency, no wheels, no new packages.  The first time a
walk asks for it, the source is compiled with the platform C compiler
into a shared object cached on disk, keyed by the SHA-256 of the source
plus the compiler's version banner and flags, so a source edit or a
toolchain upgrade can never pick up a stale ``.so``.  Builds are
concurrency-safe: the object is compiled to a ``mkstemp`` temporary in
the cache directory and published with an atomic ``os.replace``, so two
processes racing the first build both end up loading an intact library.

Fallback is loud but graceful: when no compiler is found (or the build
or load fails) the level walk's pure-numpy path takes over and a single
warning explains why.  ``REPRO_NO_CKERNEL=1`` forces that fallback —
the differential escape hatch CI uses to keep the numpy path honest.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path

import numpy as np

#: Set to any non-empty value except ``0`` to force the numpy fallback.
ENV_DISABLE = "REPRO_NO_CKERNEL"
#: Overrides the on-disk cache directory for built shared objects.
ENV_CACHE = "REPRO_CKERNEL_CACHE"

#: ABI stamp; must match ``REPRO_CKERNEL_ABI`` in ``kernel.c`` (the
#: loader probes the built library for it, so a foreign or truncated
#: ``.so`` under the right name is rejected and rebuilt).
ABI_VERSION = 1

SOURCE_PATH = Path(__file__).resolve().with_name("kernel.c")

#: -ffp-contract=off is load-bearing: the bit-identity contract with the
#: numpy walk assumes every float64 add/sub/mul/sqrt rounds separately,
#: never fused into an FMA.  -fno-math-errno only drops the errno side
#: channel of sqrt; the result bits are untouched.
CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-math-errno")

_CANDIDATE_COMPILERS = ("cc", "gcc", "clang")

_LOCK = threading.Lock()
_STATE: dict = {"checked": False, "kernel": None, "error": None}
_WARNED = False


class CKernelError(RuntimeError):
    """Raised when the kernel cannot be built or loaded."""


def kernel_disabled() -> bool:
    """True when ``REPRO_NO_CKERNEL`` requests the numpy fallback."""
    return os.environ.get(ENV_DISABLE, "").strip() not in ("", "0")


def find_compiler() -> str | None:
    """Path of the C compiler to use (``$CC`` first), or ``None``."""
    cc = os.environ.get("CC")
    if cc:
        return shutil.which(cc)
    for name in _CANDIDATE_COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def compiler_banner(cc: str) -> str:
    """First line of ``cc --version`` — the toolchain part of the cache key."""
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        ).stdout
    except OSError:
        return "unknown"
    return out.splitlines()[0].strip() if out else "unknown"


def cache_dir() -> Path:
    """Directory holding built shared objects (created on demand)."""
    override = os.environ.get(ENV_CACHE)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro" / "ckernel"


def cache_key(source: str, banner: str) -> str:
    """Content hash naming the built object: source + toolchain + flags."""
    ident = "\0".join([source, banner, " ".join(CFLAGS), str(ABI_VERSION)])
    return hashlib.sha256(ident.encode()).hexdigest()[:16]


def _compile(cc: str, source_path: Path, so_path: Path) -> None:
    """Compile to a temporary in the cache dir, publish atomically."""
    so_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=so_path.stem + ".", suffix=".tmp.so", dir=str(so_path.parent)
    )
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *CFLAGS, "-o", tmp, str(source_path), "-lm"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        if proc.returncode != 0:
            raise CKernelError(
                f"C kernel build failed ({cc} exit {proc.returncode}):\n"
                f"{proc.stderr.strip()[-2000:]}"
            )
        # Atomic publish: a concurrent builder racing us replaces the
        # same destination with its own intact object; nobody ever
        # observes a partially written .so.
        os.replace(tmp, so_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


class CKernel:
    """ctypes handle to the built kernel with argtypes wired up.

    All pointer arguments travel as ``c_void_p`` (the walk driver owns
    dtype and contiguity); scalar widths are pinned to ``int64`` so the
    call ABI matches the ``int64_t`` C signatures on every platform.
    ctypes releases the GIL for the duration of every call.
    """

    def __init__(self, so_path: Path, key: str, compiler: str):
        self.so_path = so_path
        self.key = key
        self.compiler = compiler
        lib = ctypes.CDLL(str(so_path))
        abi = lib.repro_ckernel_abi
        abi.restype = ctypes.c_int64
        abi.argtypes = ()
        got = int(abi())
        if got != ABI_VERSION:
            raise CKernelError(
                f"kernel ABI mismatch: built {got}, expected {ABI_VERSION}"
            )
        i64, vp, dbl = ctypes.c_int64, ctypes.c_void_p, ctypes.c_double
        self.dpar_filter = lib.repro_dpar_filter
        self.dpar_filter.restype = i64
        self.dpar_filter.argtypes = [i64, i64] + [vp] * 8
        self.advance = lib.repro_advance
        self.advance.restype = None
        self.advance.argtypes = (
            [i64, i64, vp]          # n, a, radii
            + [vp] * 4              # nodes, pos, lo, hi
            + [vp] * 2              # d_in, dpar_in
            + [vp] * 3 + [vp, i64]  # qids, qcol0, qcol1, sqn, ncols
            + [vp] * 7              # center..threshold, d_parent
            + [i64] * 3             # vp_split, route_max, emit_dpar
            + [vp, i64]             # diff, stride
            + [vp] * 5              # leaf buffers
            + [vp] * 5              # next-frontier buffers
            + [vp]                  # counters
        )
        self.rect_rung = lib.repro_rect_rung
        self.rect_rung.restype = None
        self.rect_rung.argtypes = (
            [i64] * 3               # n, width, ncols
            + [vp] * 4              # nodes, pos, lo, qids
            + [vp] * 4              # pad, sq_pad, qcols, qsq
            + [vp, dbl]             # radii, eps_abs
            + [vp] * 5              # ecol0, ecol1, esq, elems, elem_lo
            + [vp, i64]             # diff, stride
            + [vp] * 3              # band_entry, band_col, cnt_out
            + [vp]                  # counters
        )


def build_kernel() -> CKernel:
    """Build (or reuse) the shared object and load it.

    Raises :class:`CKernelError` when no compiler is available, the
    platform is unsuitable, the build fails, or the produced library
    cannot be loaded even after one rebuild.
    """
    if ctypes.sizeof(ctypes.c_void_p) != 8 or np.dtype(np.intp).itemsize != 8:
        raise CKernelError("compiled walk kernel requires a 64-bit platform")
    cc = find_compiler()
    if cc is None:
        raise CKernelError(
            "no C compiler found (looked for $CC, cc, gcc, clang); "
            "falling back to the pure-numpy level walk"
        )
    source = SOURCE_PATH.read_text()
    key = cache_key(source, compiler_banner(cc))
    so_path = cache_dir() / f"repro_ckernel_{key}.so"
    if not so_path.exists():
        _compile(cc, SOURCE_PATH, so_path)
    try:
        return CKernel(so_path, key, cc)
    except (OSError, CKernelError):
        # Stale or torn object under the right name (e.g. a crashed
        # writer predating the atomic-publish protocol, or a foreign
        # file): rebuild once from source, then give up loudly.
        try:
            so_path.unlink()
        except OSError:
            pass
        _compile(cc, SOURCE_PATH, so_path)
        return CKernel(so_path, key, cc)


def get_kernel() -> CKernel | None:
    """The process-wide kernel handle, or ``None`` (disabled/unbuildable).

    The build outcome is cached after the first call; the
    ``REPRO_NO_CKERNEL`` switch is honoured on every call so tests can
    flip it without rebuilding.
    """
    if kernel_disabled():
        return None
    with _LOCK:
        if not _STATE["checked"]:
            try:
                _STATE["kernel"] = build_kernel()
            except CKernelError as exc:
                _STATE["error"] = str(exc)
            _STATE["checked"] = True
        return _STATE["kernel"]


def kernel_available() -> bool:
    """True when the compiled walk can actually run right now."""
    return get_kernel() is not None


def build_error() -> str | None:
    """The recorded build/load failure, if the kernel is unavailable."""
    with _LOCK:
        return _STATE["error"]


def kernel_info() -> dict:
    """Diagnostics block: availability, cache path, toolchain, errors.

    This is what persistence records into saved-model metadata, so an
    artifact remembers whether its producing environment ran compiled.
    """
    kernel = get_kernel()
    info = {
        "available": kernel is not None,
        "disabled": kernel_disabled(),
    }
    if kernel is not None:
        info["key"] = kernel.key
        info["so_path"] = str(kernel.so_path)
        info["compiler"] = kernel.compiler
    error = build_error()
    if error is not None:
        info["error"] = error
    return info


def warn_fallback(reason: str | None = None) -> None:
    """One loud warning when an explicit ``walk="compiled"`` request
    has to fall back to the numpy level walk."""
    global _WARNED
    if _WARNED:
        return
    _WARNED = True
    detail = reason or build_error() or "kernel unavailable"
    if kernel_disabled():
        detail = f"{ENV_DISABLE} is set"
    warnings.warn(
        f"walk='compiled' requested but the C kernel is unavailable "
        f"({detail}); using the pure-numpy level walk (bit-identical, slower)",
        RuntimeWarning,
        stacklevel=3,
    )


def reset(*, forget_warning: bool = True) -> None:
    """Drop the cached build outcome (test hook: forces a re-probe)."""
    global _WARNED
    with _LOCK:
        _STATE["checked"] = False
        _STATE["kernel"] = None
        _STATE["error"] = None
    if forget_warning:
        _WARNED = False
