"""The compiled level walk: Python driver around the C inner loops.

Structure mirrors :func:`repro.index.base.level_count_walk` exactly —
same work stack, same ``_LEVEL_CHUNK`` slicing, same leaf-scatter
routing — but the two hot loops run in the shared object built by
:mod:`repro.index.ckernel.loader`:

- ``repro_advance`` replaces :func:`~repro.index.base._level_step`'s
  grouped numpy passes with one pass over the frontier chunk (swallow /
  prune / tighten / vantage handling / child expansion), scattering
  whole-node credits directly into the difference array.  For 1-/2-d
  euclidean data the query-to-center distances are fused into the same
  pass, reproducing the column-take expansion of
  :meth:`~repro.metric.base.MetricSpace.paired_distances` bit for bit;
  every other metric keeps its distances in Python (the exact same
  calls the numpy walk makes) and hands them to the kernel.
- ``repro_rect_rung`` replaces :func:`~repro.index.base._rect_single_rung`'s
  float32 rectangle.  Margin-band cells are settled by the exact
  float64 metric — inside the kernel for 1-/2-d euclidean data, back in
  Python (``paired_distances``) for everything else — so counts stay
  bit-identical to both numpy walks.

Everything the kernel does not accelerate (multi-rung leaf windows,
object-metric leaf scatters, the einsum bulk cross-term) goes through
the unmodified numpy helpers, which keeps the differential surface
small and the bit-identity argument local to the two loops above.
"""

from __future__ import annotations

import ctypes
from functools import partial

import numpy as np

from repro.index.base import (
    _EMPTY_FRONTIER,
    _LEVEL_CHUNK,
    _WALK_STAT_KEYS,
    WalkFrontier,
    _finish_counts,
    _identity_or_ids,
    _IdentityIds,
    _level_leaf_scatter,
    _range_add,
    _rect_leaf_cache,
    _root_frontier,
)
from repro.index.ckernel.loader import CKernelError, get_kernel

#: Entry cap per rect-kernel call in band mode: bounds the emitted
#: (entry, slot) pair buffers at ``_RECT_BAND_CELLS`` cells.
_RECT_BAND_CELLS = 1 << 22


def _p(arr):
    """Base address of a (contiguous) array for a ``c_void_p`` argument."""
    return None if arr is None else arr.ctypes.data


def _contig(arr, dtype):
    return np.ascontiguousarray(arr, dtype=dtype)


def _owned_frontier(fr: WalkFrontier) -> WalkFrontier:
    """A private, contiguous copy of a caller-provided frontier.

    The C parent-distance filter compacts its input arrays in place;
    resumable frontiers handed in by the tree-sharding executor must
    never observe that.
    """
    return WalkFrontier(
        nodes=np.array(fr.nodes, dtype=np.intp),
        pos=np.array(fr.pos, dtype=np.intp),
        lo=np.array(fr.lo, dtype=np.intp),
        hi=np.array(fr.hi, dtype=np.intp),
        dpar=None if fr.dpar is None else np.array(fr.dpar, dtype=np.float64),
    )


class _WalkContext:
    """Per-walk bundle: kernel handle, contiguous tree arrays, fused
    coordinate columns, and the shared difference array."""

    def __init__(self, kernel, space, tree, radii, qids, diff):
        self.kernel = kernel
        self.space = space
        self.tree = tree
        self.radii = radii
        self.qids = qids  # None for identity query ids
        self.diff = diff
        self.a = radii.size
        self.stride = self.a + 1
        self.center = _contig(tree.center, np.intp)
        self.radius = _contig(tree.radius, np.float64)
        self.size = _contig(tree.size, np.int64)
        self.child_lo = _contig(tree.child_lo, np.intp)
        self.child_hi = _contig(tree.child_hi, np.intp)
        self.threshold = _contig(tree.threshold, np.float64)
        self.d_parent = (
            None if tree.d_parent is None else _contig(tree.d_parent, np.float64)
        )
        self.elems = _contig(tree.elems, np.intp)
        self.elem_lo = _contig(tree.elem_lo, np.intp)
        self.vp_split = int(tree.vp_split)
        self.emit_dpar = int(tree.d_parent is not None and not tree.vp_split)
        # 1-/2-d euclidean: the kernel fuses exact float64 distances.
        fast = getattr(space, "paired_fast_columns", None)
        self.fast = fast() if fast is not None else None
        rc = _rect_leaf_cache(space, tree)
        self.route_max = int(rc[0]) if rc is not None else 0
        self.rect_fn = partial(_c_rect_single_rung, ctx=self)


def compiled_count_walk(
    space,
    query_ids: np.ndarray,
    radii: np.ndarray,
    tree,
    *,
    frontier: WalkFrontier | None = None,
    stats: dict | None = None,
) -> np.ndarray:
    """Multi-radius range counting through the compiled kernel.

    Drop-in for :func:`repro.index.base.level_count_walk` — same
    signature, bit-identical counts, same resumable-``frontier``
    contract.  Raises :class:`CKernelError` when the kernel is
    unavailable; callers that want the graceful fallback go through
    :func:`repro.index.base.count_walk`.
    """
    kernel = get_kernel()
    if kernel is None:
        raise CKernelError(
            "compiled walk requested but the C kernel is unavailable; "
            "use count_walk(walk='compiled') for the graceful fallback"
        )
    track = stats is not None
    if track:
        for key in _WALK_STAT_KEYS:
            stats.setdefault(key, 0)
    query_ids = np.asarray(query_ids, dtype=np.intp)
    nq, a = query_ids.size, np.asarray(radii).size
    if a == 0:
        return np.zeros((nq, 0), dtype=np.int64)
    radii = _contig(radii, np.float64)
    ids = _identity_or_ids(query_ids)
    qids = None if isinstance(ids, _IdentityIds) else _contig(ids, np.intp)
    diff = np.zeros(nq * (a + 1), dtype=np.float64)
    ctx = _WalkContext(kernel, space, tree, radii, qids, diff)
    fr = _root_frontier(nq, a) if frontier is None else _owned_frontier(frontier)
    work = [fr]
    while work:
        fr = work.pop()
        if fr.nodes.size > _LEVEL_CHUNK:
            for start in range(0, fr.nodes.size, _LEVEL_CHUNK):
                sl = slice(start, start + _LEVEL_CHUNK)
                work.append(
                    WalkFrontier(
                        fr.nodes[sl], fr.pos[sl], fr.lo[sl], fr.hi[sl],
                        None if fr.dpar is None else fr.dpar[sl],
                    )
                )
            continue
        fr = _compiled_step(ctx, ids, fr, track, stats)
        if fr.nodes.size:
            work.append(fr)
    return _finish_counts(diff, nq, a)


def _compiled_step(ctx, ids, fr, track, stats):
    """Advance one frontier chunk through ``repro_advance`` and scatter
    its leaf entries; returns the next-depth frontier."""
    nodes, pos, lo, hi, dpar = fr
    n = nodes.size
    if track:
        stats["steps"] += 1
        stats["entries"] += n
    if n == 0:
        return _EMPTY_FRONTIER
    kernel, radii, a = ctx.kernel, ctx.radii, ctx.a
    d_arr = None
    dpar_in = None
    if ctx.fast is not None:
        # Distances fuse into the kernel; the parent-distance filter
        # (if any) runs inline there too.
        dpar_in = dpar
        qcols, qsq = ctx.fast
        qcol0, qcol1 = qcols[0], (qcols[1] if len(qcols) == 2 else None)
        ncols = len(qcols)
        if track:
            stats["distance_calls"] += 1
            if dpar is not None:
                stats["searchsorted_calls"] += 1
    else:
        qcol0 = qcol1 = qsq = None
        ncols = 0
        if dpar is not None:
            # Compact through the C parent-distance filter before
            # paying for any Python-side distances.
            n = int(
                kernel.dpar_filter(
                    n, a, _p(radii), _p(nodes), _p(pos), _p(lo), _p(hi),
                    _p(dpar), _p(ctx.d_parent), _p(ctx.radius),
                )
            )
            if track:
                stats["searchsorted_calls"] += 1
            if n == 0:
                return _EMPTY_FRONTIER
            nodes, pos, lo, hi = nodes[:n], pos[:n], lo[:n], hi[:n]
        # The exact same call the numpy walk makes: queries stay on the
        # Q side of the metric, floats are bit-identical.
        d_arr = ctx.space.paired_distances(ids[pos], ctx.center.take(nodes))
        if track:
            stats["distance_calls"] += 1
    cap = int((ctx.child_hi.take(nodes) - ctx.child_lo.take(nodes)).sum())
    leaf_nodes = np.empty(n, dtype=np.intp)
    leaf_pos = np.empty(n, dtype=np.intp)
    leaf_lo = np.empty(n, dtype=np.intp)
    leaf_hi = np.empty(n, dtype=np.intp)
    leaf_d = np.empty(n, dtype=np.float64)
    out_nodes = np.empty(cap, dtype=np.intp)
    out_pos = np.empty(cap, dtype=np.intp)
    out_lo = np.empty(cap, dtype=np.intp)
    out_hi = np.empty(cap, dtype=np.intp)
    out_dpar = np.empty(cap, dtype=np.float64) if ctx.emit_dpar else None
    counters = np.zeros(2, dtype=np.int64)
    kernel.advance(
        n, a, _p(radii),
        _p(nodes), _p(pos), _p(lo), _p(hi),
        _p(d_arr), _p(dpar_in),
        _p(ctx.qids), _p(qcol0), _p(qcol1), _p(qsq), ncols,
        _p(ctx.center), _p(ctx.radius), _p(ctx.size),
        _p(ctx.child_lo), _p(ctx.child_hi),
        _p(ctx.threshold), _p(ctx.d_parent),
        ctx.vp_split, ctx.route_max, ctx.emit_dpar,
        _p(ctx.diff), ctx.stride,
        _p(leaf_nodes), _p(leaf_pos), _p(leaf_lo), _p(leaf_hi), _p(leaf_d),
        _p(out_nodes), _p(out_pos), _p(out_lo), _p(out_hi), _p(out_dpar),
        _p(counters),
    )
    if track:
        stats["searchsorted_calls"] += 2  # swallow/prune boundary compares
        stats["scatter_calls"] += 1
    n_leaf, n_next = int(counters[0]), int(counters[1])
    if n_leaf:
        _level_leaf_scatter(
            ctx.space, ids, radii, ctx.tree, ctx.diff, ctx.stride,
            leaf_nodes[:n_leaf], leaf_pos[:n_leaf], leaf_lo[:n_leaf],
            leaf_hi[:n_leaf], leaf_d[:n_leaf], track, stats,
            rect_fn=ctx.rect_fn,
        )
    if n_next == 0:
        return _EMPTY_FRONTIER
    sl = slice(0, n_next)
    if n_next * 2 < cap:
        # Mostly-pruned level: trim so the work stack never pins a
        # buffer much larger than its live entries.
        return WalkFrontier(
            out_nodes[sl].copy(), out_pos[sl].copy(), out_lo[sl].copy(),
            out_hi[sl].copy(),
            None if out_dpar is None else out_dpar[sl].copy(),
        )
    return WalkFrontier(
        out_nodes[sl], out_pos[sl], out_lo[sl], out_hi[sl],
        None if out_dpar is None else out_dpar[sl],
    )


def _c_rect_single_rung(
    space, query_ids, radii, tree, diff, stride, nodes, pos, lo, b, pad, sq_pad,
    track, stats, *, ctx,
):
    """Compiled single-rung rectangle; drop-in for
    :func:`repro.index.base._rect_single_rung` (same signature, bound to
    the walk context via ``partial``)."""
    cols32, sq32, scale2 = space.float32_coords()
    ncols = len(cols32)
    width = int(pad[0].shape[1])
    eps_abs = (ncols + 10) * 4e-7 * scale2
    kernel = ctx.kernel
    pad_ptrs = (ctypes.c_void_p * ncols)(*[blk.ctypes.data for blk in pad])
    qcol_ptrs = (ctypes.c_void_p * ncols)(*[col.ctypes.data for col in cols32])
    counters = np.zeros(1, dtype=np.int64)
    n = nodes.size
    if track:
        pairs = int(b.sum())
        stats["distance_calls"] += 1
        stats["searchsorted_calls"] += 1
        stats["leaf_entries_total"] = stats.get("leaf_entries_total", 0) + pairs
    if ctx.fast is not None:
        # Band cells settle inside the kernel through the exact float64
        # column expansion; credits scatter straight into diff.
        ecols, esq = ctx.fast
        cnt = np.empty(n, dtype=np.int64)
        kernel.rect_rung(
            n, width, ncols,
            _p(nodes), _p(pos), _p(lo), _p(ctx.qids),
            ctypes.addressof(pad_ptrs), _p(sq_pad),
            ctypes.addressof(qcol_ptrs), _p(sq32),
            _p(radii), eps_abs,
            _p(ecols[0]), _p(ecols[1]) if len(ecols) == 2 else None, _p(esq),
            _p(ctx.elems), _p(ctx.elem_lo),
            _p(diff), stride,
            None, None, _p(cnt), _p(counters),
        )
        band = int(counters[0])
        if track:
            stats["leaf_entries_filtered"] = (
                stats.get("leaf_entries_filtered", 0) + int(b.sum()) - band
            )
            if band:
                stats["distance_calls"] += 1
                stats["searchsorted_calls"] += 1
            stats["scatter_calls"] += 1
        return
    # Generic vector data (3..64 dims): the kernel emits margin-band
    # (entry, slot) pairs; the exact float64 metric settles them here
    # and the rung credit scatters as one weighted range-add — the
    # identical arithmetic _rect_single_rung performs.
    step = max(1, _RECT_BAND_CELLS // width)
    filtered = 0
    for s in range(0, n, step):
        sub = slice(s, min(s + step, n))
        ns = sub.stop - sub.start
        sn, sp, slo = nodes[sub], pos[sub], lo[sub]
        band_e = np.empty(ns * width, dtype=np.intp)
        band_c = np.empty(ns * width, dtype=np.intp)
        cnt = np.empty(ns, dtype=np.int64)
        kernel.rect_rung(
            ns, width, ncols,
            _p(sn), _p(sp), _p(slo), _p(ctx.qids),
            ctypes.addressof(pad_ptrs), _p(sq_pad),
            ctypes.addressof(qcol_ptrs), _p(sq32),
            _p(radii), eps_abs,
            None, None, None,
            _p(ctx.elems), _p(ctx.elem_lo),
            _p(diff), stride,
            _p(band_e), _p(band_c), _p(cnt), _p(counters),
        )
        nb = int(counters[0])
        filtered += int(b[sub].sum()) - nb
        if nb:
            br, bc = band_e[:nb], band_c[:nb]
            epos = ctx.elem_lo.take(sn.take(br)) + bc
            dm = space.paired_distances(
                query_ids[sp.take(br)], ctx.elems.take(epos)
            )
            if track:
                stats["distance_calls"] += 1
                stats["searchsorted_calls"] += 1
            hit = dm <= radii[slo.take(br)]
            if hit.any():
                cnt += np.bincount(br[hit], minlength=ns)
        nz = np.flatnonzero(cnt)
        if nz.size:
            lon = slo.take(nz)
            _range_add(diff, stride, sp.take(nz), lon, lon + 1, weights=cnt.take(nz))
            if track:
                stats["scatter_calls"] += 1
    if track:
        stats["leaf_entries_filtered"] = (
            stats.get("leaf_entries_filtered", 0) + filtered
        )
