"""Cover tree: a metric index with geometrically decreasing scales.

A batch-built cover tree in the spirit of Beygelzimer, Kakade and
Langford (ICML 2006): every node owns a *center* element and a *scale*
``s``; its children's centers are pairwise separated by more than
``2^(s-1)`` and every descendant lies within ``2^s`` of the center
(the covering invariant).  Construction here is top-down
farthest-point separation, which yields the same invariants as the
classic insertion algorithm while being simpler and deterministic.

Range counting prunes exactly like the other metric trees: a subtree
whose covering ball is swallowed by the query ball contributes its
size without any further distance evaluations (the *count-only
principle* of Sec. IV-G), and a subtree whose covering ball misses the
query ball is skipped entirely.

The cover tree shines when the data's intrinsic (fractal) dimension is
small — precisely the regime Lemma 1 argues real data occupies — since
the number of children per node is bounded by the doubling constant.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.index.base import (
    DEFAULT_WALK,
    FlatQueryMixin,
    FlatTree,
    MetricIndex,
    attach_leaf_distances,
    check_build_mode,
    check_walk_mode,
)
from repro.index.bulk import bulk_build_covertree
from repro.metric.base import MetricSpace


class _CoverNode:
    __slots__ = ("center", "scale", "radius", "size", "children", "bucket")

    def __init__(self, center: int, scale: int):
        self.center = center
        self.scale = scale
        self.radius: float = 0.0  # max distance from center to any member
        self.size: int = 0
        self.children: list["_CoverNode"] = []
        self.bucket: np.ndarray | None = None  # leaf members (includes center)


class CoverTree(FlatQueryMixin, MetricIndex):
    """Batch-built cover tree with subtree-count pruning.

    Parameters
    ----------
    space, ids:
        The metric space and the element ids to index.
    leaf_size:
        Members at or below this count become a brute-force leaf.
    base:
        Scale base (default 2.0, the classic cover tree's); children at
        scale ``s`` are separated by more than ``base**(s-1)``.
    build:
        ``"bulk"`` (default) runs the level-synchronous array build
        (:func:`~repro.index.bulk.bulk_build_covertree`) straight into
        :class:`~repro.index.base.FlatTree` storage — no object nodes,
        ``self.root is None``.  ``"insert"`` keeps the recursive
        per-node builder as the frozen differential baseline.

    Notes
    -----
    The ``"insert"`` build keeps the classic top-down farthest-point
    separation over object nodes (``self.root``, used by the invariant
    tests), then *freezes* the result into a
    :class:`~repro.index.base.FlatTree` (``self.flat``).  Either way,
    all queries — and persistence — run against ``self.flat``.
    """

    def __init__(
        self, space: MetricSpace, ids=None, *,
        leaf_size: int = 16, base: float = 2.0, walk: str = DEFAULT_WALK,
        build: str = "bulk",
    ):
        super().__init__(space, ids)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        if base <= 1.0:
            raise ValueError(f"base must be > 1, got {base}")
        self.leaf_size = leaf_size
        self.base = float(base)
        self.walk = check_walk_mode(walk)
        self.build = check_build_mode(build)
        if self.build == "insert":
            self.root: _CoverNode | None = self._build_root()
            self.flat = attach_leaf_distances(space, self._freeze())
        else:
            self.root = None
            self.flat = bulk_build_covertree(
                space, self.ids, base=self.base, leaf_size=self.leaf_size
            )

    # -- construction ----------------------------------------------------

    def _build_root(self) -> _CoverNode:
        members = self.ids.copy()
        center = int(members[0])
        d = self.space.distances(center, members)
        radius = float(d.max())
        scale = 0 if radius == 0.0 else int(math.ceil(math.log(max(radius, 1e-300), self.base)))
        return self._build(center, members, d, scale)

    def _build(self, center: int, members: np.ndarray, d_center: np.ndarray, scale: int) -> _CoverNode:
        node = _CoverNode(center, scale)
        node.size = int(members.size)
        node.radius = float(d_center.max()) if members.size > 1 else 0.0
        if members.size <= self.leaf_size or node.radius == 0.0:
            node.bucket = members
            return node

        # Greedy farthest-point separation at the child scale: pick
        # centers pairwise more than `sep` apart, then assign every
        # member to its nearest center.  The center of this node is
        # always the first child center (the nesting invariant).
        sep = self.base ** (scale - 1)
        centers = [center]
        best = d_center.copy()  # distance of each member to its nearest chosen center
        while True:
            far = int(np.argmax(best))
            if best[far] <= sep:
                break
            new_center = int(members[far])
            centers.append(new_center)
            d_new = self.space.distances(new_center, members)
            np.minimum(best, d_new, out=best)
            if len(centers) >= members.size:  # pragma: no cover - defensive
                break

        if len(centers) == 1:
            # Everything already within the child separation: drop the
            # scale until the set actually splits (or becomes a leaf).
            return self._build(center, members, d_center, scale - 1)

        assign_d = np.empty((len(centers), members.size), dtype=np.float64)
        for row, cen in enumerate(centers):
            assign_d[row] = self.space.distances(cen, members)
        owner = np.argmin(assign_d, axis=0)
        for row, cen in enumerate(centers):
            mask = owner == row
            child_members = members[mask]
            if child_members.size == 0:  # pragma: no cover - owner always includes center
                continue
            node.children.append(
                self._build(cen, child_members, assign_d[row][mask], scale - 1)
            )
        return node

    # -- freeze pass -------------------------------------------------------

    def _freeze(self) -> FlatTree:
        """Flatten the object tree into struct-of-arrays storage.

        BFS layout: a node's children occupy a contiguous index range,
        and every node's members are a contiguous slice of one element
        permutation (children partition their parent's slice in order;
        leaf buckets fill the slices in).  Queries and persistence only
        touch the result.
        """
        n = len(self.ids)
        elems = np.empty(n, dtype=np.intp)
        center: list[int] = []
        radius: list[float] = []
        size: list[int] = []
        child_lo: list[int] = []
        child_hi: list[int] = []
        elem_lo: list[int] = []
        elem_hi: list[int] = []

        def new_node(onode: _CoverNode, lo: int, hi: int) -> int:
            idx = len(center)
            center.append(int(onode.center))
            radius.append(float(onode.radius))
            size.append(int(onode.size))
            child_lo.append(0)
            child_hi.append(0)
            elem_lo.append(lo)
            elem_hi.append(hi)
            return idx

        queue: deque[tuple[_CoverNode, int]] = deque()
        queue.append((self.root, new_node(self.root, 0, n)))
        while queue:
            onode, idx = queue.popleft()
            lo, hi = elem_lo[idx], elem_hi[idx]
            if onode.bucket is not None:
                elems[lo:hi] = onode.bucket
                continue
            first = len(center)
            cursor = lo
            for child in onode.children:
                queue.append((child, new_node(child, cursor, cursor + child.size)))
                cursor += child.size
            child_lo[idx], child_hi[idx] = first, first + len(onode.children)
        return FlatTree(
            center=center, threshold=np.zeros(len(center)), radius=radius, size=size,
            child_lo=child_lo, child_hi=child_hi,
            elem_lo=elem_lo, elem_hi=elem_hi, elems=elems,
        )

    # -- queries (count_within / count_within_many from FlatQueryMixin) ---

    def diameter_estimate(self) -> float:
        """Root-children rule (Alg. 1 line 2) with a two-scan refinement."""
        if self.ids.size == 1:
            return 0.0
        # The flat root's center is the object root's center (nesting
        # invariant), so both builds share this path.
        d0 = self.space.distances(int(self.flat.center[0]), self.ids)
        far = int(self.ids[int(np.argmax(d0))])
        return float(self.space.distances(far, self.ids).max())

    # -- introspection -----------------------------------------------------

    def max_depth(self) -> int:
        """Height of the tree (leaves are depth 1)."""
        if self.root is None:  # bulk-built: depth lives in the flat arrays
            return self.flat.max_depth()

        def depth(node: _CoverNode) -> int:
            if node.bucket is not None:
                return 1
            return 1 + max(depth(ch) for ch in node.children)

        return depth(self.root)

    def node_count(self) -> int:
        """Total number of nodes (internal + leaves)."""
        if self.root is None:
            return int(self.flat.n_nodes)
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count
