"""Index selection: pick the right tree for the data at hand.

Mirrors the paper's footnote 4: metric trees for non-vector data,
kd-trees (scipy's compiled one by default) for main-memory vectors,
R-trees for the disk-based flavour.  ``"auto"`` chooses the fastest
correct option.
"""

from __future__ import annotations

from typing import Callable

from repro.index.balltree import BallTree
from repro.index.base import MetricIndex, check_build_mode, check_walk_mode
from repro.index.bruteforce import BruteForceIndex
from repro.index.ckdtree import CKDTreeIndex
from repro.index.covertree import CoverTree
from repro.index.kdtree import KDTree
from repro.index.laesa import LAESAIndex
from repro.index.mtree import MTree
from repro.index.rtree import RTree
from repro.index.slimtree import SlimTree
from repro.index.vptree import VPTree
from repro.metric.base import MetricSpace

_VECTOR_ONLY = {"kdtree", "ckdtree", "rtree"}

#: Families with a selectable construction strategy (the
#: level-synchronous array bulk-load vs the per-insert baseline).
_BUILD_SELECTABLE = {"mtree", "slimtree", "covertree"}
#: Families whose only construction IS the level-synchronous bulk
#: build — ``build="bulk"`` is a no-op, ``build="insert"`` an error.
_BULK_NATIVE = {"vptree", "balltree"}

#: Families backed by a :class:`~repro.index.base.FlatTree` with a
#: selectable frontier walk (``level`` / ``stack`` / ``compiled`` /
#: ``auto``); every other kind rejects ``walk=`` loudly.
_WALK_SELECTABLE = {"vptree", "balltree", "mtree", "slimtree", "covertree"}

_BUILDERS: dict[str, Callable[..., MetricIndex]] = {
    "brute": BruteForceIndex,
    "vptree": VPTree,
    "kdtree": KDTree,
    "ckdtree": CKDTreeIndex,
    "mtree": MTree,
    "rtree": RTree,
    "slimtree": SlimTree,
    "covertree": CoverTree,
    "balltree": BallTree,
    "laesa": LAESAIndex,
}


def available_index_kinds() -> list[str]:
    """Names accepted by :func:`build_index` (besides ``"auto"``)."""
    return sorted(_BUILDERS)


def build_index(
    space: MetricSpace, ids=None, *, kind: str = "auto", build: str | None = None,
    walk: str | None = None,
    **kwargs,
) -> MetricIndex:
    """Build an index over ``space`` (optionally restricted to ``ids``).

    ``kind="auto"`` selects scipy's cKDTree for Euclidean vector data
    and a VP-tree otherwise.  Explicit kinds: ``brute``, ``vptree``,
    ``kdtree``, ``ckdtree``, ``mtree``, ``slimtree``, ``rtree``.
    Extra keyword arguments are forwarded to the index constructor.

    ``build`` selects the construction strategy for the insertion-tree
    families (``mtree``/``slimtree``/``covertree``): the
    level-synchronous array bulk-load (``"bulk"``, their default) or
    the per-insert baseline (``"insert"``).  Requesting a build mode
    for a family that has no such path fails loudly — never a silent
    fallback — so a pinned ``build=`` in a spec always means what it
    says.

    ``walk`` selects the frontier-walk implementation on the flat-tree
    families (``vptree``/``balltree``/``mtree``/``slimtree``/
    ``covertree``): ``"auto"`` (their default — the compiled C kernel
    when it builds, the numpy level walk otherwise), ``"compiled"``,
    ``"level"``, or the ``"stack"`` differential baseline.  Kinds
    without a flat walk reject ``walk=`` loudly, same policy as
    ``build=`` — and ``kind="auto"`` with a ``walk`` resolves to the
    VP-tree, since asking for a frontier walk implies wanting a flat
    tree.
    """
    if kind == "auto":
        if walk is not None:
            # Requesting a frontier walk implies wanting a flat tree:
            # "auto" resolves to the VP-tree instead of scipy's
            # cKDTree, which has no selectable walk.
            kind = "vptree"
        elif space.is_vector and getattr(space.metric, "p", None) == 2.0:
            kind = "ckdtree"
        else:
            kind = "vptree"
    try:
        builder = _BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown index kind {kind!r}; choose from {available_index_kinds()} or 'auto'"
        ) from None
    if kind in _VECTOR_ONLY and not space.is_vector:
        raise TypeError(f"index kind {kind!r} requires vector data; use 'vptree' or 'mtree'")
    if build is not None:
        check_build_mode(build)
        if kind in _BUILD_SELECTABLE:
            kwargs["build"] = build
        elif kind in _BULK_NATIVE:
            if build == "insert":
                raise ValueError(
                    f"index kind {kind!r} has no insertion builder — it is "
                    f"bulk-built natively; drop build= or use build='bulk'"
                )
            # "bulk" is the native (and only) construction: nothing to forward.
        else:
            raise ValueError(
                f"index kind {kind!r} has no build={build!r} path; build= "
                f"applies to {sorted(_BUILD_SELECTABLE | _BULK_NATIVE)}"
            )
    if walk is not None:
        check_walk_mode(walk)
        if kind not in _WALK_SELECTABLE:
            raise ValueError(
                f"index kind {kind!r} has no selectable frontier walk; walk= "
                f"applies to {sorted(_WALK_SELECTABLE)}"
            )
        kwargs["walk"] = walk
    return builder(space, ids, **kwargs)
