"""Similarity joins over metric indexes (Sec. IV-C / IV-G).

Three operations, matching the three joins McCatch issues:

- :func:`self_join_counts` — SELFJOINC of Alg. 2: neighbor counts per
  point per radius, with the paper's four speed-up principles
  (sparse-focused, count-only, using-index, small-radii-only);
- :func:`join_counts` — JOINC of Alg. 4: per-outlier counts of
  neighboring *inliers* at one radius;
- :func:`self_join_pairs` — SELFJOIN of Alg. 3: the materialized pair
  join used to gel the (few) outliers into connected components.

Counts that the sparse-focused principle never computes are reported as
``UNKNOWN_COUNT`` (-1); plateau analysis treats them as "beyond the
Maximum Microcluster Cardinality", which is exactly what they are.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex

UNKNOWN_COUNT = -1


def self_join_counts(
    index: MetricIndex,
    radii: Sequence[float] | np.ndarray,
    *,
    max_cardinality: int | None = None,
    sparse_focused: bool = True,
    small_radii_only: bool = True,
) -> np.ndarray:
    """Neighbor counts (+ self) for every indexed point at every radius.

    Parameters
    ----------
    index:
        Index over the full dataset.
    radii:
        Increasing radii ``r_1 < ... < r_a`` (Alg. 1 line 3).
    max_cardinality:
        The Maximum Microcluster Cardinality ``c``.  With
        ``sparse_focused=True``, a point whose count at radius ``r_{e-1}``
        already exceeds ``c`` is not queried at later radii — its further
        counts can only describe clusters too big to be microclusters.
    small_radii_only:
        Skip the join at ``r_a`` entirely: ``r_a`` equals the estimated
        diameter, so every point is (approximately) everyone's neighbor.

    Returns
    -------
    counts:
        ``(n, a)`` int array, ``counts[i, e]`` = neighbors of point
        ``ids[i]`` within ``radii[e]`` (self included), or
        ``UNKNOWN_COUNT`` where the sparse-focused principle skipped the
        computation.
    """
    radii = np.asarray(radii, dtype=np.float64)
    if radii.size < 2:
        raise ValueError("need at least two radii")
    if np.any(np.diff(radii) <= 0):
        raise ValueError("radii must be strictly increasing")
    n = len(index)
    a = radii.size
    counts = np.full((n, a), UNKNOWN_COUNT, dtype=np.int64)
    positions = np.arange(n)
    active = positions  # positions (not ids) still being tracked
    for e in range(a):
        if small_radii_only and e == a - 1:
            # Small-radii-only principle: at r_a = l everything is a
            # neighbor of everything, no join needed.
            counts[active, e] = n
            break
        if active.size == 0:
            break
        counts[active, e] = index.count_within(index.ids[active], radii[e])
        if sparse_focused and max_cardinality is not None:
            active = active[counts[active, e] <= max_cardinality]
    return counts


def join_counts(
    inlier_index: MetricIndex, query_ids: Sequence[int] | np.ndarray, radius: float
) -> np.ndarray:
    """Count, for each query element, the indexed elements within ``radius``.

    This is the outliers-vs-inliers join of Alg. 4 line 5 (count-only:
    no pairs are materialized).
    """
    return inlier_index.count_within(np.asarray(query_ids, dtype=np.intp), radius)


def self_join_pairs(index: MetricIndex, radius: float) -> list[tuple[int, int]]:
    """Materialized self-join: unordered id pairs within ``radius``.

    Only called on the small outlier set (Alg. 3 line 12), where
    materializing pairs is cheap.
    """
    return index.pairs_within(float(radius))
