"""Similarity joins over metric indexes (Sec. IV-C / IV-G).

Three operations, matching the three joins McCatch issues:

- :func:`self_join_counts` — SELFJOINC of Alg. 2: neighbor counts per
  point per radius, with the paper's four speed-up principles
  (sparse-focused, count-only, using-index, small-radii-only);
- :func:`join_counts` — JOINC of Alg. 4: per-outlier counts of
  neighboring *inliers* at one radius;
- :func:`self_join_pairs` — SELFJOIN of Alg. 3: the materialized pair
  join used to gel the (few) outliers into connected components.

These are thin conveniences over :class:`repro.engine.BatchQueryEngine`,
which owns the execution plan (batched multi-radius descents by
default, the historical per-point schedule on request) and the
sparse-focused / small-radii-only scheduling that used to live here.

Counts that the sparse-focused principle never computes are reported as
``UNKNOWN_COUNT`` (-1); plateau analysis treats them as "beyond the
Maximum Microcluster Cardinality", which is exactly what they are.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import UNKNOWN_COUNT, MetricIndex

__all__ = ["UNKNOWN_COUNT", "self_join_counts", "join_counts", "self_join_pairs"]


def self_join_counts(
    index: MetricIndex,
    radii: Sequence[float] | np.ndarray,
    *,
    max_cardinality: int | None = None,
    sparse_focused: bool = True,
    small_radii_only: bool = True,
    mode: str = "batched",
) -> np.ndarray:
    """Neighbor counts (+ self) for every indexed point at every radius.

    Parameters
    ----------
    index:
        Index over the full dataset.
    radii:
        Increasing radii ``r_1 < ... < r_a`` (Alg. 1 line 3).
    max_cardinality:
        The Maximum Microcluster Cardinality ``c``.  With
        ``sparse_focused=True``, a point whose count at radius ``r_{e-1}``
        already exceeds ``c`` is not reported at later radii — its further
        counts can only describe clusters too big to be microclusters.
    small_radii_only:
        Skip the join at ``r_a`` entirely: ``r_a`` equals the estimated
        diameter, so every point is (approximately) everyone's neighbor.
    mode:
        Execution plan: ``"batched"`` (default, one multi-radius descent
        per point) or ``"per_point"`` (the reference per-radius loop).
        Results are bit-for-bit identical.

    Returns
    -------
    counts:
        ``(n, a)`` int array, ``counts[i, e]`` = neighbors of point
        ``ids[i]`` within ``radii[e]`` (self included), or
        ``UNKNOWN_COUNT`` where the sparse-focused principle skipped the
        computation.
    """
    from repro.engine.executor import BatchQueryEngine  # lazy: avoids an import cycle

    return BatchQueryEngine(index, mode=mode).self_join_counts(
        radii,
        max_cardinality=max_cardinality,
        sparse_focused=sparse_focused,
        small_radii_only=small_radii_only,
    )


def join_counts(
    inlier_index: MetricIndex, query_ids: Sequence[int] | np.ndarray, radius: float
) -> np.ndarray:
    """Count, for each query element, the indexed elements within ``radius``.

    This is the outliers-vs-inliers join of Alg. 4 line 5 (count-only:
    no pairs are materialized).
    """
    from repro.engine.executor import BatchQueryEngine  # lazy: avoids an import cycle

    return BatchQueryEngine(inlier_index).join_counts(query_ids, radius)


def self_join_pairs(index: MetricIndex, radius: float) -> list[tuple[int, int]]:
    """Materialized self-join: unordered id pairs within ``radius``.

    Only called on the small outlier set (Alg. 3 line 12), where
    materializing pairs is cheap.
    """
    from repro.engine.executor import BatchQueryEngine  # lazy: avoids an import cycle

    return BatchQueryEngine(index).pairs(radius)
