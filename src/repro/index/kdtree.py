"""Pure-Python KD-tree for main-memory vector data (paper footnote 4).

The paper's implementation menu is "M-trees and Slim-trees for
non-vector data; R-trees for disk-based vector data, and kd-trees for
main-memory-based vector data".  This KD-tree supports Euclidean range
counting with whole-subtree pruning via bounding boxes.  In practice
the scipy-backed :class:`~repro.index.ckdtree.CKDTreeIndex` is faster
and is the default; this implementation exists so the library is
self-contained and the two can be cross-checked in tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex
from repro.metric.base import MetricSpace


class _KDNode:
    __slots__ = ("axis", "split", "left", "right", "bucket", "lo", "hi", "size")

    def __init__(self):
        self.axis = -1
        self.split = 0.0
        self.left: "_KDNode | None" = None
        self.right: "_KDNode | None" = None
        self.bucket: np.ndarray | None = None
        self.lo: np.ndarray | None = None  # bounding box
        self.hi: np.ndarray | None = None
        self.size = 0


class KDTree(MetricIndex):
    """Median-split KD-tree with bounding-box range counting (Euclidean)."""

    def __init__(self, space: MetricSpace, ids=None, *, leaf_size: int = 32):
        if not space.is_vector:
            raise TypeError("KDTree requires vector data; use VPTree for metric objects")
        super().__init__(space, ids)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size
        self._X = space.data
        self.root = self._build(self.ids.copy(), depth=0)

    def _build(self, members: np.ndarray, depth: int) -> _KDNode:
        node = _KDNode()
        node.size = int(members.size)
        pts = self._X[members]
        node.lo = pts.min(axis=0)
        node.hi = pts.max(axis=0)
        if members.size <= self.leaf_size or np.all(node.lo == node.hi):
            node.bucket = members
            return node
        spans = node.hi - node.lo
        node.axis = int(np.argmax(spans))
        values = pts[:, node.axis]
        node.split = float(np.median(values))
        left_mask = values <= node.split
        if left_mask.all() or not left_mask.any():
            # All values equal to the median on this axis: split by rank.
            order = np.argsort(values, kind="stable")
            half = members.size // 2
            left, right = members[order[:half]], members[order[half:]]
        else:
            left, right = members[left_mask], members[~left_mask]
        node.left = self._build(left, depth + 1)
        node.right = self._build(right, depth + 1)
        return node

    # -- queries ----------------------------------------------------------

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        r2 = radius * radius
        return np.array(
            [self._count_one(self._X[int(q)], radius, r2) for q in query_ids], dtype=np.intp
        )

    def _count_one(self, q: np.ndarray, radius: float, r2: float) -> int:
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            # Min / max squared distance from q to the bounding box.
            below = np.maximum(node.lo - q, 0.0)
            above = np.maximum(q - node.hi, 0.0)
            min_d2 = float(np.sum(np.maximum(below, above) ** 2))
            if min_d2 > r2:
                continue
            far = np.maximum(np.abs(q - node.lo), np.abs(q - node.hi))
            max_d2 = float(np.sum(far**2))
            if max_d2 <= r2:
                total += node.size
                continue
            if node.bucket is not None:
                diff = self._X[node.bucket] - q
                total += int((np.einsum("ij,ij->i", diff, diff) <= r2).sum())
                continue
            stack.append(node.left)
            stack.append(node.right)
        return total

    def diameter_estimate(self) -> float:
        """Bounding-box diagonal — an upper bound tight for box-filling data."""
        return float(np.linalg.norm(self.root.hi - self.root.lo))
