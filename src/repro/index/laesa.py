"""LAESA pivot table: distance-bound filtering for expensive metrics.

LAESA (Linear Approximating and Eliminating Search Algorithm, Micó,
Oncina & Vidal 1994) trades O(n · k) precomputed pivot distances for
cheap per-query bounds.  With pivots ``p_1..p_k`` chosen by greedy
farthest-point separation, every indexed element ``i`` carries the row
``D[i] = (d(i, p_1), ..., d(i, p_k))``.  For a query ``q`` with pivot
distances ``dq``:

- lower bound  ``LB(i) = max_k |dq_k − D[i,k]|``   (triangle inequality)
- upper bound  ``UB(i) = min_k  dq_k + D[i,k]``

Range counting then resolves most elements without touching the metric
at all: ``LB(i) > r`` excludes, ``UB(i) <= r`` includes, and only the
undecided sliver pays a real distance evaluation.  This is the index
of choice when the metric dominates — tree edit distance on skeleton
graphs, long-string Levenshtein — exactly the nondimensional workloads
McCatch targets (goal G1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex
from repro.metric.base import MetricSpace


class LAESAIndex(MetricIndex):
    """Pivot-table index with lower/upper-bound filtering.

    Parameters
    ----------
    space, ids:
        The metric space and the element ids to index.
    n_pivots:
        Number of pivots ``k`` (default 16, capped at the index size).
        More pivots tighten the bounds at O(n) memory per pivot.
    """

    def __init__(self, space: MetricSpace, ids=None, *, n_pivots: int = 16):
        super().__init__(space, ids)
        if n_pivots < 1:
            raise ValueError(f"n_pivots must be >= 1, got {n_pivots}")
        self.n_pivots = min(int(n_pivots), int(self.ids.size))
        self.pivots = self._choose_pivots()
        # D[i, k] = distance from indexed element i to pivot k.
        self._table = np.stack(
            [self.space.distances(int(p), self.ids) for p in self.pivots], axis=1
        )
        self._pos = {int(e): row for row, e in enumerate(self.ids)}

    # -- construction ----------------------------------------------------

    def _choose_pivots(self) -> np.ndarray:
        """Greedy farthest-point pivots: well spread, deterministic."""
        ids = self.ids
        pivots = [int(ids[0])]
        best = self.space.distances(pivots[0], ids)
        while len(pivots) < self.n_pivots:
            far = int(np.argmax(best))
            if best[far] <= 0.0:
                break  # all remaining elements coincide with a pivot
            pivots.append(int(ids[far]))
            np.minimum(best, self.space.distances(pivots[-1], ids), out=best)
        return np.asarray(pivots, dtype=np.intp)

    # -- queries ----------------------------------------------------------

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        """Per-query neighbor counts via bound filtering (see :class:`MetricIndex`)."""
        query_ids = np.asarray(query_ids, dtype=np.intp)
        out = np.empty(query_ids.size, dtype=np.intp)
        for row, q in enumerate(query_ids):
            out[row] = self._count_one(int(q), radius)
        return out

    def _count_one(self, query: int, radius: float) -> int:
        dq = self._query_pivot_distances(query)
        diff = np.abs(self._table - dq)  # (n, k)
        lower = diff.max(axis=1)
        upper = (self._table + dq).min(axis=1)
        decided_in = upper <= radius
        total = int(decided_in.sum())
        undecided = np.nonzero((lower <= radius) & ~decided_in)[0]
        if undecided.size:
            d = self.space.distances(query, self.ids[undecided])
            total += int((d <= radius).sum())
        return total

    def _query_pivot_distances(self, query: int) -> np.ndarray:
        row = self._pos.get(int(query))
        if row is not None:
            return self._table[row]
        return self.space.distances(int(query), self.pivots)

    def filtering_stats(self, query: int, radius: float) -> dict[str, int]:
        """How many elements the bounds decided without the metric.

        Returns counts ``{"excluded", "included", "evaluated"}`` for one
        query — the LAESA value proposition, used by the index ablation
        bench.
        """
        dq = self._query_pivot_distances(int(query))
        diff = np.abs(self._table - dq)
        lower = diff.max(axis=1)
        upper = (self._table + dq).min(axis=1)
        included = upper <= radius
        excluded = lower > radius
        evaluated = ~included & ~excluded
        return {
            "excluded": int(excluded.sum()),
            "included": int(included.sum()),
            "evaluated": int(evaluated.sum()),
        }
