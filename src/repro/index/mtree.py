"""M-tree: a dynamic, balanced metric access method (Ciaccia et al. [36]).

The paper's Alg. 1 builds "a tree T for P, like a Slim-tree, M-tree, or
R-tree".  This module implements the classic M-tree: routing entries
carry a pivot, a covering radius, and the distance to their parent
pivot, which lets range queries prune with two triangle-inequality
tests before computing any distance.  Subtree sizes are maintained so a
query ball that swallows a routing ball is counted in O(1) — the
count-only principle again.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.index.base import (
    DEFAULT_WALK,
    FlatTree,
    MetricIndex,
    check_build_mode,
    check_radii_ascending,
    check_walk_mode,
    count_walk,
)
from repro.index.bulk import bulk_build_mtree
from repro.metric.base import MetricSpace


class _Entry:
    """Routing or leaf entry.

    Leaf entries have ``subtree is None`` and ``radius == 0``; routing
    entries point at a child node whose members all lie within
    ``radius`` of ``pivot_id``.
    """

    __slots__ = ("pivot_id", "radius", "d_parent", "subtree", "size")

    def __init__(self, pivot_id: int, radius: float = 0.0, subtree: "_Node | None" = None):
        self.pivot_id = pivot_id
        self.radius = radius
        self.d_parent = 0.0
        self.subtree = subtree
        self.size = 1 if subtree is None else subtree.size()


class _Node:
    __slots__ = ("is_leaf", "entries")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []

    def size(self) -> int:
        return sum(e.size for e in self.entries)


class MTree(MetricIndex):
    """M-tree with hyperplane split and min-max-radius promotion.

    Parameters
    ----------
    capacity:
        Maximum entries per node before a split (>= 4); the bulk build
        uses it as both routing fanout and leaf bucket cap.
    build:
        ``"bulk"`` (default) constructs the
        :class:`~repro.index.base.FlatTree` arrays directly with the
        level-synchronous :func:`~repro.index.bulk.bulk_build_mtree`
        (no object nodes, ``self.root is None``); ``"insert"`` keeps
        the classic per-insert builder as the frozen differential
        baseline (mirroring ``walk="stack"``).
    """

    def __init__(
        self, space: MetricSpace, ids=None, *,
        capacity: int = 16, walk: str = DEFAULT_WALK, build: str = "bulk",
    ):
        if capacity < 4:
            raise ValueError(f"capacity must be >= 4, got {capacity}")
        super().__init__(space, ids)
        self.capacity = capacity
        self.walk = check_walk_mode(walk)
        self.build = check_build_mode(build)
        self._distance_calls = 0
        self._flat: FlatTree | None = None
        if self.build == "insert":
            self.root: _Node | None = _Node(is_leaf=True)
            for i in self.ids:
                self._insert(int(i))
        else:
            self.root = None
            stats: dict = {"distance_calls": 0}
            self._flat = self._bulk_build(stats)
            self._distance_calls += stats["distance_calls"]

    def _bulk_build(self, stats: dict) -> FlatTree:
        """The array bulk-load (SlimTree shares it; capacity = fanout)."""
        return bulk_build_mtree(
            self.space, self.ids,
            fanout=self.capacity, leaf_cap=self.capacity, stats=stats,
        )

    @property
    def flat(self) -> FlatTree:
        """The :class:`~repro.index.base.FlatTree` every query runs on.

        The bulk build *is* these arrays (no object intermediate).
        With ``build="insert"``, insertion keeps the classic
        object-node M-tree and the first multi-radius query (or a
        save) freezes it lazily; structure-mutating passes (e.g. the
        Slim-tree's slim-down) invalidate the cache.
        """
        if self._flat is None:
            self._flat = self._freeze()
        return self._flat

    def _freeze(self) -> FlatTree:
        """Flatten routing entries into struct-of-arrays storage.

        Each routing entry becomes one flat node carrying its pivot,
        covering radius, subtree size and — for the M-tree's classic
        pre-distance pruning — the distance to its parent pivot.  A
        leaf _Node becomes a flat leaf whose bucket (a slice of the
        element permutation) holds its entries' pivot ids.  The object
        root has no routing entry, so the flat root is synthesized: its
        center is the first root pivot and its radius the
        ``max(d(center, p_i) + r_i)`` covering bound; the root
        children's parent distances are computed honestly here so the
        parent filter stays exact.
        """
        n = len(self.ids)
        elems = np.empty(n, dtype=np.intp)
        d_elem = np.zeros(n, dtype=np.float64)
        center: list[int] = []
        radius: list[float] = []
        size: list[int] = []
        child_lo: list[int] = []
        child_hi: list[int] = []
        elem_lo: list[int] = []
        elem_hi: list[int] = []
        d_parent: list[float] = []

        def new_node(c: int, rad: float, sz: int, dpar: float, lo: int, hi: int) -> int:
            idx = len(center)
            center.append(int(c))
            radius.append(float(rad))
            size.append(int(sz))
            child_lo.append(0)
            child_hi.append(0)
            elem_lo.append(lo)
            elem_hi.append(hi)
            d_parent.append(float(dpar))
            return idx

        def make_flat() -> FlatTree:
            return FlatTree(
                center=center, threshold=np.zeros(len(center)), radius=radius,
                size=size, child_lo=child_lo, child_hi=child_hi,
                elem_lo=elem_lo, elem_hi=elem_hi, elems=elems, d_parent=d_parent,
                d_elem=d_elem,
            )

        root = self.root
        if root.is_leaf:  # tiny tree: everything hangs off one leaf node
            members = np.array([e.pivot_id for e in root.entries], dtype=np.intp)
            c = int(members[0])
            # The object root carries no routing entry, so its members'
            # d_parent fields were never set relative to this synthetic
            # center — measure them honestly (the covering radius needs
            # the same distances anyway).
            d_c = (
                self.space.distances(c, members)
                if members.size > 1
                else np.zeros(1, dtype=np.float64)
            )
            rad = float(d_c.max()) if members.size > 1 else 0.0
            new_node(c, rad, members.size, 0.0, 0, n)
            elems[:] = members
            d_elem[:] = d_c
            return make_flat()

        pivots = np.array([e.pivot_id for e in root.entries], dtype=np.intp)
        c = int(pivots[0])
        d_piv = self.space.distances(c, pivots)
        rad = max(
            float(d_piv[k]) + float(e.radius) for k, e in enumerate(root.entries)
        )
        root_idx = new_node(c, rad, root.size(), 0.0, 0, n)
        queue: deque[tuple[_Entry, int]] = deque()
        first = len(center)
        cursor = 0
        for k, e in enumerate(root.entries):
            queue.append(
                (e, new_node(e.pivot_id, e.radius, e.size, float(d_piv[k]), cursor, cursor + e.size))
            )
            cursor += e.size
        child_lo[root_idx], child_hi[root_idx] = first, first + len(root.entries)

        while queue:
            entry, idx = queue.popleft()
            node = entry.subtree
            lo, hi = elem_lo[idx], elem_hi[idx]
            if node.is_leaf:
                elems[lo:hi] = [e.pivot_id for e in node.entries]
                # A leaf entry's d_parent is its distance to the owning
                # node's pivot — exactly the flat leaf's center — kept
                # current by insert/split/slim-down.  The level walk's
                # leaf scatter uses it to skip expensive object-metric
                # evaluations per member.
                d_elem[lo:hi] = [e.d_parent for e in node.entries]
                continue
            first = len(center)
            cursor = lo
            for e in node.entries:
                queue.append(
                    (e, new_node(e.pivot_id, e.radius, e.size, e.d_parent, cursor, cursor + e.size))
                )
                cursor += e.size
            child_lo[idx], child_hi[idx] = first, first + len(node.entries)
        return make_flat()

    # -- distances --------------------------------------------------------

    def _d(self, i: int, j: int) -> float:
        self._distance_calls += 1
        return self.space.distance(i, j)

    def _d_block(self, left, right) -> np.ndarray:
        """One bulk distance block, counted honestly.

        The insert hot loops route through here instead of per-entry
        ``_d`` calls: one ``distances_among`` block per decision.
        Argument order is preserved (rows are the same "left" side the
        scalar calls used), and the einsum bulk kernel is bitwise
        shape-independent, so every entry equals the scalar ``_d``
        value it replaces — tree structure is unchanged, only the
        Python-loop overhead is gone.
        """
        left = np.asarray(left, dtype=np.intp)
        right = np.asarray(right, dtype=np.intp)
        self._distance_calls += int(left.size) * int(right.size)
        return self.space.distances_among(left, right)

    def _d_block_sym(self, pivot_ids) -> np.ndarray:
        """Symmetric pairwise block over one pivot set.

        Vector spaces take the full-square bulk call (the kernel is
        one broadcast either way); object spaces — whose "bulk" is an
        honest per-pair metric loop — evaluate each unordered pair
        once and mirror, so going wide never doubles the metric cost
        the scalar loops used to pay.
        """
        ids = np.asarray(pivot_ids, dtype=np.intp)
        if self.space.is_vector:
            return self._d_block(ids, ids)
        m = ids.size
        self._distance_calls += m * (m - 1) // 2
        dm = np.zeros((m, m), dtype=np.float64)
        for a in range(m - 1):
            row = self.space.distances(int(ids[a]), ids[a + 1 :])
            dm[a, a + 1 :] = row
            dm[a + 1 :, a] = row
        return dm

    # -- insertion ----------------------------------------------------------

    def _insert(self, obj: int) -> None:
        path: list[tuple[_Node, _Entry | None]] = []
        node = self.root
        parent_entry: _Entry | None = None
        d_parent = 0.0
        while not node.is_leaf:
            path.append((node, parent_entry))
            best, d_parent = self._choose_subtree(node, obj)
            if d_parent > best.radius:
                best.radius = d_parent  # enlarge covering radius on the way down
            best.size += 1
            parent_entry = best
            node = best.subtree  # type: ignore[assignment]
        entry = _Entry(obj)
        if parent_entry is not None:
            # the distance to the chosen pivot fell out of subtree
            # selection already — no second metric evaluation
            entry.d_parent = d_parent
        node.entries.append(entry)
        if len(node.entries) > self.capacity:
            self._split(node, path, parent_entry)

    def _choose_subtree(self, node: _Node, obj: int) -> tuple[_Entry, float]:
        """M-tree heuristic: prefer a covering entry at minimum distance,
        otherwise the entry needing the least radius enlargement.

        One bulk block measures ``obj`` against every entry pivot at
        once (the insert hot loop); returns the chosen entry and the
        distance to its pivot.  First-minimum tie-breaking matches the
        historical per-entry scan.
        """
        entries = node.entries
        d = self._d_block([obj], [e.pivot_id for e in entries])[0]
        radii = np.array([e.radius for e in entries], dtype=np.float64)
        covering = np.nonzero(d <= radii)[0]
        if covering.size:
            k = int(covering[np.argmin(d[covering])])
        else:
            k = int(np.argmin(d - radii))
        return entries[k], float(d[k])

    # -- splitting ----------------------------------------------------------

    def _promote(self, entries: list[_Entry]) -> tuple[int, int]:
        """Pick two pivots.  Sampled mM_RAD: among candidate pairs, take
        the one minimizing the larger covering radius.

        One ``(m, limit)`` bulk block measures every entry pivot
        against every candidate pivot; each candidate pair is then
        scored by array reductions over its two columns.
        """
        m = len(entries)
        limit = min(m, 8)
        pivots = [e.pivot_id for e in entries]
        radii = np.array([e.radius for e in entries], dtype=np.float64)
        # cover[k, c] = d(entries[k], candidate c) + entries[k].radius
        cover = self._d_block(pivots, pivots[:limit]) + radii[:, None]
        best_pair = (0, 1)
        best_score = np.inf
        for a in range(limit):
            for b in range(a + 1, limit):
                to_a = cover[:, a] <= cover[:, b]
                ra = cover[to_a, a].max() if to_a.any() else 0.0
                rb = cover[~to_a, b].max() if not to_a.all() else 0.0
                score = max(float(ra), float(rb))
                if score < best_score:
                    best_score = score
                    best_pair = (a, b)
        return best_pair

    def _partition(
        self, entries: list[_Entry], pa: int, pb: int
    ) -> tuple[list[_Entry], list[_Entry], float, float]:
        """Generalized-hyperplane partition around the two pivots.

        One ``(m, 2)`` bulk block replaces the two per-entry distance
        calls; the assignment rule (ties go left) is unchanged.
        """
        D = self._d_block([e.pivot_id for e in entries], [pa, pb])
        left: list[_Entry] = []
        right: list[_Entry] = []
        ra = rb = 0.0
        for k, e in enumerate(entries):
            da, db = float(D[k, 0]), float(D[k, 1])
            if da <= db:
                e.d_parent = da
                left.append(e)
                ra = max(ra, da + e.radius)
            else:
                e.d_parent = db
                right.append(e)
                rb = max(rb, db + e.radius)
        return left, right, ra, rb

    def _split(
        self,
        node: _Node,
        path: list[tuple[_Node, _Entry | None]],
        node_entry: _Entry | None,
    ) -> None:
        entries = node.entries
        ia, ib = self._promote(entries)
        pa, pb = entries[ia].pivot_id, entries[ib].pivot_id
        left, right, ra, rb = self._partition(entries, pa, pb)
        if not left or not right:
            # Heavy duplicates can promote two zero-distance pivots, making
            # the hyperplane partition one-sided; an empty *internal* node
            # would later break subtree choice.  Fall back to a balanced
            # split by distance to pa (ties broken by list order).
            d_pa = self._d_block([e.pivot_id for e in entries], [pa])[:, 0]
            order = np.argsort(d_pa, kind="stable")  # list order on ties
            half = len(entries) // 2
            left = [entries[int(k)] for k in order[:half]]
            right = [entries[int(k)] for k in order[half:]]
            pb = right[0].pivot_id
            ra = rb = 0.0
            for e, k in zip(left, order[:half]):
                e.d_parent = float(d_pa[int(k)])
                ra = max(ra, e.d_parent + e.radius)
            d_pb = self._d_block([e.pivot_id for e in right], [pb])[:, 0]
            for n_r, e in enumerate(right):
                e.d_parent = float(d_pb[n_r])
                rb = max(rb, e.d_parent + e.radius)
        left_node = _Node(node.is_leaf)
        left_node.entries = left
        right_node = _Node(node.is_leaf)
        right_node.entries = right
        ea = _Entry(pa, ra, left_node)
        eb = _Entry(pb, rb, right_node)

        if not path:
            # Node was the root: grow the tree by one level.
            new_root = _Node(is_leaf=False)
            new_root.entries = [ea, eb]
            self.root = new_root
            return
        parent, grand_entry = path[-1]
        assert node_entry is not None
        parent.entries.remove(node_entry)
        if grand_entry is not None:
            ea.d_parent = self._d(pa, grand_entry.pivot_id)
            eb.d_parent = self._d(pb, grand_entry.pivot_id)
        parent.entries.extend([ea, eb])
        if len(parent.entries) > self.capacity:
            self._split(parent, path[:-1], grand_entry)

    # -- queries ----------------------------------------------------------

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        if self.root is None:  # bulk-built: no object nodes to descend
            counts = count_walk(
                self.space, query_ids, np.array([float(radius)]), self.flat,
                walk=self.walk,
            )
            return counts[:, 0].astype(np.intp)
        return np.array(
            [self._count_one(int(q), float(radius)) for q in query_ids], dtype=np.intp
        )

    def _count_one(self, q: int, r: float) -> int:
        total = 0
        # Stack holds (node, distance from q to the node's parent pivot or None).
        stack: list[tuple[_Node, float | None]] = [(self.root, None)]
        while stack:
            node, d_qp = stack.pop()
            for e in node.entries:
                if d_qp is not None and abs(d_qp - e.d_parent) > r + e.radius:
                    continue  # pruned without computing a distance
                d = self._d(q, e.pivot_id)
                if e.subtree is None:
                    if d <= r:
                        total += 1
                    continue
                if d + e.radius <= r:
                    total += e.size  # whole ball inside the query
                elif d - e.radius <= r:
                    stack.append((e.subtree, d))
        return total

    def count_within_many(self, query_ids, radii) -> np.ndarray:
        """All radii for all queries in one walk over the frozen flat
        arrays (:func:`~repro.index.base.level_count_walk` by default,
        the stack walk with ``walk="stack"``).

        The walk applies the M-tree's classic parent-distance filter —
        stored per flat node as ``d_parent``, and per leaf entry as
        ``d_elem`` for the level walk's object-metric leaf thinning —
        before computing any distance, and shares every distance across
        the whole radius ladder.  Inherited by
        :class:`~repro.index.slimtree.SlimTree`.
        """
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        return count_walk(self.space, query_ids, radii, self.flat, walk=self.walk)

    def diameter_estimate(self) -> float:
        """Alg. 1 line 2: max distance between direct successors of the root.

        Child balls centred at pivot ``p_i`` with radius ``r_i`` bound
        the member span, so the estimate is
        ``max_{i<j} d(p_i, p_j) + r_i + r_j`` (exact when leaves hang
        directly off the root).  Bulk-built trees apply the same rule
        to the flat root's children (a leaf root — all members in one
        bucket — takes the exact pairwise maximum instead).
        """
        if self.root is None:
            flat = self.flat
            lo, hi = int(flat.child_lo[0]), int(flat.child_hi[0])
            if lo == hi:  # leaf root: every member in one bucket
                if flat.elems.size == 1:
                    return 0.0
                return float(np.max(np.triu(self._d_block_sym(flat.elems), k=1)))
            pivots = flat.center[lo:hi]
            radii = np.asarray(flat.radius[lo:hi], dtype=np.float64)
            if pivots.size == 1:
                return 2.0 * float(radii[0])
            spans = self._d_block_sym(pivots) + radii[:, None] + radii[None, :]
            return float(np.max(np.triu(spans, k=1)))
        entries = self.root.entries
        if len(entries) == 1:
            return 2.0 * entries[0].radius
        pivots = [e.pivot_id for e in entries]
        radii = np.array([e.radius for e in entries], dtype=np.float64)
        spans = self._d_block_sym(pivots) + radii[:, None] + radii[None, :]
        return float(np.max(np.triu(spans, k=1)))

    @property
    def distance_calls(self) -> int:
        """Number of metric evaluations so far (for the ablation bench)."""
        return self._distance_calls

    def height(self) -> int:
        """Tree height in levels (root = 1).

        The insert build is depth-balanced (every leaf at the same
        level); the bulk build is not, so its height is the flat
        tree's maximum depth.
        """
        if self.root is None:
            return self.flat.max_depth()
        h, node = 1, self.root
        while not node.is_leaf:
            h += 1
            node = node.entries[0].subtree  # type: ignore[assignment]
        return h
