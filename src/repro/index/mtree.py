"""M-tree: a dynamic, balanced metric access method (Ciaccia et al. [36]).

The paper's Alg. 1 builds "a tree T for P, like a Slim-tree, M-tree, or
R-tree".  This module implements the classic M-tree: routing entries
carry a pivot, a covering radius, and the distance to their parent
pivot, which lets range queries prune with two triangle-inequality
tests before computing any distance.  Subtree sizes are maintained so a
query ball that swallows a routing ball is counted in O(1) — the
count-only principle again.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex, check_radii_ascending
from repro.metric.base import MetricSpace


class _Entry:
    """Routing or leaf entry.

    Leaf entries have ``subtree is None`` and ``radius == 0``; routing
    entries point at a child node whose members all lie within
    ``radius`` of ``pivot_id``.
    """

    __slots__ = ("pivot_id", "radius", "d_parent", "subtree", "size")

    def __init__(self, pivot_id: int, radius: float = 0.0, subtree: "_Node | None" = None):
        self.pivot_id = pivot_id
        self.radius = radius
        self.d_parent = 0.0
        self.subtree = subtree
        self.size = 1 if subtree is None else subtree.size()


class _Node:
    __slots__ = ("is_leaf", "entries")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []

    def size(self) -> int:
        return sum(e.size for e in self.entries)


class MTree(MetricIndex):
    """M-tree with hyperplane split and min-max-radius promotion.

    Parameters
    ----------
    capacity:
        Maximum entries per node before a split (>= 4).
    """

    def __init__(self, space: MetricSpace, ids=None, *, capacity: int = 16):
        if capacity < 4:
            raise ValueError(f"capacity must be >= 4, got {capacity}")
        super().__init__(space, ids)
        self.capacity = capacity
        self.root = _Node(is_leaf=True)
        self._distance_calls = 0
        for i in self.ids:
            self._insert(int(i))

    # -- distances --------------------------------------------------------

    def _d(self, i: int, j: int) -> float:
        self._distance_calls += 1
        return self.space.distance(i, j)

    # -- insertion ----------------------------------------------------------

    def _insert(self, obj: int) -> None:
        path: list[tuple[_Node, _Entry | None]] = []
        node = self.root
        parent_entry: _Entry | None = None
        while not node.is_leaf:
            path.append((node, parent_entry))
            best = self._choose_subtree(node, obj)
            d = self._d(obj, best.pivot_id)
            if d > best.radius:
                best.radius = d  # enlarge covering radius on the way down
            best.size += 1
            parent_entry = best
            node = best.subtree  # type: ignore[assignment]
        entry = _Entry(obj)
        if parent_entry is not None:
            entry.d_parent = self._d(obj, parent_entry.pivot_id)
        node.entries.append(entry)
        if len(node.entries) > self.capacity:
            self._split(node, path, parent_entry)

    def _choose_subtree(self, node: _Node, obj: int) -> _Entry:
        """M-tree heuristic: prefer a covering entry at minimum distance,
        otherwise the entry needing the least radius enlargement."""
        best: _Entry | None = None
        best_key = (1, np.inf)  # (0 if covering else 1, distance or enlargement)
        for entry in node.entries:
            d = self._d(obj, entry.pivot_id)
            key = (0, d) if d <= entry.radius else (1, d - entry.radius)
            if key < best_key:
                best_key = key
                best = entry
        assert best is not None
        return best

    # -- splitting ----------------------------------------------------------

    def _promote(self, entries: list[_Entry]) -> tuple[int, int]:
        """Pick two pivots.  Sampled mM_RAD: among candidate pairs, take
        the one minimizing the larger covering radius."""
        m = len(entries)
        candidates: list[tuple[int, int]] = []
        limit = min(m, 8)
        for a in range(limit):
            for b in range(a + 1, limit):
                candidates.append((a, b))
        best_pair = candidates[0]
        best_score = np.inf
        for a, b in candidates:
            pa, pb = entries[a].pivot_id, entries[b].pivot_id
            ra = rb = 0.0
            for e in entries:
                da = self._d(e.pivot_id, pa) + e.radius
                db = self._d(e.pivot_id, pb) + e.radius
                if da <= db:
                    ra = max(ra, da)
                else:
                    rb = max(rb, db)
            score = max(ra, rb)
            if score < best_score:
                best_score = score
                best_pair = (a, b)
        return best_pair

    def _partition(
        self, entries: list[_Entry], pa: int, pb: int
    ) -> tuple[list[_Entry], list[_Entry], float, float]:
        """Generalized-hyperplane partition around the two pivots."""
        left: list[_Entry] = []
        right: list[_Entry] = []
        ra = rb = 0.0
        for e in entries:
            da = self._d(e.pivot_id, pa)
            db = self._d(e.pivot_id, pb)
            if (da, 0) <= (db, 1):
                e.d_parent = da
                left.append(e)
                ra = max(ra, da + e.radius)
            else:
                e.d_parent = db
                right.append(e)
                rb = max(rb, db + e.radius)
        return left, right, ra, rb

    def _split(
        self,
        node: _Node,
        path: list[tuple[_Node, _Entry | None]],
        node_entry: _Entry | None,
    ) -> None:
        entries = node.entries
        ia, ib = self._promote(entries)
        pa, pb = entries[ia].pivot_id, entries[ib].pivot_id
        left, right, ra, rb = self._partition(entries, pa, pb)
        if not left or not right:
            # Heavy duplicates can promote two zero-distance pivots, making
            # the hyperplane partition one-sided; an empty *internal* node
            # would later break subtree choice.  Fall back to a balanced
            # split by distance to pa (ties broken by list order).
            by_da = sorted(entries, key=lambda e: self._d(e.pivot_id, pa))
            half = len(by_da) // 2
            left, right = by_da[:half], by_da[half:]
            pb = right[0].pivot_id
            ra = rb = 0.0
            for e in left:
                e.d_parent = self._d(e.pivot_id, pa)
                ra = max(ra, e.d_parent + e.radius)
            for e in right:
                e.d_parent = self._d(e.pivot_id, pb)
                rb = max(rb, e.d_parent + e.radius)
        left_node = _Node(node.is_leaf)
        left_node.entries = left
        right_node = _Node(node.is_leaf)
        right_node.entries = right
        ea = _Entry(pa, ra, left_node)
        eb = _Entry(pb, rb, right_node)

        if not path:
            # Node was the root: grow the tree by one level.
            new_root = _Node(is_leaf=False)
            new_root.entries = [ea, eb]
            self.root = new_root
            return
        parent, grand_entry = path[-1]
        assert node_entry is not None
        parent.entries.remove(node_entry)
        if grand_entry is not None:
            ea.d_parent = self._d(pa, grand_entry.pivot_id)
            eb.d_parent = self._d(pb, grand_entry.pivot_id)
        parent.entries.extend([ea, eb])
        if len(parent.entries) > self.capacity:
            self._split(parent, path[:-1], grand_entry)

    # -- queries ----------------------------------------------------------

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        return np.array(
            [self._count_one(int(q), float(radius)) for q in query_ids], dtype=np.intp
        )

    def _count_one(self, q: int, r: float) -> int:
        total = 0
        # Stack holds (node, distance from q to the node's parent pivot or None).
        stack: list[tuple[_Node, float | None]] = [(self.root, None)]
        while stack:
            node, d_qp = stack.pop()
            for e in node.entries:
                if d_qp is not None and abs(d_qp - e.d_parent) > r + e.radius:
                    continue  # pruned without computing a distance
                d = self._d(q, e.pivot_id)
                if e.subtree is None:
                    if d <= r:
                        total += 1
                    continue
                if d + e.radius <= r:
                    total += e.size  # whole ball inside the query
                elif d - e.radius <= r:
                    stack.append((e.subtree, d))
        return total

    def count_within_many(self, query_ids, radii) -> np.ndarray:
        """All radii in one descent per query (see :class:`MetricIndex`).

        The parent-distance filter and the pivot distance are evaluated
        once per routing entry and shared across the whole radius
        ladder; each stack entry carries the window ``[lo, hi)`` of
        radius positions still undecided for its subtree.  Inherited by
        :class:`~repro.index.slimtree.SlimTree`.
        """
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)
        ladder = radii.tolist()
        out = np.empty((query_ids.size, radii.size), dtype=np.int64)
        for row, q in enumerate(query_ids):
            out[row] = np.cumsum(self._count_one_many(int(q), ladder))
        return out

    def _count_one_many(self, q: int, ladder: list[float]) -> list[int]:
        """Difference array of counts over the radius ladder for one query."""
        a = len(ladder)
        diff = [0] * (a + 1)
        # Stack holds (node, distance from q to the node's parent pivot
        # or None, undecided radii window [lo, hi)).
        stack: list[tuple[_Node, float | None, int, int]] = [(self.root, None, 0, a)]
        while stack:
            node, d_qp, lo, hi = stack.pop()
            for e in node.entries:
                elo, ehi = lo, hi
                if d_qp is not None:
                    bound = bisect_left(ladder, abs(d_qp - e.d_parent) - e.radius)
                    if bound > elo:
                        elo = bound
                    if elo >= ehi:
                        continue  # pruned for every radius, no distance computed
                d = self._d(q, e.pivot_id)
                if e.subtree is None:
                    sv = bisect_left(ladder, d)
                    if sv < ehi:
                        diff[sv if sv > elo else elo] += 1
                        diff[ehi] -= 1
                    continue
                full = bisect_left(ladder, d + e.radius)
                if full < ehi:
                    diff[full if full > elo else elo] += e.size  # ball inside the query
                    diff[ehi] -= e.size
                    ehi = full
                low = bisect_left(ladder, d - e.radius)
                if low > elo:
                    elo = low
                if elo < ehi:
                    stack.append((e.subtree, d, elo, ehi))
        return diff[:a]

    def diameter_estimate(self) -> float:
        """Alg. 1 line 2: max distance between direct successors of the root.

        Child balls centred at pivot ``p_i`` with radius ``r_i`` bound
        the member span, so the estimate is
        ``max_{i<j} d(p_i, p_j) + r_i + r_j`` (exact when leaves hang
        directly off the root).
        """
        entries = self.root.entries
        if len(entries) == 1:
            return 2.0 * entries[0].radius
        best = 0.0
        for a in range(len(entries)):
            for b in range(a + 1, len(entries)):
                ea, eb = entries[a], entries[b]
                d = self._d(ea.pivot_id, eb.pivot_id) + ea.radius + eb.radius
                best = max(best, d)
        return best

    @property
    def distance_calls(self) -> int:
        """Number of metric evaluations so far (for the ablation bench)."""
        return self._distance_calls

    def height(self) -> int:
        """Tree height in levels (root = 1)."""
        h, node = 1, self.root
        while not node.is_leaf:
            h += 1
            node = node.entries[0].subtree  # type: ignore[assignment]
        return h
