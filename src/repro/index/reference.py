"""Pre-refactor object-node trees: the differential baseline.

Before the flat array-backed storage (:class:`~repro.index.base.FlatTree`),
the VP- and ball trees were graphs of Python ``__slots__`` node objects
built by per-node recursion and walked by popping one tuple per node.
This module preserves those implementations verbatim — builds, per-query
walks and the object-node frontier walk — under ``Reference*`` names, for
two jobs only:

- the structural-equivalence tests, which assert the flat trees'
  ``count_within_many`` matches the object-tree walk bit for bit across
  metric families and boundary radii (the PR 1 regression class);
- ``benchmarks/bench_index_build.py``, which measures what the
  vectorized level-synchronous builds buy over these.

They are not exported by the index factory and should not be used in
application code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex, check_radii_ascending
from repro.metric.base import MetricSpace
from repro.utils.rng import check_random_state


def _object_frontier_walk(
    space: MetricSpace,
    query_ids: np.ndarray,
    radii: np.ndarray,
    root,
    center_of,
    descend,
) -> np.ndarray:
    """The pre-refactor node-major walk over object-node trees."""
    nq, a = query_ids.size, radii.size
    diff = np.zeros((nq, a + 1), dtype=np.int64)
    stack = [(root, np.arange(nq), np.zeros(nq, dtype=np.intp), np.full(nq, a, dtype=np.intp))]
    while stack:
        node, pos, lo, hi = stack.pop()
        d = space.distances_among(query_ids[pos], [center_of(node)])[:, 0]
        full = np.searchsorted(radii, d + node.radius)
        swallow = full < hi
        if swallow.any():  # ball swallowed whole
            rows = pos[swallow]
            diff[rows, np.maximum(full[swallow], lo[swallow])] += node.size
            diff[rows, hi[swallow]] -= node.size
            hi = np.minimum(hi, full)
        lo = np.maximum(lo, np.searchsorted(radii, d - node.radius))
        live = lo < hi
        if not live.any():
            continue
        if not live.all():
            pos, lo, hi, d = pos[live], lo[live], hi[live], d[live]
        if node.bucket is not None:
            dm = space.distances_among(query_ids[pos], node.bucket)
            e = np.searchsorted(radii, dm)  # (m, b) radius position per member
            valid = e < hi[:, None]
            rows = np.broadcast_to(pos[:, None], e.shape)[valid]
            np.add.at(diff, (rows, np.maximum(e, lo[:, None])[valid]), 1)
            np.add.at(diff, (rows, np.broadcast_to(hi[:, None], e.shape)[valid]), -1)
            continue
        descend(stack, node, pos, lo, hi, d, diff, radii)
    return np.cumsum(diff[:, :a], axis=1)


class _VPNode:
    __slots__ = ("vantage", "threshold", "radius", "size", "inside", "outside", "bucket")

    def __init__(self):
        self.vantage: int = -1
        self.threshold: float = 0.0
        self.radius: float = 0.0  # max distance from vantage to any member
        self.size: int = 0
        self.inside: "_VPNode | None" = None
        self.outside: "_VPNode | None" = None
        self.bucket: np.ndarray | None = None  # leaf members (includes vantage)


class ReferenceVPTree(MetricIndex):
    """The pre-refactor recursive object-node VP-tree (see module docstring)."""

    def __init__(self, space: MetricSpace, ids=None, *, leaf_size: int = 16, random_state=0):
        super().__init__(space, ids)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size
        self._rng = check_random_state(random_state)
        self.root = self._build(self.ids.copy())

    def _build(self, members: np.ndarray) -> _VPNode:
        node = _VPNode()
        node.size = int(members.size)
        if members.size <= self.leaf_size:
            node.vantage = int(members[0])
            node.bucket = members
            if members.size > 1:
                d = self.space.distances(node.vantage, members)
                node.radius = float(d.max())
            return node
        pick = int(self._rng.integers(members.size))
        node.vantage = int(members[pick])
        rest = np.delete(members, pick)
        d = self.space.distances(node.vantage, rest)
        node.radius = float(d.max())
        node.threshold = float(np.median(d))
        inside_mask = d <= node.threshold
        inside, outside = rest[inside_mask], rest[~inside_mask]
        # Degenerate medians (many ties) can empty one side; fall back to
        # a leaf rather than recursing forever.
        if inside.size == 0 or outside.size == 0:
            node.bucket = members
            return node
        node.inside = self._build(inside)
        node.outside = self._build(outside)
        return node

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        return np.array([self._count_one(int(q), radius) for q in query_ids], dtype=np.intp)

    def _count_one(self, query: int, radius: float) -> int:
        total = 0
        stack = [(self.root, None)]  # (node, known distance to vantage or None)
        while stack:
            node, d_v = stack.pop()
            if d_v is None:
                d_v = self.space.distance(query, node.vantage)
            if node.bucket is not None:
                if d_v + node.radius <= radius:
                    total += node.size  # whole leaf inside the query ball
                else:
                    d = self.space.distances(query, node.bucket)
                    total += int((d <= radius).sum())
                continue
            if d_v + node.radius <= radius:
                total += node.size  # whole subtree inside the query ball
                continue
            if d_v <= radius:
                total += 1  # the vantage point itself
            if node.inside is not None and d_v - radius <= node.threshold:
                stack.append((node.inside, None))
            if node.outside is not None and d_v + radius > node.threshold:
                stack.append((node.outside, None))
        return total

    def count_within_many(self, query_ids, radii) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)

        def descend(stack, node, pos, lo, hi, d_v, diff, radii_):
            sv = np.searchsorted(radii_, d_v)
            self_in = sv < hi
            if self_in.any():  # the vantage point itself
                rows = pos[self_in]
                diff[rows, np.maximum(sv[self_in], lo[self_in])] += 1
                diff[rows, hi[self_in]] -= 1
            if node.inside is not None:
                lo_in = np.maximum(lo, np.searchsorted(radii_, d_v - node.threshold))
                m = lo_in < hi
                if m.any():
                    stack.append((node.inside, pos[m], lo_in[m], hi[m]))
            if node.outside is not None:
                lo_out = np.maximum(
                    lo, np.searchsorted(radii_, node.threshold - d_v, side="right")
                )
                m = lo_out < hi
                if m.any():
                    stack.append((node.outside, pos[m], lo_out[m], hi[m]))

        return _object_frontier_walk(
            self.space, query_ids, radii, self.root, lambda node: node.vantage, descend
        )


class _BallNode:
    __slots__ = ("pivot", "radius", "size", "left", "right", "bucket")

    def __init__(self):
        self.pivot: int = -1
        self.radius: float = 0.0
        self.size: int = 0
        self.left: "_BallNode | None" = None
        self.right: "_BallNode | None" = None
        self.bucket: np.ndarray | None = None


class ReferenceBallTree(MetricIndex):
    """The pre-refactor recursive object-node ball tree (see module docstring)."""

    def __init__(self, space: MetricSpace, ids=None, *, leaf_size: int = 16):
        super().__init__(space, ids)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size
        self.root = self._build(self.ids.copy())

    def _build(self, members: np.ndarray) -> _BallNode:
        node = _BallNode()
        node.size = int(members.size)
        node.pivot = int(members[0])
        d0 = self.space.distances(node.pivot, members)
        node.radius = float(d0.max()) if members.size > 1 else 0.0
        if members.size <= self.leaf_size or node.radius == 0.0:
            node.bucket = members
            return node

        # Approximate diametral pair: a = farthest from the pivot,
        # b = farthest from a; then a nearest-pivot assignment.
        a = int(members[int(np.argmax(d0))])
        d_a = self.space.distances(a, members)
        b = int(members[int(np.argmax(d_a))])
        d_b = self.space.distances(b, members)
        left_mask = d_a <= d_b
        left, right = members[left_mask], members[~left_mask]
        if left.size == 0 or right.size == 0:
            node.bucket = members
            return node
        node.left = self._build(left)
        node.right = self._build(right)
        return node

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        return np.array([self._count_one(int(q), radius) for q in query_ids], dtype=np.intp)

    def _count_one(self, query: int, radius: float) -> int:
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            d = self.space.distance(query, node.pivot)
            if d - node.radius > radius:
                continue
            if d + node.radius <= radius:
                total += node.size
                continue
            if node.bucket is not None:
                dists = self.space.distances(query, node.bucket)
                total += int((dists <= radius).sum())
                continue
            stack.append(node.left)
            stack.append(node.right)
        return total

    def count_within_many(self, query_ids, radii) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)

        def descend(stack, node, pos, lo, hi, d, diff, radii_):
            stack.append((node.left, pos, lo, hi))
            stack.append((node.right, pos, lo, hi))

        return _object_frontier_walk(
            self.space, query_ids, radii, self.root, lambda node: node.pivot, descend
        )
