"""STR-packed R-tree for vector data (paper footnote 4's disk-based option).

Bulk-loaded with Sort-Tile-Recursive packing: points are sorted and
tiled dimension by dimension so sibling rectangles barely overlap.
Range counting against a ball query prunes with min/max distances from
the query to each minimum bounding rectangle, and counts whole subtrees
whose MBR lies inside the ball.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex
from repro.metric.base import MetricSpace


class _RNode:
    __slots__ = ("lo", "hi", "children", "bucket", "size")

    def __init__(self):
        self.lo: np.ndarray | None = None
        self.hi: np.ndarray | None = None
        self.children: list["_RNode"] = []
        self.bucket: np.ndarray | None = None
        self.size = 0


class RTree(MetricIndex):
    """Sort-Tile-Recursive bulk-loaded R-tree (Euclidean range counts)."""

    def __init__(self, space: MetricSpace, ids=None, *, capacity: int = 32):
        if not space.is_vector:
            raise TypeError("RTree requires vector data")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        super().__init__(space, ids)
        self.capacity = capacity
        self._X = space.data
        leaves = self._pack_leaves(self.ids.copy())
        self.root = self._pack_upward(leaves)

    # -- bulk loading ------------------------------------------------------

    def _pack_leaves(self, members: np.ndarray) -> list[_RNode]:
        dim = self._X.shape[1]
        groups = self._str_tile(members, axis=0, dims=dim, leaf_capacity=self.capacity)
        leaves = []
        for group in groups:
            node = _RNode()
            node.bucket = group
            node.size = int(group.size)
            pts = self._X[group]
            node.lo, node.hi = pts.min(axis=0), pts.max(axis=0)
            leaves.append(node)
        return leaves

    def _str_tile(
        self, members: np.ndarray, axis: int, dims: int, leaf_capacity: int
    ) -> list[np.ndarray]:
        """Recursively sort-and-tile ``members`` into capacity-sized runs."""
        if members.size <= leaf_capacity:
            return [members]
        order = np.argsort(self._X[members, axis % dims], kind="stable")
        members = members[order]
        n_groups = math.ceil(members.size / leaf_capacity)
        # Number of slabs along this axis per STR: ceil(n_groups^(1/remaining)).
        remaining = dims - (axis % dims)
        slabs = max(1, math.ceil(n_groups ** (1.0 / max(1, remaining))))
        slab_size = math.ceil(members.size / slabs)
        out: list[np.ndarray] = []
        for start in range(0, members.size, slab_size):
            slab = members[start : start + slab_size]
            if axis % dims == dims - 1 or slab.size <= leaf_capacity:
                for s in range(0, slab.size, leaf_capacity):
                    out.append(slab[s : s + leaf_capacity])
            else:
                out.extend(self._str_tile(slab, axis + 1, dims, leaf_capacity))
        return out

    def _pack_upward(self, nodes: list[_RNode]) -> _RNode:
        while len(nodes) > 1:
            # Order parents by their centers along the first axis for locality.
            centers = np.array([(n.lo[0] + n.hi[0]) / 2.0 for n in nodes])
            nodes = [nodes[i] for i in np.argsort(centers, kind="stable")]
            parents: list[_RNode] = []
            for start in range(0, len(nodes), self.capacity):
                group = nodes[start : start + self.capacity]
                parent = _RNode()
                parent.children = group
                parent.size = sum(g.size for g in group)
                parent.lo = np.min([g.lo for g in group], axis=0)
                parent.hi = np.max([g.hi for g in group], axis=0)
                parents.append(parent)
            nodes = parents
        return nodes[0]

    # -- queries ----------------------------------------------------------

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        r2 = float(radius) ** 2
        return np.array(
            [self._count_one(self._X[int(q)], r2) for q in query_ids], dtype=np.intp
        )

    def _count_one(self, q: np.ndarray, r2: float) -> int:
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            below = np.maximum(node.lo - q, 0.0)
            above = np.maximum(q - node.hi, 0.0)
            if float(np.sum(np.maximum(below, above) ** 2)) > r2:
                continue
            far = np.maximum(np.abs(q - node.lo), np.abs(q - node.hi))
            if float(np.sum(far**2)) <= r2:
                total += node.size
                continue
            if node.bucket is not None:
                diff = self._X[node.bucket] - q
                total += int((np.einsum("ij,ij->i", diff, diff) <= r2).sum())
            else:
                stack.extend(node.children)
        return total

    def diameter_estimate(self) -> float:
        return float(np.linalg.norm(self.root.hi - self.root.lo))
