"""Slim-tree: an M-tree with the MST split and Slim-down (Traina et al. [35]).

The Slim-tree improves on the M-tree in two ways, both implemented
here:

- **minSpanTree split**: instead of a hyperplane partition around two
  promoted pivots, build the minimum spanning tree over the
  overflowing entries and drop its longest edge; the two components
  become the new nodes.  This minimizes covering-ball overlap, the
  quantity the Slim-tree's "fat-factor" measures.
- **Slim-down**: a post-construction pass that migrates leaf entries
  lying on the border of one ball into a sibling ball that also covers
  them and is fuller, shrinking covering radii.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import DEFAULT_WALK
from repro.index.bulk import slim_down_flat
from repro.index.mtree import MTree, _Entry, _Node


class SlimTree(MTree):
    """M-tree subclass with MST-based splits and optional slim-down.

    With ``build="bulk"`` (the default, inherited from
    :class:`~repro.index.mtree.MTree`) the tree is the k-way
    farthest-point bulk-load — no MST splits happen because nothing
    overflows — and slim-down runs as the flat in-place pass
    (:func:`~repro.index.bulk.slim_down_flat`).  ``build="insert"``
    keeps the classic MST-split insertion builder and object slim-down
    as the differential baseline.
    """

    def __init__(
        self, space, ids=None, *,
        capacity: int = 16, slim_down: bool = True, walk: str = DEFAULT_WALK,
        build: str = "bulk",
    ):
        super().__init__(space, ids, capacity=capacity, walk=walk, build=build)
        if slim_down:
            self.slim_down()

    # -- MST split ----------------------------------------------------------

    def _split_groups(self, entries: list[_Entry]) -> tuple[list[int], list[int]]:
        """Partition entry indices by removing the longest MST edge."""
        m = len(entries)
        # One symmetric block instead of the m(m-1)/2-call Python loop
        # (object spaces still pay each unordered pair exactly once).
        dm = self._d_block_sym([e.pivot_id for e in entries])
        # Prim's algorithm, recording the edges as they are added.
        in_tree = np.zeros(m, dtype=bool)
        in_tree[0] = True
        best_d = dm[0].copy()
        best_from = np.zeros(m, dtype=np.intp)
        edges: list[tuple[float, int, int]] = []
        for _ in range(m - 1):
            cand = np.where(~in_tree, best_d, np.inf)
            nxt = int(np.argmin(cand))
            edges.append((float(best_d[nxt]), int(best_from[nxt]), nxt))
            in_tree[nxt] = True
            improved = dm[nxt] < best_d
            best_d = np.where(improved, dm[nxt], best_d)
            best_from = np.where(improved, nxt, best_from)
        # Remove the longest edge and collect the two components.
        edges.sort()
        longest = edges[-1]
        adjacency: dict[int, list[int]] = {i: [] for i in range(m)}
        for _, u, v in edges[:-1]:
            adjacency[u].append(v)
            adjacency[v].append(u)
        seen = {longest[1]}
        stack = [longest[1]]
        while stack:
            u = stack.pop()
            for v in adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        group_a = sorted(seen)
        group_b = [i for i in range(m) if i not in seen]
        if not group_b:  # longest-edge tie degenerated; force a balanced cut
            group_b = [group_a.pop()]
        return group_a, group_b

    def _split(self, node: _Node, path, node_entry) -> None:
        entries = node.entries
        group_a, group_b = self._split_groups(entries)

        def make_node(group: list[int]) -> tuple[_Entry, _Node]:
            members = [entries[i] for i in group]
            # Representative: the member minimizing the resulting radius.
            # One (k, k) bulk block scores every candidate pivot at once;
            # first-minimum selection matches the historical scan.
            pivots = [e.pivot_id for e in members]
            radii = np.array([e.radius for e in members], dtype=np.float64)
            D = self._d_block_sym(pivots)
            per_candidate = (D + radii[:, None]).max(axis=0)  # worst member
            k = int(np.argmin(per_candidate))
            best_pivot = members[k].pivot_id
            best_radius = float(per_candidate[k])
            child = _Node(node.is_leaf)
            child.entries = members
            for n_e, e in enumerate(members):
                # the raw block value: bit-exact d(e, best_pivot), the
                # quantity the walk's parent-distance filter relies on
                e.d_parent = float(D[n_e, k])
            return _Entry(best_pivot, best_radius, child), child

        ea, _ = make_node(group_a)
        eb, _ = make_node(group_b)

        if not path:
            new_root = _Node(is_leaf=False)
            new_root.entries = [ea, eb]
            self.root = new_root
            return
        parent, grand_entry = path[-1]
        assert node_entry is not None
        parent.entries.remove(node_entry)
        if grand_entry is not None:
            ea.d_parent = self._d(ea.pivot_id, grand_entry.pivot_id)
            eb.d_parent = self._d(eb.pivot_id, grand_entry.pivot_id)
        parent.entries.extend([ea, eb])
        if len(parent.entries) > self.capacity:
            self._split(parent, path[:-1], grand_entry)

    # -- slim-down ----------------------------------------------------------

    def slim_down(self, max_rounds: int = 3) -> int:
        """Migrate border leaf entries into covering siblings; returns moves.

        For each pair of sibling leaves (A, B): a farthest entry of A
        that also fits inside B's covering ball (without enlarging it)
        moves to B, after which A's radius can shrink.  Repeats until a
        round makes no move or ``max_rounds`` is hit.
        """
        if self.root is None:  # bulk-built: migrate in place on the flat arrays
            stats: dict = {"distance_calls": 0}
            moves = slim_down_flat(
                self.space, self.flat,
                capacity=self.capacity, max_rounds=max_rounds, stats=stats,
            )
            self._distance_calls += stats["distance_calls"]
            return moves
        moves = 0
        for _ in range(max_rounds):
            moved = self._slim_down_pass(self.root)
            moves += moved
            if moved == 0:
                break
        if moves:
            self._flat = None  # structure changed: re-freeze before the next walk
        return moves

    def _slim_down_pass(self, node: _Node) -> int:
        if node.is_leaf:
            return 0
        moved = 0
        children = node.entries
        if children and children[0].subtree is not None and children[0].subtree.is_leaf:
            for ea in children:
                leaf_a = ea.subtree
                if leaf_a is None or not leaf_a.entries or len(leaf_a.entries) <= 1:
                    continue
                # Farthest member of A from its pivot.
                far = max(leaf_a.entries, key=lambda e: e.d_parent)
                if far.d_parent < ea.radius:
                    continue  # not on the border
                for eb in children:
                    if eb is ea or eb.subtree is None:
                        continue
                    if len(eb.subtree.entries) >= self.capacity:
                        continue
                    d = self._d(far.pivot_id, eb.pivot_id)
                    if d <= eb.radius and len(eb.subtree.entries) >= len(leaf_a.entries):
                        leaf_a.entries.remove(far)
                        far.d_parent = d
                        eb.subtree.entries.append(far)
                        ea.size -= 1
                        eb.size += 1
                        ea.radius = max(
                            (e.d_parent for e in leaf_a.entries), default=0.0
                        )
                        moved += 1
                        break
        else:
            for e in children:
                if e.subtree is not None:
                    moved += self._slim_down_pass(e.subtree)
        return moved

    def fat_factor(self) -> float:
        """Fraction of extra node accesses caused by ball overlap, in [0, 1].

        Point queries at every indexed element count how many leaf-path
        nodes would be visited; 0 means disjoint balls (ideal), 1 means
        every query touches every node.
        """
        n = len(self.ids)
        h = self.height()
        node_count = (
            self.flat.n_nodes if self.root is None else self._count_nodes(self.root)
        )
        if node_count <= h:
            return 0.0
        total_accesses = 0
        for i in self.ids:
            total_accesses += self._point_query_accesses(int(i))
        denom = n * (node_count - h)
        return max(0.0, (total_accesses - h * n) / denom)

    def _count_nodes(self, node: _Node) -> int:
        if node.is_leaf:
            return 1
        return 1 + sum(self._count_nodes(e.subtree) for e in node.entries if e.subtree)

    def _point_query_accesses(self, q: int) -> int:
        if self.root is None:  # bulk-built: descend the flat arrays instead
            flat = self.flat
            accesses = 0
            stack = [0]
            while stack:
                i = stack.pop()
                accesses += 1
                for c in range(int(flat.child_lo[i]), int(flat.child_hi[i])):
                    if self._d(q, int(flat.center[c])) <= flat.radius[c]:
                        stack.append(c)
            return accesses
        accesses = 0
        stack: list[_Node] = [self.root]
        while stack:
            node = stack.pop()
            accesses += 1
            if node.is_leaf:
                continue
            for e in node.entries:
                if e.subtree is not None and self._d(q, e.pivot_id) <= e.radius:
                    stack.append(e.subtree)
        return accesses
