"""Vantage-point tree: the default index for nondimensional data.

A VP-tree partitions a metric space by distance to a vantage point:
elements closer than the median go inside, the rest outside.  Range
counting prunes with the triangle inequality and, thanks to per-node
covering radii and subtree sizes, can count whole subtrees without
descending when the query ball swallows them — which is exactly what
the *count-only principle* of Sec. IV-G wants.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex, check_radii_ascending, frontier_count_walk
from repro.metric.base import MetricSpace
from repro.utils.rng import check_random_state


class _VPNode:
    __slots__ = ("vantage", "threshold", "radius", "size", "inside", "outside", "bucket")

    def __init__(self):
        self.vantage: int = -1
        self.threshold: float = 0.0
        self.radius: float = 0.0  # max distance from vantage to any member
        self.size: int = 0
        self.inside: "_VPNode | None" = None
        self.outside: "_VPNode | None" = None
        self.bucket: np.ndarray | None = None  # leaf members (includes vantage)


class VPTree(MetricIndex):
    """Vantage-point tree with subtree-count pruning.

    Parameters
    ----------
    space, ids:
        The metric space and the element ids to index.
    leaf_size:
        Maximum bucket size before a node is split.
    random_state:
        Seed for vantage-point selection.  The default (0) makes the
        tree — and therefore McCatch, which is advertised as
        deterministic — reproducible run to run.
    """

    def __init__(self, space: MetricSpace, ids=None, *, leaf_size: int = 16, random_state=0):
        super().__init__(space, ids)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size
        self._rng = check_random_state(random_state)
        self.root = self._build(self.ids.copy())

    # -- construction ----------------------------------------------------

    def _build(self, members: np.ndarray) -> _VPNode:
        node = _VPNode()
        node.size = int(members.size)
        if members.size <= self.leaf_size:
            node.vantage = int(members[0])
            node.bucket = members
            if members.size > 1:
                d = self.space.distances(node.vantage, members)
                node.radius = float(d.max())
            return node
        pick = int(self._rng.integers(members.size))
        node.vantage = int(members[pick])
        rest = np.delete(members, pick)
        d = self.space.distances(node.vantage, rest)
        node.radius = float(d.max())
        node.threshold = float(np.median(d))
        inside_mask = d <= node.threshold
        inside, outside = rest[inside_mask], rest[~inside_mask]
        # Degenerate medians (many ties) can empty one side; fall back to
        # a leaf rather than recursing forever.
        if inside.size == 0 or outside.size == 0:
            node.bucket = members
            return node
        node.inside = self._build(inside)
        node.outside = self._build(outside)
        return node

    # -- queries ----------------------------------------------------------

    def count_within(self, query_ids: Sequence[int] | np.ndarray, radius: float) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.intp)
        return np.array(
            [self._count_one(int(q), radius) for q in query_ids], dtype=np.intp
        )

    def _count_one(self, query: int, radius: float) -> int:
        total = 0
        stack = [(self.root, None)]  # (node, known distance to vantage or None)
        while stack:
            node, d_v = stack.pop()
            if d_v is None:
                d_v = self.space.distance(query, node.vantage)
            if node.bucket is not None:
                if d_v + node.radius <= radius:
                    total += node.size  # whole leaf inside the query ball
                else:
                    d = self.space.distances(query, node.bucket)
                    total += int((d <= radius).sum())
                continue
            if d_v + node.radius <= radius:
                total += node.size  # whole subtree inside the query ball
                continue
            if d_v <= radius:
                total += 1  # the vantage point itself
            if node.inside is not None and d_v - radius <= node.threshold:
                stack.append((node.inside, None))
            if node.outside is not None and d_v + radius > node.threshold:
                stack.append((node.outside, None))
        return total

    def count_within_many(self, query_ids, radii) -> np.ndarray:
        """All radii for all queries in one node-major walk
        (:func:`~repro.index.base.frontier_count_walk`).

        The VP-specific ``descend`` credits the vantage point itself
        (internal nodes store it outside both children) and tightens
        each child's radius window with the median-split threshold:
        inside is reachable only for radii ``>= d_v - threshold``,
        outside only for radii ``> threshold - d_v``.
        """
        query_ids = np.asarray(query_ids, dtype=np.intp)
        radii = check_radii_ascending(radii)

        def descend(stack, node, pos, lo, hi, d_v, diff, radii_):
            sv = np.searchsorted(radii_, d_v)
            self_in = sv < hi
            if self_in.any():  # the vantage point itself
                rows = pos[self_in]
                diff[rows, np.maximum(sv[self_in], lo[self_in])] += 1
                diff[rows, hi[self_in]] -= 1
            if node.inside is not None:
                lo_in = np.maximum(lo, np.searchsorted(radii_, d_v - node.threshold))
                m = lo_in < hi
                if m.any():
                    stack.append((node.inside, pos[m], lo_in[m], hi[m]))
            if node.outside is not None:
                lo_out = np.maximum(
                    lo, np.searchsorted(radii_, node.threshold - d_v, side="right")
                )
                m = lo_out < hi
                if m.any():
                    stack.append((node.outside, pos[m], lo_out[m], hi[m]))

        return frontier_count_walk(
            self.space, query_ids, radii, self.root, lambda node: node.vantage, descend
        )

    def diameter_estimate(self) -> float:
        """Two-scan heuristic anchored at the root vantage point.

        Not the paper's literal "max distance between child nodes of
        the root" rule (Alg. 1 line 2): a VP-node has only one
        representative per side, so instead we scan from the root
        vantage to its farthest element ``p``, then return the farthest
        distance from ``p`` — a classic diameter lower bound that is
        within a factor 2 of the truth in any metric space, and exact
        on most real shapes.  Subclasses wanting the literal
        root-children rule (or an exact diameter) should override this
        method; everything downstream only consumes the returned float.
        """
        if self.root.size == 1:
            return 0.0
        far_d = self.space.distances(self.root.vantage, self.ids)
        far = int(self.ids[int(np.argmax(far_d))])
        return float(self.space.distances(far, self.ids).max())
