"""Vantage-point tree: the default index for nondimensional data.

A VP-tree partitions a metric space by distance to a vantage point:
elements closer than the median go inside, the rest outside.  Range
counting prunes with the triangle inequality and, thanks to per-node
covering radii and subtree sizes, can count whole subtrees without
descending when the query ball swallows them — which is exactly what
the *count-only principle* of Sec. IV-G wants.

The tree is stored as a :class:`~repro.index.base.FlatTree` and built
**level-synchronously**: all splits at one depth are computed together
— one paired-distance call measures every element of the level against
its segment's vantage, and each segment is partitioned in place inside
one shared permutation array.  No per-node recursion, no ``np.delete``,
no node objects; queries run the shared flat
:func:`~repro.index.base.frontier_count_walk`.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import (
    DEFAULT_WALK,
    FlatQueryMixin,
    FlatTree,
    MetricIndex,
    attach_leaf_distances,
    check_walk_mode,
    concat_ranges,
)
from repro.metric.base import MetricSpace
from repro.utils.rng import check_random_state


class VPTree(FlatQueryMixin, MetricIndex):
    """Vantage-point tree with subtree-count pruning.

    Parameters
    ----------
    space, ids:
        The metric space and the element ids to index.
    leaf_size:
        Maximum bucket size before a node is split.
    random_state:
        Seed for vantage-point selection.  The default (0) makes the
        tree — and therefore McCatch, which is advertised as
        deterministic — reproducible run to run.

    Attributes
    ----------
    flat:
        The :class:`~repro.index.base.FlatTree` storage.  An internal
        node holds its vantage point itself (outside both children);
        its two children are the inside/outside halves of the median
        split, and every leaf bucket is a slice of ``flat.elems``.
    """

    def __init__(
        self, space: MetricSpace, ids=None, *,
        leaf_size: int = 16, random_state=0, walk: str = DEFAULT_WALK,
    ):
        super().__init__(space, ids)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size
        self.walk = check_walk_mode(walk)
        self._rng = check_random_state(random_state)
        self.flat = attach_leaf_distances(space, self._build_flat())

    # -- construction ----------------------------------------------------

    def _build_flat(self) -> FlatTree:
        """Level-synchronous vectorized construction.

        Maintains one permutation array of element ids; every tree node
        owns a contiguous slice of it (an internal node's vantage sits
        at the front of its slice, the children partition the rest).
        Each depth is processed with a single
        :meth:`~repro.metric.base.MetricSpace.paired_distances` call —
        the same bulk-consistent float path the query walk compares
        radii against — followed by cheap per-segment reductions and
        in-place partitions.
        """
        space, leaf_size, rng = self.space, self.leaf_size, self._rng
        elems = self.ids.copy()
        n = elems.size
        center: list[int] = []
        threshold: list[float] = []
        radius: list[float] = []
        size: list[int] = []
        child_lo: list[int] = []
        child_hi: list[int] = []
        elem_lo: list[int] = []
        elem_hi: list[int] = []

        def new_node(lo: int, hi: int) -> int:
            idx = len(center)
            center.append(-1)
            threshold.append(0.0)
            radius.append(0.0)
            size.append(hi - lo)
            child_lo.append(0)
            child_hi.append(0)
            elem_lo.append(lo)
            elem_hi.append(hi)
            return idx

        level = [new_node(0, n)]
        while level:
            seg_lo = np.array([elem_lo[i] for i in level], dtype=np.intp)
            seg_sizes = np.array([elem_hi[i] - elem_lo[i] for i in level], dtype=np.intp)
            split = seg_sizes > leaf_size
            split_k = np.flatnonzero(split)
            if split_k.size:
                # Seeded vantage picks for every splitting segment at
                # once, each swapped to the front of its slice.
                picks = rng.integers(seg_sizes[split_k])
                fronts, chosen = seg_lo[split_k], seg_lo[split_k] + picks
                elems[fronts], elems[chosen] = elems[chosen], elems[fronts].copy()
            centers = elems[seg_lo]
            for k, i in enumerate(level):
                center[i] = int(centers[k])
            # One paired-distance call for the whole level: every member
            # against its segment's vantage (self-distance is exactly 0).
            positions = concat_ranges(seg_lo, seg_sizes)
            d_level = space.paired_distances(np.repeat(centers, seg_sizes), elems[positions])
            offsets = np.concatenate([[0], np.cumsum(seg_sizes)])
            # Covering radii for every segment at once (the vantage's own
            # zero never wins the max).
            radii_level = np.maximum.reduceat(d_level, offsets[:-1])
            for k, i in enumerate(level):
                if seg_sizes[k] > 1:
                    radius[i] = float(radii_level[k])
            if not split_k.size:
                break

            # Median thresholds and in-place partitions for all splitting
            # segments together, vantages excluded: one stable sort keyed
            # by (segment, distance) yields every median; a second keyed
            # by (segment, side) yields every partition.
            seg_of = np.repeat(np.arange(len(level)), seg_sizes)
            rest_mask = np.ones(d_level.size, dtype=bool)
            rest_mask[offsets[:-1]] = False  # drop each segment's vantage
            rest_mask &= split[seg_of]  # leaves keep their buckets as-is
            rest_d = d_level[rest_mask]
            rest_seg = seg_of[rest_mask]
            rest_pos = positions[rest_mask]
            rest_counts = seg_sizes[split_k] - 1
            ro = np.concatenate([[0], np.cumsum(rest_counts)])
            sorted_d = rest_d[np.lexsort((rest_d, rest_seg))]
            medians = 0.5 * (
                sorted_d[ro[:-1] + (rest_counts - 1) // 2] + sorted_d[ro[:-1] + rest_counts // 2]
            )
            inside = rest_d <= np.repeat(medians, rest_counts)
            k_in = np.add.reduceat(inside, ro[:-1])
            # Stable partition of every segment at once: inside halves
            # first, original order preserved within each half.
            elems[rest_pos] = elems[rest_pos[np.lexsort((~inside, rest_seg))]]

            next_level: list[int] = []
            for j, k in enumerate(split_k):
                # Degenerate medians (many ties) can empty one side; fall
                # back to a leaf rather than splitting forever.
                if k_in[j] == 0 or k_in[j] == rest_counts[j]:
                    continue
                i = level[k]
                threshold[i] = float(medians[j])
                lo, hi = elem_lo[i], elem_hi[i]
                mid = lo + 1 + int(k_in[j])
                inside_node = new_node(lo + 1, mid)
                outside_node = new_node(mid, hi)
                child_lo[i], child_hi[i] = inside_node, outside_node + 1
                next_level.extend((inside_node, outside_node))
            level = next_level

        return FlatTree(
            center=center, threshold=threshold, radius=radius, size=size,
            child_lo=child_lo, child_hi=child_hi,
            elem_lo=elem_lo, elem_hi=elem_hi, elems=elems, vp_split=True,
        )

    # -- queries (count_within / count_within_many from FlatQueryMixin) ---

    def diameter_estimate(self) -> float:
        """Two-scan heuristic anchored at the root vantage point.

        Not the paper's literal "max distance between child nodes of
        the root" rule (Alg. 1 line 2): a VP-node has only one
        representative per side, so instead we scan from the root
        vantage to its farthest element ``p``, then return the farthest
        distance from ``p`` — a classic diameter lower bound that is
        within a factor 2 of the truth in any metric space, and exact
        on most real shapes.  Subclasses wanting the literal
        root-children rule (or an exact diameter) should override this
        method; everything downstream only consumes the returned float.
        """
        if len(self) == 1:
            return 0.0
        far_d = self.space.distances(int(self.flat.center[0]), self.ids)
        far = int(self.ids[int(np.argmax(far_d))])
        return float(self.space.distances(far, self.ids).max())
