"""Dataset loading, result serialization, and fitted-artifact persistence.

- :mod:`repro.io.loaders` — CSV/JSON-lines readers and writers for
  vector datasets (with optional label column) and object datasets
  (strings, token sequences);
- :mod:`repro.io.results` — round-trippable JSON serialization of
  :class:`~repro.core.result.McCatchResult` plus a Markdown summary,
  so a detection run can be archived, diffed, and rendered;
- :mod:`repro.io.indexes` — flat array-backed index persistence to a
  single ``.npz``, loaded back as a
  :class:`~repro.index.base.FrozenIndex`;
- :mod:`repro.io.models` — whole fitted-model persistence
  (:class:`~repro.core.mccatch.McCatchModel`): index + data + result in
  one archive, for fit-once-serve-many deployments;
- :mod:`repro.io.mmap` — read-only memory-mapping of uncompressed
  ``.npz`` archives, so many serving processes share one on-disk
  index/model through the page cache.
"""

from repro.io.indexes import load_index, save_index
from repro.io.mmap import open_npz_mmap
from repro.io.loaders import (
    load_labeled_csv,
    load_strings,
    load_vectors_csv,
    save_strings,
    save_vectors_csv,
)
from repro.io.models import load_model, save_model
from repro.io.results import (
    load_result_json,
    result_from_dict,
    result_to_dict,
    result_to_markdown,
    save_result_json,
)

__all__ = [
    "load_vectors_csv",
    "save_vectors_csv",
    "load_labeled_csv",
    "load_strings",
    "save_strings",
    "result_to_dict",
    "result_from_dict",
    "save_result_json",
    "load_result_json",
    "result_to_markdown",
    "save_index",
    "load_index",
    "save_model",
    "load_model",
    "open_npz_mmap",
]
