"""Dataset loading and result serialization.

- :mod:`repro.io.loaders` — CSV/JSON-lines readers and writers for
  vector datasets (with optional label column) and object datasets
  (strings, token sequences);
- :mod:`repro.io.results` — round-trippable JSON serialization of
  :class:`~repro.core.result.McCatchResult` plus a Markdown summary,
  so a detection run can be archived, diffed, and rendered.
"""

from repro.io.loaders import (
    load_labeled_csv,
    load_strings,
    load_vectors_csv,
    save_strings,
    save_vectors_csv,
)
from repro.io.results import (
    load_result_json,
    result_from_dict,
    result_to_dict,
    result_to_markdown,
    save_result_json,
)

__all__ = [
    "load_vectors_csv",
    "save_vectors_csv",
    "load_labeled_csv",
    "load_strings",
    "save_strings",
    "result_to_dict",
    "result_from_dict",
    "save_result_json",
    "load_result_json",
    "result_to_markdown",
]
