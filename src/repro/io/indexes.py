"""Fitted-index persistence: flat tree arrays to a single ``.npz`` and back.

Because every metric tree stores its structure as a
:class:`~repro.index.base.FlatTree` — a handful of primitive NumPy
arrays — a fitted index serializes losslessly to one ``np.savez``
archive: the node arrays, the element permutation, the indexed ids,
and the diameter estimate recorded at save time.  For vector spaces
the data matrix and the L_p metric order ride along, so
:func:`load_index` can stand the index back up with no other inputs;
object spaces (strings, trees, custom metrics) save structure only and
take the :class:`~repro.metric.base.MetricSpace` at load time.

A loaded index is a :class:`~repro.index.base.FrozenIndex`: it answers
every :class:`~repro.index.base.MetricIndex` query — bit-for-bit
identically to the index that was saved — without construction logic,
node objects, or RNG state.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.index.base import DEFAULT_WALK, FlatTree, FrozenIndex, MetricIndex
from repro.metric.base import MetricSpace
from repro.metric.vector import minkowski

#: Schema tag written into every serialized index.
INDEX_FORMAT = "repro.flat-index.v1"

#: FlatTree array fields, in payload order.
_TREE_KEYS = (
    "center", "threshold", "radius", "size",
    "child_lo", "child_hi", "elem_lo", "elem_hi", "elems",
)


def index_payload(index: MetricIndex, *, include_data: bool = True) -> dict:
    """The ``np.savez`` payload for a flat-backed index.

    Shared by :func:`save_index` and the model persistence in
    :mod:`repro.io.models`.  Raises ``TypeError`` for indexes without
    flat storage (brute force, kd-/R-trees, LAESA).
    """
    flat = getattr(index, "flat", None)
    if not isinstance(flat, FlatTree):
        raise TypeError(
            f"{type(index).__name__} has no FlatTree storage; only the metric "
            "trees (vptree, balltree, covertree, mtree, slimtree) and "
            "FrozenIndex can be persisted"
        )
    from repro.index.ckernel import kernel_info

    ck = kernel_info()
    payload: dict = {
        "format": np.str_(INDEX_FORMAT),
        "kind": np.str_(getattr(index, "kind", type(index).__name__.lower())),
        "ids": index.ids,
        "diameter": np.float64(index.diameter_estimate()),
        # Walk selection travels with the index, but "auto" stays
        # "auto": the compiled kernel's availability is a property of
        # the machine that *loads* the archive, not the one that saved
        # it.  The ckernel_* fields are provenance only — what the
        # saving environment had — never consulted at load time.
        "walk": np.str_(getattr(index, "walk", DEFAULT_WALK)),
        "ckernel_available": np.bool_(bool(ck["available"])),
        "ckernel_key": np.str_(ck.get("key") or ""),
        "ckernel_compiler": np.str_(ck.get("compiler") or ""),
    }
    for key, value in flat.to_arrays().items():
        payload[f"tree_{key}"] = value
    space = index.space
    if include_data and space.is_vector:
        payload["data"] = space.data
        payload["metric_p"] = np.float64(space.metric.p)
    return payload


def save_index(index: MetricIndex, path: str | Path, *, compressed: bool = False) -> Path:
    """Persist a flat-backed index to a single ``.npz`` archive.

    Vector spaces embed their data matrix and metric order; object
    spaces save structure only (pass the space to :func:`load_index`).
    The default is an *uncompressed* container so the arrays can be
    memory-mapped at load time (``load_index(..., mmap=True)``);
    ``compressed=True`` trades that away for a smaller archive.
    Returns the written path.
    """
    path = Path(path)
    save = np.savez_compressed if compressed else np.savez
    with open(path, "wb") as f:
        save(f, **index_payload(index))
    return path


def frozen_from_payload(payload, space: MetricSpace | None = None) -> FrozenIndex:
    """Stand a :class:`FrozenIndex` back up from :func:`index_payload` arrays."""
    fmt = str(payload["format"][()]) if "format" in payload else None
    if fmt != INDEX_FORMAT:
        raise ValueError(f"unsupported index format: {fmt!r}")
    if space is None:
        if "data" not in payload:
            raise ValueError(
                "index was saved without its data (object space); pass the "
                "MetricSpace it was built over"
            )
        space = MetricSpace(
            np.asarray(payload["data"], dtype=np.float64),
            minkowski(float(payload["metric_p"][()])),
        )
    ids = np.asarray(payload["ids"], dtype=np.intp)
    if ids.size and int(ids.max()) >= len(space):
        raise ValueError(
            f"index covers element id {int(ids.max())} but the space has only "
            f"{len(space)} elements — wrong space for this archive?"
        )
    arrays = {key: payload[f"tree_{key}"] for key in _TREE_KEYS}
    arrays["vp_split"] = payload["tree_vp_split"][()]
    if "tree_d_parent" in payload:
        arrays["d_parent"] = payload["tree_d_parent"]
    if "tree_d_elem" in payload:
        arrays["d_elem"] = payload["tree_d_elem"]
    return FrozenIndex(
        space,
        ids,
        FlatTree.from_arrays(arrays),
        kind=str(payload["kind"][()]),
        diameter=float(payload["diameter"][()]),
        # Archives predating the walk field load with the default.
        walk=str(payload["walk"][()]) if "walk" in payload else DEFAULT_WALK,
    )


def load_index(
    path: str | Path, space: MetricSpace | None = None, *, mmap: bool = False
) -> FrozenIndex:
    """Load an index saved by :func:`save_index`.

    ``space`` is required when the archive was saved without data (an
    object space); when given it takes precedence over any embedded
    data, which lets callers share one in-memory space across several
    loaded indexes.

    ``mmap=True`` maps the tree arrays and the embedded data matrix
    read-only straight off the archive (see :mod:`repro.io.mmap`), so
    many scoring processes share one on-disk index through the page
    cache instead of materializing a copy each.  Only uncompressed
    archives (the :func:`save_index` default) can be mapped; compressed
    ones raise ``ValueError`` rather than silently materializing.
    """
    if mmap:
        from repro.io.mmap import open_npz_mmap

        return frozen_from_payload(open_npz_mmap(path), space)
    with np.load(Path(path), allow_pickle=False) as payload:
        return frozen_from_payload(payload, space)
