"""Plain-text dataset IO: CSV for vectors, line files for objects.

Deliberately boring formats — every file this module writes can be
opened in a spreadsheet or a pager.  The readers validate shape and
numeric content so that malformed files fail at load time with a clear
message rather than deep inside a join.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np


def load_vectors_csv(path, *, delimiter: str = ",", skip_header: bool | None = None) -> np.ndarray:
    """Load a numeric (n, d) matrix from a CSV file.

    ``skip_header=None`` auto-detects: if the first row fails to parse
    as floats it is treated as a header.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        rows = [row for row in csv.reader(fh, delimiter=delimiter) if row]
    if not rows:
        raise ValueError(f"{path}: no data rows")
    start = 0
    if skip_header or (skip_header is None and not _parses_as_floats(rows[0])):
        start = 1
    if start >= len(rows):
        raise ValueError(f"{path}: header only, no data rows")
    width = len(rows[start])
    data = np.empty((len(rows) - start, width), dtype=np.float64)
    for r, row in enumerate(rows[start:], start=start):
        if len(row) != width:
            raise ValueError(
                f"{path}: row {r + 1} has {len(row)} fields, expected {width}"
            )
        try:
            data[r - start] = [float(v) for v in row]
        except ValueError as exc:
            raise ValueError(f"{path}: row {r + 1} is not numeric: {exc}") from None
    return data


def save_vectors_csv(path, X, *, header: list[str] | None = None, delimiter: str = ",") -> Path:
    """Write a numeric matrix as CSV; returns the path."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-d matrix, got shape {X.shape}")
    if header is not None and len(header) != X.shape[1]:
        raise ValueError(f"header has {len(header)} names for {X.shape[1]} columns")
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        if header is not None:
            writer.writerow(header)
        for row in X:
            writer.writerow([repr(float(v)) for v in row])
    return path


def load_labeled_csv(
    path, *, label_column: int = -1, delimiter: str = ","
) -> tuple[np.ndarray, np.ndarray]:
    """Load features X and a boolean outlier-label column y from CSV.

    The label column accepts 0/1, true/false, yes/no, inlier/outlier
    (case-insensitive).  Returns ``(X, y)`` with the label column
    removed from X.  A non-parsing first row is treated as a header.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        rows = [row for row in csv.reader(fh, delimiter=delimiter) if row]
    if not rows:
        raise ValueError(f"{path}: no data rows")
    start = 0 if _parses_as_floats_or_labels(rows[0]) else 1
    if start >= len(rows):
        raise ValueError(f"{path}: header only, no data rows")
    labels, features = [], []
    for r, row in enumerate(rows[start:], start=start):
        labels.append(_parse_label(row[label_column], path, r))
        kept = list(row)
        del kept[label_column]
        try:
            features.append([float(v) for v in kept])
        except ValueError as exc:
            raise ValueError(f"{path}: row {r + 1} is not numeric: {exc}") from None
    return np.asarray(features, dtype=np.float64), np.asarray(labels, dtype=bool)


def load_strings(path, *, encoding: str = "utf-8") -> list[str]:
    """Load one string per line (trailing newline stripped, blank lines
    and ``#`` comments skipped) — the Last Names format."""
    out = []
    with Path(path).open(encoding=encoding) as fh:
        for line in fh:
            line = line.rstrip("\n")
            if line and not line.startswith("#"):
                out.append(line)
    if not out:
        raise ValueError(f"{path}: no strings found")
    return out


def save_strings(path, strings, *, encoding: str = "utf-8") -> Path:
    """Write one string per line; rejects embedded newlines."""
    path = Path(path)
    with path.open("w", encoding=encoding) as fh:
        for s in strings:
            if "\n" in s:
                raise ValueError(f"string contains a newline: {s!r}")
            fh.write(s + "\n")
    return path


# -- helpers -----------------------------------------------------------------

_TRUE = {"1", "1.0", "true", "yes", "y", "outlier"}
_FALSE = {"0", "0.0", "false", "no", "n", "inlier"}


def _parse_label(value: str, path: Path, row: int) -> bool:
    v = value.strip().lower()
    if v in _TRUE:
        return True
    if v in _FALSE:
        return False
    raise ValueError(f"{path}: row {row + 1}: cannot parse label {value!r}")


def _parses_as_floats(row: list[str]) -> bool:
    try:
        [float(v) for v in row]
        return True
    except ValueError:
        return False


def _parses_as_floats_or_labels(row: list[str]) -> bool:
    return all(
        _parses_as_floats([v]) or v.strip().lower() in (_TRUE | _FALSE) for v in row
    )
