"""Memory-mapped access to uncompressed ``.npz`` archives.

``np.load(path, mmap_mode="r")`` silently ignores ``mmap_mode`` for
``.npz`` members — every array is materialized per process.  For
serving, that defeats the point of one shared on-disk index: each
scoring process would pay the full copy.  But ``np.savez`` (without
compression) stores each member's ``.npy`` bytes *verbatim* inside the
zip container, so the raw array data sits at a computable file offset
and can be handed straight to :class:`numpy.memmap` — the OS page
cache then shares one physical copy of the index across every process
that maps it.

:func:`open_npz_mmap` does exactly that: it walks the zip directory,
parses each member's local header and ``.npy`` header to find the data
offset, and maps the payload read-only.  Members that cannot be mapped
(zero-size or 0-d scalars, e.g. the format tags) are read normally —
they are bytes, not megabytes.  Compressed members are rejected with a
clear error instead of being silently materialized.
"""

from __future__ import annotations

import struct
import zipfile
from pathlib import Path

import numpy as np
from numpy.lib import format as npy_format

#: Fixed part of a zip local file header: signature through extra-length.
_LOCAL_HEADER_SIZE = 30
_LOCAL_HEADER_SIG = b"PK\x03\x04"


class MappedArchive(dict):
    """Arrays of one ``.npz``, large payloads as read-only ``np.memmap``.

    A plain dict with the :attr:`files` convenience of ``np.lib.npyio.NpzFile``,
    so payload-consuming code can accept either interchangeably.
    """

    @property
    def files(self) -> list[str]:
        """Member names (without the ``.npy`` suffix), NpzFile-style."""
        return list(self.keys())


def _member_data_offset(raw, info: zipfile.ZipInfo) -> int:
    """File offset of a stored member's first data byte.

    The central directory gives the local header's offset; the local
    header's own (possibly different) filename/extra lengths give the
    distance from there to the data.
    """
    raw.seek(info.header_offset)
    header = raw.read(_LOCAL_HEADER_SIZE)
    if len(header) != _LOCAL_HEADER_SIZE or header[:4] != _LOCAL_HEADER_SIG:
        raise ValueError(f"corrupt zip member {info.filename!r}")
    name_len, extra_len = struct.unpack("<2H", header[26:30])
    return info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len


def _read_npy_header(raw) -> tuple[tuple, bool, np.dtype]:
    """Parse the ``.npy`` header at the current file position."""
    version = npy_format.read_magic(raw)
    if version == (1, 0):
        return npy_format.read_array_header_1_0(raw)
    if version == (2, 0):
        return npy_format.read_array_header_2_0(raw)
    return npy_format._read_array_header(raw, version)


def open_npz_mmap(path: str | Path) -> MappedArchive:
    """Open an uncompressed ``.npz`` with its arrays memory-mapped.

    Every mappable member becomes a read-only :class:`numpy.memmap`
    view of the archive file itself; 0-d / empty members are read
    eagerly.  Raises ``ValueError`` for archives written with
    ``np.savez_compressed`` (deflated bytes have no mappable layout) —
    re-save with ``compressed=False`` to serve via mmap.
    """
    path = Path(path)
    arrays = MappedArchive()
    with zipfile.ZipFile(path) as zf, open(path, "rb") as raw:
        for info in zf.infolist():
            name = info.filename
            key = name[:-4] if name.endswith(".npy") else name
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(
                    f"{path}: member {key!r} is compressed and cannot be "
                    "memory-mapped; re-save the archive uncompressed "
                    "(compressed=False / np.savez, not np.savez_compressed) "
                    "or load without mmap"
                )
            offset = _member_data_offset(raw, info)
            raw.seek(offset)
            shape, fortran, dtype = _read_npy_header(raw)
            if dtype.hasobject:
                raise ValueError(
                    f"{path}: member {key!r} has object dtype and cannot be "
                    "memory-mapped"
                )
            if shape == () or 0 in shape:
                with zf.open(info) as member:  # scalars/tags: bytes, not MBs
                    arrays[key] = npy_format.read_array(member, allow_pickle=False)
                continue
            arrays[key] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=raw.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return arrays
