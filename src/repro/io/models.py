"""Fitted McCatch model persistence: fit once, serve many.

A :class:`~repro.core.mccatch.McCatchModel` bundles the fitted space,
the flat array-backed index, and the result.  All three serialize to
one ``np.savez`` archive: the index payload of
:mod:`repro.io.indexes` (which already embeds the vector data and
metric), plus the result as the same JSON document
:func:`repro.io.results.save_result_json` writes — so a loaded model
answers :meth:`~repro.core.mccatch.McCatchModel.score_batch`
identically to the one that was saved.

Vector spaces only: a custom object metric (strings, trees) is a
Python callable and cannot be serialized; persist those fits as
results (:mod:`repro.io.results`) and refit to serve.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.mccatch import McCatchModel
from repro.io.indexes import INDEX_FORMAT, frozen_from_payload, index_payload
from repro.io.results import result_from_dict, result_to_dict

#: Schema tag written into every serialized model.
MODEL_FORMAT = "repro.mccatch-model.v1"


def save_model(model: McCatchModel, path: str | Path) -> Path:
    """Persist a fitted model to a single ``.npz`` archive.

    Requires a vector space (see module docstring) and a flat-backed
    index — the ``"auto"`` Euclidean default builds scipy's cKDTree,
    so fit with an explicit metric tree
    (``McCatch(index="vptree")`` or any of vptree / balltree /
    covertree / mtree / slimtree) to save the model.
    """
    if not model.space.is_vector:
        raise TypeError(
            "only vector-space models can be saved: a custom object metric "
            "is a Python callable and cannot be serialized"
        )
    if model.index is None:
        raise TypeError("model has no index to persist (scoring-only model)")
    payload = index_payload(model.index, include_data=True)
    payload["format"] = np.str_(MODEL_FORMAT)
    payload["index_format"] = np.str_(INDEX_FORMAT)
    payload["result_json"] = np.str_(json.dumps(result_to_dict(model.result)))
    if getattr(model, "spec", None) is not None:
        payload["spec"] = np.str_(model.spec)
    path = Path(path)
    with open(path, "wb") as f:
        np.savez(f, **payload)
    return path


def model_from_payload(payload) -> McCatchModel:
    """Stand a :class:`McCatchModel` back up from :func:`save_model` arrays.

    ``payload`` is anything mapping member names to arrays with an
    ``NpzFile``-style ``files`` attribute — a live ``np.load`` handle
    or a :class:`repro.io.mmap.MappedArchive`.
    """
    fmt = str(payload["format"][()]) if "format" in payload else None
    if fmt != MODEL_FORMAT:
        raise ValueError(f"unsupported model format: {fmt!r}")
    index_arrays = {
        k: payload[k] for k in payload.files if k not in ("format", "spec")
    }
    index_arrays["format"] = payload["index_format"]
    index = frozen_from_payload(index_arrays)
    result = result_from_dict(json.loads(str(payload["result_json"][()])))
    spec = str(payload["spec"][()]) if "spec" in payload else None
    return McCatchModel(index.space, index, result, spec=spec)


def load_model(path: str | Path, *, mmap: bool = False) -> McCatchModel:
    """Load a model saved by :func:`save_model`.

    ``mmap=True`` serves the index arrays and data matrix as read-only
    memory maps of the archive (uncompressed containers only — see
    :func:`repro.io.mmap.open_npz_mmap`), so concurrent scoring
    processes share one on-disk model instead of materializing copies.
    """
    if mmap:
        from repro.io.mmap import open_npz_mmap

        return model_from_payload(open_npz_mmap(path))
    with np.load(Path(path), allow_pickle=False) as payload:
        return model_from_payload(payload)
