"""JSON round-tripping and Markdown rendering of McCatch results.

``result_to_dict`` / ``result_from_dict`` preserve everything a result
carries — the ranked microclusters with scores, the per-point scores W,
the full 'Oracle' plot arrays, and the cutoff provenance — so archived
runs can be reloaded, compared, and re-rendered without access to the
original data.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.result import CutoffInfo, McCatchResult, Microcluster, OraclePlot

#: Schema tag written into every serialized result.
FORMAT_VERSION = 1


def result_to_dict(result: McCatchResult) -> dict:
    """Serialize a result to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "n": result.n,
        "cutoff": {
            "value": _json_float(result.cutoff.value),
            "index": int(result.cutoff.index),
            "histogram": [int(h) for h in result.cutoff.histogram],
            "peak_index": int(result.cutoff.peak_index),
            "split_cost": _json_float(result.cutoff.split_cost),
        },
        "microclusters": [
            {
                "indices": [int(i) for i in mc.indices],
                "score": float(mc.score),
                "bridge_length": float(mc.bridge_length),
                "mean_1nn_distance": float(mc.mean_1nn_distance),
            }
            for mc in result.microclusters
        ],
        "point_scores": [float(w) for w in result.point_scores],
        "oracle": {
            "x": [float(v) for v in result.oracle.x],
            "y": [float(v) for v in result.oracle.y],
            "first_end_index": [int(v) for v in result.oracle.first_end_index],
            "middle_end_index": [int(v) for v in result.oracle.middle_end_index],
            "radii": [float(v) for v in result.oracle.radii],
            "counts": [[int(c) for c in row] for row in result.oracle.counts],
        },
    }


def result_from_dict(payload: dict) -> McCatchResult:
    """Rebuild a :class:`McCatchResult` from :func:`result_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format version: {version!r}")
    oracle = OraclePlot(
        x=np.asarray(payload["oracle"]["x"], dtype=np.float64),
        y=np.asarray(payload["oracle"]["y"], dtype=np.float64),
        first_end_index=np.asarray(payload["oracle"]["first_end_index"], dtype=np.intp),
        middle_end_index=np.asarray(payload["oracle"]["middle_end_index"], dtype=np.intp),
        radii=np.asarray(payload["oracle"]["radii"], dtype=np.float64),
        counts=np.asarray(payload["oracle"]["counts"], dtype=np.int64),
    )
    cut = payload["cutoff"]
    cutoff = CutoffInfo(
        value=_parse_float(cut["value"]),
        index=int(cut["index"]),
        histogram=np.asarray(cut["histogram"], dtype=np.intp),
        peak_index=int(cut["peak_index"]),
        split_cost=_parse_float(cut["split_cost"]),
    )
    microclusters = [
        Microcluster(
            indices=np.asarray(mc["indices"], dtype=np.intp),
            score=float(mc["score"]),
            bridge_length=float(mc["bridge_length"]),
            mean_1nn_distance=float(mc["mean_1nn_distance"]),
        )
        for mc in payload["microclusters"]
    ]
    return McCatchResult(
        microclusters=microclusters,
        point_scores=np.asarray(payload["point_scores"], dtype=np.float64),
        oracle=oracle,
        cutoff=cutoff,
        n=int(payload["n"]),
    )


def save_result_json(result: McCatchResult, path, *, indent: int = 2) -> Path:
    """Write a result to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=indent), encoding="utf-8")
    return path


def load_result_json(path) -> McCatchResult:
    """Load a result previously written by :func:`save_result_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return result_from_dict(payload)


def result_to_markdown(result: McCatchResult, *, max_rows: int = 15) -> str:
    """Render the ranked microcluster table as GitHub-flavored Markdown."""
    lines = [
        f"# McCatch result — n={result.n}, "
        f"{len(result.microclusters)} microclusters, cutoff d={result.cutoff.value:.4g}",
        "",
        "| rank | cardinality | score (bits/member) | bridge length | members |",
        "|---:|---:|---:|---:|:---|",
    ]
    for rank, mc in enumerate(result.microclusters[:max_rows]):
        members = ", ".join(str(int(i)) for i in sorted(mc.indices)[:10])
        if mc.cardinality > 10:
            members += f", … ({mc.cardinality} total)"
        lines.append(
            f"| {rank} | {mc.cardinality} | {mc.score:.2f} | "
            f"{mc.bridge_length:.4g} | {members} |"
        )
    if len(result.microclusters) > max_rows:
        lines.append("")
        lines.append(f"… and {len(result.microclusters) - max_rows} more microclusters.")
    return "\n".join(lines)


# -- float <-> JSON helpers (inf survives the trip) ---------------------------

def _json_float(v: float) -> float | str:
    if np.isinf(v):
        return "inf" if v > 0 else "-inf"
    return float(v)


def _parse_float(v) -> float:
    if isinstance(v, str):
        return float(v)
    return float(v)
