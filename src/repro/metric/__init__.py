"""Metric spaces: distance functions over vectors, strings, and trees.

McCatch only ever touches the data through a distance function (goal
G1, *General Input*).  This subpackage provides:

- :class:`~repro.metric.base.MetricSpace` — the pairing of a dataset
  with a distance function, plus bulk-distance helpers used by the
  indexes and joins;
- vector metrics (:mod:`repro.metric.vector`): Euclidean and the other
  L_p norms;
- the Levenshtein edit distance for strings
  (:mod:`repro.metric.strings`), used for the Last Names and
  Fingerprints experiments;
- the Zhang–Shasha tree edit distance (:mod:`repro.metric.trees`), used
  for the Skeletons experiment;
- sequence metrics (:mod:`repro.metric.sequences`): token edit
  distance, LCS, Hamming, ERP (a metric DTW alternative), and DTW;
- set metrics (:mod:`repro.metric.sets`): Jaccard, symmetric
  difference, weighted Jaccard, n-gram profiles;
- the correlation fractal dimension estimator
  (:mod:`repro.metric.fractal`) behind Lemma 1 and Table III;
- the per-space *Transformation Cost* ``t`` of Definition 7
  (:mod:`repro.metric.transformation`).
"""

from repro.metric.base import MetricSpace, PrecomputedMetric, pairwise_distances
from repro.metric.fractal import correlation_dimension, correlation_integral
from repro.metric.instrumentation import CountingMetricSpace, DistanceCounter
from repro.metric.sequences import (
    dtw,
    erp,
    hamming,
    lcs_distance,
    sequence_edit_distance,
    transformation_cost_for_sequences,
)
from repro.metric.sets import (
    jaccard_distance,
    ngram_jaccard,
    ngram_profile,
    symmetric_difference_distance,
    weighted_jaccard_distance,
)
from repro.metric.strings import damerau_levenshtein, levenshtein, soundex, soundex_distance
from repro.metric.transformation import (
    transformation_cost_for_strings,
    transformation_cost_for_vectors,
)
from repro.metric.trees import LabeledTree, tree_edit_distance
from repro.metric.vector import (
    chebyshev,
    cityblock,
    euclidean,
    minkowski,
    vector_metric,
)

__all__ = [
    "MetricSpace",
    "PrecomputedMetric",
    "CountingMetricSpace",
    "DistanceCounter",
    "pairwise_distances",
    "correlation_dimension",
    "correlation_integral",
    "levenshtein",
    "damerau_levenshtein",
    "soundex",
    "soundex_distance",
    "LabeledTree",
    "tree_edit_distance",
    "hamming",
    "sequence_edit_distance",
    "lcs_distance",
    "erp",
    "dtw",
    "transformation_cost_for_sequences",
    "jaccard_distance",
    "symmetric_difference_distance",
    "weighted_jaccard_distance",
    "ngram_profile",
    "ngram_jaccard",
    "euclidean",
    "cityblock",
    "chebyshev",
    "minkowski",
    "vector_metric",
    "transformation_cost_for_vectors",
    "transformation_cost_for_strings",
]
