"""MetricSpace: a dataset paired with its distance function.

Everything downstream of the public API (indexes, joins, the McCatch
core) works against a :class:`MetricSpace` rather than raw arrays, so
vector and nondimensional data flow through identical code paths — the
only difference is which bulk-distance implementation backs the space.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.metric.vector import VectorMetric, euclidean, vector_metric


def pairwise_distances(data, metric: Callable) -> np.ndarray:
    """Full symmetric distance matrix; convenience for small datasets."""
    space = MetricSpace(data, metric)
    return space.distance_matrix()


class MetricSpace:
    """A dataset of ``n`` elements plus a distance function.

    Parameters
    ----------
    data:
        Either a 2-d float array (vector data) or a sequence of
        arbitrary objects (strings, trees, ...).
    metric:
        For vector data: a :class:`VectorMetric`, a metric name, or
        ``None`` (Euclidean).  For object data: a callable
        ``f(a, b) -> float`` satisfying the metric axioms.

    Notes
    -----
    Indexes only call :meth:`distances` / :meth:`distances_among`; the
    vector fast path uses NumPy broadcasting while the object path loops
    in Python, which is the honest cost of a user-supplied metric.
    """

    #: Lazily cached per-row squared norms for the Euclidean
    #: :meth:`paired_distances` fast path.  A class-level default so
    #: proxy subclasses that bypass ``__init__`` stay consistent.
    _sqnorms: np.ndarray | None = None

    #: Lazily cached contiguous per-coordinate columns for the low-dim
    #: Euclidean :meth:`paired_distances` fast path (same class-level
    #: default rationale as ``_sqnorms``).
    _pcols: list | None = None

    #: Lazily cached float32 coordinate view for the walks' approximate
    #: squared-distance prefilters (``False`` marks "checked, not
    #: applicable" so the gate is evaluated once per space).
    _f32cache: tuple | bool | None = None

    def __init__(self, data, metric=None):
        if isinstance(data, np.ndarray) and np.issubdtype(data.dtype, np.number):
            arr = np.asarray(data, dtype=np.float64)
            if arr.ndim == 1:
                arr = arr.reshape(-1, 1)
            if arr.ndim != 2:
                raise ValueError(f"vector data must be 2-d, got shape {arr.shape}")
            self.data = arr
            self.is_vector = True
            self._vm: VectorMetric | None = (
                euclidean if metric is None else vector_metric(metric)
            )
            self.metric: Callable = self._vm
        else:
            if metric is None:
                raise ValueError("nondimensional data requires an explicit metric callable")
            if not callable(metric):
                raise TypeError("metric must be callable for nondimensional data")
            self.data = list(data)
            self.is_vector = False
            self._vm = None
            self.metric = metric
        if len(self) == 0:
            raise ValueError("MetricSpace requires at least one element")

    def __len__(self) -> int:
        return len(self.data)

    @property
    def dimensionality(self) -> int | None:
        """Embedding dimensionality for vector data, else ``None``."""
        return int(self.data.shape[1]) if self.is_vector else None

    def __getitem__(self, i: int):
        return self.data[i]

    # -- bulk distances -------------------------------------------------

    def distance(self, i: int, j: int) -> float:
        """Distance between elements ``i`` and ``j``.

        For vector data this routes through the same bulk implementation
        as :meth:`distances`, so scalar and bulk evaluations are
        bit-identical — indexes compare distances against shared radius
        boundaries, and a last-ulp disagreement between two code paths
        would make trees disagree with the brute-force oracle at exact
        boundary radii.
        """
        if self.is_vector:
            return float(self._vm.bulk(self.data[i][None, :], self.data[j][None, :])[0, 0])
        return float(self.metric(self.data[i], self.data[j]))

    def distances(self, query_index: int, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Distances from element ``query_index`` to each element in ``indices``."""
        idx = np.asarray(indices, dtype=np.intp)
        if self.is_vector:
            return self._vm.bulk(self.data[query_index][None, :], self.data[idx])[0]
        q = self.data[query_index]
        return np.array([self.metric(q, self.data[j]) for j in idx], dtype=np.float64)

    def distances_to(self, obj, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Distances from an out-of-dataset object to elements in ``indices``."""
        idx = np.asarray(indices, dtype=np.intp)
        if self.is_vector:
            q = np.asarray(obj, dtype=np.float64)
            return self._vm.bulk(q[None, :], self.data[idx])[0]
        return np.array([self.metric(obj, self.data[j]) for j in idx], dtype=np.float64)

    def distances_to_many(
        self, objs, indices: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Distance matrix from out-of-dataset objects to elements.

        The batched form of :meth:`distances_to`: one ``(q, m)`` block
        for ``q`` query objects against ``m`` indexed elements.  Vector
        data answers with a single bulk broadcast; object data loops,
        which is the honest cost of a user-supplied metric.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if self.is_vector:
            Q = np.asarray(objs, dtype=np.float64)
            if Q.ndim == 1:
                Q = Q.reshape(1, -1)
            return self._vm.bulk(Q, self.data[idx])
        out = np.empty((len(objs), idx.size), dtype=np.float64)
        for row, obj in enumerate(objs):
            for col, j in enumerate(idx):
                out[row, col] = self.metric(obj, self.data[j])
        return out

    def paired_distances(
        self, left: Sequence[int] | np.ndarray, right: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Row-aligned distances between two equal-length id sequences.

        ``out[k] = distance(left[k], right[k])`` — the primitive the
        level-synchronous tree builds use to measure every element of a
        tree level against its segment's vantage in one call.  Vector
        spaces route through :meth:`VectorMetric.paired`, which is
        bitwise consistent with the :meth:`distances` /
        :meth:`distances_among` bulk path; object spaces pay the honest
        per-pair metric cost.
        """
        li = np.asarray(left, dtype=np.intp)
        ri = np.asarray(right, dtype=np.intp)
        if li.size != ri.size:
            raise ValueError(f"paired_distances needs equal lengths, got {li.size} and {ri.size}")
        if self.is_vector:
            if self._vm.p == 2.0:
                fast = self.paired_fast_columns()
                if fast is not None:
                    # Column-take fast path: row gathers from a 2-d
                    # array cost a small memcpy per row, while 1-d
                    # ``take`` streams.  The accumulation
                    # ``x0*y0 + x1*y1`` is the exact operation order of
                    # ``einsum("ij,ij->i", ...)`` for one or two
                    # columns (einsum unrolls differently beyond that,
                    # hence the dim gate), so every float is bitwise
                    # identical to :meth:`VectorMetric.paired`.
                    cols, sq = fast
                    ab = cols[0].take(li) * cols[0].take(ri)
                    for col in cols[1:]:
                        ab += col.take(li) * col.take(ri)
                    out = (sq.take(li) + sq.take(ri)) - 2.0 * ab
                    np.maximum(out, 0.0, out=out)
                    return np.sqrt(out, out=out)
                # Cache the row squared norms once per space: einsum's
                # per-row reduction is row-independent, so gathered
                # norms are bitwise identical to freshly computed ones,
                # and the walks' huge paired calls drop from three
                # einsum passes to one.
                sq = self._sqnorms
                if sq is None:
                    sq = self._sqnorms = np.einsum("ij,ij->i", self.data, self.data)
                return self._vm.paired(
                    self.data[li], self.data[ri], sq_a=sq[li], sq_b=sq[ri]
                )
            return self._vm.paired(self.data[li], self.data[ri])
        return np.array(
            [self.metric(self.data[i], self.data[j]) for i, j in zip(li, ri)],
            dtype=np.float64,
        )

    def paired_fast_columns(self) -> tuple | None:
        """``(coordinate columns, squared norms)`` backing the 1-/2-d
        euclidean paired fast path, or ``None`` elsewhere.

        The columns are contiguous float64 copies of each coordinate
        and the norms the cached einsum row reduction — exactly the
        operands :meth:`paired_distances` consumes, exposed so the
        compiled walk kernel (:mod:`repro.index.ckernel`) can fuse the
        identical expansion ``sqrt(max(sq_l + sq_r - 2*ab, 0))`` into
        its C loop bit for bit.  The dimensionality gate matches the
        fast path's: beyond two columns einsum's unroll order differs
        from a sequential per-column sum, so fusion would break
        bit-identity.
        """
        if not (self.is_vector and self._vm is not None and self._vm.p == 2.0):
            return None
        if not (1 <= self.data.shape[1] <= 2):
            return None
        sq = self._sqnorms
        if sq is None:
            sq = self._sqnorms = np.einsum("ij,ij->i", self.data, self.data)
        cols = self._pcols
        if cols is None:
            cols = self._pcols = [
                np.ascontiguousarray(self.data[:, k])
                for k in range(self.data.shape[1])
            ]
        return cols, sq

    def float32_coords(self) -> tuple | None:
        """Float32 coordinate view backing approximate distance bounds.

        Returns ``(cols, sqnorms, scale2)`` — contiguous float32 copies
        of each coordinate column, float32 row squared norms, and the
        magnitude scale ``4 * max(||x||^2)`` that bounds every operand
        of the expansion ``||q||^2 + ||x||^2 - 2 q.x`` — or ``None``
        when the space is not finite Euclidean vector data.

        The walks use this view to *bracket* squared distances, never
        to decide them: a decision margin proportional to ``scale2``
        absorbs the float32 round-off (a few units in ``1e-7`` of the
        scale, versus the ``1e-4`` margins used), and anything inside
        the margin band is re-evaluated through the exact float64
        :meth:`paired_distances` path, so counts stay bit-identical.
        The dimensionality gate keeps the accumulated rounding of a
        per-column sum comfortably below that margin.
        """
        cache = self._f32cache
        if cache is None:
            cache = False
            if self.is_vector and self._vm is not None and self._vm.p == 2.0:
                dim = self.data.shape[1]
                if 0 < dim <= 64:
                    sq = self._sqnorms
                    if sq is None:
                        sq = self._sqnorms = np.einsum("ij,ij->i", self.data, self.data)
                    scale2 = 4.0 * float(sq.max())
                    if np.isfinite(scale2):
                        cols = [
                            np.ascontiguousarray(self.data[:, k], dtype=np.float32)
                            for k in range(dim)
                        ]
                        cache = (cols, sq.astype(np.float32), scale2)
            self._f32cache = cache
        return cache or None

    def distances_among(
        self, left: Sequence[int] | np.ndarray, right: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Distance matrix between two index sets of this space."""
        li = np.asarray(left, dtype=np.intp)
        ri = np.asarray(right, dtype=np.intp)
        if self.is_vector:
            return self._vm.bulk(self.data[li], self.data[ri])
        out = np.empty((len(li), len(ri)), dtype=np.float64)
        for a, i in enumerate(li):
            pi = self.data[i]
            for b, j in enumerate(ri):
                out[a, b] = self.metric(pi, self.data[j])
        return out

    def distance_matrix(self) -> np.ndarray:
        """Full symmetric pairwise distance matrix (O(n^2) — small data only)."""
        n = len(self)
        idx = np.arange(n)
        if self.is_vector:
            return self._vm.bulk(self.data, self.data)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                d = self.metric(self.data[i], self.data[j])
                out[i, j] = out[j, i] = d
        return out

    def subset(self, indices: Sequence[int] | np.ndarray) -> "MetricSpace":
        """A new MetricSpace over the selected elements (copies references)."""
        idx = np.asarray(indices, dtype=np.intp)
        if self.is_vector:
            return MetricSpace(self.data[idx], self._vm)
        return MetricSpace([self.data[i] for i in idx], self.metric)


class PrecomputedMetric:
    """Adapter exposing a precomputed distance matrix as a metric on indices.

    Useful in tests and for expensive metrics (e.g. tree edit distance)
    where recomputation would dominate: the "dataset" becomes
    ``range(n)`` and lookups are O(1).
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("precomputed matrix must be square")
        if (matrix < 0).any():
            raise ValueError("distances must be nonnegative")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("precomputed matrix must be symmetric")
        self.matrix = matrix

    def __call__(self, i, j) -> float:
        return float(self.matrix[int(i), int(j)])

    def space(self) -> MetricSpace:
        """MetricSpace over element indices ``0..n-1`` with this metric."""
        return MetricSpace(list(range(self.matrix.shape[0])), self)
