"""Correlation (fractal) dimension estimation.

Lemma 1 bounds McCatch's runtime by O(n * n^(1-1/u)) where ``u`` is the
*correlation fractal dimension* of the dataset — "how quickly the
number of neighbors grows with the distance" (footnote 7).  Following
[40], [41], we estimate ``u`` as the slope of the log-log correlation
integral

    C(r) = (# pairs within distance r) / (# pairs)

over the scaling region.  Only distances are needed, so the estimator
works for nondimensional data too (Table III lists fractal dimensions
for Last Names, Fingerprints, and Skeletons).
"""

from __future__ import annotations

import numpy as np

from repro.metric.base import MetricSpace
from repro.utils.rng import check_random_state


def correlation_integral(
    data,
    metric=None,
    *,
    n_radii: int = 15,
    sample_size: int = 2000,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Correlation integral C(r) over geometrically spaced radii.

    For datasets larger than ``sample_size`` a random subsample keeps
    the pair count subquadratic in ``n`` (the paper cites [35] for
    subquadratic fractal-dimension estimation of nondimensional data;
    sampling achieves the same end with simpler machinery).

    Returns
    -------
    radii, C:
        Arrays of the evaluated radii and the fraction of pairs within
        each radius (both 1-d, same length).
    """
    space = data if isinstance(data, MetricSpace) else MetricSpace(data, metric)
    n = len(space)
    rng = check_random_state(random_state)
    if n > sample_size:
        idx = rng.choice(n, size=sample_size, replace=False)
        space = space.subset(idx)
        n = sample_size
    if n < 3:
        raise ValueError("correlation integral needs at least 3 elements")

    dm = space.distance_matrix()
    iu = np.triu_indices(n, k=1)
    pair_d = dm[iu]
    dmax = float(pair_d.max())
    positive = pair_d[pair_d > 0]
    if dmax == 0.0 or positive.size == 0:
        raise ValueError("all elements coincide; fractal dimension undefined")
    dmin = float(positive.min())
    radii = np.geomspace(max(dmin, dmax * 1e-6), dmax, num=n_radii)
    counts = np.searchsorted(np.sort(pair_d), radii, side="right")
    C = counts / pair_d.size
    return radii, C


def correlation_dimension(
    data,
    metric=None,
    *,
    n_radii: int = 15,
    sample_size: int = 2000,
    random_state=None,
) -> float:
    """Correlation fractal dimension ``u`` (slope of log C(r) vs log r).

    The slope is fit by least squares over the scaling region: radii
    where 0 < C(r) < 1 (the flat saturated head and empty tail carry no
    information).  Returns at least a tiny positive value so Lemma 1's
    exponent ``1 - 1/u`` stays well defined.
    """
    radii, C = correlation_integral(
        data, metric, n_radii=n_radii, sample_size=sample_size, random_state=random_state
    )
    mask = (C > 0) & (C < 1)
    if mask.sum() < 2:
        # Degenerate scaling region (e.g. two tight clusters): fall back
        # to the widest informative span.
        mask = C > 0
    log_r = np.log(radii[mask])
    log_c = np.log(C[mask])
    if log_r.size < 2 or np.allclose(log_r, log_r[0]):
        return 1.0
    slope = float(np.polyfit(log_r, log_c, deg=1)[0])
    return max(slope, 1e-3)


def expected_runtime_slope(u: float) -> float:
    """Lemma 1's expected log-log runtime slope, 2 - 1/u, for Fig. 7."""
    if u <= 0:
        raise ValueError(f"fractal dimension must be positive, got {u}")
    return 2.0 - 1.0 / u
