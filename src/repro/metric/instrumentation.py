"""Distance-call accounting: measure what the indexes actually pay.

The paper's Sec. IV-G principles (sparse-focused, count-only,
using-index, small-radii-only) are all about *avoiding distance
evaluations*.  :class:`CountingMetricSpace` wraps any
:class:`~repro.metric.base.MetricSpace` and counts every scalar and
bulk evaluation flowing through it, so tests and ablations can assert
the savings instead of inferring them from wall-clock noise.

Example
-------
>>> import numpy as np
>>> from repro.metric.base import MetricSpace
>>> from repro.metric.instrumentation import CountingMetricSpace
>>> space = CountingMetricSpace(MetricSpace(np.random.default_rng(0).normal(size=(50, 2))))
>>> _ = space.distances(0, np.arange(50))
>>> space.counter.total
50
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.metric.base import MetricSpace


@dataclass
class DistanceCounter:
    """Tally of distance evaluations, split by call shape."""

    scalar_calls: int = 0  # distance(i, j) pairs
    bulk_pairs: int = 0  # pairs evaluated through bulk paths
    bulk_calls: int = 0  # number of bulk invocations
    seconds: float = 0.0  # wall time inside counted calls (timed proxies only)

    @property
    def total(self) -> int:
        """Total pairwise distance evaluations."""
        return self.scalar_calls + self.bulk_pairs

    def reset(self) -> None:
        """Zero all tallies."""
        self.scalar_calls = 0
        self.bulk_pairs = 0
        self.bulk_calls = 0
        self.seconds = 0.0

    def __repr__(self) -> str:
        return (
            f"DistanceCounter(total={self.total}, scalar={self.scalar_calls}, "
            f"bulk_pairs={self.bulk_pairs} over {self.bulk_calls} calls)"
        )


class CountingMetricSpace(MetricSpace):
    """A MetricSpace proxy that counts every distance evaluation.

    Behaves identically to the wrapped space (same data, same metric,
    same numeric results) while recording traffic in :attr:`counter`.
    Pass it anywhere a MetricSpace is accepted — ``build_index``,
    ``McCatch.fit``, the joins, or a served model's space.

    With ``timed=True`` the out-of-dataset bulk paths
    (:meth:`distances_to`, :meth:`distances_to_many` — the serving
    score path) additionally accumulate their wall time into
    ``counter.seconds``; the default skips the clock reads entirely.
    An existing counter may be passed so several proxies (e.g. the
    spaces of successive hot-swapped model generations) share one
    monotonic tally.
    """

    def __init__(
        self,
        inner: MetricSpace,
        *,
        counter: DistanceCounter | None = None,
        timed: bool = False,
    ):
        # Reuse the inner space's validated state rather than re-validating.
        self.data = inner.data
        self.is_vector = inner.is_vector
        self._vm = inner._vm
        self.metric = inner.metric
        self._inner = inner
        self.counter = counter if counter is not None else DistanceCounter()
        self.timed = timed

    def distance(self, i: int, j: int) -> float:
        """Counted scalar distance (see :class:`MetricSpace`)."""
        self.counter.scalar_calls += 1
        return self._inner.distance(i, j)

    def distances(self, query_index, indices):
        """Counted bulk distances (see :class:`MetricSpace`)."""
        out = self._inner.distances(query_index, indices)
        self.counter.bulk_calls += 1
        self.counter.bulk_pairs += int(out.size)
        return out

    def distances_to(self, obj, indices):
        """Counted out-of-dataset distances (see :class:`MetricSpace`)."""
        t0 = time.perf_counter() if self.timed else 0.0
        out = self._inner.distances_to(obj, indices)
        if self.timed:
            self.counter.seconds += time.perf_counter() - t0
        self.counter.bulk_calls += 1
        self.counter.bulk_pairs += int(out.size)
        return out

    def distances_to_many(self, objs, indices):
        """Counted out-of-dataset block distances (the serving path)."""
        t0 = time.perf_counter() if self.timed else 0.0
        out = self._inner.distances_to_many(objs, indices)
        if self.timed:
            self.counter.seconds += time.perf_counter() - t0
        self.counter.bulk_calls += 1
        self.counter.bulk_pairs += int(out.size)
        return out

    def paired_distances(self, left, right):
        """Counted row-aligned distances (see :class:`MetricSpace`)."""
        out = self._inner.paired_distances(left, right)
        self.counter.bulk_calls += 1
        self.counter.bulk_pairs += int(out.size)
        return out

    def distances_among(self, left, right):
        """Counted cross distances (see :class:`MetricSpace`)."""
        out = self._inner.distances_among(left, right)
        self.counter.bulk_calls += 1
        self.counter.bulk_pairs += int(out.size)
        return out

    def distance_matrix(self) -> np.ndarray:
        """Counted full matrix (see :class:`MetricSpace`)."""
        out = self._inner.distance_matrix()
        self.counter.bulk_calls += 1
        self.counter.bulk_pairs += int(out.size)
        return out

    def subset(self, indices) -> "CountingMetricSpace":
        """Subset shares this proxy's counter (total traffic attribution)."""
        return CountingMetricSpace(
            self._inner.subset(indices), counter=self.counter, timed=self.timed
        )
