"""Sequence metrics: token edit distance, LCS, Hamming, ERP, and DTW.

The paper's goal G1 (*General Input*) is "any metric dataset" — DNA
reads, event logs, and sensor traces are sequences rather than strings,
so this module generalizes the string machinery to sequences of
arbitrary hashable tokens and to numeric time series.

Metric status of each distance (it matters: the triangle-inequality
pruning in :mod:`repro.index` is only correct for true metrics):

===========================  =========================================
``sequence_edit_distance``   metric (unit-cost Levenshtein on tokens)
``lcs_distance``             metric (indel-only edit distance)
``hamming``                  metric (equal-length sequences)
``erp``                      metric (Edit distance with Real Penalty)
``dtw``                      **not** a metric — triangle inequality
                             fails; pair it only with
                             ``BruteForceIndex`` / ``index="brute"``
===========================  =========================================
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.mdl import universal_code_length


def hamming(a: Sequence, b: Sequence) -> float:
    """Number of positions where equal-length sequences differ.

    A metric on sequences of a fixed length (it is the L1 distance
    between indicator encodings).  Raises if the lengths differ, since
    padding conventions silently change the geometry.
    """
    if len(a) != len(b):
        raise ValueError(f"hamming requires equal lengths, got {len(a)} and {len(b)}")
    return float(sum(1 for x, y in zip(a, b) if x != y))


def sequence_edit_distance(a: Sequence, b: Sequence) -> float:
    """Unit-cost Levenshtein distance over arbitrary hashable tokens.

    The string edit distance of :func:`repro.metric.strings.levenshtein`
    generalized from characters to tokens — e.g. DNA codons, syscall
    names in a log, or words in a sentence.  A true metric.
    """
    if a == b or (len(a) == len(b) and all(x == y for x, y in zip(a, b))):
        return 0.0
    if len(a) < len(b):
        a, b = b, a
    if len(b) == 0:
        return float(len(a))
    previous = list(range(len(b) + 1))
    for i, ta in enumerate(a, start=1):
        current = [i]
        for j, tb in enumerate(b, start=1):
            cost = 0 if ta == tb else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return float(previous[len(b)])


def lcs_distance(a: Sequence, b: Sequence) -> float:
    """Indel-only edit distance: ``len(a) + len(b) − 2·LCS(a, b)``.

    The edit distance when replacement is forbidden; a metric, and the
    classic measure for alignment-style comparisons (diff tools).
    """
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return float(la + lb)
    previous = [0] * (lb + 1)
    for x in a:
        current = [0]
        for j, y in enumerate(b, start=1):
            if x == y:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[j - 1]))
        previous = current
    return float(la + lb - 2 * previous[lb])


def erp(a, b, gap: float = 0.0) -> float:
    """Edit distance with Real Penalty (Chen & Ng, VLDB 2004).

    An edit distance for numeric time series where a gap aligns against
    the constant ``gap`` value instead of being free — which, unlike
    DTW, preserves the triangle inequality.  ``erp`` is therefore safe
    to combine with every metric index in :mod:`repro.index`.

    Parameters
    ----------
    a, b:
        1-d numeric sequences (may have different lengths).
    gap:
        The gap reference value ``g`` (0 is the standard choice for
        normalized series).
    """
    x = np.asarray(a, dtype=np.float64).ravel()
    y = np.asarray(b, dtype=np.float64).ravel()
    la, lb = x.size, y.size
    if la == 0:
        return float(np.abs(y - gap).sum())
    if lb == 0:
        return float(np.abs(x - gap).sum())
    gap_x = np.abs(x - gap)
    gap_y = np.abs(y - gap)
    previous = np.concatenate([[0.0], np.cumsum(gap_y)])
    for i in range(la):
        current = np.empty(lb + 1)
        current[0] = previous[0] + gap_x[i]
        match = np.abs(x[i] - y)
        for j in range(1, lb + 1):
            current[j] = min(
                previous[j - 1] + match[j - 1],  # align x_i with y_j
                previous[j] + gap_x[i],          # gap in y
                current[j - 1] + gap_y[j - 1],   # gap in x
            )
        previous = current
    return float(previous[lb])


def dtw(a, b, window: int | None = None) -> float:
    """Dynamic Time Warping distance between 1-d numeric sequences.

    The classic elastic measure with an optional Sakoe–Chiba band of
    half-width ``window``.  **Not a metric** — the triangle inequality
    fails — so use it only with ``BruteForceIndex`` (``index="brute"``
    in :class:`~repro.core.mccatch.McCatch`); the tree indexes would
    prune incorrectly.  Prefer :func:`erp` when index acceleration
    matters.
    """
    x = np.asarray(a, dtype=np.float64).ravel()
    y = np.asarray(b, dtype=np.float64).ravel()
    la, lb = x.size, y.size
    if la == 0 or lb == 0:
        raise ValueError("dtw requires nonempty sequences")
    if window is not None and window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    band = max(window, abs(la - lb)) if window is not None else None
    inf = np.inf
    previous = np.full(lb + 1, inf)
    previous[0] = 0.0
    for i in range(1, la + 1):
        current = np.full(lb + 1, inf)
        lo = 1 if band is None else max(1, i - band)
        hi = lb if band is None else min(lb, i + band)
        for j in range(lo, hi + 1):
            cost = abs(x[i - 1] - y[j - 1])
            current[j] = cost + min(previous[j], current[j - 1], previous[j - 1])
        previous = current
    return float(previous[lb])


def transformation_cost_for_sequences(sequences) -> float:
    """Transformation Cost ``t`` (Def. 7) for token sequences under edit
    distance: choose the operation (of 3), the token, and the position.
    """
    tokens: set = set()
    longest = 0
    for seq in sequences:
        tokens.update(seq)
        longest = max(longest, len(seq))
    return (
        universal_code_length(3)
        + universal_code_length(max(1, len(tokens)))
        + universal_code_length(max(1, longest))
    )
