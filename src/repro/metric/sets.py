"""Set and multiset metrics: Jaccard, symmetric difference, weighted Jaccard.

Market baskets, tag collections, and n-gram profiles are naturally
sets; McCatch handles them through goal G1 as long as the distance is a
true metric.  All three distances here are:

- :func:`jaccard_distance` — ``1 − |A∩B| / |A∪B|``, the Steinhaus /
  Tanimoto distance, a metric on finite sets;
- :func:`symmetric_difference_distance` — ``|A △ B|``, the L1 distance
  between indicator vectors;
- :func:`weighted_jaccard_distance` — the multiset / nonnegative-vector
  generalization ``1 − Σ min / Σ max``, also a metric.

:func:`ngram_profile` turns a string into its n-gram set, giving a
cheap, index-friendly alternative to edit distance for long strings.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np


def _as_set(x) -> frozenset:
    return x if isinstance(x, (set, frozenset)) else frozenset(x)


def jaccard_distance(a: Iterable, b: Iterable) -> float:
    """Jaccard (Steinhaus) distance ``1 − |A∩B| / |A∪B|``.

    A true metric on finite sets; two empty sets are at distance 0.
    """
    sa, sb = _as_set(a), _as_set(b)
    if not sa and not sb:
        return 0.0
    inter = len(sa & sb)
    union = len(sa) + len(sb) - inter
    return 1.0 - inter / union


def symmetric_difference_distance(a: Iterable, b: Iterable) -> float:
    """Size of the symmetric difference ``|A △ B|``.

    The L1 (Hamming) distance between indicator vectors — an unbounded
    metric that, unlike Jaccard, keeps absolute set sizes relevant.
    """
    sa, sb = _as_set(a), _as_set(b)
    return float(len(sa ^ sb))


def weighted_jaccard_distance(a, b) -> float:
    """Weighted Jaccard distance ``1 − Σᵢ min(aᵢ,bᵢ) / Σᵢ max(aᵢ,bᵢ)``.

    Accepts multisets (:class:`collections.Counter` / mappings to
    nonnegative counts) or nonnegative numeric vectors of equal length.
    A metric in both forms (it is the Steinhaus distance for the measure
    induced by the weights).
    """
    if isinstance(a, (Counter, dict)) or isinstance(b, (Counter, dict)):
        ca, cb = Counter(a), Counter(b)
        if any(v < 0 for v in ca.values()) or any(v < 0 for v in cb.values()):
            raise ValueError("weighted Jaccard requires nonnegative multiplicities")
        keys = set(ca) | set(cb)
        min_sum = sum(min(ca[k], cb[k]) for k in keys)
        max_sum = sum(max(ca[k], cb[k]) for k in keys)
    else:
        va = np.asarray(a, dtype=np.float64).ravel()
        vb = np.asarray(b, dtype=np.float64).ravel()
        if va.size != vb.size:
            raise ValueError(f"vector lengths differ: {va.size} vs {vb.size}")
        if (va < 0).any() or (vb < 0).any():
            raise ValueError("weighted Jaccard requires nonnegative components")
        min_sum = float(np.minimum(va, vb).sum())
        max_sum = float(np.maximum(va, vb).sum())
    if max_sum == 0:
        return 0.0
    return 1.0 - min_sum / max_sum


def ngram_profile(text: str, n: int = 3, pad: bool = True) -> frozenset:
    """The set of character n-grams of ``text``.

    With ``pad=True`` the string is framed by ``n − 1`` sentinel
    characters on each side, so prefixes/suffixes are distinguishable —
    the standard trick from approximate string matching.  Combine with
    :func:`jaccard_distance` for a fast, metric string distance.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if pad and n > 1:
        sentinel = "\x00" * (n - 1)
        text = f"{sentinel}{text}{sentinel}"
    if len(text) < n:
        return frozenset([text] if text else [])
    return frozenset(text[i : i + n] for i in range(len(text) - n + 1))


def ngram_jaccard(a: str, b: str, n: int = 3) -> float:
    """Jaccard distance between n-gram profiles — a metric string
    distance with O(len) evaluation, useful when Levenshtein's quadratic
    cost dominates (very long strings)."""
    return jaccard_distance(ngram_profile(a, n), ngram_profile(b, n))
