"""String metrics: Levenshtein / Damerau-Levenshtein edit distance, soundex.

The paper analyzes Last Names with the "L-Edit" (Levenshtein) distance
and cites PostgreSQL's fuzzystrmatch (soundex) as an alternative string
distance [46].  Both are implemented here from scratch.
"""

from __future__ import annotations

import numpy as np

_SOUNDEX_CODES = {
    **dict.fromkeys("BFPV", "1"),
    **dict.fromkeys("CGJKQSXZ", "2"),
    **dict.fromkeys("DT", "3"),
    **dict.fromkeys("L", "4"),
    **dict.fromkeys("MN", "5"),
    **dict.fromkeys("R", "6"),
}


def levenshtein(a: str, b: str) -> float:
    """Classic edit distance (insert / delete / replace, unit costs).

    Runs the two-row dynamic program in O(len(a) * len(b)) time and
    O(min(len(a), len(b))) memory.  It is a true metric on strings.
    """
    if a == b:
        return 0.0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return float(len(a))
    # NumPy row updates keep the inner loop out of Python where possible.
    previous = np.arange(len(b) + 1, dtype=np.intp)
    current = np.empty_like(previous)
    b_codes = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        cost = (b_codes != ord(ca)).astype(np.intp)
        np.minimum(previous[1:] + 1, previous[:-1] + cost, out=current[1:])
        # Insertions propagate left-to-right and cannot be vectorized.
        row = current
        for j in range(1, len(b) + 1):
            if row[j - 1] + 1 < row[j]:
                row[j] = row[j - 1] + 1
        previous, current = current, previous
    return float(previous[len(b)])


def damerau_levenshtein(a: str, b: str) -> float:
    """Edit distance that also allows adjacent transpositions.

    The restricted (optimal string alignment) variant; still a metric
    for unit costs.
    """
    if a == b:
        return 0.0
    la, lb = len(a), len(b)
    if la == 0:
        return float(lb)
    if lb == 0:
        return float(la)
    d = np.zeros((la + 1, lb + 1), dtype=np.intp)
    d[:, 0] = np.arange(la + 1)
    d[0, :] = np.arange(lb + 1)
    for i in range(1, la + 1):
        for j in range(1, lb + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            best = min(d[i - 1, j] + 1, d[i, j - 1] + 1, d[i - 1, j - 1] + cost)
            if i > 1 and j > 1 and a[i - 1] == b[j - 2] and a[i - 2] == b[j - 1]:
                best = min(best, d[i - 2, j - 2] + 1)
            d[i, j] = best
    return float(d[la, lb])


def soundex(word: str) -> str:
    """Four-character American Soundex code of ``word``.

    Follows the classic rules: keep the first letter, encode the rest
    by phonetic class, collapse repeats, drop vowels/H/W/Y, pad with
    zeros.
    """
    letters = [ch for ch in word.upper() if ch.isalpha()]
    if not letters:
        return "0000"
    first = letters[0]
    code = [first]
    prev = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        digit = _SOUNDEX_CODES.get(ch, "")
        if digit and digit != prev:
            code.append(digit)
            if len(code) == 4:
                break
        if ch not in "HW":
            prev = digit
    return "".join(code).ljust(4, "0")


def soundex_distance(a: str, b: str) -> float:
    """Hamming-style distance between soundex codes (0..4).

    A pseudo-metric (distinct names can collide at distance 0); offered
    because the paper cites soundex as an alternative name distance.
    """
    ca, cb = soundex(a), soundex(b)
    return float(sum(1 for x, y in zip(ca, cb) if x != y))
