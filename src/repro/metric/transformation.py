"""Transformation Cost ``t`` of Definition 7.

``t`` is the number of bits needed to describe how to transform one
element of the metric space into another element that is *one unit of
distance* away:

- vector space: ``t`` = dimensionality (one difference per feature);
- words under edit distance: ``t`` = ⟨3⟩ + ⟨#distinct chars⟩ +
  ⟨#chars of the longest word⟩ — which operation (of 3), which
  character, and at which position;
- any other space: supplied by the caller.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.mdl import universal_code_length


def transformation_cost_for_vectors(dimensionality: int) -> float:
    """``t`` for a vector space: its embedding dimensionality."""
    if dimensionality < 1:
        raise ValueError(f"dimensionality must be >= 1, got {dimensionality}")
    return float(dimensionality)


def transformation_cost_for_strings(words: Iterable[str]) -> float:
    """``t`` for words under edit distance, per Definition 7.

    ⟨3⟩ bits pick the edit operation (insert / delete / replace), the
    alphabet-size term picks the character involved, and the
    longest-word term picks the position.
    """
    distinct: set[str] = set()
    longest = 0
    for word in words:
        distinct.update(word)
        longest = max(longest, len(word))
    n_chars = max(1, len(distinct))
    longest = max(1, longest)
    return (
        universal_code_length(3)
        + universal_code_length(n_chars)
        + universal_code_length(longest)
    )


def transformation_cost_for_trees(trees) -> float:
    """``t`` for labeled trees under tree edit distance.

    Analogous to the string case: choose the operation, the label, and
    the node position within the largest tree.
    """
    labels: set[str] = set()
    largest = 0
    for tree in trees:
        labels.update(tree.labels())
        largest = max(largest, tree.size())
    return (
        universal_code_length(3)
        + universal_code_length(max(1, len(labels)))
        + universal_code_length(max(1, largest))
    )
