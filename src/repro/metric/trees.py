"""Labeled rooted trees and the Zhang–Shasha tree edit distance.

The Skeletons experiment (Fig. 1(iii)) compares skeleton graphs with an
edit distance; skeleton graphs are trees, and the paper cites the tree
edit distance of Pawlik & Augsten [48].  We implement the classic
Zhang–Shasha O(n^2 * depth^2) algorithm, which is exact and a true
metric for unit edit costs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class LabeledTree:
    """An ordered, rooted tree with string node labels.

    Parameters
    ----------
    label:
        Label of the root node.
    children:
        Child subtrees, ordered left to right.
    """

    __slots__ = ("label", "children")

    def __init__(self, label: str, children: Sequence["LabeledTree"] = ()):
        self.label = str(label)
        self.children = list(children)

    def add(self, child: "LabeledTree") -> "LabeledTree":
        """Append a child and return it (builder convenience)."""
        self.children.append(child)
        return child

    def size(self) -> int:
        """Number of nodes in the tree."""
        return 1 + sum(c.size() for c in self.children)

    def depth(self) -> int:
        """Length of the longest root-to-leaf path, in nodes."""
        if not self.children:
            return 1
        return 1 + max(c.depth() for c in self.children)

    def labels(self) -> list[str]:
        """All node labels in postorder."""
        out: list[str] = []
        for c in self.children:
            out.extend(c.labels())
        out.append(self.label)
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, LabeledTree):
            return NotImplemented
        return self.label == other.label and self.children == other.children

    def __hash__(self) -> int:
        return hash((self.label, tuple(hash(c) for c in self.children)))

    def __repr__(self) -> str:
        if not self.children:
            return f"({self.label})"
        inner = " ".join(repr(c) for c in self.children)
        return f"({self.label} {inner})"

    @classmethod
    def from_tuple(cls, spec) -> "LabeledTree":
        """Build from nested tuples: ``("a", ("b",), ("c", ("d",)))``."""
        if isinstance(spec, str):
            return cls(spec)
        label, *children = spec
        return cls(label, [cls.from_tuple(c) for c in children])


class _Annotated:
    """Postorder node arrays + leftmost-leaf and keyroot tables."""

    def __init__(self, root: LabeledTree):
        self.labels: list[str] = []
        self.lmld: list[int] = []  # leftmost leaf descendant per postorder node
        self._walk(root)
        n = len(self.labels)
        seen: set[int] = set()
        keyroots: list[int] = []
        # A keyroot is the highest node of each leftmost path; scanning
        # postorder from the right keeps only the first (highest) node
        # per distinct leftmost leaf.
        for i in range(n - 1, -1, -1):
            if self.lmld[i] not in seen:
                keyroots.append(i)
                seen.add(self.lmld[i])
        self.keyroots = sorted(keyroots)

    def _walk(self, node: LabeledTree) -> int:
        if node.children:
            first = None
            for child in node.children:
                leftmost = self._walk(child)
                if first is None:
                    first = leftmost
            my_lmld = first
        else:
            my_lmld = len(self.labels)
        self.labels.append(node.label)
        self.lmld.append(my_lmld)  # type: ignore[arg-type]
        return my_lmld  # type: ignore[return-value]


def tree_edit_distance(
    t1: LabeledTree,
    t2: LabeledTree,
    *,
    insert_cost: float = 1.0,
    delete_cost: float = 1.0,
    relabel_cost: float = 1.0,
) -> float:
    """Exact tree edit distance between two ordered labeled trees.

    Zhang–Shasha dynamic program.  With unit costs this is a metric on
    trees (nonnegative, symmetric, triangle inequality, zero iff equal).
    """
    a1, a2 = _Annotated(t1), _Annotated(t2)
    n1, n2 = len(a1.labels), len(a2.labels)
    td = np.zeros((n1, n2), dtype=np.float64)

    for i in a1.keyroots:
        for j in a2.keyroots:
            _forest_distance(a1, a2, i, j, td, insert_cost, delete_cost, relabel_cost)
    return float(td[n1 - 1, n2 - 1])


def _forest_distance(
    a1: _Annotated,
    a2: _Annotated,
    i: int,
    j: int,
    td: np.ndarray,
    ins: float,
    dele: float,
    rel: float,
) -> None:
    """Fill tree distances for the keyroot pair (i, j) into ``td``."""
    li, lj = a1.lmld[i], a2.lmld[j]
    m, n = i - li + 2, j - lj + 2
    fd = np.zeros((m, n), dtype=np.float64)
    fd[1:, 0] = np.cumsum(np.full(m - 1, dele))
    fd[0, 1:] = np.cumsum(np.full(n - 1, ins))
    for x in range(1, m):
        node1 = li + x - 1
        for y in range(1, n):
            node2 = lj + y - 1
            if a1.lmld[node1] == li and a2.lmld[node2] == lj:
                # Both prefixes are whole trees: record a tree distance.
                cost = 0.0 if a1.labels[node1] == a2.labels[node2] else rel
                fd[x, y] = min(
                    fd[x - 1, y] + dele,
                    fd[x, y - 1] + ins,
                    fd[x - 1, y - 1] + cost,
                )
                td[node1, node2] = fd[x, y]
            else:
                p = a1.lmld[node1] - li
                q = a2.lmld[node2] - lj
                fd[x, y] = min(
                    fd[x - 1, y] + dele,
                    fd[x, y - 1] + ins,
                    fd[p, q] + td[node1, node2],
                )


def tree_from_edges(
    n_nodes: int, edges: Iterable[tuple[int, int]], labels: Sequence[str], root: int = 0
) -> LabeledTree:
    """Build a :class:`LabeledTree` from an undirected edge list.

    Children are ordered by node id so the construction is
    deterministic.  Raises if the edges do not form a tree spanning
    ``n_nodes`` nodes.
    """
    adjacency: dict[int, list[int]] = {i: [] for i in range(n_nodes)}
    edge_count = 0
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
        edge_count += 1
    if edge_count != n_nodes - 1:
        raise ValueError(f"a tree on {n_nodes} nodes needs {n_nodes - 1} edges, got {edge_count}")

    nodes = {i: LabeledTree(labels[i]) for i in range(n_nodes)}
    visited = {root}
    stack = [root]
    reached = 1
    while stack:
        u = stack.pop()
        for v in sorted(adjacency[u]):
            if v not in visited:
                visited.add(v)
                nodes[u].children.append(nodes[v])
                stack.append(v)
                reached += 1
    if reached != n_nodes:
        raise ValueError("edge list is disconnected; not a tree")
    return nodes[root]
