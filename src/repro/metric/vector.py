"""L_p metrics for vector data, in scalar and bulk (vectorized) form.

The paper uses the Euclidean distance for every vector dataset, noting
that any other L_p metric would work (Sec. V).  Each metric here comes
in two flavours:

- a scalar ``f(p, q) -> float`` usable wherever a generic distance
  function is expected, and
- a bulk form used internally by the indexes,
  ``f.bulk(Q, X) -> (len(Q), len(X)) matrix``, which avoids Python-level
  loops on the hot paths.
"""

from __future__ import annotations

import numpy as np


class VectorMetric:
    """A named L_p metric with scalar and bulk evaluation.

    Parameters
    ----------
    p:
        Order of the norm; ``np.inf`` gives the Chebyshev metric.
    name:
        Human-readable name, used in ``repr`` and error messages.
    """

    def __init__(self, p: float, name: str):
        if p < 1:
            raise ValueError(f"L_p metrics require p >= 1, got {p}")
        self.p = float(p)
        self.name = name

    def __call__(self, a, b) -> float:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        diff = np.abs(a - b)
        if np.isinf(self.p):
            return float(diff.max(initial=0.0))
        if self.p == 2.0:
            return float(np.sqrt(np.sum(diff * diff)))
        if self.p == 1.0:
            return float(diff.sum())
        return float(np.sum(diff**self.p) ** (1.0 / self.p))

    def bulk(self, Q: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Distance matrix between query rows ``Q`` and data rows ``X``."""
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if np.isinf(self.p):
            return np.abs(Q[:, None, :] - X[None, :, :]).max(axis=2)
        if self.p == 2.0:
            # ||q - x||^2 = ||q||^2 + ||x||^2 - 2 q.x, clipped for round-off.
            # The cross term deliberately uses einsum rather than a BLAS
            # matmul: gemm accumulation order depends on the operand
            # shapes, so the same pair of rows could get last-ulp
            # different distances in a (1, n) call and a (512, n) call —
            # and the indexes compare those floats against shared radius
            # boundaries, where a one-ulp flip changes a count.  einsum
            # is bitwise identical for every block shape (and makes
            # self-distances exactly zero: q.q accumulates in the same
            # order as ||q||^2).
            qq = np.einsum("ij,ij->i", Q, Q)[:, None]
            xx = np.einsum("ij,ij->i", X, X)[None, :]
            sq = qq + xx - 2.0 * np.einsum("ik,jk->ij", Q, X)
            np.maximum(sq, 0.0, out=sq)
            return np.sqrt(sq)
        diff = np.abs(Q[:, None, :] - X[None, :, :])
        if self.p == 1.0:
            return diff.sum(axis=2)
        return np.sum(diff**self.p, axis=2) ** (1.0 / self.p)

    def paired(
        self,
        A: np.ndarray,
        B: np.ndarray,
        sq_a: np.ndarray | None = None,
        sq_b: np.ndarray | None = None,
    ) -> np.ndarray:
        """Row-aligned distances: ``out[i] = distance(A[i], B[i])``.

        The level-synchronous tree builds and walks need one distance
        per element (each element to its segment's vantage), not a
        cross matrix.  Every entry is bitwise identical to the
        corresponding entry of :meth:`bulk` — the Euclidean path uses
        the same einsum sum-of-products accumulation order as the
        cross-term there, and the other L_p paths reduce the same
        contiguous axis — so radii and thresholds recorded at build
        time live in the same float universe as the distances the walks
        compare them against (``tests/test_metric_vector.py`` pins this
        property).

        ``sq_a`` / ``sq_b`` optionally supply precomputed row squared
        norms for the Euclidean path (``einsum("ij,ij->i", A, A)`` per
        row — the reduction is row-independent, so norms computed once
        over a whole data matrix are bitwise identical to norms of any
        gathered subset).  The level-synchronous walks lean on this:
        caching the norms turns three einsum passes per call into one.
        """
        A = np.ascontiguousarray(A, dtype=np.float64)
        B = np.ascontiguousarray(B, dtype=np.float64)
        if np.isinf(self.p):
            return np.abs(A - B).max(axis=1, initial=0.0)
        if self.p == 2.0:
            aa = np.einsum("ij,ij->i", A, A) if sq_a is None else sq_a
            bb = np.einsum("ij,ij->i", B, B) if sq_b is None else sq_b
            sq = (aa + bb) - 2.0 * np.einsum("ij,ij->i", A, B)
            np.maximum(sq, 0.0, out=sq)
            return np.sqrt(sq)
        diff = np.abs(A - B)
        if self.p == 1.0:
            return diff.sum(axis=1)
        return np.sum(diff**self.p, axis=1) ** (1.0 / self.p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorMetric({self.name})"


euclidean = VectorMetric(2.0, "euclidean")
cityblock = VectorMetric(1.0, "cityblock")
chebyshev = VectorMetric(np.inf, "chebyshev")


def minkowski(p: float) -> VectorMetric:
    """Return the L_p metric of order ``p``."""
    return VectorMetric(p, f"minkowski(p={p})")


_NAMED = {
    "euclidean": euclidean,
    "l2": euclidean,
    "cityblock": cityblock,
    "manhattan": cityblock,
    "l1": cityblock,
    "chebyshev": chebyshev,
    "linf": chebyshev,
}


def vector_metric(metric) -> VectorMetric:
    """Resolve ``metric`` (name, order, or VectorMetric) to a VectorMetric."""
    if isinstance(metric, VectorMetric):
        return metric
    if isinstance(metric, str):
        try:
            return _NAMED[metric.lower()]
        except KeyError:
            raise ValueError(
                f"unknown vector metric {metric!r}; choose from {sorted(_NAMED)}"
            ) from None
    if isinstance(metric, (int, float)):
        return minkowski(float(metric))
    raise TypeError(f"cannot interpret {metric!r} as a vector metric")
