"""``repro.obs`` — the unified telemetry layer.

Stdlib-only, process-wide observability for the engine and serving
tiers, in three pieces:

- :mod:`repro.obs.registry` — :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms, callback metrics), Prometheus text
  exposition (``render``), a JSON-able ``snapshot()`` the benchmarks
  embed into their ``BENCH_*.json`` artifacts, and
  :func:`parse_exposition` / :func:`validate_exposition` for the
  scraping side (``repro stats``, tests, CI).
- :mod:`repro.obs.hooks` — the near-zero-cost process sinks the walk
  and engine hot paths check (one module attribute + ``None`` test
  when telemetry is off), enabled by
  :func:`enable_process_telemetry` and exposed on any registry via
  :func:`bind_process_sinks`.
- :mod:`repro.obs.tracing` — :class:`RequestTrace` span timing
  (parse → queue wait → engine batch → walk → respond) and structured
  JSON access logs with per-request ids.

The serving tier (:class:`repro.serve.ScoringServer`) wires all three
together and serves the exposition as ``GET /metrics``; nothing in
this package imports the rest of the repo, so any layer can depend on
it without cycles.
"""

from repro.obs.hooks import (
    TelemetrySink,
    bind_process_sinks,
    disable_process_telemetry,
    enable_process_telemetry,
    process_sinks_snapshot,
    telemetry_enabled,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
    validate_exposition,
)
from repro.obs.tracing import (
    RequestTrace,
    access_logger,
    configure_logging,
    next_request_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestTrace",
    "TelemetrySink",
    "access_logger",
    "bind_process_sinks",
    "configure_logging",
    "disable_process_telemetry",
    "enable_process_telemetry",
    "next_request_id",
    "parse_exposition",
    "process_sinks_snapshot",
    "telemetry_enabled",
    "validate_exposition",
]
