"""Process-wide telemetry sinks the hot layers check with one load.

The walk kernels (:func:`repro.index.base.count_walk`) and the batch
engine (:class:`repro.engine.executor.BatchQueryEngine`) are the
innermost loops of this repo; they cannot afford per-call registry
traffic, and when nobody is observing they must pay *nothing* beyond
one module-attribute read and a ``None`` check.  So instrumentation is
pull-based and two-stage:

1. The hot path checks :data:`WALK` / :data:`ENGINE`.  ``None`` (the
   default) means telemetry is off — the walk runs exactly the code it
   ran before this module existed.
2. When a sink is installed (:func:`enable_process_telemetry`), a walk
   accumulates its existing ``stats`` dict *locally* as it always has
   and merges the whole dict into the sink once per walk, under the
   sink's lock — so concurrent sharded walks (the GIL-free compiled
   kernel on the threads backend) never race on counter updates and
   never serialize against each other mid-walk.

Sinks are process-global on purpose: "process-wide telemetry" means a
fit, a benchmark, and a server in the same process all add to the same
totals, and every :class:`~repro.obs.registry.MetricsRegistry` that
binds them (:func:`bind_process_sinks`) reads the same truth.
"""

from __future__ import annotations

import threading
from typing import Mapping

__all__ = [
    "TelemetrySink",
    "bind_process_sinks",
    "disable_process_telemetry",
    "enable_process_telemetry",
    "process_sinks_snapshot",
    "telemetry_enabled",
]


class TelemetrySink:
    """A locked bag of named monotonic counters (floats)."""

    __slots__ = ("_lock", "_counters")

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}

    def merge(self, stats: Mapping[str, float], **extra: float) -> None:
        """Add one walk's (or call's) local tallies to the totals."""
        with self._lock:
            for key, value in stats.items():
                self._counters[key] = self._counters.get(key, 0.0) + float(value)
            for key, value in extra.items():
                self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def bump(self, **amounts: float) -> None:
        """Shorthand merge for call-site literals."""
        self.merge({}, **amounts)

    def get(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TelemetrySink({self.as_dict()!r})"


#: The walk sink, checked by :func:`repro.index.base.count_walk`.
#: ``None`` = telemetry off (the hot-path guard).
WALK: TelemetrySink | None = None

#: The engine sink, checked by
#: :class:`repro.engine.executor.BatchQueryEngine`.
ENGINE: TelemetrySink | None = None

_ENABLE_LOCK = threading.Lock()


def enable_process_telemetry() -> tuple[TelemetrySink, TelemetrySink]:
    """Install (or return the existing) walk + engine sinks.

    Idempotent: the sinks are process-wide accumulators, so a second
    enabler (another server in the same process, a test) shares the
    first one's totals rather than resetting them.
    """
    global WALK, ENGINE
    with _ENABLE_LOCK:
        if WALK is None:
            WALK = TelemetrySink()
        if ENGINE is None:
            ENGINE = TelemetrySink()
        return WALK, ENGINE


def disable_process_telemetry() -> None:
    """Remove the sinks: hot paths go back to the single ``None`` check.

    Counters are discarded with the sinks — re-enabling starts from
    zero, which keeps "monotonic while enabled" an honest contract.
    """
    global WALK, ENGINE
    with _ENABLE_LOCK:
        WALK = None
        ENGINE = None


def telemetry_enabled() -> bool:
    return WALK is not None


def process_sinks_snapshot() -> dict[str, dict[str, float]]:
    """Current walk/engine totals as a plain dict (empty when off)."""
    out: dict[str, dict[str, float]] = {}
    if WALK is not None:
        out["walk"] = WALK.as_dict()
    if ENGINE is not None:
        out["engine"] = ENGINE.as_dict()
    return out


#: Walk-sink keys -> exposed family names.  The keys are exactly the
#: counters :func:`~repro.index.base.level_count_walk` and the compiled
#: kernel already accumulate (plus the walk-level ``walks``/``seconds``
#: added at merge time) — the registry exposes them, it does not
#: re-derive them.
_WALK_FAMILIES = (
    ("walks", "repro_walk_calls_total",
     "Multi-radius frontier walks dispatched"),
    ("seconds", "repro_walk_seconds_total",
     "Wall-clock seconds spent inside frontier walks"),
    ("steps", "repro_walk_depth_steps_total",
     "Level-synchronous depth steps advanced"),
    ("entries", "repro_walk_frontier_entries_total",
     "(query, node) frontier entries processed"),
    ("searchsorted_calls", "repro_walk_searchsorted_calls_total",
     "Radius-window searchsorted/boundary-compare dispatches"),
    ("distance_calls", "repro_walk_distance_dispatches_total",
     "Grouped distance-kernel dispatches inside walks"),
    ("scatter_calls", "repro_walk_scatter_calls_total",
     "Count-matrix diff scatters"),
    ("leaf_entries_total", "repro_walk_rect_cells_total",
     "Rectangular leaf-kernel cells evaluated (float32 pass)"),
    ("leaf_entries_filtered", "repro_walk_rect_cells_filtered_total",
     "Rect-kernel cells settled without the exact float64 re-check"),
)

_ENGINE_FAMILIES = (
    ("count_calls", "repro_engine_count_calls_total",
     "Multi-radius count requests answered by the batch engine"),
    ("count_queries", "repro_engine_count_queries_total",
     "Query points across all engine count requests"),
    ("count_entries", "repro_engine_count_entries_total",
     "(query, radius) count-matrix entries produced by the engine"),
)


def bind_process_sinks(registry) -> None:
    """Expose the process sinks as callback families on ``registry``.

    Enables the sinks if they are not already on (binding a registry
    *is* observing).  Safe to call for several registries — they all
    read the same process-wide totals.
    """
    walk, engine = enable_process_telemetry()
    for key, name, help_text in _WALK_FAMILIES:
        registry.register_callback(
            name, "counter", help_text,
            (lambda k=key: WALK.get(k) if WALK is not None else 0.0),
        )
    for key, name, help_text in _ENGINE_FAMILIES:
        registry.register_callback(
            name, "counter", help_text,
            (lambda k=key: ENGINE.get(k) if ENGINE is not None else 0.0),
        )
