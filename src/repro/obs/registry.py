"""The process-wide metrics registry: counters, gauges, histograms.

Stdlib-only Prometheus-style instrumentation for the serving and
engine tiers.  Three mutable instrument kinds plus *callback* metrics
that read an existing counter at collection time — the registry's way
of exposing signal sources the repo already maintains (the
micro-batcher's served-traffic counters, the walk stats sinks, a
:class:`~repro.metric.instrumentation.DistanceCounter`) without
duplicating their bookkeeping:

- :class:`Counter` — monotonically increasing totals (``.inc``).
- :class:`Gauge` — point-in-time values (``.set`` / ``.inc`` / ``.dec``).
- :class:`Histogram` — fixed-bucket distributions (``.observe``);
  buckets are chosen at registration and never rebalance, so two
  scrapes are always comparable.
- callbacks (:meth:`MetricsRegistry.register_callback`) — a function
  evaluated per collection; for labelled families it returns
  ``{label_values_tuple: value}``.

Everything is thread-safe (one lock per family; instrument updates are
a single guarded add) and cheap enough for per-batch hot paths —
per-*row* work never touches the registry, which is how the serving
tier keeps telemetry overhead in the noise.

Exposition is the Prometheus text format, version 0.0.4
(:meth:`MetricsRegistry.render`), and :meth:`MetricsRegistry.snapshot`
returns the same data as a JSON-able dict — what the benchmarks embed
into their ``BENCH_*.json`` records so perf artifacts carry op counts,
not just wall-clock.  :func:`parse_exposition` is the inverse of
``render`` (used by ``repro stats`` and the format tests).
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_exposition",
]

#: Default histogram bucket upper bounds (seconds-flavored, spanning
#: sub-millisecond engine batches to multi-second pathological ones).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


def _format_value(value: float) -> str:
    """A Prometheus sample value: integers render bare, floats via repr."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - never produced by instruments
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labelnames: Sequence[str], values: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in zip(labelnames, values)
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing total (one labelled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount}) is invalid")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value (one labelled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket distribution (one labelled child).

    ``buckets`` are the finite upper bounds; ``+Inf`` is implicit.
    Internally counts are per-bucket (non-cumulative); rendering emits
    the cumulative ``_bucket{le=...}`` series Prometheus expects.
    """

    __slots__ = ("_lock", "buckets", "_counts", "sum", "count")

    def __init__(self, lock: threading.Lock, buckets: Sequence[float]):
        self._lock = lock
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # linear scan: bucket lists are short (<= ~15) and a scan is
        # cheaper than bisect's call overhead at that size
        i = 0
        for bound in self.buckets:
            if value <= bound:
                break
            i += 1
        with self._lock:
            self._counts[i] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out = []
        running = 0
        with self._lock:
            counts = list(self._counts)
            for bound, c in zip(self.buckets, counts):
                running += c
                out.append((bound, running))
            out.append((math.inf, running + counts[-1]))
        return out


class _Family:
    """One named metric family: kind, help text, labelled children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        *,
        buckets: Sequence[float] | None = None,
        callback: Callable | None = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self.callback = callback
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _make_child(self):
        if self.kind == "counter":
            return Counter(self._lock)
        if self.kind == "gauge":
            return Gauge(self._lock)
        return Histogram(self._lock, self.buckets or DEFAULT_BUCKETS)

    def labels(self, *values, **kwargs):
        """The child for one label-value combination (created on first use)."""
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(str(kwargs[k]) for k in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name} needs labels {self.labelnames}, got {kwargs}"
                ) from exc
            if len(kwargs) != len(self.labelnames):
                raise ValueError(
                    f"{self.name} needs labels {self.labelnames}, got {kwargs}"
                )
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label values "
                f"{self.labelnames}, got {len(values)}"
            )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.setdefault(values, self._make_child())
        return child

    # unlabeled families proxy straight to their single child ----------------

    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled by {self.labelnames}; use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    # collection -------------------------------------------------------------

    def collected_children(self) -> dict[tuple[str, ...], object]:
        """Children to render: stored ones, or the callback's values."""
        if self.callback is None:
            return dict(self._children)
        produced = self.callback()
        if not isinstance(produced, Mapping):
            produced = {(): produced}
        out = {}
        for key, value in produced.items():
            if not isinstance(key, tuple):
                key = (key,)
            key = tuple(str(k) for k in key)
            if len(key) != len(self.labelnames):
                raise ValueError(
                    f"callback for {self.name} produced label values {key!r}; "
                    f"expected {len(self.labelnames)} ({self.labelnames})"
                )
            out[key] = float(value)
        return out


class MetricsRegistry:
    """A named collection of metric families with text exposition.

    Registration is idempotent: asking again for the same
    ``(name, kind, labelnames)`` returns the existing family, while a
    conflicting re-registration raises — two subsystems can therefore
    share one registry without coordinating, and a typo'd re-use fails
    loudly instead of silently forking a family.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- registration --------------------------------------------------------

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        *,
        buckets: Sequence[float] | None = None,
        callback: Callable | None = None,
    ) -> _Family:
        _check_name(name)
        labelnames = _check_labelnames(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    existing.kind != kind
                    or existing.labelnames != labelnames
                    or (callback is None) != (existing.callback is None)
                ):
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            family = _Family(
                name, kind, help_text, labelnames,
                buckets=buckets, callback=callback,
            )
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        """A counter family (call ``.inc()`` / ``.labels(...).inc()``)."""
        return self._register(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        """A gauge family (call ``.set()`` / ``.inc()`` / ``.dec()``)."""
        return self._register(name, "gauge", help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        """A fixed-bucket histogram family (call ``.observe(value)``)."""
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"buckets must be strictly ascending, got {buckets!r}")
        return self._register(name, "histogram", help_text, labelnames, buckets=bounds)

    def register_callback(
        self,
        name: str,
        kind: str,
        help_text: str,
        fn: Callable,
        labelnames: Sequence[str] = (),
    ):
        """A family whose value(s) are read from ``fn`` at collection time.

        ``fn`` returns a number (unlabelled) or a mapping from
        label-value tuples to numbers (labelled).  This is how existing
        counters — the micro-batcher's tallies, a worker pool's
        per-pid totals, a :class:`DistanceCounter` — surface in
        ``/metrics`` without moving their bookkeeping.
        """
        if kind not in ("counter", "gauge"):
            raise ValueError(f"callback metrics must be counter or gauge, got {kind!r}")
        return self._register(name, kind, help_text, labelnames, callback=fn)

    # -- reads ---------------------------------------------------------------

    def families(self) -> list[_Family]:
        with self._lock:
            return list(self._families.values())

    def read(self, name: str, match: Mapping[str, str] | None = None) -> float:
        """Current value of one counter/gauge family, summed over children.

        ``match`` filters children by label values.  This is the "one
        source of truth" read ``/healthz`` uses, so the liveness body
        and the ``/metrics`` exposition can never drift.
        """
        with self._lock:
            family = self._families.get(name)
        if family is None:
            raise KeyError(f"no metric {name!r} registered")
        if family.kind == "histogram":
            raise ValueError(f"{name!r} is a histogram; read() sums scalar families")
        total = 0.0
        for values, child in family.collected_children().items():
            labels = dict(zip(family.labelnames, values))
            if match and any(labels.get(k) != str(v) for k, v in match.items()):
                continue
            total += child if isinstance(child, float) else child.value
        return total

    # -- exposition ----------------------------------------------------------

    def render(self) -> str:
        """The Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            children = family.collected_children()
            for values in sorted(children):
                child = children[values]
                labels = _labels_text(family.labelnames, values)
                if family.kind == "histogram":
                    for bound, cumulative in child.cumulative():
                        le = "+Inf" if math.isinf(bound) else _format_value(bound)
                        bucket_labels = _labels_text(
                            family.labelnames + ("le",), values + (le,)
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{labels} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{labels} {child.count}")
                else:
                    value = child if isinstance(child, float) else child.value
                    lines.append(f"{family.name}{labels} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """All current values as one JSON-able dict.

        The embed-into-artifacts form: benchmarks attach this to their
        ``BENCH_*.json`` records so a perf number always travels with
        the op counts (distance calls, walk steps, batch sizes) that
        produced it.
        """
        out: dict = {}
        for family in self.families():
            entry: dict = {"kind": family.kind, "help": family.help}
            samples = []
            children = family.collected_children()
            for values in sorted(children):
                child = children[values]
                labels = dict(zip(family.labelnames, values))
                if family.kind == "histogram":
                    samples.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": {
                            ("+Inf" if math.isinf(b) else _format_value(b)): c
                            for b, c in child.cumulative()
                        },
                    })
                else:
                    value = child if isinstance(child, float) else child.value
                    samples.append({"labels": labels, "value": value})
            entry["samples"] = samples
            out[family.name] = entry
        return out


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse Prometheus text format back into families (inverse of render).

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, labels_dict, value), ...]}}``.  Histogram series
    (``_bucket``/``_sum``/``_count``) attach to their base family.
    Raises ``ValueError`` on any malformed line — which is what makes
    this double as the format validator in tests and CI.
    """
    sample_re = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?:\{(?P<labels>.*)\})?"
        r"\s+(?P<value>[^\s]+)"
        r"(?:\s+(?P<ts>-?\d+))?$"
    )
    label_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    families: dict[str, dict] = {}
    typed: dict[str, str] = {}

    def base_family(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if stripped and typed.get(stripped) == "histogram":
                return stripped
        return sample_name

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["type"] = parts[3]
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        m = sample_re.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        raw_labels = m.group("labels") or ""
        labels = {}
        if raw_labels:
            consumed = 0
            for lm in label_re.finditer(raw_labels):
                labels[lm.group(1)] = (
                    lm.group(2)
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                consumed = lm.end()
            rest = raw_labels[consumed:].strip().strip(",")
            if rest:
                raise ValueError(f"line {lineno}: malformed labels: {raw_labels!r}")
        value_text = m.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        name = m.group("name")
        family = families.setdefault(
            base_family(name), {"type": None, "help": None, "samples": []}
        )
        family["samples"].append((name, labels, value))
    return families


def validate_exposition(text: str, require: Iterable[str] = ()) -> dict[str, dict]:
    """Parse ``text`` and assert structural invariants; returns families.

    Beyond the line grammar (delegated to :func:`parse_exposition`):
    every sample belongs to a ``# TYPE``-declared family, counter names
    end in ``_total``, and histogram buckets are cumulative with a
    ``+Inf`` bound matching ``_count``.  ``require`` lists family names
    that must be present.
    """
    families = parse_exposition(text)
    for name in require:
        if name not in families:
            raise ValueError(f"required family {name!r} missing from exposition")
    for name, family in families.items():
        if family["type"] is None:
            raise ValueError(f"family {name!r} has samples but no # TYPE line")
        if family["type"] == "counter" and not name.endswith("_total"):
            raise ValueError(f"counter {name!r} does not end in _total")
        if family["type"] == "histogram":
            series: dict[tuple, list[tuple[float, float]]] = {}
            counts: dict[tuple, float] = {}
            for sample_name, labels, value in family["samples"]:
                key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
                if sample_name.endswith("_bucket"):
                    series.setdefault(key, []).append((float(labels["le"]), value))
                elif sample_name.endswith("_count"):
                    counts[key] = value
            for key, buckets in series.items():
                buckets.sort()
                values = [v for _, v in buckets]
                if values != sorted(values):
                    raise ValueError(f"{name}: histogram buckets not cumulative")
                if not math.isinf(buckets[-1][0]):
                    raise ValueError(f"{name}: histogram missing +Inf bucket")
                if key in counts and buckets[-1][1] != counts[key]:
                    raise ValueError(f"{name}: +Inf bucket != _count")
    return families
