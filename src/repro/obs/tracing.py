"""Per-request tracing: span timings and structured JSON access logs.

A :class:`RequestTrace` rides one HTTP request through the serving
tier and collects *spans* — named ``(start, end)`` intervals on the
``time.perf_counter`` clock:

- ``parse`` — request body decoded and validated,
- ``queue_wait`` — sitting in the micro-batch queue waiting for a
  batch slot (marked by the batcher, which knows the enqueue time),
- ``engine_batch`` — the engine batch this request rode in being
  scored (shared by every coalesced request of the batch),
- ``walk`` — the innermost metric-kernel portion of that batch (the
  nearest-inlier distance scan for serving; frontier walks when the
  scoring path runs them),
- ``respond`` — encoding and flushing the response bytes.

The spans share one clock and one origin (trace creation), so their
rendered offsets are mutually ordered: ``parse`` starts before
``queue_wait`` starts before ``engine_batch``, and ``respond`` comes
last — an invariant the tests pin.

Access logs are one JSON object per line on the ``repro.serve.access``
logger (request id, method/path/status, rows, batch generation, model
version, span offsets/durations in ms).  The logger ships with a
``NullHandler`` so a library user pays nothing; ``repro serve
--log-level info`` (or :func:`configure_logging`) attaches a stderr
handler.  Emission is guarded by ``isEnabledFor``, so an unconfigured
process never even builds the record dict.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import sys
import time
from contextlib import contextmanager

__all__ = [
    "ACCESS_LOGGER",
    "RequestTrace",
    "SPAN_ORDER",
    "access_logger",
    "configure_logging",
    "next_request_id",
]

#: Canonical span order for one ``/score`` request (rendering order;
#: a trace may carry a subset, e.g. error responses skip the batch spans).
SPAN_ORDER = ("parse", "queue_wait", "engine_batch", "walk", "respond")

#: Name of the access-log logger.
ACCESS_LOGGER = "repro.serve.access"

_REQUEST_SEQ = itertools.count(1)
#: Per-process token so request ids from different server processes
#: (or restarts) never collide in aggregated logs.
_PROCESS_TOKEN = f"{os.getpid():x}-{os.urandom(3).hex()}"


def next_request_id() -> str:
    """A process-unique request id, cheap enough for every request."""
    return f"{_PROCESS_TOKEN}-{next(_REQUEST_SEQ)}"


class RequestTrace:
    """Span clock for one request (see module docstring).

    All marks are ``time.perf_counter`` values; :meth:`record` converts
    them to millisecond offsets from trace creation.
    """

    __slots__ = ("request_id", "t0", "spans", "meta")

    def __init__(self, request_id: str | None = None):
        self.request_id = request_id if request_id is not None else next_request_id()
        self.t0 = time.perf_counter()
        self.spans: list[tuple[str, float, float]] = []
        self.meta: dict = {}

    def mark(self, name: str, start: float, end: float) -> None:
        """Record one span from explicit perf_counter marks."""
        self.spans.append((name, start, end))

    @contextmanager
    def span(self, name: str):
        """Time a ``with`` block as one span."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.mark(name, start, time.perf_counter())

    def annotate(self, **fields) -> None:
        """Attach extra fields to the eventual access record."""
        self.meta.update(fields)

    def record(self, **fields) -> dict:
        """The JSON-able access record: meta + fields + ordered spans."""
        spans = {}
        for name, start, end in sorted(self.spans, key=lambda s: s[1]):
            spans[name] = {
                "start_ms": round((start - self.t0) * 1e3, 3),
                "dur_ms": round((end - start) * 1e3, 3),
            }
        out = {"request_id": self.request_id}
        out.update(self.meta)
        out.update(fields)
        out["spans"] = spans
        return out


class JsonLineFormatter(logging.Formatter):
    """Render dict log payloads as one JSON object per line.

    Non-dict messages come out as ``{"msg": "..."}`` so every line of
    the stream stays machine-parseable.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = record.msg
        if not isinstance(payload, dict):
            payload = {"msg": record.getMessage()}
        body = dict(payload)
        body.setdefault("level", record.levelname.lower())
        body.setdefault("logger", record.name)
        body.setdefault("ts", round(record.created, 3))
        return json.dumps(body, separators=(",", ":"), default=str)


def access_logger() -> logging.Logger:
    """The shared access-log logger (NullHandler until configured)."""
    logger = logging.getLogger(ACCESS_LOGGER)
    if not logger.handlers:
        logger.addHandler(logging.NullHandler())
    return logger


def configure_logging(level: str = "info", stream=None) -> logging.Logger:
    """Attach a JSON-lines stderr handler to the serving loggers.

    Called by ``repro serve --log-level``; idempotent (re-configuring
    replaces the handler rather than stacking duplicates).  Returns the
    ``repro.serve`` parent logger.
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    parent = logging.getLogger("repro.serve")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter())
    for existing in list(parent.handlers):
        if getattr(existing, "_repro_obs_handler", False):
            parent.removeHandler(existing)
    handler._repro_obs_handler = True
    parent.addHandler(handler)
    parent.setLevel(numeric)
    # the access logger propagates to repro.serve; make sure its
    # NullHandler exists but does not block propagation (it never does)
    access_logger()
    return parent
