"""``repro.serve`` — the asyncio HTTP scoring tier.

The serving half of the fit-once-serve-many story: a long-lived
stdlib-only HTTP server over any published
:class:`~repro.api.base.FittedModel`, built from four pieces that
compose but also stand alone:

- :class:`~repro.serve.batching.MicroBatcher` — adaptive
  micro-batching: concurrent single-row requests coalesce into one
  engine batch under a max-latency window, scores fanned back out
  bit-identical to direct ``score_batch``.
- :class:`~repro.serve.workers.ScoringWorkerPool` — N worker processes
  that mmap-attach to the published ``.npz`` artifact, sharing one
  page-cache copy of the index.
- :class:`~repro.serve.server.ScoringServer` — ``POST /score`` /
  ``GET /healthz`` / ``GET /metrics`` / ``GET /model`` with structured
  4xx errors at the serving boundary.
- :class:`~repro.serve.watcher.RegistryWatcher` — polls
  ``ModelRegistry.latest_version`` and hot-swaps the served model
  between engine batches, draining requests in flight.

Every tier is instrumented through :mod:`repro.obs`: the server owns a
:class:`~repro.obs.MetricsRegistry` served as ``GET /metrics``
(Prometheus text format), each ``/score`` request carries a
:class:`~repro.obs.RequestTrace` whose spans land in JSON access logs,
and ``ScoringServer(metrics=False)`` turns the whole telemetry tier
off.

Surfaced on the command line as ``repro serve --spec ... --registry
... --workers N --port P`` (``--log-level info`` for access logs,
``--no-metrics`` to disable telemetry) and ``repro stats --url ...``
to scrape a running server; driven programmatically (and by the load
bench) through :class:`~repro.serve.client.ScoreClient`.
"""

from repro.serve.batching import BatcherClosed, BatcherOverloaded, MicroBatcher
from repro.serve.client import ScoreClient
from repro.serve.server import HttpError, ScoringServer, ServedModel
from repro.serve.watcher import RegistryWatcher
from repro.serve.workers import ScoringWorkerPool, attachment_report

__all__ = [
    "BatcherClosed",
    "BatcherOverloaded",
    "HttpError",
    "MicroBatcher",
    "RegistryWatcher",
    "ScoreClient",
    "ScoringServer",
    "ScoringWorkerPool",
    "ServedModel",
    "attachment_report",
]
