"""Adaptive micro-batching: coalesce concurrent requests into engine batches.

The whole perf trajectory of this repo (PRs 1/4/6) says the same thing:
the engine is fast *per batch*, not per call.  A scoring server that
forwards each single-row request straight to
:meth:`~repro.api.base.FittedModel.score_batch` pays the full per-call
overhead — batch validation, engine setup, kernel dispatch — once per
row.  :class:`MicroBatcher` moves that overhead to once per *window*:
concurrent requests land in an asyncio queue, a collector task drains
them into one ``(b, d)`` block, scores the block with a single
``score_batch`` call, and fans the score slices back out through
per-request futures.

The batching is *adaptive* in the sense that batch size self-tunes to
the arrival rate between two hard bounds:

- ``window_s`` caps the extra latency any request can pay: the first
  request of a batch waits at most one window for company.  Idle
  traffic therefore serves at (score time + window); saturated traffic
  forms full batches without ever sleeping, because the queue is never
  empty when the collector looks.
- ``max_batch`` caps the rows per engine call, so one burst cannot
  build an unboundedly large (and unboundedly late) batch.

``window_s=0`` disables coalescing entirely — every request is its own
engine batch — which is exactly the per-request baseline the serving
bench contrasts against.

Backpressure is *bounded*, not implicit: ``max_pending`` caps how many
requests may sit in the queue waiting for a batch slot.  Past the cap,
:meth:`MicroBatcher.submit` sheds the request immediately with
:class:`BatcherOverloaded` — carrying a drain-time estimate from an
EWMA of recent batch service times — instead of letting the queue (and
every queued request's latency) grow without limit.  The server maps
that to a structured 429 with a ``Retry-After`` header, so overload
degrades into fast, honest rejections while everything already
accepted still scores and answers.

Correctness rests on a property this repo pins in its differential
tests: scoring is row-independent and the bulk kernels are bitwise
shape-independent (the einsum cross-term of PR 1), so the rows of
``score_batch(concat(r1, r2))`` equal ``score_batch(r1)`` +
``score_batch(r2)`` bit for bit.  ``tests/test_serve.py`` re-pins it
end to end through the HTTP boundary.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Awaitable, Callable

import numpy as np

from repro.obs.tracing import RequestTrace

#: Structured batcher events (the shed WARN) propagate to the
#: ``repro.serve`` parent that ``configure_logging`` attaches to.
_LOG = logging.getLogger("repro.serve.batcher")

#: Queue sentinel: placed after the last accepted request by
#: :meth:`MicroBatcher.drain`, so FIFO order guarantees every real
#: request is dispatched before the collector exits.
_STOP = object()


class BatcherClosed(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` once draining has begun."""


class BatcherOverloaded(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when the queue is at
    ``max_pending``: the request is shed, nothing was enqueued.

    ``retry_after`` estimates (in seconds, >= 1) how long the current
    backlog needs to drain, derived from the EWMA batch service time —
    what the server forwards as the ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = float(retry_after)


class MicroBatcher:
    """Coalesce concurrent score requests into one engine batch.

    Parameters
    ----------
    score_rows:
        Async callable mapping one ``(b, d)`` float64 block to ``b``
        scores.  Called once per formed batch; the callable decides
        *where* scoring runs (inline, thread, or an mmap-attached
        worker process — see :mod:`repro.serve.workers`).
    window_s:
        Maximum seconds the first request of a batch waits for more
        rows.  ``0`` serves strictly per-request.
    max_batch:
        Maximum rows per engine call.
    max_pending:
        Maximum requests allowed to wait in the queue; ``None``
        (default) leaves the queue unbounded.  At the cap,
        :meth:`submit` raises :class:`BatcherOverloaded` without
        enqueuing — bounded backpressure instead of unbounded latency.
    """

    #: EWMA smoothing for the batch service time (0 < alpha <= 1).
    _EWMA_ALPHA = 0.3

    def __init__(
        self,
        score_rows: Callable[[np.ndarray], Awaitable[np.ndarray]],
        *,
        window_s: float = 0.002,
        max_batch: int = 256,
        max_pending: int | None = None,
    ):
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._score_rows = score_rows
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.max_pending = None if max_pending is None else int(max_pending)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._collector: asyncio.Task | None = None
        self._closed = False
        # served-traffic counters, surfaced by GET /healthz and (via
        # callback families) GET /metrics — one bookkeeping, two views
        self.rows_scored = 0
        self.batches_dispatched = 0
        self.largest_batch = 0
        self.requests_shed = 0
        self.ewma_batch_s = 0.0  # smoothed per-batch service time
        # observation histograms, attached by bind_metrics (None = off)
        self._obs_batch_rows = None
        self._obs_queue_wait = None
        self._obs_service = None

    # -- telemetry -----------------------------------------------------------

    #: Batch-size histogram bounds (rows per engine call; +Inf implicit).
    _ROWS_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)

    def bind_metrics(self, registry) -> None:
        """Expose this batcher on a :class:`~repro.obs.MetricsRegistry`.

        The served-traffic counters surface as *callback* families (the
        registry reads the same attributes ``/healthz`` reports, so the
        two views cannot drift), and three real histograms start
        observing: rows per engine batch, per-request queue wait, and
        per-batch service time.
        """
        registry.register_callback(
            "repro_batcher_batches_total", "counter",
            "Engine batches dispatched by the micro-batcher",
            lambda: self.batches_dispatched,
        )
        registry.register_callback(
            "repro_batcher_rows_scored_total", "counter",
            "Rows scored through the micro-batcher",
            lambda: self.rows_scored,
        )
        registry.register_callback(
            "repro_batcher_requests_shed_total", "counter",
            "Requests shed at the max_pending backpressure cap",
            lambda: self.requests_shed,
        )
        registry.register_callback(
            "repro_batcher_queue_depth", "gauge",
            "Requests waiting in the micro-batch queue",
            lambda: self.pending,
        )
        registry.register_callback(
            "repro_batcher_ewma_batch_seconds", "gauge",
            "EWMA of engine batch service time (drives Retry-After)",
            lambda: self.ewma_batch_s,
        )
        self._obs_batch_rows = registry.histogram(
            "repro_batch_rows", "Rows per dispatched engine batch",
            buckets=self._ROWS_BUCKETS,
        )
        self._obs_queue_wait = registry.histogram(
            "repro_batch_queue_wait_seconds",
            "Seconds a request waited in the queue for its batch slot",
        )
        self._obs_service = registry.histogram(
            "repro_batch_service_seconds",
            "Seconds per engine batch call (queue excluded)",
        )

    # -- request side --------------------------------------------------------

    async def submit(
        self, rows: np.ndarray, trace: RequestTrace | None = None
    ) -> tuple[np.ndarray, int]:
        """Score ``rows`` (shape ``(b, d)``), coalesced with concurrent calls.

        Returns ``(scores, batched_rows)``: the ``b`` scores for exactly
        these rows — bit-identical to a direct ``score_batch(rows)`` —
        and the total size of the engine batch they rode in (the
        coalescing win, made observable per request).  A ``trace``
        (optional) receives the ``queue_wait`` / ``engine_batch`` /
        ``walk`` spans of the batch these rows rode in.
        """
        if self._closed:
            raise BatcherClosed("server is draining; no new requests accepted")
        if self.max_pending is not None and self._queue.qsize() >= self.max_pending:
            self.requests_shed += 1
            retry_after = self.retry_after_estimate()
            if _LOG.isEnabledFor(logging.WARNING):
                _LOG.warning({
                    "event": "request_shed",
                    "rows": int(rows.shape[0]),
                    "pending": self._queue.qsize(),
                    "max_pending": self.max_pending,
                    "retry_after_s": round(retry_after, 3),
                    "ewma_batch_s": round(self.ewma_batch_s, 6),
                    "requests_shed": self.requests_shed,
                })
            raise BatcherOverloaded(
                f"micro-batch queue is full ({self.max_pending} requests "
                "pending); retry after the backlog drains",
                retry_after,
            )
        self._ensure_collector()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((rows, future, time.perf_counter(), trace))
        return await future

    def retry_after_estimate(self) -> float:
        """Seconds (>= 1) the current backlog should take to drain.

        Pending requests form at least ``ceil(pending / max_batch)``
        engine batches; each costs about one EWMA service time plus one
        coalescing window.  Before any batch has been timed the EWMA is
        0 and the floor of one second applies.
        """
        batches = -(-max(1, self._queue.qsize()) // self.max_batch)
        return max(1.0, batches * (self.ewma_batch_s + self.window_s))

    @property
    def pending(self) -> int:
        """Requests queued but not yet dispatched to the engine."""
        return self._queue.qsize()

    @property
    def mean_batch_rows(self) -> float:
        """Mean rows per engine call so far (1.0 = no coalescing won)."""
        if self.batches_dispatched == 0:
            return 0.0
        return self.rows_scored / self.batches_dispatched

    # -- collector side ------------------------------------------------------

    def _ensure_collector(self) -> None:
        if self._collector is None or self._collector.done():
            self._collector = asyncio.get_running_loop().create_task(
                self._collect(), name="repro-serve-microbatch"
            )

    async def _collect(self) -> None:
        """The batch-forming loop: wait, gather a window, dispatch."""
        loop = asyncio.get_running_loop()
        while True:
            head = await self._queue.get()
            if head is _STOP:
                return
            batch = [head]
            total = head[0].shape[0]
            stop_after = False
            if self.window_s > 0.0:
                deadline = loop.time() + self.window_s
                while total < self.max_batch:
                    if not self._queue.empty():
                        item = self._queue.get_nowait()  # backlog: no sleep
                    else:
                        timeout = deadline - loop.time()
                        if timeout <= 0.0:
                            break
                        try:
                            item = await asyncio.wait_for(self._queue.get(), timeout)
                        except asyncio.TimeoutError:
                            break
                    if item is _STOP:
                        stop_after = True
                        break
                    batch.append(item)
                    total += item[0].shape[0]
            await self._dispatch(batch, total)
            if stop_after:
                return

    async def _dispatch(self, batch: list, total: int) -> None:
        """One engine call for the gathered requests, scores fanned out.

        Concatenation order is queue order; each future receives its
        own contiguous score slice, so interleaving requests never
        mixes rows up.  The score callable may return a bare score
        array or ``(scores, extras)`` where ``extras`` carries batch
        telemetry (inner kernel seconds, the generation snapshot) — the
        tuple form is how the server annotates traces without the
        batcher knowing anything about models.
        """
        requests = [item for item in batch if not item[1].cancelled()]
        if not requests:
            return
        if len(requests) == 1:
            block = requests[0][0]
        else:
            block = np.concatenate([rows for rows, _, _, _ in requests], axis=0)
        started = time.perf_counter()
        try:
            result = await self._score_rows(block)
        except Exception as exc:  # noqa: BLE001 - forwarded to every waiter
            for _, future, _, _ in requests:
                if not future.done():
                    future.set_exception(exc)
            return
        ended = time.perf_counter()
        extras = None
        scores = result
        if isinstance(result, tuple):
            scores, extras = result
        elapsed = ended - started
        if self.ewma_batch_s == 0.0:
            self.ewma_batch_s = elapsed
        else:
            self.ewma_batch_s += self._EWMA_ALPHA * (elapsed - self.ewma_batch_s)
        self.batches_dispatched += 1
        self.rows_scored += int(block.shape[0])
        self.largest_batch = max(self.largest_batch, int(block.shape[0]))
        if self._obs_batch_rows is not None:
            self._obs_batch_rows.observe(block.shape[0])
            self._obs_service.observe(elapsed)
        offset = 0
        for rows, future, enqueued, trace in requests:
            b = rows.shape[0]
            if self._obs_queue_wait is not None:
                self._obs_queue_wait.observe(started - enqueued)
            if trace is not None:
                trace.mark("queue_wait", enqueued, started)
                trace.mark("engine_batch", started, ended)
                if extras:
                    walk_s = extras.get("walk_s")
                    if walk_s is not None:
                        trace.mark("walk", started, started + walk_s)
                    trace.annotate(**{
                        k: v for k, v in extras.items() if k != "walk_s"
                    })
            if not future.done():
                future.set_result((scores[offset : offset + b], int(block.shape[0])))
            offset += b

    # -- shutdown ------------------------------------------------------------

    async def drain(self) -> None:
        """Stop accepting requests, then score everything already queued.

        Every submitted request resolves (FIFO: the stop sentinel sits
        behind all accepted work), which is what lets the server answer
        in-flight HTTP requests before closing their connections.
        """
        if self._closed:
            if self._collector is not None:
                await self._collector
            return
        self._closed = True
        if self._collector is None or self._collector.done():
            return  # nothing ever submitted (or collector already exited)
        self._queue.put_nowait(_STOP)
        await self._collector

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(window_s={self.window_s}, max_batch={self.max_batch}, "
            f"batches={self.batches_dispatched}, mean_rows={self.mean_batch_rows:.1f})"
        )
