"""A minimal asyncio HTTP/1.1 client for the scoring tier.

Just enough client to drive :class:`~repro.serve.server.ScoringServer`
from tests, benchmarks, and examples without pulling in a dependency:
one persistent (keep-alive) connection, JSON in, JSON out.  Not a
general HTTP client — it speaks exactly the dialect the server emits
(``Content-Length`` bodies, no chunked encoding).
"""

from __future__ import annotations

import asyncio
import json

import numpy as np


class ScoreClient:
    """One keep-alive connection to a scoring server.

    Usage::

        client = await ScoreClient.connect("127.0.0.1", 8787)
        scores = await client.score_rows([[0.1, 0.2], [3.4, 5.6]])
        await client.close()
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        #: Response headers of the most recent :meth:`request`
        #: (lower-cased names) — how callers read e.g. ``Retry-After``
        #: off a 429 without changing the ``(status, body)`` signature.
        self.last_headers: dict[str, str] = {}

    @classmethod
    async def connect(cls, host: str, port: int) -> "ScoreClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict | str]:
        """One round trip; returns ``(status_code, decoded_body)``.

        JSON responses decode to a dict; text responses (the
        ``/metrics`` exposition) come back as the raw ``str``.
        """
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: localhost\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        self.last_headers = headers
        data = await self._reader.readexactly(length) if length else b""
        if not data:
            return status, {}
        if "json" not in headers.get("content-type", "json"):
            return status, data.decode("utf-8")
        return status, json.loads(data)

    async def score_rows(self, rows) -> np.ndarray:
        """Score a batch; raises ``RuntimeError`` on a structured error."""
        status, payload = await self.request(
            "POST", "/score", {"rows": np.asarray(rows, dtype=float).tolist()}
        )
        if status != 200:
            error = payload.get("error", {})
            raise RuntimeError(
                f"score failed ({status} {error.get('code')}): "
                f"{error.get('message')}"
            )
        return np.asarray(payload["scores"], dtype=np.float64)

    async def score_row(self, row) -> float:
        """Score one vector (the micro-batching hot path)."""
        scores = await self.score_rows(np.asarray(row, dtype=float).reshape(1, -1))
        return float(scores[0])

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
